/root/repo/target/debug/examples/video_streaming-a1576c2269ca3756.d: examples/video_streaming.rs Cargo.toml

/root/repo/target/debug/examples/libvideo_streaming-a1576c2269ca3756.rmeta: examples/video_streaming.rs Cargo.toml

examples/video_streaming.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
