/root/repo/target/debug/examples/spec_driven-e0e88af5d342fdd0.d: examples/spec_driven.rs Cargo.toml

/root/repo/target/debug/examples/libspec_driven-e0e88af5d342fdd0.rmeta: examples/spec_driven.rs Cargo.toml

examples/spec_driven.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
