/root/repo/target/debug/examples/spec_driven-6a96e69276c0785e.d: examples/spec_driven.rs

/root/repo/target/debug/examples/spec_driven-6a96e69276c0785e: examples/spec_driven.rs

examples/spec_driven.rs:
