/root/repo/target/debug/examples/video_streaming-8364eb7f27fdfca8.d: examples/video_streaming.rs

/root/repo/target/debug/examples/video_streaming-8364eb7f27fdfca8: examples/video_streaming.rs

examples/video_streaming.rs:
