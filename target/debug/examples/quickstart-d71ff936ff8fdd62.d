/root/repo/target/debug/examples/quickstart-d71ff936ff8fdd62.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-d71ff936ff8fdd62: examples/quickstart.rs

examples/quickstart.rs:
