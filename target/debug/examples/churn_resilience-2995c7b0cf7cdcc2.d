/root/repo/target/debug/examples/churn_resilience-2995c7b0cf7cdcc2.d: examples/churn_resilience.rs Cargo.toml

/root/repo/target/debug/examples/libchurn_resilience-2995c7b0cf7cdcc2.rmeta: examples/churn_resilience.rs Cargo.toml

examples/churn_resilience.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
