/root/repo/target/debug/examples/quickstart-a370a70dedc45ccf.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-a370a70dedc45ccf.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
