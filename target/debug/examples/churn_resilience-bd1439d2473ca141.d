/root/repo/target/debug/examples/churn_resilience-bd1439d2473ca141.d: examples/churn_resilience.rs

/root/repo/target/debug/examples/churn_resilience-bd1439d2473ca141: examples/churn_resilience.rs

examples/churn_resilience.rs:
