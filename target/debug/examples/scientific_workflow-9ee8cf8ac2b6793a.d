/root/repo/target/debug/examples/scientific_workflow-9ee8cf8ac2b6793a.d: examples/scientific_workflow.rs

/root/repo/target/debug/examples/scientific_workflow-9ee8cf8ac2b6793a: examples/scientific_workflow.rs

examples/scientific_workflow.rs:
