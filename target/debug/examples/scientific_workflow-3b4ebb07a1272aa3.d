/root/repo/target/debug/examples/scientific_workflow-3b4ebb07a1272aa3.d: examples/scientific_workflow.rs Cargo.toml

/root/repo/target/debug/examples/libscientific_workflow-3b4ebb07a1272aa3.rmeta: examples/scientific_workflow.rs Cargo.toml

examples/scientific_workflow.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
