/root/repo/target/debug/deps/runtime_e2e-46334f336b207483.d: tests/runtime_e2e.rs Cargo.toml

/root/repo/target/debug/deps/libruntime_e2e-46334f336b207483.rmeta: tests/runtime_e2e.rs Cargo.toml

tests/runtime_e2e.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
