/root/repo/target/debug/deps/spidernet_bench-7ec971904f9809d3.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/spidernet_bench-7ec971904f9809d3: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
