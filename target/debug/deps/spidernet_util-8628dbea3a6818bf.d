/root/repo/target/debug/deps/spidernet_util-8628dbea3a6818bf.d: crates/util/src/lib.rs crates/util/src/error.rs crates/util/src/hash.rs crates/util/src/id.rs crates/util/src/par.rs crates/util/src/qos.rs crates/util/src/res.rs crates/util/src/rng.rs crates/util/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libspidernet_util-8628dbea3a6818bf.rmeta: crates/util/src/lib.rs crates/util/src/error.rs crates/util/src/hash.rs crates/util/src/id.rs crates/util/src/par.rs crates/util/src/qos.rs crates/util/src/res.rs crates/util/src/rng.rs crates/util/src/stats.rs Cargo.toml

crates/util/src/lib.rs:
crates/util/src/error.rs:
crates/util/src/hash.rs:
crates/util/src/id.rs:
crates/util/src/par.rs:
crates/util/src/qos.rs:
crates/util/src/res.rs:
crates/util/src/rng.rs:
crates/util/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
