/root/repo/target/debug/deps/spidernet-efee8170f253034b.d: src/lib.rs

/root/repo/target/debug/deps/libspidernet-efee8170f253034b.rlib: src/lib.rs

/root/repo/target/debug/deps/libspidernet-efee8170f253034b.rmeta: src/lib.rs

src/lib.rs:
