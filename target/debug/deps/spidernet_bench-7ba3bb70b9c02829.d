/root/repo/target/debug/deps/spidernet_bench-7ba3bb70b9c02829.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libspidernet_bench-7ba3bb70b9c02829.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libspidernet_bench-7ba3bb70b9c02829.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
