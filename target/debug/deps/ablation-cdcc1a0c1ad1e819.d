/root/repo/target/debug/deps/ablation-cdcc1a0c1ad1e819.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-cdcc1a0c1ad1e819: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
