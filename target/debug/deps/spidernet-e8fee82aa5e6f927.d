/root/repo/target/debug/deps/spidernet-e8fee82aa5e6f927.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libspidernet-e8fee82aa5e6f927.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
