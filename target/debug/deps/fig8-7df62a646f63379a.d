/root/repo/target/debug/deps/fig8-7df62a646f63379a.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-7df62a646f63379a: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
