/root/repo/target/debug/deps/spidernet_util-76d36fe65b626fe2.d: crates/util/src/lib.rs crates/util/src/error.rs crates/util/src/hash.rs crates/util/src/id.rs crates/util/src/par.rs crates/util/src/qos.rs crates/util/src/res.rs crates/util/src/rng.rs crates/util/src/stats.rs

/root/repo/target/debug/deps/spidernet_util-76d36fe65b626fe2: crates/util/src/lib.rs crates/util/src/error.rs crates/util/src/hash.rs crates/util/src/id.rs crates/util/src/par.rs crates/util/src/qos.rs crates/util/src/res.rs crates/util/src/rng.rs crates/util/src/stats.rs

crates/util/src/lib.rs:
crates/util/src/error.rs:
crates/util/src/hash.rs:
crates/util/src/id.rs:
crates/util/src/par.rs:
crates/util/src/qos.rs:
crates/util/src/res.rs:
crates/util/src/rng.rs:
crates/util/src/stats.rs:
