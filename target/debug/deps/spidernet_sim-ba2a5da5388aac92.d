/root/repo/target/debug/deps/spidernet_sim-ba2a5da5388aac92.d: crates/sim/src/lib.rs crates/sim/src/churn.rs crates/sim/src/event.rs crates/sim/src/metrics.rs crates/sim/src/time.rs crates/sim/src/transport.rs Cargo.toml

/root/repo/target/debug/deps/libspidernet_sim-ba2a5da5388aac92.rmeta: crates/sim/src/lib.rs crates/sim/src/churn.rs crates/sim/src/event.rs crates/sim/src/metrics.rs crates/sim/src/time.rs crates/sim/src/transport.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/churn.rs:
crates/sim/src/event.rs:
crates/sim/src/metrics.rs:
crates/sim/src/time.rs:
crates/sim/src/transport.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
