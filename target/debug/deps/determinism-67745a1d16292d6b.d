/root/repo/target/debug/deps/determinism-67745a1d16292d6b.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-67745a1d16292d6b: tests/determinism.rs

tests/determinism.rs:
