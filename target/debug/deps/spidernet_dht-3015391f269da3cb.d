/root/repo/target/debug/deps/spidernet_dht-3015391f269da3cb.d: crates/dht/src/lib.rs crates/dht/src/directory.rs crates/dht/src/leafset.rs crates/dht/src/network.rs crates/dht/src/nodeid.rs crates/dht/src/routing_table.rs

/root/repo/target/debug/deps/libspidernet_dht-3015391f269da3cb.rlib: crates/dht/src/lib.rs crates/dht/src/directory.rs crates/dht/src/leafset.rs crates/dht/src/network.rs crates/dht/src/nodeid.rs crates/dht/src/routing_table.rs

/root/repo/target/debug/deps/libspidernet_dht-3015391f269da3cb.rmeta: crates/dht/src/lib.rs crates/dht/src/directory.rs crates/dht/src/leafset.rs crates/dht/src/network.rs crates/dht/src/nodeid.rs crates/dht/src/routing_table.rs

crates/dht/src/lib.rs:
crates/dht/src/directory.rs:
crates/dht/src/leafset.rs:
crates/dht/src/network.rs:
crates/dht/src/nodeid.rs:
crates/dht/src/routing_table.rs:
