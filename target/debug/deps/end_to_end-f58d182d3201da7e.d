/root/repo/target/debug/deps/end_to_end-f58d182d3201da7e.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-f58d182d3201da7e: tests/end_to_end.rs

tests/end_to_end.rs:
