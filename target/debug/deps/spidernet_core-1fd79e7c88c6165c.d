/root/repo/target/debug/deps/spidernet_core-1fd79e7c88c6165c.d: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/bcp.rs crates/core/src/conditional.rs crates/core/src/experiments/mod.rs crates/core/src/experiments/ablation.rs crates/core/src/experiments/fig11.rs crates/core/src/experiments/latency.rs crates/core/src/experiments/fig8.rs crates/core/src/experiments/fig9.rs crates/core/src/experiments/overhead.rs crates/core/src/model/mod.rs crates/core/src/model/component.rs crates/core/src/model/function_graph.rs crates/core/src/model/request.rs crates/core/src/model/service_graph.rs crates/core/src/paths.rs crates/core/src/recovery.rs crates/core/src/selection.rs crates/core/src/spec.rs crates/core/src/state.rs crates/core/src/system.rs crates/core/src/trust.rs crates/core/src/workload.rs

/root/repo/target/debug/deps/libspidernet_core-1fd79e7c88c6165c.rlib: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/bcp.rs crates/core/src/conditional.rs crates/core/src/experiments/mod.rs crates/core/src/experiments/ablation.rs crates/core/src/experiments/fig11.rs crates/core/src/experiments/latency.rs crates/core/src/experiments/fig8.rs crates/core/src/experiments/fig9.rs crates/core/src/experiments/overhead.rs crates/core/src/model/mod.rs crates/core/src/model/component.rs crates/core/src/model/function_graph.rs crates/core/src/model/request.rs crates/core/src/model/service_graph.rs crates/core/src/paths.rs crates/core/src/recovery.rs crates/core/src/selection.rs crates/core/src/spec.rs crates/core/src/state.rs crates/core/src/system.rs crates/core/src/trust.rs crates/core/src/workload.rs

/root/repo/target/debug/deps/libspidernet_core-1fd79e7c88c6165c.rmeta: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/bcp.rs crates/core/src/conditional.rs crates/core/src/experiments/mod.rs crates/core/src/experiments/ablation.rs crates/core/src/experiments/fig11.rs crates/core/src/experiments/latency.rs crates/core/src/experiments/fig8.rs crates/core/src/experiments/fig9.rs crates/core/src/experiments/overhead.rs crates/core/src/model/mod.rs crates/core/src/model/component.rs crates/core/src/model/function_graph.rs crates/core/src/model/request.rs crates/core/src/model/service_graph.rs crates/core/src/paths.rs crates/core/src/recovery.rs crates/core/src/selection.rs crates/core/src/spec.rs crates/core/src/state.rs crates/core/src/system.rs crates/core/src/trust.rs crates/core/src/workload.rs

crates/core/src/lib.rs:
crates/core/src/baselines.rs:
crates/core/src/bcp.rs:
crates/core/src/conditional.rs:
crates/core/src/experiments/mod.rs:
crates/core/src/experiments/ablation.rs:
crates/core/src/experiments/fig11.rs:
crates/core/src/experiments/latency.rs:
crates/core/src/experiments/fig8.rs:
crates/core/src/experiments/fig9.rs:
crates/core/src/experiments/overhead.rs:
crates/core/src/model/mod.rs:
crates/core/src/model/component.rs:
crates/core/src/model/function_graph.rs:
crates/core/src/model/request.rs:
crates/core/src/model/service_graph.rs:
crates/core/src/paths.rs:
crates/core/src/recovery.rs:
crates/core/src/selection.rs:
crates/core/src/spec.rs:
crates/core/src/state.rs:
crates/core/src/system.rs:
crates/core/src/trust.rs:
crates/core/src/workload.rs:
