/root/repo/target/debug/deps/spidernet_runtime-87ebd558611d6f85.d: crates/runtime/src/lib.rs crates/runtime/src/cluster.rs crates/runtime/src/experiments.rs crates/runtime/src/media.rs crates/runtime/src/msg.rs crates/runtime/src/wan.rs Cargo.toml

/root/repo/target/debug/deps/libspidernet_runtime-87ebd558611d6f85.rmeta: crates/runtime/src/lib.rs crates/runtime/src/cluster.rs crates/runtime/src/experiments.rs crates/runtime/src/media.rs crates/runtime/src/msg.rs crates/runtime/src/wan.rs Cargo.toml

crates/runtime/src/lib.rs:
crates/runtime/src/cluster.rs:
crates/runtime/src/experiments.rs:
crates/runtime/src/media.rs:
crates/runtime/src/msg.rs:
crates/runtime/src/wan.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
