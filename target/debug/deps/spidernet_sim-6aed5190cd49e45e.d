/root/repo/target/debug/deps/spidernet_sim-6aed5190cd49e45e.d: crates/sim/src/lib.rs crates/sim/src/churn.rs crates/sim/src/event.rs crates/sim/src/metrics.rs crates/sim/src/time.rs crates/sim/src/transport.rs

/root/repo/target/debug/deps/libspidernet_sim-6aed5190cd49e45e.rlib: crates/sim/src/lib.rs crates/sim/src/churn.rs crates/sim/src/event.rs crates/sim/src/metrics.rs crates/sim/src/time.rs crates/sim/src/transport.rs

/root/repo/target/debug/deps/libspidernet_sim-6aed5190cd49e45e.rmeta: crates/sim/src/lib.rs crates/sim/src/churn.rs crates/sim/src/event.rs crates/sim/src/metrics.rs crates/sim/src/time.rs crates/sim/src/transport.rs

crates/sim/src/lib.rs:
crates/sim/src/churn.rs:
crates/sim/src/event.rs:
crates/sim/src/metrics.rs:
crates/sim/src/time.rs:
crates/sim/src/transport.rs:
