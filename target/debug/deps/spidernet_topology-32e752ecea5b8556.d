/root/repo/target/debug/deps/spidernet_topology-32e752ecea5b8556.d: crates/topology/src/lib.rs crates/topology/src/graph.rs crates/topology/src/inet.rs crates/topology/src/overlay.rs crates/topology/src/routing.rs Cargo.toml

/root/repo/target/debug/deps/libspidernet_topology-32e752ecea5b8556.rmeta: crates/topology/src/lib.rs crates/topology/src/graph.rs crates/topology/src/inet.rs crates/topology/src/overlay.rs crates/topology/src/routing.rs Cargo.toml

crates/topology/src/lib.rs:
crates/topology/src/graph.rs:
crates/topology/src/inet.rs:
crates/topology/src/overlay.rs:
crates/topology/src/routing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
