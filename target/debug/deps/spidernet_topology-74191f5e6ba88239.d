/root/repo/target/debug/deps/spidernet_topology-74191f5e6ba88239.d: crates/topology/src/lib.rs crates/topology/src/graph.rs crates/topology/src/inet.rs crates/topology/src/overlay.rs crates/topology/src/routing.rs

/root/repo/target/debug/deps/libspidernet_topology-74191f5e6ba88239.rlib: crates/topology/src/lib.rs crates/topology/src/graph.rs crates/topology/src/inet.rs crates/topology/src/overlay.rs crates/topology/src/routing.rs

/root/repo/target/debug/deps/libspidernet_topology-74191f5e6ba88239.rmeta: crates/topology/src/lib.rs crates/topology/src/graph.rs crates/topology/src/inet.rs crates/topology/src/overlay.rs crates/topology/src/routing.rs

crates/topology/src/lib.rs:
crates/topology/src/graph.rs:
crates/topology/src/inet.rs:
crates/topology/src/overlay.rs:
crates/topology/src/routing.rs:
