/root/repo/target/debug/deps/spidernet_sim-3b4f1f2667621e11.d: crates/sim/src/lib.rs crates/sim/src/churn.rs crates/sim/src/event.rs crates/sim/src/metrics.rs crates/sim/src/time.rs crates/sim/src/transport.rs

/root/repo/target/debug/deps/spidernet_sim-3b4f1f2667621e11: crates/sim/src/lib.rs crates/sim/src/churn.rs crates/sim/src/event.rs crates/sim/src/metrics.rs crates/sim/src/time.rs crates/sim/src/transport.rs

crates/sim/src/lib.rs:
crates/sim/src/churn.rs:
crates/sim/src/event.rs:
crates/sim/src/metrics.rs:
crates/sim/src/time.rs:
crates/sim/src/transport.rs:
