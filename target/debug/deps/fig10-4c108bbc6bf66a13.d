/root/repo/target/debug/deps/fig10-4c108bbc6bf66a13.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-4c108bbc6bf66a13: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
