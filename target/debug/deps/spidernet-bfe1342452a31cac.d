/root/repo/target/debug/deps/spidernet-bfe1342452a31cac.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libspidernet-bfe1342452a31cac.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
