/root/repo/target/debug/deps/fig9-ca400e04d168a19a.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-ca400e04d168a19a: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
