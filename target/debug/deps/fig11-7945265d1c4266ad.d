/root/repo/target/debug/deps/fig11-7945265d1c4266ad.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-7945265d1c4266ad: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
