/root/repo/target/debug/deps/latency-38bfb415159fd9a7.d: crates/bench/src/bin/latency.rs

/root/repo/target/debug/deps/latency-38bfb415159fd9a7: crates/bench/src/bin/latency.rs

crates/bench/src/bin/latency.rs:
