/root/repo/target/debug/deps/spidernet_dht-97f22b025ecc7bf5.d: crates/dht/src/lib.rs crates/dht/src/directory.rs crates/dht/src/leafset.rs crates/dht/src/network.rs crates/dht/src/nodeid.rs crates/dht/src/routing_table.rs

/root/repo/target/debug/deps/spidernet_dht-97f22b025ecc7bf5: crates/dht/src/lib.rs crates/dht/src/directory.rs crates/dht/src/leafset.rs crates/dht/src/network.rs crates/dht/src/nodeid.rs crates/dht/src/routing_table.rs

crates/dht/src/lib.rs:
crates/dht/src/directory.rs:
crates/dht/src/leafset.rs:
crates/dht/src/network.rs:
crates/dht/src/nodeid.rs:
crates/dht/src/routing_table.rs:
