/root/repo/target/debug/deps/spidernet-24da66ec763e7769.d: src/lib.rs

/root/repo/target/debug/deps/spidernet-24da66ec763e7769: src/lib.rs

src/lib.rs:
