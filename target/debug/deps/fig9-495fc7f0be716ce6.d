/root/repo/target/debug/deps/fig9-495fc7f0be716ce6.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-495fc7f0be716ce6: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
