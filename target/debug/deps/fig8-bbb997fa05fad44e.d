/root/repo/target/debug/deps/fig8-bbb997fa05fad44e.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-bbb997fa05fad44e: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
