/root/repo/target/debug/deps/spidernet_runtime-323111cc2179731b.d: crates/runtime/src/lib.rs crates/runtime/src/cluster.rs crates/runtime/src/experiments.rs crates/runtime/src/media.rs crates/runtime/src/msg.rs crates/runtime/src/wan.rs

/root/repo/target/debug/deps/spidernet_runtime-323111cc2179731b: crates/runtime/src/lib.rs crates/runtime/src/cluster.rs crates/runtime/src/experiments.rs crates/runtime/src/media.rs crates/runtime/src/msg.rs crates/runtime/src/wan.rs

crates/runtime/src/lib.rs:
crates/runtime/src/cluster.rs:
crates/runtime/src/experiments.rs:
crates/runtime/src/media.rs:
crates/runtime/src/msg.rs:
crates/runtime/src/wan.rs:
