/root/repo/target/debug/deps/fig11-0b119325c8aeef71.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-0b119325c8aeef71: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
