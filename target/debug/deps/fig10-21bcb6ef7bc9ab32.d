/root/repo/target/debug/deps/fig10-21bcb6ef7bc9ab32.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-21bcb6ef7bc9ab32: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
