/root/repo/target/debug/deps/ablation-a8af13f8ea31997f.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-a8af13f8ea31997f: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
