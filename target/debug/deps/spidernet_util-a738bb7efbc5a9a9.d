/root/repo/target/debug/deps/spidernet_util-a738bb7efbc5a9a9.d: crates/util/src/lib.rs crates/util/src/error.rs crates/util/src/hash.rs crates/util/src/id.rs crates/util/src/par.rs crates/util/src/qos.rs crates/util/src/res.rs crates/util/src/rng.rs crates/util/src/stats.rs

/root/repo/target/debug/deps/libspidernet_util-a738bb7efbc5a9a9.rlib: crates/util/src/lib.rs crates/util/src/error.rs crates/util/src/hash.rs crates/util/src/id.rs crates/util/src/par.rs crates/util/src/qos.rs crates/util/src/res.rs crates/util/src/rng.rs crates/util/src/stats.rs

/root/repo/target/debug/deps/libspidernet_util-a738bb7efbc5a9a9.rmeta: crates/util/src/lib.rs crates/util/src/error.rs crates/util/src/hash.rs crates/util/src/id.rs crates/util/src/par.rs crates/util/src/qos.rs crates/util/src/res.rs crates/util/src/rng.rs crates/util/src/stats.rs

crates/util/src/lib.rs:
crates/util/src/error.rs:
crates/util/src/hash.rs:
crates/util/src/id.rs:
crates/util/src/par.rs:
crates/util/src/qos.rs:
crates/util/src/res.rs:
crates/util/src/rng.rs:
crates/util/src/stats.rs:
