/root/repo/target/debug/deps/spidernet_topology-9533811fdce7862d.d: crates/topology/src/lib.rs crates/topology/src/graph.rs crates/topology/src/inet.rs crates/topology/src/overlay.rs crates/topology/src/routing.rs

/root/repo/target/debug/deps/spidernet_topology-9533811fdce7862d: crates/topology/src/lib.rs crates/topology/src/graph.rs crates/topology/src/inet.rs crates/topology/src/overlay.rs crates/topology/src/routing.rs

crates/topology/src/lib.rs:
crates/topology/src/graph.rs:
crates/topology/src/inet.rs:
crates/topology/src/overlay.rs:
crates/topology/src/routing.rs:
