/root/repo/target/debug/deps/spidernet_runtime-6a82af03cf92a72c.d: crates/runtime/src/lib.rs crates/runtime/src/cluster.rs crates/runtime/src/experiments.rs crates/runtime/src/media.rs crates/runtime/src/msg.rs crates/runtime/src/wan.rs

/root/repo/target/debug/deps/libspidernet_runtime-6a82af03cf92a72c.rlib: crates/runtime/src/lib.rs crates/runtime/src/cluster.rs crates/runtime/src/experiments.rs crates/runtime/src/media.rs crates/runtime/src/msg.rs crates/runtime/src/wan.rs

/root/repo/target/debug/deps/libspidernet_runtime-6a82af03cf92a72c.rmeta: crates/runtime/src/lib.rs crates/runtime/src/cluster.rs crates/runtime/src/experiments.rs crates/runtime/src/media.rs crates/runtime/src/msg.rs crates/runtime/src/wan.rs

crates/runtime/src/lib.rs:
crates/runtime/src/cluster.rs:
crates/runtime/src/experiments.rs:
crates/runtime/src/media.rs:
crates/runtime/src/msg.rs:
crates/runtime/src/wan.rs:
