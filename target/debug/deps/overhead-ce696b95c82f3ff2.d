/root/repo/target/debug/deps/overhead-ce696b95c82f3ff2.d: crates/bench/src/bin/overhead.rs

/root/repo/target/debug/deps/overhead-ce696b95c82f3ff2: crates/bench/src/bin/overhead.rs

crates/bench/src/bin/overhead.rs:
