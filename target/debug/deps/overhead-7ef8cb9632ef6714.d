/root/repo/target/debug/deps/overhead-7ef8cb9632ef6714.d: crates/bench/src/bin/overhead.rs

/root/repo/target/debug/deps/overhead-7ef8cb9632ef6714: crates/bench/src/bin/overhead.rs

crates/bench/src/bin/overhead.rs:
