/root/repo/target/debug/deps/runtime_e2e-e90ff020d6682115.d: tests/runtime_e2e.rs

/root/repo/target/debug/deps/runtime_e2e-e90ff020d6682115: tests/runtime_e2e.rs

tests/runtime_e2e.rs:
