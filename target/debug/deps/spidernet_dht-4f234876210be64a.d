/root/repo/target/debug/deps/spidernet_dht-4f234876210be64a.d: crates/dht/src/lib.rs crates/dht/src/directory.rs crates/dht/src/leafset.rs crates/dht/src/network.rs crates/dht/src/nodeid.rs crates/dht/src/routing_table.rs Cargo.toml

/root/repo/target/debug/deps/libspidernet_dht-4f234876210be64a.rmeta: crates/dht/src/lib.rs crates/dht/src/directory.rs crates/dht/src/leafset.rs crates/dht/src/network.rs crates/dht/src/nodeid.rs crates/dht/src/routing_table.rs Cargo.toml

crates/dht/src/lib.rs:
crates/dht/src/directory.rs:
crates/dht/src/leafset.rs:
crates/dht/src/network.rs:
crates/dht/src/nodeid.rs:
crates/dht/src/routing_table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
