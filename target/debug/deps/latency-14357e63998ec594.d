/root/repo/target/debug/deps/latency-14357e63998ec594.d: crates/bench/src/bin/latency.rs

/root/repo/target/debug/deps/latency-14357e63998ec594: crates/bench/src/bin/latency.rs

crates/bench/src/bin/latency.rs:
