/root/repo/target/debug/deps/properties-25587dad72be3add.d: tests/properties.rs

/root/repo/target/debug/deps/properties-25587dad72be3add: tests/properties.rs

tests/properties.rs:
