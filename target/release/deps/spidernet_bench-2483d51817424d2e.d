/root/repo/target/release/deps/spidernet_bench-2483d51817424d2e.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libspidernet_bench-2483d51817424d2e.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libspidernet_bench-2483d51817424d2e.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
