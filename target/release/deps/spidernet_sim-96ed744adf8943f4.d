/root/repo/target/release/deps/spidernet_sim-96ed744adf8943f4.d: crates/sim/src/lib.rs crates/sim/src/churn.rs crates/sim/src/event.rs crates/sim/src/metrics.rs crates/sim/src/time.rs crates/sim/src/transport.rs

/root/repo/target/release/deps/libspidernet_sim-96ed744adf8943f4.rlib: crates/sim/src/lib.rs crates/sim/src/churn.rs crates/sim/src/event.rs crates/sim/src/metrics.rs crates/sim/src/time.rs crates/sim/src/transport.rs

/root/repo/target/release/deps/libspidernet_sim-96ed744adf8943f4.rmeta: crates/sim/src/lib.rs crates/sim/src/churn.rs crates/sim/src/event.rs crates/sim/src/metrics.rs crates/sim/src/time.rs crates/sim/src/transport.rs

crates/sim/src/lib.rs:
crates/sim/src/churn.rs:
crates/sim/src/event.rs:
crates/sim/src/metrics.rs:
crates/sim/src/time.rs:
crates/sim/src/transport.rs:
