/root/repo/target/release/deps/fig8-797a035fbcf4adea.d: crates/bench/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-797a035fbcf4adea: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
