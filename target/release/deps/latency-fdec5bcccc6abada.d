/root/repo/target/release/deps/latency-fdec5bcccc6abada.d: crates/bench/src/bin/latency.rs

/root/repo/target/release/deps/latency-fdec5bcccc6abada: crates/bench/src/bin/latency.rs

crates/bench/src/bin/latency.rs:
