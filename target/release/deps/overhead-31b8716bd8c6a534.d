/root/repo/target/release/deps/overhead-31b8716bd8c6a534.d: crates/bench/src/bin/overhead.rs

/root/repo/target/release/deps/overhead-31b8716bd8c6a534: crates/bench/src/bin/overhead.rs

crates/bench/src/bin/overhead.rs:
