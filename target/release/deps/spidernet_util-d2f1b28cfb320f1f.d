/root/repo/target/release/deps/spidernet_util-d2f1b28cfb320f1f.d: crates/util/src/lib.rs crates/util/src/error.rs crates/util/src/hash.rs crates/util/src/id.rs crates/util/src/par.rs crates/util/src/qos.rs crates/util/src/res.rs crates/util/src/rng.rs crates/util/src/stats.rs

/root/repo/target/release/deps/libspidernet_util-d2f1b28cfb320f1f.rlib: crates/util/src/lib.rs crates/util/src/error.rs crates/util/src/hash.rs crates/util/src/id.rs crates/util/src/par.rs crates/util/src/qos.rs crates/util/src/res.rs crates/util/src/rng.rs crates/util/src/stats.rs

/root/repo/target/release/deps/libspidernet_util-d2f1b28cfb320f1f.rmeta: crates/util/src/lib.rs crates/util/src/error.rs crates/util/src/hash.rs crates/util/src/id.rs crates/util/src/par.rs crates/util/src/qos.rs crates/util/src/res.rs crates/util/src/rng.rs crates/util/src/stats.rs

crates/util/src/lib.rs:
crates/util/src/error.rs:
crates/util/src/hash.rs:
crates/util/src/id.rs:
crates/util/src/par.rs:
crates/util/src/qos.rs:
crates/util/src/res.rs:
crates/util/src/rng.rs:
crates/util/src/stats.rs:
