/root/repo/target/release/deps/end_to_end-10d6f306f90f0d62.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-10d6f306f90f0d62: tests/end_to_end.rs

tests/end_to_end.rs:
