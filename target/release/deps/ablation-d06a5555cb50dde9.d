/root/repo/target/release/deps/ablation-d06a5555cb50dde9.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-d06a5555cb50dde9: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
