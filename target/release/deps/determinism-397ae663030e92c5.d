/root/repo/target/release/deps/determinism-397ae663030e92c5.d: tests/determinism.rs

/root/repo/target/release/deps/determinism-397ae663030e92c5: tests/determinism.rs

tests/determinism.rs:
