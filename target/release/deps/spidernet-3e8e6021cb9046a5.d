/root/repo/target/release/deps/spidernet-3e8e6021cb9046a5.d: src/lib.rs

/root/repo/target/release/deps/spidernet-3e8e6021cb9046a5: src/lib.rs

src/lib.rs:
