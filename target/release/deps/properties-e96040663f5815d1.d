/root/repo/target/release/deps/properties-e96040663f5815d1.d: tests/properties.rs

/root/repo/target/release/deps/properties-e96040663f5815d1: tests/properties.rs

tests/properties.rs:
