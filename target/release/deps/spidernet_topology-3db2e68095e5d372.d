/root/repo/target/release/deps/spidernet_topology-3db2e68095e5d372.d: crates/topology/src/lib.rs crates/topology/src/graph.rs crates/topology/src/inet.rs crates/topology/src/overlay.rs crates/topology/src/routing.rs

/root/repo/target/release/deps/libspidernet_topology-3db2e68095e5d372.rlib: crates/topology/src/lib.rs crates/topology/src/graph.rs crates/topology/src/inet.rs crates/topology/src/overlay.rs crates/topology/src/routing.rs

/root/repo/target/release/deps/libspidernet_topology-3db2e68095e5d372.rmeta: crates/topology/src/lib.rs crates/topology/src/graph.rs crates/topology/src/inet.rs crates/topology/src/overlay.rs crates/topology/src/routing.rs

crates/topology/src/lib.rs:
crates/topology/src/graph.rs:
crates/topology/src/inet.rs:
crates/topology/src/overlay.rs:
crates/topology/src/routing.rs:
