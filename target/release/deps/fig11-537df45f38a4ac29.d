/root/repo/target/release/deps/fig11-537df45f38a4ac29.d: crates/bench/src/bin/fig11.rs

/root/repo/target/release/deps/fig11-537df45f38a4ac29: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
