/root/repo/target/release/deps/spidernet_dht-396b12f7a21227db.d: crates/dht/src/lib.rs crates/dht/src/directory.rs crates/dht/src/leafset.rs crates/dht/src/network.rs crates/dht/src/nodeid.rs crates/dht/src/routing_table.rs

/root/repo/target/release/deps/libspidernet_dht-396b12f7a21227db.rlib: crates/dht/src/lib.rs crates/dht/src/directory.rs crates/dht/src/leafset.rs crates/dht/src/network.rs crates/dht/src/nodeid.rs crates/dht/src/routing_table.rs

/root/repo/target/release/deps/libspidernet_dht-396b12f7a21227db.rmeta: crates/dht/src/lib.rs crates/dht/src/directory.rs crates/dht/src/leafset.rs crates/dht/src/network.rs crates/dht/src/nodeid.rs crates/dht/src/routing_table.rs

crates/dht/src/lib.rs:
crates/dht/src/directory.rs:
crates/dht/src/leafset.rs:
crates/dht/src/network.rs:
crates/dht/src/nodeid.rs:
crates/dht/src/routing_table.rs:
