/root/repo/target/release/deps/fig10-443925e632349b79.d: crates/bench/src/bin/fig10.rs

/root/repo/target/release/deps/fig10-443925e632349b79: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
