/root/repo/target/release/deps/spidernet_runtime-fe7009dd76eb5989.d: crates/runtime/src/lib.rs crates/runtime/src/cluster.rs crates/runtime/src/experiments.rs crates/runtime/src/media.rs crates/runtime/src/msg.rs crates/runtime/src/wan.rs

/root/repo/target/release/deps/libspidernet_runtime-fe7009dd76eb5989.rlib: crates/runtime/src/lib.rs crates/runtime/src/cluster.rs crates/runtime/src/experiments.rs crates/runtime/src/media.rs crates/runtime/src/msg.rs crates/runtime/src/wan.rs

/root/repo/target/release/deps/libspidernet_runtime-fe7009dd76eb5989.rmeta: crates/runtime/src/lib.rs crates/runtime/src/cluster.rs crates/runtime/src/experiments.rs crates/runtime/src/media.rs crates/runtime/src/msg.rs crates/runtime/src/wan.rs

crates/runtime/src/lib.rs:
crates/runtime/src/cluster.rs:
crates/runtime/src/experiments.rs:
crates/runtime/src/media.rs:
crates/runtime/src/msg.rs:
crates/runtime/src/wan.rs:
