/root/repo/target/release/deps/runtime_e2e-30f8740e057f36bd.d: tests/runtime_e2e.rs

/root/repo/target/release/deps/runtime_e2e-30f8740e057f36bd: tests/runtime_e2e.rs

tests/runtime_e2e.rs:
