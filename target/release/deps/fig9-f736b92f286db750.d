/root/repo/target/release/deps/fig9-f736b92f286db750.d: crates/bench/src/bin/fig9.rs

/root/repo/target/release/deps/fig9-f736b92f286db750: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
