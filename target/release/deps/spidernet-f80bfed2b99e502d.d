/root/repo/target/release/deps/spidernet-f80bfed2b99e502d.d: src/lib.rs

/root/repo/target/release/deps/libspidernet-f80bfed2b99e502d.rlib: src/lib.rs

/root/repo/target/release/deps/libspidernet-f80bfed2b99e502d.rmeta: src/lib.rs

src/lib.rs:
