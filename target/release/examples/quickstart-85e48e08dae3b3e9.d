/root/repo/target/release/examples/quickstart-85e48e08dae3b3e9.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-85e48e08dae3b3e9: examples/quickstart.rs

examples/quickstart.rs:
