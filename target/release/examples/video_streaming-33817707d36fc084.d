/root/repo/target/release/examples/video_streaming-33817707d36fc084.d: examples/video_streaming.rs

/root/repo/target/release/examples/video_streaming-33817707d36fc084: examples/video_streaming.rs

examples/video_streaming.rs:
