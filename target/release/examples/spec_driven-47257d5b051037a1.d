/root/repo/target/release/examples/spec_driven-47257d5b051037a1.d: examples/spec_driven.rs

/root/repo/target/release/examples/spec_driven-47257d5b051037a1: examples/spec_driven.rs

examples/spec_driven.rs:
