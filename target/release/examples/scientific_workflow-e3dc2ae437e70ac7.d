/root/repo/target/release/examples/scientific_workflow-e3dc2ae437e70ac7.d: examples/scientific_workflow.rs

/root/repo/target/release/examples/scientific_workflow-e3dc2ae437e70ac7: examples/scientific_workflow.rs

examples/scientific_workflow.rs:
