/root/repo/target/release/examples/churn_resilience-0717470e4ee75bdd.d: examples/churn_resilience.rs

/root/repo/target/release/examples/churn_resilience-0717470e4ee75bdd: examples/churn_resilience.rs

examples/churn_resilience.rs:
