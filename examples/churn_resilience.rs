//! Long-lived sessions under peer churn: proactive failure recovery in
//! action. Establishes standing sessions, fails 1% of peers per time unit,
//! and reports how failures were absorbed (backup switch vs reactive
//! re-composition vs loss).
//!
//! ```text
//! cargo run --release --example churn_resilience
//! ```

use spidernet::core::bcp::BcpConfig;
use spidernet::core::recovery::FailureOutcome;
use spidernet::core::system::{SpiderNet, SpiderNetConfig};
use spidernet::core::workload::{random_request, PopulationConfig, RequestConfig};
use spidernet::sim::ChurnModel;
use spidernet::util::rng::rng_for;

fn main() {
    let seed = 2026;
    let mut net =
        SpiderNet::build(&SpiderNetConfig::builder().ip_nodes(800).peers(150).seed(seed).build());
    net.populate(&PopulationConfig { functions: 25, ..PopulationConfig::default() });

    // Standing streaming sessions with requirements tight enough that
    // Eq. 2 maintains a couple of backups each.
    let req_cfg = RequestConfig {
        functions: (2, 4),
        delay_bound_ms: (350.0, 600.0),
        loss_bound: (0.03, 0.06),
        max_failure_prob: 0.12,
        ..RequestConfig::default()
    };
    let bcp = BcpConfig::builder().budget(64).build();
    let mut rng = rng_for(seed, "sessions");
    let mut established = 0;
    while established < 60 {
        let req = random_request(net.overlay(), net.registry(), &req_cfg, &mut rng);
        if let Ok(outcome) = net.compose(&req, &bcp) {
            if net.establish(&req, outcome).is_ok() {
                established += 1;
            }
        }
    }
    println!(
        "{} sessions established, mean backups per session: {:.2}",
        net.sessions().len(),
        net.sessions().mean_backup_count()
    );

    // 20 time units of churn at the paper's 1%-per-unit rate.
    let churn = ChurnModel { fail_fraction: 0.01, rejoin_after_units: Some(8) };
    let mut churn_rng = rng_for(seed, "churn");
    let (mut hits, mut by_backup, mut by_reactive, mut lost) = (0u64, 0u64, 0u64, 0u64);
    let mut rejoin: Vec<(u64, spidernet::util::id::PeerId)> = Vec::new();

    for unit in 0..20u64 {
        let due: Vec<_> = rejoin.iter().filter(|(t, _)| *t <= unit).map(|&(_, p)| p).collect();
        rejoin.retain(|(t, _)| *t > unit);
        for p in due {
            net.revive_peer(p);
        }
        let victims = churn.sample_failures(&net.state().live_peers(), &mut churn_rng);
        for v in victims {
            for (sid, outcome) in net.fail_peer(v) {
                hits += 1;
                match outcome {
                    FailureOutcome::RecoveredByBackup { rank, switch_ms } => {
                        by_backup += 1;
                        println!(
                            "  t={unit}: session {sid} recovered via backup #{rank} in {switch_ms:.0} ms"
                        );
                    }
                    FailureOutcome::NeedsReactive => {
                        if net.reactive_recover(sid, &bcp) {
                            by_reactive += 1;
                            println!("  t={unit}: session {sid} recovered reactively (full BCP)");
                        } else {
                            lost += 1;
                            println!("  t={unit}: session {sid} LOST");
                        }
                    }
                }
            }
            rejoin.push((unit + 8, v));
        }
        net.maintenance_tick();
    }

    println!("\nchurn summary over 20 units:");
    println!("  sessions hit:          {hits}");
    println!("  recovered via backup:  {by_backup}");
    println!("  recovered reactively:  {by_reactive}");
    println!("  lost:                  {lost}");
    println!("  surviving sessions:    {}", net.sessions().len());
    if hits > 0 {
        println!("  backup recovery ratio: {:.1}%", 100.0 * by_backup as f64 / hits as f64);
    }
}
