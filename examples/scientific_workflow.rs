//! Collaborative scientific computation (the paper's second motivating
//! application): a DAG-shaped function graph with a commutation link,
//! showing composition-pattern enumeration, branch probing, and
//! destination-side merging.
//!
//! ```text
//! cargo run --release --example scientific_workflow
//! ```

use spidernet::core::bcp::BcpConfig;
use spidernet::core::model::component::ServiceComponent;
use spidernet::core::system::{SpiderNet, SpiderNetConfig};
use spidernet::core::{CompositionRequest, FunctionGraph};
use spidernet::util::id::{ComponentId, FunctionId, PeerId};
use spidernet::util::qos::{QosRequirement, QosVector};
use spidernet::util::res::ResourceVector;

fn main() {
    let mut net =
        SpiderNet::build(&SpiderNetConfig::builder().ip_nodes(500).peers(80).seed(7).build());

    // A data-analysis workflow: ingest → {filter, normalize} → aggregate.
    // Filtering and normalization commute (order is exchangeable), giving
    // SpiderNet two composition patterns to explore.
    let names = ["ingest", "filter", "normalize", "aggregate"];
    for (fi, name) in names.iter().enumerate() {
        for r in 0..4u64 {
            net.add_component(
                name,
                ServiceComponent {
                    id: ComponentId::new(0),
                    peer: PeerId::new(10 + fi as u64 * 4 + r),
                    function: FunctionId::new(0),
                    perf_qos: QosVector::delay_loss(15.0 + 5.0 * r as f64, 0.001),
                    resources: ResourceVector::new(0.2, 48.0),
                    out_bandwidth_mbps: 2.0,
                    failure_prob: 0.015,
                },
            );
        }
    }

    let cat = net.registry().catalog();
    let ids: Vec<FunctionId> = names.iter().map(|n| cat.lookup(n).expect("registered")).collect();
    // Diamond DAG: ingest feeds both middle stages, both feed aggregate;
    // the middle stages commute.
    let fg = FunctionGraph::new(
        ids,
        vec![(0, 1), (0, 2), (1, 3), (2, 3)],
        vec![(1, 2)],
    )
    .expect("valid DAG");

    println!("function graph: {} nodes, {} branch paths", fg.len(), fg.branch_paths().len());
    println!("composition patterns from the commutation link:");
    for (i, p) in fg.patterns().iter().enumerate() {
        let order: Vec<&str> = p
            .functions()
            .iter()
            .map(|&f| net.registry().catalog().name(f))
            .collect();
        println!("  pattern {i}: {order:?}");
    }

    let request = CompositionRequest {
        source: PeerId::new(0),
        dest: PeerId::new(1),
        function_graph: fg,
        qos_req: QosRequirement::delay_loss(800.0, 0.05).expect("valid"),
        bandwidth_mbps: 1.5,
        max_failure_prob: 0.2,
    };

    let outcome = net
        .compose(&request, &BcpConfig::builder().budget(48).build())
        .expect("workflow should compose");

    println!("\nselected service graph (pattern order may differ from the request):");
    for (i, &c) in outcome.best.assignment.iter().enumerate() {
        let comp = net.registry().get(c);
        println!(
            "  node {i} ({}) -> {} on {}",
            net.registry().catalog().name(outcome.best.pattern.function(i)),
            c,
            comp.peer
        );
    }
    println!(
        "worst-branch delay {:.1} ms, ψ {:.4}, {} candidates examined, {} probes",
        outcome.eval.qos[0],
        outcome.eval.cost,
        outcome.stats.candidates_examined,
        outcome.stats.probes_sent
    );
}
