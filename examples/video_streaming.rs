//! The paper's motivating application (§6.2): customizable wide-area P2P
//! video streaming with desired transformations — on the threaded
//! (PlanetLab stand-in) runtime, surviving a killed component peer.
//!
//! ```text
//! cargo run --release --example video_streaming
//! ```

use spidernet::runtime::cluster::{Cluster, ClusterConfig};
use spidernet::runtime::media::MediaFunction;
use spidernet::util::id::PeerId;
use std::time::Duration;

fn main() {
    // 102 peers across three WAN regions; each hosts one of the six media
    // components (≈17 replicas per function, as in the paper).
    let cluster = Cluster::start(ClusterConfig {
        peers: 102,
        time_scale: 0.02, // 50× compressed wall time; reported times are model ms
        ..ClusterConfig::default()
    });
    for f in MediaFunction::ALL {
        println!("{:>16}: {} replicas", f.name(), cluster.replica_count(f));
    }

    // The viewer wants a down-scaled stream with a stock ticker burned in.
    let chain = vec![MediaFunction::DownScale, MediaFunction::StockTicker];
    let source = PeerId::new(0);
    let viewer = PeerId::new(55);
    let setup = cluster
        .compose(source, viewer, chain, 16, Duration::from_secs(30))
        .expect("driver timeout");
    assert!(setup.ok, "no composition found");
    println!(
        "\nsession setup in {:.0} ms (discovery {:.0} + probing {:.0} + init {:.0})",
        setup.total_ms, setup.discovery_ms, setup.probing_ms, setup.init_ms
    );
    println!("primary path: {:?}, {} backup paths", setup.path, setup.backups.len());

    // Stream 60 frames at 25 fps (40 ms interval) — and kill the first
    // component peer a third of the way in.
    let victim = setup.path[0];
    let killer = std::thread::spawn({
        let wait = Duration::from_secs_f64(60.0 / 3.0 * 40.0 * 0.02 / 1000.0);
        move || wait
    });
    let wait = killer.join().expect("join");
    let cluster_ref = &cluster;
    std::thread::scope(|s| {
        s.spawn(move || {
            std::thread::sleep(wait);
            println!("!! killing component peer {victim}");
            cluster_ref.kill(victim);
        });
        let report = cluster_ref
            .stream(source, &setup, 60, 40.0, (64, 48), Duration::from_secs(60))
            .expect("stream timeout");
        println!(
            "\nstream report: sent {}, delivered {}, valid {}, failovers {}",
            report.sent, report.delivered, report.all_valid, report.switches
        );
        println!("final path: {:?}", report.final_path);
        assert!(report.switches >= 1, "expected a failover after the kill");
        assert!(report.all_valid, "delivered frames must match the transform chain");
    });
}
