//! Spec-driven composition: author the composite request in the textual
//! specification format (the QoSTalk stand-in), then compose it — once
//! under parallel DAG semantics and once under conditional-branch
//! semantics (the §8 extension).
//!
//! ```text
//! cargo run --release --example spec_driven
//! ```

use spidernet::core::bcp::BcpConfig;
use spidernet::core::conditional::{evaluate_conditional, BranchPolicy};
use spidernet::core::model::component::ServiceComponent;
use spidernet::core::model::service_graph::CostWeights;
use spidernet::core::paths::PathTable;
use spidernet::core::spec::parse_spec;
use spidernet::core::system::{SpiderNet, SpiderNetConfig};
use spidernet::util::id::{ComponentId, FunctionId, PeerId};
use spidernet::util::qos::QosVector;
use spidernet::util::res::ResourceVector;

const SPEC: &str = "
    # Adaptive content distribution with an optional enrichment branch:
    # classify feeds either enrich (heavy) or passthrough (light), both
    # feed package.
    function classify
    function enrich
    function passthrough
    function package
    dep 0 -> 1
    dep 0 -> 2
    dep 1 -> 3
    dep 2 -> 3
    max_delay_ms 900
    max_loss 0.08
    bandwidth_mbps 1.2
    max_failure_prob 0.3
";

fn main() {
    let mut net =
        SpiderNet::build(&SpiderNetConfig::builder().ip_nodes(400).peers(70).seed(99).build());

    // Provision three replicas of each named function.
    for (fi, name) in ["classify", "enrich", "passthrough", "package"].iter().enumerate() {
        for r in 0..3u64 {
            net.add_component(
                name,
                ServiceComponent {
                    id: ComponentId::new(0),
                    peer: PeerId::new(8 + fi as u64 * 3 + r),
                    function: FunctionId::new(0),
                    perf_qos: QosVector::delay_loss(12.0 + 6.0 * r as f64, 0.002),
                    resources: ResourceVector::new(0.15, 32.0),
                    out_bandwidth_mbps: 1.0,
                    failure_prob: 0.01,
                },
            );
        }
    }

    // Parse the spec against the live catalog and instantiate it.
    let spec = {
        let mut catalog = net.registry().catalog().clone();
        
        parse_spec(SPEC, &mut catalog).expect("spec parses")
    };
    println!(
        "spec: {} functions, {} branch paths, delay bound {} ms",
        spec.function_graph.len(),
        spec.function_graph.branch_paths().len(),
        spec.max_delay_ms
    );
    let request = spec.into_request(PeerId::new(0), PeerId::new(1)).expect("valid request");

    let outcome = net
        .compose(&request, &BcpConfig::builder().budget(32).build())
        .expect("spec-driven composition succeeds");
    println!(
        "\nparallel semantics: worst-branch delay {:.1} ms, ψ {:.4}",
        outcome.eval.qos[0], outcome.eval.cost
    );

    // Conditional semantics: 30% of ADUs take the enrichment branch.
    let mut paths = PathTable::new();
    let cond = evaluate_conditional(
        &outcome.best,
        &BranchPolicy::new(vec![0.3, 0.7]).expect("valid policy"),
        &request,
        net.registry(),
        net.overlay(),
        net.state(),
        &mut paths,
        &CostWeights::uniform(),
    )
    .expect("policy matches branches");
    println!(
        "conditional (30% enrich): expected delay {:.1} ms, ψ {:.4}",
        cond.qos[0], cond.cost
    );
    assert!(cond.qos[0] <= outcome.eval.qos[0] + 1e-9, "expected ≤ worst-case");
    println!("\nexpected-case beats worst-case by {:.1} ms", outcome.eval.qos[0] - cond.qos[0]);
}
