//! Quickstart: build a small P2P service overlay, register components,
//! and compose a three-function service with bounded composition probing.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use spidernet::core::bcp::BcpConfig;
use spidernet::core::model::component::ServiceComponent;
use spidernet::core::system::{SpiderNet, SpiderNetConfig};
use spidernet::core::CompositionRequest;
use spidernet::core::FunctionGraph;
use spidernet::util::id::{ComponentId, FunctionId, PeerId};
use spidernet::util::qos::{QosRequirement, QosVector};
use spidernet::util::res::ResourceVector;

fn main() {
    // A 60-peer overlay promoted from a 400-node power-law IP network.
    let mut net =
        SpiderNet::build(&SpiderNetConfig::builder().ip_nodes(400).peers(60).seed(42).build());

    // Register three replicas each of "transcode", "watermark", "scale" on
    // distinct peers — the function names are hashed into DHT keys, so
    // every replica of one function lands on the same directory node.
    let functions = ["transcode", "watermark", "scale"];
    for (fi, name) in functions.iter().enumerate() {
        for r in 0..3u64 {
            let peer = PeerId::new(5 + fi as u64 * 3 + r);
            net.add_component(
                name,
                ServiceComponent {
                    id: ComponentId::new(0), // assigned by the registry
                    peer,
                    function: FunctionId::new(0), // interned by name
                    perf_qos: QosVector::delay_loss(8.0 + 4.0 * r as f64, 0.002),
                    resources: ResourceVector::new(0.15, 24.0),
                    out_bandwidth_mbps: 1.2,
                    failure_prob: 0.01,
                },
            );
        }
    }

    // The user's composite request: transcode → watermark → scale, with an
    // end-to-end delay bound of 400 ms and ≤5% loss, from peer 0 to peer 1.
    let catalog = net.registry().catalog();
    let fg = FunctionGraph::linear_of(&[
        catalog.lookup("transcode").expect("registered"),
        catalog.lookup("watermark").expect("registered"),
        catalog.lookup("scale").expect("registered"),
    ]);
    let request = CompositionRequest {
        source: PeerId::new(0),
        dest: PeerId::new(1),
        function_graph: fg,
        qos_req: QosRequirement::delay_loss(400.0, 0.05).expect("valid bounds"),
        bandwidth_mbps: 1.0,
        max_failure_prob: 0.1,
    };

    // Bounded composition probing with a budget of 8 probes.
    let outcome = net
        .compose(&request, &BcpConfig::builder().budget(8).build())
        .expect("composition should succeed on this population");

    println!("composed service graph:");
    println!("  source: {}", outcome.best.source);
    for (i, &c) in outcome.best.assignment.iter().enumerate() {
        let comp = net.registry().get(c);
        println!(
            "  [{}] {} -> component {} on peer {} (Qp delay {:.1} ms)",
            i,
            net.registry().catalog().name(comp.function),
            c,
            comp.peer,
            comp.perf_qos[0],
        );
    }
    println!("  dest: {}", outcome.best.dest);
    println!(
        "end-to-end: delay {:.1} ms, ψ cost {:.4}, failure prob {:.4}",
        outcome.eval.qos[0], outcome.eval.cost, outcome.eval.failure_prob
    );
    println!(
        "protocol cost: {} probes, {} DHT messages, {} other qualified graphs for backup",
        outcome.stats.probes_sent,
        outcome.stats.dht_messages,
        outcome.qualified_pool.len()
    );

    // Establish the session (commits resources, selects backups).
    let session = net.establish(&request, outcome).expect("admission succeeds");
    let s = net.sessions().session(session).expect("just established");
    println!("session {session} established with {} backup graphs", s.backups.len());
}
