//! Shared foundations for the SpiderNet workspace.
//!
//! This crate hosts the small, dependency-light vocabulary types every other
//! crate speaks: identifiers ([`id`]), the DHT key hash ([`hash`]),
//! application-level QoS vectors ([`qos`]), end-system resource vectors
//! ([`res`]), deterministic randomness plumbing ([`rng`]), deterministic
//! parallel fan-out ([`par`]), summary statistics ([`stats`]), the
//! generational slot arena backing dense world state ([`arena`]), and the
//! workspace error type ([`error`]).

#![warn(missing_docs)]

pub mod arena;
pub mod bench;
pub mod cli;
pub mod error;
pub mod hash;
pub mod id;
pub mod par;
pub mod qos;
pub mod res;
pub mod rng;
pub mod stats;

pub use arena::{SlotArena, SlotKey};
pub use bench::{BenchBlock, BenchReport};
pub use error::{Error, Result};
pub use id::{ComponentId, FunctionId, PeerId, SessionId};
pub use qos::{QosRequirement, QosVector};
pub use res::{ResourceKind, ResourceVector};
