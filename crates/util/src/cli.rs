//! Minimal CLI argument helpers shared by every SpiderNet binary.
//!
//! The workspace has no argument-parsing dependency; each binary reads
//! `std::env::args()` through these helpers so flag spellings stay
//! uniform: bare switches (`--quick`), valued flags (`--seed 7` or
//! `--seed=7`), and the output convention `--json [path]` — bare for the
//! default `BENCH_<name>.json`, or with an explicit destination.

/// True if `flag` appears as a bare switch on the CLI.
pub fn flag_present(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

/// The value of `--<flag> <value>` or `--<flag>=<value>` on the CLI, if
/// present (e.g. `arg_value("--faults")`).
pub fn arg_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    arg_value_in(&args, flag)
}

/// [`arg_value`] over an explicit argument list (separated out for
/// testing). Matches only the exact flag or `flag=`; `--faultsX` does
/// not match `--faults`.
pub fn arg_value_in(args: &[String], flag: &str) -> Option<String> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == flag {
            return it.next().cloned();
        }
        if let Some(rest) = a.strip_prefix(flag) {
            if let Some(v) = rest.strip_prefix('=') {
                return Some(v.to_owned());
            }
        }
    }
    None
}

/// Parses the unified `--json [path]` output spec from the CLI.
///
/// Returns `None` when `--json` is absent, `Some(None)` for a bare
/// `--json` (write to the report's default `BENCH_<name>.json`), and
/// `Some(Some(path))` for `--json <path>` / `--json=<path>`. Feed the
/// inner value to `BenchReport::write_spec`.
pub fn json_spec() -> Option<Option<String>> {
    let args: Vec<String> = std::env::args().collect();
    json_spec_in(&args)
}

/// [`json_spec`] over an explicit argument list (separated out for
/// testing). A following argument that starts with `--` is another flag,
/// not a path, so `--json --quick` is a bare `--json`.
pub fn json_spec_in(args: &[String]) -> Option<Option<String>> {
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        if a == "--json" {
            let path = it.peek().filter(|v| !v.starts_with("--")).map(|v| v.to_string());
            return Some(path);
        }
        if let Some(v) = a.strip_prefix("--json=") {
            return Some(Some(v.to_owned()));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn arg_value_matches_both_spellings_and_nothing_else() {
        let args = argv(&["fig10", "--faults", "storm:rate=0.1", "--seed=7", "--faultsy=x"]);
        assert_eq!(arg_value_in(&args, "--faults").as_deref(), Some("storm:rate=0.1"));
        assert_eq!(arg_value_in(&args, "--seed").as_deref(), Some("7"));
        assert_eq!(arg_value_in(&args, "--rates"), None);
        assert_eq!(arg_value_in(&args, "--faultsy").as_deref(), Some("x"));
        // A flag with no following value yields None, not a panic.
        let dangling = argv(&["fig10", "--faults"]);
        assert_eq!(arg_value_in(&dangling, "--faults"), None);
    }

    #[test]
    fn json_spec_distinguishes_bare_pathed_and_absent() {
        assert_eq!(json_spec_in(&argv(&["fig8"])), None);
        assert_eq!(json_spec_in(&argv(&["fig8", "--json"])), Some(None));
        assert_eq!(json_spec_in(&argv(&["fig8", "--json", "--quick"])), Some(None));
        assert_eq!(
            json_spec_in(&argv(&["fig8", "--json", "out/b.json"])),
            Some(Some("out/b.json".into()))
        );
        assert_eq!(
            json_spec_in(&argv(&["fig8", "--json=out/b.json"])),
            Some(Some("out/b.json".into()))
        );
    }
}
