//! Deterministic fan-out of independent work items across worker threads.
//!
//! The experiment drivers hand [`par_map`] a list of *independent* trials
//! (each carrying its own [`crate::rng::rng_for_trial`] stream) and a
//! closure; workers pull items off a shared counter and write results back
//! into the slot matching the item's input index. Output order therefore
//! equals input order and every item's computation is a pure function of
//! the item itself — results are bit-identical whatever the thread count,
//! including the `threads == 1` sequential path.
//!
//! Thread count resolution, highest priority first:
//! 1. an explicit count passed to [`par_map_with`],
//! 2. `SPIDERNET_THREADS`,
//! 3. `RAYON_NUM_THREADS` (honoured for drop-in familiarity),
//! 4. `std::thread::available_parallelism()`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The worker count [`par_map`] uses, from the environment or the machine.
pub fn configured_threads() -> usize {
    for var in ["SPIDERNET_THREADS", "RAYON_NUM_THREADS"] {
        if let Ok(v) = std::env::var(var) {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Maps `f` over `items` on [`configured_threads`] workers, preserving
/// input order in the output.
pub fn par_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(usize, T) -> U + Sync,
{
    par_map_with(configured_threads(), items, f)
}

/// Maps `f` over `items` on exactly `threads` workers (1 = fully
/// sequential, no threads spawned), preserving input order in the output.
///
/// A panic inside `f` propagates to the caller once all workers stop.
pub fn par_map_with<T, U, F>(threads: usize, items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(usize, T) -> U + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.into_iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let f = &f;
    let (slots_ref, results_ref, next_ref) = (&slots, &results, &next);

    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(move || loop {
                let i = next_ref.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots_ref[i]
                    .lock()
                    .unwrap()
                    .take()
                    .expect("each slot is claimed exactly once");
                let out = f(i, item);
                *results_ref[i].lock().unwrap() = Some(out);
            });
        }
    });

    results
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("worker filled every claimed slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        for threads in [1, 2, 8] {
            let out = par_map_with(threads, (0..100u64).collect(), |i, x| {
                assert_eq!(i as u64, x);
                x * 2
            });
            assert_eq!(out, (0..100u64).map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let work = |_, seed: u64| {
            let mut rng = crate::rng::Rng::seed_from_u64(seed);
            (0..50).map(|_| rng.next_u64()).fold(0u64, u64::wrapping_add)
        };
        let seq = par_map_with(1, (0..32).collect(), work);
        for threads in [2, 3, 8, 16] {
            assert_eq!(par_map_with(threads, (0..32).collect(), work), seq);
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u64> = par_map_with(4, Vec::<u64>::new(), |_, x| x);
        assert!(empty.is_empty());
        assert_eq!(par_map_with(4, vec![7u64], |_, x| x + 1), vec![8]);
    }

    #[test]
    fn oversubscription_is_fine() {
        // More threads than items and more threads than cores.
        let out = par_map_with(64, (0..5u64).collect(), |_, x| x);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn configured_threads_is_positive() {
        assert!(configured_threads() >= 1);
    }
}
