//! Application-level QoS vectors.
//!
//! The paper models user QoS requirements as a vector
//! `Q^req = [q_1, …, q_m]` of *additive* quality parameters (delay, loss,
//! jitter…). Multiplicative metrics like loss rate are folded into the
//! additive framework with a logarithmic transform (footnote 2 of the
//! paper): a loss probability `p` becomes `-ln(1 - p)`, which adds along a
//! path while `1-p` multiplies.

use crate::error::{Error, Result};
use std::fmt;
use std::ops::{Add, AddAssign, Index};

/// Conventional dimension indices used by the SpiderNet workloads.
///
/// The QoS machinery itself is dimension-agnostic; these constants only fix
/// a shared convention between workload generators and checkers.
pub mod dim {
    /// End-to-end delay, in milliseconds.
    pub const DELAY_MS: usize = 0;
    /// Loss rate, stored in the additive `-ln(1-p)` transform domain.
    pub const LOSS: usize = 1;
}

/// Transforms a loss probability `p ∈ [0, 1)` into its additive form.
pub fn loss_to_additive(p: f64) -> f64 {
    debug_assert!((0.0..1.0).contains(&p), "loss probability out of range: {p}");
    -(1.0 - p).ln()
}

/// Inverse of [`loss_to_additive`].
pub fn additive_to_loss(a: f64) -> f64 {
    1.0 - (-a).exp()
}

/// An m-dimensional vector of accumulated (additive) QoS values.
#[derive(Clone, PartialEq, Default)]
pub struct QosVector(Vec<f64>);

impl QosVector {
    /// A zero vector of the given dimension — the neutral element of
    /// accumulation.
    pub fn zeros(m: usize) -> Self {
        QosVector(vec![0.0; m])
    }

    /// Builds a vector from raw per-dimension values.
    pub fn from_values(values: Vec<f64>) -> Self {
        QosVector(values)
    }

    /// Convenience constructor for the standard 2-dimensional
    /// (delay, loss) workload convention.
    pub fn delay_loss(delay_ms: f64, loss_probability: f64) -> Self {
        QosVector(vec![delay_ms, loss_to_additive(loss_probability)])
    }

    /// Number of quality dimensions.
    pub fn dims(&self) -> usize {
        self.0.len()
    }

    /// Raw per-dimension values.
    pub fn values(&self) -> &[f64] {
        &self.0
    }

    /// Mutable per-dimension values. Lets probing engines push and undo
    /// partial accumulations in place instead of cloning the vector per
    /// candidate (undo must restore saved values — floating-point
    /// subtraction is not an exact inverse of addition).
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.0
    }

    /// Accumulates another vector into this one (per-dimension addition).
    pub fn accumulate(&mut self, other: &QosVector) {
        debug_assert_eq!(self.0.len(), other.0.len(), "QoS dimension mismatch");
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a += b;
        }
    }

    /// Returns true if every entry is finite and non-negative.
    pub fn is_well_formed(&self) -> bool {
        self.0.iter().all(|v| v.is_finite() && *v >= 0.0)
    }
}

impl Index<usize> for QosVector {
    type Output = f64;
    fn index(&self, i: usize) -> &f64 {
        &self.0[i]
    }
}

impl Add<&QosVector> for QosVector {
    type Output = QosVector;
    fn add(mut self, rhs: &QosVector) -> QosVector {
        self.accumulate(rhs);
        self
    }
}

impl AddAssign<&QosVector> for QosVector {
    fn add_assign(&mut self, rhs: &QosVector) {
        self.accumulate(rhs);
    }
}

impl fmt::Debug for QosVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Qos{:?}", self.0)
    }
}

/// A user's QoS requirement: per-dimension *upper bounds* on the accumulated
/// QoS vector of the composed service graph.
#[derive(Clone, PartialEq, Debug)]
pub struct QosRequirement {
    bounds: Vec<f64>,
}

impl QosRequirement {
    /// Builds a requirement from per-dimension upper bounds.
    ///
    /// Every bound must be finite and positive (a zero bound would make all
    /// non-trivial compositions unqualified).
    pub fn new(bounds: Vec<f64>) -> Result<Self> {
        if bounds.is_empty() {
            return Err(Error::InvalidRequirement("empty bound vector".into()));
        }
        if let Some(b) = bounds.iter().find(|b| !b.is_finite() || **b <= 0.0) {
            return Err(Error::InvalidRequirement(format!("non-positive bound {b}")));
        }
        Ok(QosRequirement { bounds })
    }

    /// Standard 2-dimensional (delay, loss) requirement.
    pub fn delay_loss(max_delay_ms: f64, max_loss_probability: f64) -> Result<Self> {
        QosRequirement::new(vec![max_delay_ms, loss_to_additive(max_loss_probability)])
    }

    /// An effectively unconstrained requirement (all bounds infinite is not
    /// allowed, so we use a very large finite bound). Useful for experiments
    /// that optimize a single metric and only need qualification plumbing.
    pub fn unconstrained(m: usize) -> Self {
        QosRequirement { bounds: vec![1e18; m] }
    }

    /// Number of quality dimensions.
    pub fn dims(&self) -> usize {
        self.bounds.len()
    }

    /// Per-dimension upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Returns true if the accumulated vector satisfies every bound.
    pub fn is_satisfied_by(&self, q: &QosVector) -> bool {
        debug_assert_eq!(self.bounds.len(), q.dims(), "QoS dimension mismatch");
        self.bounds.iter().zip(q.values()).all(|(bound, v)| v <= bound)
    }

    /// Relative slack `Σ_i q_i / q_i^req` — the quantity used by Eq. 2 of
    /// the paper to size the backup set. Lower is better (more headroom).
    pub fn relative_usage(&self, q: &QosVector) -> f64 {
        self.bounds
            .iter()
            .zip(q.values())
            .map(|(bound, v)| v / bound)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_transform_round_trips() {
        for p in [0.0, 0.001, 0.01, 0.1, 0.5, 0.9] {
            let a = loss_to_additive(p);
            assert!((additive_to_loss(a) - p).abs() < 1e-12, "p={p}");
        }
    }

    #[test]
    fn loss_transform_is_additive() {
        // Two hops with loss p1, p2 compose to 1-(1-p1)(1-p2); the additive
        // forms must sum to the transform of the composed loss.
        let (p1, p2) = (0.05, 0.2);
        let composed = 1.0 - (1.0 - p1) * (1.0 - p2);
        let sum = loss_to_additive(p1) + loss_to_additive(p2);
        assert!((loss_to_additive(composed) - sum).abs() < 1e-12);
    }

    #[test]
    fn accumulate_adds_per_dimension() {
        let mut q = QosVector::zeros(2);
        q += &QosVector::from_values(vec![10.0, 0.5]);
        q += &QosVector::from_values(vec![5.0, 0.25]);
        assert_eq!(q.values(), &[15.0, 0.75]);
    }

    #[test]
    fn requirement_checks_bounds() {
        let req = QosRequirement::new(vec![100.0, 1.0]).unwrap();
        assert!(req.is_satisfied_by(&QosVector::from_values(vec![100.0, 1.0])));
        assert!(req.is_satisfied_by(&QosVector::from_values(vec![0.0, 0.0])));
        assert!(!req.is_satisfied_by(&QosVector::from_values(vec![100.1, 0.0])));
        assert!(!req.is_satisfied_by(&QosVector::from_values(vec![0.0, 1.01])));
    }

    #[test]
    fn requirement_rejects_degenerate_bounds() {
        assert!(QosRequirement::new(vec![]).is_err());
        assert!(QosRequirement::new(vec![0.0]).is_err());
        assert!(QosRequirement::new(vec![-1.0]).is_err());
        assert!(QosRequirement::new(vec![f64::NAN]).is_err());
        assert!(QosRequirement::new(vec![f64::INFINITY]).is_err());
    }

    #[test]
    fn relative_usage_matches_hand_computation() {
        let req = QosRequirement::new(vec![200.0, 2.0]).unwrap();
        let q = QosVector::from_values(vec![100.0, 1.0]);
        assert!((req.relative_usage(&q) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn delay_loss_constructor_uses_transform() {
        let q = QosVector::delay_loss(50.0, 0.1);
        assert_eq!(q[dim::DELAY_MS], 50.0);
        assert!((q[dim::LOSS] - loss_to_additive(0.1)).abs() < 1e-15);
    }

    #[test]
    fn well_formedness() {
        assert!(QosVector::from_values(vec![1.0, 0.0]).is_well_formed());
        assert!(!QosVector::from_values(vec![-1.0]).is_well_formed());
        assert!(!QosVector::from_values(vec![f64::NAN]).is_well_formed());
    }
}
