//! Summary statistics for experiment harnesses.
//!
//! The figure regenerators report means, percentiles, and time-bucketed
//! event counts; this module provides the accumulators they share.

use std::fmt;

/// Streaming mean/variance accumulator (Welford's algorithm) with min/max.
#[derive(Clone, Debug, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Summary { count: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Adds one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 for an empty summary).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample standard deviation (0 for fewer than two observations).
    pub fn std_dev(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / (self.count - 1) as f64).sqrt()
        }
    }

    /// Smallest observation (NaN if empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation (NaN if empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Merges another summary into this one (parallel Welford combine).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} sd={:.3} min={:.3} max={:.3}",
            self.count,
            self.mean(),
            self.std_dev(),
            self.min(),
            self.max()
        )
    }
}

/// Computes the p-th percentile (0 ≤ p ≤ 100) of a sample using linear
/// interpolation between order statistics. Returns NaN on an empty sample.
pub fn percentile(samples: &mut [f64], p: f64) -> f64 {
    if samples.is_empty() {
        return f64::NAN;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let rank = (p / 100.0) * (samples.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        samples[lo]
    } else {
        let frac = rank - lo as f64;
        samples[lo] * (1.0 - frac) + samples[hi] * frac
    }
}

/// Counts events into fixed-width time buckets — the shape of the paper's
/// "failure frequency over time" plot (Fig. 9).
#[derive(Clone, Debug)]
pub struct TimeBuckets {
    width: f64,
    counts: Vec<u64>,
}

impl TimeBuckets {
    /// Creates `n` buckets each covering `width` time units starting at 0.
    pub fn new(width: f64, n: usize) -> Self {
        assert!(width > 0.0, "bucket width must be positive");
        TimeBuckets { width, counts: vec![0; n] }
    }

    /// Records one event at time `t`; events beyond the last bucket are
    /// clamped into it so totals are conserved.
    pub fn record(&mut self, t: f64) {
        if self.counts.is_empty() {
            return;
        }
        let idx = ((t / self.width) as usize).min(self.counts.len() - 1);
        self.counts[idx] += 1;
    }

    /// Per-bucket event counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total events recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Bucket start times, for plotting.
    pub fn bucket_starts(&self) -> impl Iterator<Item = f64> + '_ {
        (0..self.counts.len()).map(move |i| i as f64 * self.width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_matches_hand_computation() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample sd of this classic dataset is sqrt(32/7).
        assert!((s.std_dev() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_summary_is_safe() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert!(s.min().is_nan());
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 5.0).collect();
        let mut whole = Summary::new();
        for &x in &data {
            whole.record(x);
        }
        let mut a = Summary::new();
        let mut b = Summary::new();
        for &x in &data[..37] {
            a.record(x);
        }
        for &x in &data[37..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.std_dev() - whole.std_dev()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Summary::new();
        a.record(1.0);
        let before = a.mean();
        a.merge(&Summary::new());
        assert_eq!(a.mean(), before);
        let mut e = Summary::new();
        e.merge(&a);
        assert_eq!(e.count(), 1);
    }

    #[test]
    fn percentile_interpolates() {
        let mut v = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&mut v.clone(), 0.0), 1.0);
        assert_eq!(percentile(&mut v.clone(), 100.0), 4.0);
        assert!((percentile(&mut v, 50.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn percentile_empty_is_nan() {
        assert!(percentile(&mut [], 50.0).is_nan());
    }

    #[test]
    fn time_buckets_clamp_and_conserve() {
        let mut tb = TimeBuckets::new(10.0, 3);
        tb.record(0.0);
        tb.record(9.99);
        tb.record(10.0);
        tb.record(25.0);
        tb.record(1000.0); // clamped into last bucket
        assert_eq!(tb.counts(), &[2, 1, 2]);
        assert_eq!(tb.total(), 5);
        let starts: Vec<f64> = tb.bucket_starts().collect();
        assert_eq!(starts, vec![0.0, 10.0, 20.0]);
    }
}
