//! Deterministic randomness plumbing.
//!
//! Every experiment in the workspace is reproducible from a single `u64`
//! seed. Subsystems derive independent streams from the master seed with
//! [`derive_seed`], a SplitMix64 finalizer keyed by a label, so adding a new
//! consumer of randomness never perturbs existing streams.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The workspace-standard RNG: seedable, portable, and fast enough for
/// simulation workloads.
pub type Rng = StdRng;

/// SplitMix64 finalization step — a high-quality 64-bit mixer.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Derives an independent child seed from `(master, label)`.
///
/// Labels partition the randomness namespace: `derive_seed(s, "topology")`
/// and `derive_seed(s, "workload")` are decorrelated streams for every `s`.
pub fn derive_seed(master: u64, label: &str) -> u64 {
    let mut acc = splitmix64(master);
    for &b in label.as_bytes() {
        acc = splitmix64(acc ^ u64::from(b));
    }
    acc
}

/// Creates a deterministic RNG from `(master, label)`.
pub fn rng_for(master: u64, label: &str) -> Rng {
    Rng::seed_from_u64(derive_seed(master, label))
}

/// Creates a deterministic RNG from `(master, label, index)` — useful for
/// per-entity streams such as one RNG per peer.
pub fn rng_for_indexed(master: u64, label: &str, index: u64) -> Rng {
    Rng::seed_from_u64(splitmix64(derive_seed(master, label) ^ splitmix64(index)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng as _;

    #[test]
    fn derive_seed_is_deterministic() {
        assert_eq!(derive_seed(42, "topology"), derive_seed(42, "topology"));
    }

    #[test]
    fn labels_partition_the_namespace() {
        assert_ne!(derive_seed(42, "topology"), derive_seed(42, "workload"));
        assert_ne!(derive_seed(42, "a"), derive_seed(43, "a"));
    }

    #[test]
    fn rng_streams_reproduce() {
        let mut a = rng_for(7, "x");
        let mut b = rng_for(7, "x");
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn indexed_streams_differ() {
        let mut a = rng_for_indexed(7, "peer", 0);
        let mut b = rng_for_indexed(7, "peer", 1);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn splitmix_avalanche_smoke() {
        // Flipping one input bit should flip roughly half the output bits.
        let x = splitmix64(0x1234_5678);
        let y = splitmix64(0x1234_5679);
        let flipped = (x ^ y).count_ones();
        assert!((16..=48).contains(&flipped), "flipped {flipped} bits");
    }
}
