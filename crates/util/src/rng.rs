//! Deterministic randomness plumbing.
//!
//! Every experiment in the workspace is reproducible from a single `u64`
//! seed. Subsystems derive independent streams from the master seed with
//! [`derive_seed`], a SplitMix64 finalizer keyed by a label, so adding a new
//! consumer of randomness never perturbs existing streams.
//!
//! The generator itself is an in-tree xoshiro256++ (public domain algorithm
//! by Blackman & Vigna), state-expanded from the 64-bit seed with SplitMix64
//! — no external crates, identical output on every platform and thread
//! count. The parallel experiment harness leans on this: each trial draws
//! its own [`rng_for_trial`] stream from `(master, label, trial)`, so a
//! trial's randomness is a pure function of its coordinates, never of
//! scheduling order.

use std::ops::{Range, RangeInclusive};

/// The workspace-standard RNG: seedable, portable, and fast enough for
/// simulation workloads. xoshiro256++ with SplitMix64 seeding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Builds a generator whose full 256-bit state is expanded from `seed`
    /// with SplitMix64 (the seeding scheme recommended by the xoshiro
    /// authors).
    pub fn seed_from_u64(seed: u64) -> Rng {
        let mut z = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            z = z.wrapping_add(0x9E3779B97F4A7C15);
            *slot = splitmix64(z);
        }
        // All-zero state is the one forbidden fixed point.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E3779B97F4A7C15;
        }
        Rng { s }
    }

    /// The next raw 64-bit output (xoshiro256++ step).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// A uniform sample of `T` over its natural domain (`[0, 1)` for
    /// floats, the full range for integers).
    #[inline]
    pub fn gen<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform sample from `range` (half-open or inclusive; integer or
    /// float).
    #[inline]
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_in(self)
    }

    /// A uniform integer in `[0, bound)` via the widening-multiply method.
    #[inline]
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "empty range");
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }
}

/// Types [`Rng::gen`] can produce.
pub trait Sample: Sized {
    /// Draws one uniform value.
    fn sample(rng: &mut Rng) -> Self;
}

impl Sample for u64 {
    #[inline]
    fn sample(rng: &mut Rng) -> u64 {
        rng.next_u64()
    }
}

impl Sample for u32 {
    #[inline]
    fn sample(rng: &mut Rng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Sample for usize {
    #[inline]
    fn sample(rng: &mut Rng) -> usize {
        rng.next_u64() as usize
    }
}

impl Sample for u8 {
    #[inline]
    fn sample(rng: &mut Rng) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl Sample for bool {
    #[inline]
    fn sample(rng: &mut Rng) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

impl Sample for f64 {
    /// Uniform in `[0, 1)` with the full 53 bits of mantissa precision.
    #[inline]
    fn sample(rng: &mut Rng) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_in(self, rng: &mut Rng) -> T;
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_in(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_in(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u64) - (lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

int_range_impls!(u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_in(self, rng: &mut Rng) -> f64 {
        self.start + rng.gen::<f64>() * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample_in(self, rng: &mut Rng) -> f64 {
        self.start() + rng.gen::<f64>() * (self.end() - self.start())
    }
}

/// Random slice operations (the subset of `rand::seq::SliceRandom` the
/// workspace uses).
pub trait SliceRandom {
    /// Element type.
    type Item;
    /// A uniformly chosen element, or `None` if empty.
    fn choose(&self, rng: &mut Rng) -> Option<&Self::Item>;
    /// In-place Fisher–Yates shuffle.
    fn shuffle(&mut self, rng: &mut Rng);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose(&self, rng: &mut Rng) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.below(self.len() as u64) as usize])
        }
    }

    fn shuffle(&mut self, rng: &mut Rng) {
        for i in (1..self.len()).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }
}

/// SplitMix64 finalization step — a high-quality 64-bit mixer.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Derives an independent child seed from `(master, label)`.
///
/// Labels partition the randomness namespace: `derive_seed(s, "topology")`
/// and `derive_seed(s, "workload")` are decorrelated streams for every `s`.
pub fn derive_seed(master: u64, label: &str) -> u64 {
    let mut acc = splitmix64(master);
    for &b in label.as_bytes() {
        acc = splitmix64(acc ^ u64::from(b));
    }
    acc
}

/// Creates a deterministic RNG from `(master, label)`.
pub fn rng_for(master: u64, label: &str) -> Rng {
    Rng::seed_from_u64(derive_seed(master, label))
}

/// Creates a deterministic RNG from `(master, label, index)` — useful for
/// per-entity streams such as one RNG per peer.
pub fn rng_for_indexed(master: u64, label: &str, index: u64) -> Rng {
    Rng::seed_from_u64(splitmix64(derive_seed(master, label) ^ splitmix64(index)))
}

/// Creates the per-trial stream the parallel experiment harness hands to
/// trial `trial` of the experiment labelled `label`.
///
/// Each trial's randomness is a pure function of `(master, label, trial)`,
/// independent of which worker thread runs it and of how many threads
/// exist — this is what makes the parallel drivers bit-identical to their
/// sequential runs.
pub fn rng_for_trial(master: u64, label: &str, trial: u64) -> Rng {
    rng_for_indexed(master, label, trial)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_seed_is_deterministic() {
        assert_eq!(derive_seed(42, "topology"), derive_seed(42, "topology"));
    }

    #[test]
    fn labels_partition_the_namespace() {
        assert_ne!(derive_seed(42, "topology"), derive_seed(42, "workload"));
        assert_ne!(derive_seed(42, "a"), derive_seed(43, "a"));
    }

    #[test]
    fn rng_streams_reproduce() {
        let mut a = rng_for(7, "x");
        let mut b = rng_for(7, "x");
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn indexed_streams_differ() {
        let mut a = rng_for_indexed(7, "peer", 0);
        let mut b = rng_for_indexed(7, "peer", 1);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn trial_streams_match_indexed_streams() {
        let mut a = rng_for_trial(7, "fig8", 3);
        let mut b = rng_for_indexed(7, "fig8", 3);
        for _ in 0..8 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn splitmix_avalanche_smoke() {
        // Flipping one input bit should flip roughly half the output bits.
        let x = splitmix64(0x1234_5678);
        let y = splitmix64(0x1234_5679);
        let flipped = (x ^ y).count_ones();
        assert!((16..=48).contains(&flipped), "flipped {flipped} bits");
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = rng_for(11, "f64");
        for _ in 0..10_000 {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = rng_for(12, "ranges");
        for _ in 0..10_000 {
            let a = rng.gen_range(3u64..17);
            assert!((3..17).contains(&a));
            let b = rng.gen_range(3usize..=17);
            assert!((3..=17).contains(&b));
            let c = rng.gen_range(-2.0f64..5.0);
            assert!((-2.0..5.0).contains(&c));
        }
    }

    #[test]
    fn inclusive_integer_ranges_hit_both_endpoints() {
        let mut rng = rng_for(13, "endpoints");
        let draws: Vec<u64> = (0..1000).map(|_| rng.gen_range(0u64..=3)).collect();
        assert!(draws.contains(&0));
        assert!(draws.contains(&3));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = rng_for(14, "shuffle");
        let mut v: Vec<u64> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50-element shuffle left the slice sorted");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = rng_for(15, "choose");
        let v = [1u64, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..200 {
            let &x = v.choose(&mut rng).unwrap();
            seen[(x - 1) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
        let empty: [u64; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn mean_of_unit_floats_is_half() {
        let mut rng = rng_for(16, "mean");
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
