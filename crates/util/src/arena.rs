//! Generational slot arena: dense `u32` indices with safe recycling.
//!
//! The million-peer world state keeps its hot tables as flat `Vec`s keyed
//! by dense indices. Entities that churn (soft-state reservations, queued
//! events, revived peers' per-session records) recycle their slots, and a
//! recycled slot must never be reachable through a stale handle — a
//! crash→revive cycle that hands peer *B* the slot peer *A* used to own
//! cannot let a leftover reference to *A* read or mutate *B*'s row.
//!
//! [`SlotArena`] solves this the way dslab's `simcore` and typed-arena
//! designs do: every slot carries a generation counter, and a [`SlotKey`]
//! is only valid while its generation matches the slot's. Freeing a slot
//! bumps the generation, so every key minted before the free goes stale
//! atomically. Iteration order is slot-index order, which — because slots
//! are handed out lowest-free-first from a sorted free list — is stable
//! and deterministic for any fixed sequence of insert/remove calls.

/// Handle to an entry in a [`SlotArena`]: a dense slot index plus the
/// generation the slot had when the entry was inserted.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SlotKey {
    /// Dense slot index.
    pub slot: u32,
    /// Generation the slot had at insertion.
    pub gen: u32,
}

impl SlotKey {
    /// Packs the key into a single `u64` (`gen` in the high half) for
    /// storage in `u64`-shaped token types. Round-trips via
    /// [`SlotKey::from_raw`].
    #[inline]
    pub const fn to_raw(self) -> u64 {
        ((self.gen as u64) << 32) | self.slot as u64
    }

    /// Unpacks a key previously produced by [`SlotKey::to_raw`].
    #[inline]
    pub const fn from_raw(raw: u64) -> Self {
        SlotKey { slot: raw as u32, gen: (raw >> 32) as u32 }
    }
}

#[derive(Clone, Debug)]
struct Slot<T> {
    gen: u32,
    value: Option<T>,
}

/// A generational arena over dense `u32` slots.
///
/// * `insert` is O(1) amortized and reuses the lowest free slot first, so
///   slot assignment is a pure function of the insert/remove history;
/// * `get`/`get_mut`/`remove` validate the key's generation — operations
///   through a stale key are rejected (`None`/`false`), never aliased;
/// * `iter` walks live entries in slot order.
#[derive(Clone, Debug)]
pub struct SlotArena<T> {
    slots: Vec<Slot<T>>,
    /// Free slot indices, kept as a min-heap on the negated index via
    /// sorted-descending `Vec` (pop takes the smallest).
    free: Vec<u32>,
    live: usize,
}

impl<T> Default for SlotArena<T> {
    fn default() -> Self {
        SlotArena { slots: Vec::new(), free: Vec::new(), live: 0 }
    }
}

impl<T> SlotArena<T> {
    /// An empty arena.
    pub fn new() -> Self {
        SlotArena::default()
    }

    /// An empty arena with capacity for `n` entries.
    pub fn with_capacity(n: usize) -> Self {
        SlotArena { slots: Vec::with_capacity(n), free: Vec::new(), live: 0 }
    }

    /// Inserts a value, returning its key. Reuses the lowest free slot.
    pub fn insert(&mut self, value: T) -> SlotKey {
        self.live += 1;
        if let Some(slot) = self.free.pop() {
            let s = &mut self.slots[slot as usize];
            debug_assert!(s.value.is_none());
            s.value = Some(value);
            return SlotKey { slot, gen: s.gen };
        }
        let slot = self.slots.len() as u32;
        self.slots.push(Slot { gen: 0, value: Some(value) });
        SlotKey { slot, gen: 0 }
    }

    /// The value behind `key`, if the key is still current.
    #[inline]
    pub fn get(&self, key: SlotKey) -> Option<&T> {
        self.slots
            .get(key.slot as usize)
            .filter(|s| s.gen == key.gen)
            .and_then(|s| s.value.as_ref())
    }

    /// Mutable access behind `key`, if the key is still current.
    #[inline]
    pub fn get_mut(&mut self, key: SlotKey) -> Option<&mut T> {
        self.slots
            .get_mut(key.slot as usize)
            .filter(|s| s.gen == key.gen)
            .and_then(|s| s.value.as_mut())
    }

    /// Removes and returns the value behind `key`. A stale or already
    /// freed key returns `None` and changes nothing. Freeing bumps the
    /// slot's generation, invalidating every outstanding copy of `key`.
    pub fn remove(&mut self, key: SlotKey) -> Option<T> {
        let s = self.slots.get_mut(key.slot as usize)?;
        if s.gen != key.gen || s.value.is_none() {
            return None;
        }
        let value = s.value.take();
        s.gen = s.gen.wrapping_add(1);
        self.live -= 1;
        // Keep the free list sorted descending so `pop` hands out the
        // lowest index first (deterministic slot assignment).
        let pos = self.free.partition_point(|&f| f > key.slot);
        self.free.insert(pos, key.slot);
        value
    }

    /// True if `key` still addresses a live entry.
    #[inline]
    pub fn contains(&self, key: SlotKey) -> bool {
        self.get(key).is_some()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no entries are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total slots ever allocated (live + free).
    pub fn capacity_slots(&self) -> usize {
        self.slots.len()
    }

    /// Live entries in slot-index order.
    pub fn iter(&self) -> impl Iterator<Item = (SlotKey, &T)> + '_ {
        self.slots.iter().enumerate().filter_map(|(i, s)| {
            s.value.as_ref().map(|v| (SlotKey { slot: i as u32, gen: s.gen }, v))
        })
    }

    /// Removes every entry for which `keep` returns false, in slot order.
    pub fn retain(&mut self, mut keep: impl FnMut(SlotKey, &T) -> bool) {
        let doomed: Vec<SlotKey> = self
            .iter()
            .filter_map(|(k, v)| (!keep(k, v)).then_some(k))
            .collect();
        for k in doomed {
            self.remove(k);
        }
    }

    /// Drops every entry (generations are kept, so old keys stay stale).
    pub fn clear(&mut self) {
        for (i, s) in self.slots.iter_mut().enumerate() {
            if s.value.take().is_some() {
                s.gen = s.gen.wrapping_add(1);
                let slot = i as u32;
                let pos = self.free.partition_point(|&f| f > slot);
                self.free.insert(pos, slot);
            }
        }
        self.live = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_round_trip() {
        let mut a = SlotArena::new();
        let k = a.insert("x");
        assert_eq!(a.get(k), Some(&"x"));
        assert_eq!(a.len(), 1);
        assert_eq!(a.remove(k), Some("x"));
        assert!(a.is_empty());
        assert_eq!(a.get(k), None);
    }

    #[test]
    fn recycled_slot_does_not_alias_live_entry() {
        // The churn scenario: A crashes (its slot is freed), B revives into
        // the recycled slot. A's old key must not read or free B's entry.
        let mut a = SlotArena::new();
        let key_a = a.insert("peer-a");
        assert_eq!(a.remove(key_a), Some("peer-a"));
        let key_b = a.insert("peer-b");
        assert_eq!(key_b.slot, key_a.slot, "slot should be recycled");
        assert_ne!(key_b.gen, key_a.gen, "generation must advance");
        assert_eq!(a.get(key_a), None, "stale key must not alias");
        assert_eq!(a.remove(key_a), None, "stale free must be a no-op");
        assert_eq!(a.get(key_b), Some(&"peer-b"));
    }

    #[test]
    fn double_remove_is_a_no_op() {
        let mut a = SlotArena::new();
        let k = a.insert(7);
        assert_eq!(a.remove(k), Some(7));
        assert_eq!(a.remove(k), None);
        assert_eq!(a.len(), 0);
    }

    #[test]
    fn lowest_free_slot_is_reused_first() {
        let mut a = SlotArena::new();
        let ks: Vec<_> = (0..4).map(|i| a.insert(i)).collect();
        a.remove(ks[2]);
        a.remove(ks[0]);
        // Lowest index first, regardless of free order.
        assert_eq!(a.insert(10).slot, 0);
        assert_eq!(a.insert(11).slot, 2);
        assert_eq!(a.insert(12).slot, 4);
    }

    #[test]
    fn iteration_is_slot_ordered() {
        let mut a = SlotArena::new();
        let k0 = a.insert("a");
        let _k1 = a.insert("b");
        let _k2 = a.insert("c");
        a.remove(k0);
        a.insert("d"); // recycles slot 0
        let order: Vec<&str> = a.iter().map(|(_, v)| *v).collect();
        assert_eq!(order, vec!["d", "b", "c"]);
    }

    #[test]
    fn slot_assignment_is_deterministic_for_fixed_history() {
        let run = || {
            let mut a = SlotArena::new();
            let mut keys = Vec::new();
            for i in 0..50u32 {
                keys.push(a.insert(i));
                if i % 3 == 0 {
                    let victim = keys[(i as usize) / 2];
                    a.remove(victim);
                }
            }
            keys
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn raw_round_trip() {
        let k = SlotKey { slot: 123, gen: 456 };
        assert_eq!(SlotKey::from_raw(k.to_raw()), k);
    }

    #[test]
    fn retain_and_clear_invalidate_keys() {
        let mut a = SlotArena::new();
        let keys: Vec<_> = (0..6).map(|i| a.insert(i)).collect();
        a.retain(|_, &v| v % 2 == 0);
        assert_eq!(a.len(), 3);
        assert!(a.contains(keys[0]) && !a.contains(keys[1]));
        a.clear();
        assert!(a.is_empty());
        for k in keys {
            assert!(!a.contains(k));
        }
    }
}
