//! Self-contained hashing: SHA-1 for DHT keys, FxHash for hot-path maps.
//!
//! The paper's discovery substrate stores service metadata under
//! `key = secure_hash(function_name)` on a Pastry ring. We implement SHA-1
//! locally (RFC 3174) rather than pulling in a crypto crate; the DHT only
//! needs a well-mixed 160-bit digest, of which the top 128 bits become the
//! Pastry key.
//!
//! [`FxHashMap`]/[`FxHashSet`] are `std` collections behind rustc's Fx hash
//! (a multiply-xor hash, far cheaper than SipHash for the small integer
//! keys the BCP hot loops use, and deterministic — no per-process random
//! state, so experiment output never depends on iteration-order accidents).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The multiplier from rustc's `FxHasher` (a Fibonacci-style constant).
const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// rustc's Fx hash: one rotate-xor-multiply per word of input.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed by the Fx hash.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed by the Fx hash.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// A 160-bit SHA-1 digest.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Digest(pub [u8; 20]);

impl Digest {
    /// Returns the most significant 128 bits as a `u128`, the keyspace used
    /// by the Pastry ring in `spidernet-dht`.
    pub fn to_u128(&self) -> u128 {
        let mut v: u128 = 0;
        for &b in &self.0[..16] {
            v = (v << 8) | u128::from(b);
        }
        v
    }

    /// Lower-case hexadecimal rendering of the digest.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(40);
        for b in self.0 {
            use std::fmt::Write;
            let _ = write!(s, "{b:02x}");
        }
        s
    }
}

/// Computes the SHA-1 digest of `data`.
pub fn sha1(data: &[u8]) -> Digest {
    let mut h: [u32; 5] = [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0];

    // Message padding: 0x80, zeros, then the 64-bit big-endian bit length.
    let bit_len = (data.len() as u64).wrapping_mul(8);
    let mut msg = Vec::with_capacity(data.len() + 72);
    msg.extend_from_slice(data);
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&bit_len.to_be_bytes());

    let mut w = [0u32; 80];
    for block in msg.chunks_exact(64) {
        for (i, word) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([word[0], word[1], word[2], word[3]]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }

        let (mut a, mut b, mut c, mut d, mut e) = (h[0], h[1], h[2], h[3], h[4]);
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5A827999),
                20..=39 => (b ^ c ^ d, 0x6ED9EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                _ => (b ^ c ^ d, 0xCA62C1D6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        h[0] = h[0].wrapping_add(a);
        h[1] = h[1].wrapping_add(b);
        h[2] = h[2].wrapping_add(c);
        h[3] = h[3].wrapping_add(d);
        h[4] = h[4].wrapping_add(e);
    }

    let mut out = [0u8; 20];
    for (i, word) in h.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
    }
    Digest(out)
}

/// Hashes a service function name into the 128-bit DHT keyspace.
///
/// All functionally duplicated service components share one function name and
/// therefore one key, so the responsible DHT node accumulates the full
/// replica list — exactly the paper's registration scheme.
pub fn function_key(function_name: &str) -> u128 {
    sha1(function_name.as_bytes()).to_u128()
}

#[cfg(test)]
mod tests {
    use super::*;

    // RFC 3174 / FIPS-180 reference vectors.
    #[test]
    fn sha1_known_vectors() {
        assert_eq!(sha1(b"abc").to_hex(), "a9993e364706816aba3e25717850c26c9cd0d89d");
        assert_eq!(sha1(b"").to_hex(), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
        assert_eq!(
            sha1(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn sha1_million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(sha1(&data).to_hex(), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
    }

    #[test]
    fn sha1_crosses_block_boundaries() {
        // Lengths straddling the 55/56/63/64-byte padding edge cases must
        // all produce distinct, deterministic digests.
        let mut seen = std::collections::HashSet::new();
        for len in 50..70 {
            let data = vec![0xABu8; len];
            let d = sha1(&data);
            assert_eq!(d, sha1(&data), "determinism at len {len}");
            assert!(seen.insert(d.0), "collision at len {len}");
        }
    }

    #[test]
    fn function_key_is_stable_and_discriminating() {
        let k1 = function_key("video-upscale");
        let k2 = function_key("video-upscale");
        let k3 = function_key("video-downscale");
        assert_eq!(k1, k2);
        assert_ne!(k1, k3);
    }

    #[test]
    fn fx_map_behaves_like_std_map() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.len(), 2);
        let mut s: FxHashSet<(usize, usize)> = FxHashSet::default();
        assert!(s.insert((3, 4)));
        assert!(!s.insert((3, 4)));
    }

    #[test]
    fn fx_hash_is_deterministic_and_discriminating() {
        let h = |x: u64| {
            let mut hasher = FxHasher::default();
            hasher.write_u64(x);
            hasher.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(42), h(43));
        let hb = |b: &[u8]| {
            let mut hasher = FxHasher::default();
            hasher.write(b);
            hasher.finish()
        };
        assert_eq!(hb(b"abc"), hb(b"abc"));
        assert_ne!(hb(b"abc"), hb(b"abd"));
        assert_ne!(hb(b"abc"), hb(b"abcd"));
    }

    #[test]
    fn digest_to_u128_takes_top_bytes() {
        let mut raw = [0u8; 20];
        raw[0] = 0x01;
        raw[15] = 0xFF;
        let d = Digest(raw);
        assert_eq!(d.to_u128() >> 120, 0x01);
        assert_eq!(d.to_u128() & 0xFF, 0xFF);
    }
}
