//! Strongly-typed identifiers.
//!
//! Every entity in the SpiderNet model carries its own newtype so that a
//! peer index can never be confused with a session number or a component
//! handle. All identifiers are plain `u64`s underneath, `Copy`, and cheap to
//! hash.

use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u64);

        impl $name {
            /// Wraps a raw index.
            #[inline]
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// Returns the raw index.
            #[inline]
            pub const fn raw(self) -> u64 {
                self.0
            }

            /// Returns the raw index as a `usize`, for indexing into dense
            /// per-entity tables.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                Self(raw)
            }
        }

        impl From<usize> for $name {
            fn from(raw: usize) -> Self {
                Self(raw as u64)
            }
        }
    };
}

define_id!(
    /// Identifier of a peer (an overlay node hosting service components).
    PeerId,
    "v"
);
define_id!(
    /// Identifier of a concrete service component instance on some peer.
    ComponentId,
    "s"
);
define_id!(
    /// Identifier of an abstract service *function* (e.g. "video-scaling").
    /// Functionally duplicated components share one `FunctionId`.
    FunctionId,
    "F"
);
define_id!(
    /// Identifier of an active composed service session.
    SessionId,
    "sess"
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_round_trip() {
        let p = PeerId::new(42);
        assert_eq!(p.raw(), 42);
        assert_eq!(p.index(), 42);
        assert_eq!(PeerId::from(42u64), p);
        assert_eq!(PeerId::from(42usize), p);
    }

    #[test]
    fn ids_format_with_paper_prefixes() {
        assert_eq!(format!("{}", PeerId::new(3)), "v3");
        assert_eq!(format!("{}", ComponentId::new(9)), "s9");
        assert_eq!(format!("{}", FunctionId::new(1)), "F1");
        assert_eq!(format!("{:?}", SessionId::new(5)), "sess5");
    }

    #[test]
    fn ids_are_hashable_and_ordered() {
        let mut set = HashSet::new();
        set.insert(PeerId::new(1));
        set.insert(PeerId::new(1));
        set.insert(PeerId::new(2));
        assert_eq!(set.len(), 2);
        assert!(PeerId::new(1) < PeerId::new(2));
    }

    #[test]
    fn distinct_id_types_do_not_unify() {
        // Compile-time property: this test just documents intent.
        let p = PeerId::new(1);
        let c = ComponentId::new(1);
        assert_eq!(p.raw(), c.raw());
    }
}
