//! Workspace-wide error type.

use std::fmt;

/// Convenience alias used throughout the SpiderNet crates.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors surfaced by the SpiderNet crates.
///
/// The variants are intentionally coarse: callers of the public API mostly
/// need to distinguish "no qualified composition exists" from programmer
/// errors (malformed graphs, unknown identifiers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A referenced peer does not exist in the overlay.
    UnknownPeer(u64),
    /// A referenced service function has no registration anywhere.
    UnknownFunction(String),
    /// A referenced service component does not exist.
    UnknownComponent(u64),
    /// A referenced session does not exist (expired or never created).
    UnknownSession(u64),
    /// The supplied function graph is structurally invalid (cyclic
    /// dependencies, dangling links, empty, or inconsistent commutation).
    InvalidFunctionGraph(String),
    /// A QoS/resource requirement vector is malformed (e.g. dimension
    /// mismatch or non-finite entries).
    InvalidRequirement(String),
    /// Composition finished but no candidate service graph satisfied the
    /// user's QoS and resource requirements.
    NoQualifiedComposition,
    /// A session failed and no backup service graph could recover it, and
    /// reactive re-composition also found nothing.
    RecoveryExhausted(u64),
    /// The simulated network dropped or could not route a message.
    Network(String),
    /// Admission control rejected a soft resource allocation.
    AdmissionRejected {
        /// Raw id of the rejecting peer.
        peer: u64,
    },
    /// Configuration value out of its documented domain.
    InvalidConfig(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownPeer(p) => write!(f, "unknown peer id {p}"),
            Error::UnknownFunction(n) => write!(f, "unknown service function {n:?}"),
            Error::UnknownComponent(c) => write!(f, "unknown service component id {c}"),
            Error::UnknownSession(s) => write!(f, "unknown session id {s}"),
            Error::InvalidFunctionGraph(m) => write!(f, "invalid function graph: {m}"),
            Error::InvalidRequirement(m) => write!(f, "invalid requirement: {m}"),
            Error::NoQualifiedComposition => {
                write!(f, "no service graph satisfies the QoS/resource requirements")
            }
            Error::RecoveryExhausted(s) => {
                write!(f, "session {s}: all backups failed and re-composition found nothing")
            }
            Error::Network(m) => write!(f, "network error: {m}"),
            Error::AdmissionRejected { peer } => {
                write!(f, "peer {peer} rejected soft resource allocation")
            }
            Error::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        let e = Error::UnknownPeer(7);
        assert_eq!(e.to_string(), "unknown peer id 7");
        let e = Error::AdmissionRejected { peer: 3 };
        assert!(e.to_string().contains("peer 3"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(Error::NoQualifiedComposition, Error::NoQualifiedComposition);
        assert_ne!(Error::UnknownPeer(1), Error::UnknownPeer(2));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&Error::Network("down".into()));
    }
}
