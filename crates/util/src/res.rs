//! End-system resource vectors.
//!
//! Each service component requires a vector `R` of end-system resources
//! (CPU, memory) on its hosting peer; bandwidth is a *link* resource handled
//! by the topology layer. Peers advertise availability vectors of the same
//! shape; admission compares requirement against availability, and the ψ
//! cost function (Eq. 1) sums requirement/availability ratios.

use std::fmt;
use std::ops::Index;

/// The end-system resource types tracked on every peer.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ResourceKind {
    /// Processing capacity, in abstract CPU units.
    Cpu,
    /// Memory, in megabytes.
    Memory,
}

impl ResourceKind {
    /// All tracked resource kinds, in vector order.
    pub const ALL: [ResourceKind; 2] = [ResourceKind::Cpu, ResourceKind::Memory];

    /// Number of tracked end-system resource kinds.
    pub const COUNT: usize = 2;

    /// Index of this kind within a [`ResourceVector`].
    pub fn index(self) -> usize {
        match self {
            ResourceKind::Cpu => 0,
            ResourceKind::Memory => 1,
        }
    }
}

/// A fixed-shape vector over [`ResourceKind::ALL`].
///
/// Used both for component *requirements* and for peer *availability*.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct ResourceVector([f64; ResourceKind::COUNT]);

impl ResourceVector {
    /// The zero vector.
    pub const ZERO: ResourceVector = ResourceVector([0.0; ResourceKind::COUNT]);

    /// Builds a vector from (cpu, memory).
    pub const fn new(cpu: f64, memory: f64) -> Self {
        ResourceVector([cpu, memory])
    }

    /// CPU entry.
    pub fn cpu(&self) -> f64 {
        self.0[0]
    }

    /// Memory entry.
    pub fn memory(&self) -> f64 {
        self.0[1]
    }

    /// Returns true if every entry of `self` (a requirement) fits within
    /// `avail` (an availability vector).
    pub fn fits_within(&self, avail: &ResourceVector) -> bool {
        self.0.iter().zip(&avail.0).all(|(need, have)| need <= have)
    }

    /// Per-entry addition.
    pub fn add(&self, other: &ResourceVector) -> ResourceVector {
        let mut out = self.0;
        for (o, b) in out.iter_mut().zip(&other.0) {
            *o += b;
        }
        ResourceVector(out)
    }

    /// Per-entry saturating subtraction (never goes below zero).
    pub fn saturating_sub(&self, other: &ResourceVector) -> ResourceVector {
        let mut out = self.0;
        for (o, b) in out.iter_mut().zip(&other.0) {
            *o = (*o - b).max(0.0);
        }
        ResourceVector(out)
    }

    /// `Σ_i w_i · need_i / have_i`, the per-component term of the ψ cost
    /// aggregation (Eq. 1). `weights` must have [`ResourceKind::COUNT`]
    /// entries. Division by a zero availability yields `f64::INFINITY`,
    /// which correctly makes exhausted peers maximally costly.
    pub fn weighted_usage_ratio(&self, avail: &ResourceVector, weights: &[f64]) -> f64 {
        debug_assert_eq!(weights.len(), ResourceKind::COUNT);
        self.0
            .iter()
            .zip(&avail.0)
            .zip(weights)
            .map(|((need, have), w)| {
                if *need == 0.0 {
                    0.0
                } else {
                    w * need / have
                }
            })
            .sum()
    }

    /// Returns true if every entry is finite and non-negative.
    pub fn is_well_formed(&self) -> bool {
        self.0.iter().all(|v| v.is_finite() && *v >= 0.0)
    }

    /// Per-entry scaling.
    pub fn scale(&self, factor: f64) -> ResourceVector {
        ResourceVector([self.0[0] * factor, self.0[1] * factor])
    }
}

impl Index<ResourceKind> for ResourceVector {
    type Output = f64;
    fn index(&self, k: ResourceKind) -> &f64 {
        &self.0[k.index()]
    }
}

impl fmt::Debug for ResourceVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Res{{cpu:{}, mem:{}}}", self.0[0], self.0[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_within_is_componentwise() {
        let need = ResourceVector::new(2.0, 100.0);
        assert!(need.fits_within(&ResourceVector::new(2.0, 100.0)));
        assert!(need.fits_within(&ResourceVector::new(3.0, 200.0)));
        assert!(!need.fits_within(&ResourceVector::new(1.9, 200.0)));
        assert!(!need.fits_within(&ResourceVector::new(3.0, 99.0)));
    }

    #[test]
    fn add_and_saturating_sub() {
        let a = ResourceVector::new(1.0, 10.0);
        let b = ResourceVector::new(2.0, 30.0);
        assert_eq!(a.add(&b), ResourceVector::new(3.0, 40.0));
        assert_eq!(b.saturating_sub(&a), ResourceVector::new(1.0, 20.0));
        // Never negative.
        assert_eq!(a.saturating_sub(&b), ResourceVector::ZERO);
    }

    #[test]
    fn weighted_usage_ratio_matches_eq1_term() {
        let need = ResourceVector::new(1.0, 50.0);
        let have = ResourceVector::new(4.0, 100.0);
        let w = [0.5, 0.5];
        // 0.5*(1/4) + 0.5*(50/100) = 0.125 + 0.25
        let got = need.weighted_usage_ratio(&have, &w);
        assert!((got - 0.375).abs() < 1e-12);
    }

    #[test]
    fn exhausted_peer_costs_infinity() {
        let need = ResourceVector::new(1.0, 0.0);
        let have = ResourceVector::new(0.0, 100.0);
        assert!(need.weighted_usage_ratio(&have, &[1.0, 0.0]).is_infinite());
    }

    #[test]
    fn zero_need_costs_zero_even_on_empty_peer() {
        let need = ResourceVector::ZERO;
        let have = ResourceVector::ZERO;
        assert_eq!(need.weighted_usage_ratio(&have, &[0.5, 0.5]), 0.0);
    }

    #[test]
    fn indexing_by_kind() {
        let v = ResourceVector::new(3.0, 7.0);
        assert_eq!(v[ResourceKind::Cpu], 3.0);
        assert_eq!(v[ResourceKind::Memory], 7.0);
        assert_eq!(v.cpu(), 3.0);
        assert_eq!(v.memory(), 7.0);
    }

    #[test]
    fn scale_scales_all_entries() {
        let v = ResourceVector::new(2.0, 4.0).scale(0.5);
        assert_eq!(v, ResourceVector::new(1.0, 2.0));
    }

    #[test]
    fn well_formedness() {
        assert!(ResourceVector::new(0.0, 0.0).is_well_formed());
        assert!(!ResourceVector::new(-1.0, 0.0).is_well_formed());
        assert!(!ResourceVector::new(f64::NAN, 0.0).is_well_formed());
    }
}
