//! The shared benchmark-report vocabulary: insertion-ordered JSON
//! reports (`BENCH_<name>.json`) and peak-RSS sampling.
//!
//! This lives in `spidernet-util` (not `spidernet-bench`) so that the
//! runtime's `spidernet-node` binary can emit `BENCH_daemon.json`
//! through the same API as the figure drivers — `spidernet-bench`
//! depends on the runtime, so hosting the report type there would make
//! the dependency circular. `spidernet-bench` re-exports everything
//! here for existing call sites.

/// Peak resident set size of this process in bytes (Linux `VmHWM` from
/// `/proc/self/status`), or `None` where that interface is unavailable.
/// VmHWM is the high-water mark, so sampling once at the end of a run
/// captures the run's true memory footprint.
pub fn peak_rss_bytes() -> Option<u64> {
    peak_rss_bytes_for("self")
}

/// Peak resident set size of an arbitrary process (`VmHWM` from
/// `/proc/<pid>/status`). The deploy orchestrator uses this to sample
/// child daemons before shutting them down; `pid` also accepts the
/// literal `"self"`.
pub fn peak_rss_bytes_for(pid: impl std::fmt::Display) -> Option<u64> {
    let status = std::fs::read_to_string(format!("/proc/{pid}/status")).ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// An insertion-ordered JSON object nested one level inside a
/// [`BenchReport`] (e.g. the `scale` block in `BENCH_fig8.json`).
#[derive(Default)]
pub struct BenchBlock {
    fields: Vec<(String, String)>,
}

impl BenchBlock {
    /// An empty block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an integer field.
    pub fn int(&mut self, key: &str, v: u64) -> &mut Self {
        self.fields.push((key.to_owned(), v.to_string()));
        self
    }

    /// Adds a float field, rendered with four decimal places.
    pub fn num(&mut self, key: &str, v: f64) -> &mut Self {
        self.fields.push((key.to_owned(), format!("{v:.4}")));
        self
    }

    /// Renders the block as a JSON object whose closing brace sits at the
    /// parent report's two-space field indent.
    fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            s.push_str("    \"");
            s.push_str(k);
            s.push_str("\": ");
            s.push_str(v);
            s.push_str(if i + 1 == self.fields.len() { "\n" } else { ",\n" });
        }
        s.push_str("  }");
        s
    }
}

/// An insertion-ordered flat JSON report written as `BENCH_<name>.json`.
pub struct BenchReport {
    name: String,
    fields: Vec<(String, String)>,
}

impl BenchReport {
    /// A report for figure or subsystem `name` (e.g. `"fig8"`,
    /// `"daemon"`).
    pub fn new(name: &str) -> Self {
        let mut r = BenchReport { name: name.to_owned(), fields: Vec::new() };
        r.fields.push(("figure".into(), format!("\"{name}\"")));
        // Every report self-documents the host's parallelism so a
        // speedup ≈ 1.0 row from a 1-CPU CI runner is not mistaken for a
        // harness regression.
        let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        r.fields.push(("host_cpus".into(), cpus.to_string()));
        r
    }

    /// Adds an integer field.
    pub fn int(&mut self, key: &str, v: u64) -> &mut Self {
        self.fields.push((key.to_owned(), v.to_string()));
        self
    }

    /// Adds a float field, rendered with four decimal places.
    pub fn num(&mut self, key: &str, v: f64) -> &mut Self {
        self.fields.push((key.to_owned(), format!("{v:.4}")));
        self
    }

    /// Adds a string field (quoted; assumes no embedded quotes).
    pub fn str(&mut self, key: &str, v: &str) -> &mut Self {
        self.fields.push((key.to_owned(), format!("\"{v}\"")));
        self
    }

    /// Adds a boolean field.
    pub fn bool(&mut self, key: &str, v: bool) -> &mut Self {
        self.fields.push((key.to_owned(), v.to_string()));
        self
    }

    /// Adds a nested object field (rendered inline at the key's
    /// insertion-order position).
    pub fn nested(&mut self, key: &str, block: &BenchBlock) -> &mut Self {
        self.fields.push((key.to_owned(), block.to_json()));
        self
    }

    /// Renders the report as a flat JSON object.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            s.push_str("  \"");
            s.push_str(k);
            s.push_str("\": ");
            s.push_str(v);
            s.push_str(if i + 1 == self.fields.len() { "\n" } else { ",\n" });
        }
        s.push_str("}\n");
        s
    }

    /// The default output path, `BENCH_<name>.json` in the current
    /// directory.
    pub fn default_path(&self) -> std::path::PathBuf {
        std::path::PathBuf::from(format!("BENCH_{}.json", self.name))
    }

    /// Writes `BENCH_<name>.json` into the current directory and returns
    /// the path.
    pub fn write(&self) -> std::io::Result<std::path::PathBuf> {
        let path = self.default_path();
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// Writes the report where a `--json [path]` spec asks: the explicit
    /// path when one was given, [`BenchReport::default_path`] otherwise.
    /// Returns the path written. See [`crate::cli::json_spec`].
    pub fn write_spec(&self, explicit: &Option<String>) -> std::io::Result<std::path::PathBuf> {
        let path = match explicit {
            Some(p) => std::path::PathBuf::from(p),
            None => self.default_path(),
        };
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_report_renders_valid_flat_json() {
        let mut rep = BenchReport::new("figX");
        rep.int("trials", 10).num("parallel_secs", 1.25).str("mode", "quick").bool("ok", true);
        let json = rep.to_json();
        assert!(json.starts_with("{\n"));
        assert!(json.ends_with("}\n"));
        assert!(json.contains("\"figure\": \"figX\""));
        assert!(json.contains("\"host_cpus\": "), "reports must self-document parallelism");
        assert!(json.contains("\"trials\": 10,"));
        assert!(json.contains("\"parallel_secs\": 1.2500,"));
        assert!(json.contains("\"mode\": \"quick\","));
        assert!(json.contains("\"ok\": true\n"));
    }

    #[test]
    fn nested_block_renders_inside_the_report() {
        let mut scale = BenchBlock::new();
        scale.int("peers", 100_000).num("probes_per_sec", 123.5);
        let mut rep = BenchReport::new("fig8");
        rep.int("trials", 2).nested("scale", &scale);
        let json = rep.to_json();
        assert!(json.contains("\"scale\": {\n"));
        assert!(json.contains("    \"peers\": 100000,\n"));
        assert!(json.contains("    \"probes_per_sec\": 123.5000\n  }"));
    }

    #[test]
    fn peak_rss_is_reported_on_linux() {
        let rss = peak_rss_bytes().expect("VmHWM available on Linux");
        assert!(rss > 1024 * 1024, "peak RSS implausibly small: {rss}");
        assert_eq!(peak_rss_bytes_for(std::process::id()), Some(rss));
    }

    #[test]
    fn write_spec_honors_an_explicit_path() {
        let dir = std::env::temp_dir().join(format!("spidernet-bench-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let target = dir.join("out.json");
        let mut rep = BenchReport::new("spec");
        rep.int("x", 1);
        let written = rep.write_spec(&Some(target.to_string_lossy().into_owned())).unwrap();
        assert_eq!(written, target);
        assert!(std::fs::read_to_string(&target).unwrap().contains("\"figure\": \"spec\""));
        std::fs::remove_dir_all(&dir).ok();
    }
}
