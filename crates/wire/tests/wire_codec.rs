//! Wire-codec conformance suite: golden byte pins for representative
//! frames, round-trip property tests over seeded arbitrary messages, and
//! a mutation fuzzer asserting the decoder never panics on hostile input.

use spidernet_util::qos::QosVector;
use spidernet_util::res::ResourceVector;
use spidernet_util::rng::{rng_for_indexed, Rng};
use spidernet_wire::{
    decode, encode_to_vec, negotiate, FrameDecoder, WireError, WireMsg, WirePixels, WireProbe,
    WireReplica, WireSetup, WireStats, WireStreamReport, HEADER_LEN, MAGIC, PROTO_VERSION,
};

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

// ---------------------------------------------------------------------
// Fixtures: one representative message per frame type
// ---------------------------------------------------------------------

fn fixtures() -> Vec<WireMsg> {
    vec![
        WireMsg::Hello {
            peer: 3,
            node_id: 0x00112233_44556677_8899aabb_ccddeeff,
            proto_min: 1,
            proto_max: 1,
            listen_port: 40003,
        },
        WireMsg::HelloAck { peer: 5, proto: 1 },
        WireMsg::DhtLookup {
            query: 42,
            key: 0xdead_beef,
            origin: 7,
            hops: 2,
            at_ms: 36.5,
        },
        WireMsg::DhtReply {
            query: 42,
            metas: vec![
                WireReplica { peer: 11, function: 2 },
                WireReplica { peer: 19, function: 2 },
            ],
            at_ms: 98.25,
        },
        WireMsg::Register {
            key: 0xfeed_f00d,
            replica: WireReplica { peer: 13, function: 4 },
            qos: QosVector::from_values(vec![12.0, 0.5]),
            res: ResourceVector::new(2.0, 256.0),
            hops: 1,
        },
        WireMsg::Probe(WireProbe {
            request: 9,
            source: 0,
            dest: 7,
            chain: vec![2, 4],
            replica_lists: vec![
                vec![WireReplica { peer: 11, function: 2 }],
                vec![WireReplica { peer: 13, function: 4 }, WireReplica { peer: 17, function: 4 }],
            ],
            pos: 1,
            path: vec![11],
            budget: 6,
            acc_qos: QosVector::from_values(vec![27.5]),
            at_ms: 61.125,
        }),
        WireMsg::SetupAck {
            session: 9,
            path: vec![11, 13],
            functions: vec![2, 4],
            idx: u32::MAX,
            source: 0,
            backups: vec![vec![11, 17], vec![19, 13]],
            selected_ms: 140.5,
            at_ms: 188.75,
        },
        WireMsg::StreamFrame {
            session: 9,
            path: vec![11, 13],
            functions: vec![2, 4],
            idx: 1,
            dest: 7,
            source: 0,
            orig_w: 4,
            orig_h: 2,
            frame: WirePixels { width: 4, height: 2, seq: 17, pixels: vec![0, 1, 2, 3, 4, 5, 6, 7] },
            at_ms: 250.0,
        },
        WireMsg::FrameAck { session: 9, seq: 17, valid: true, digest: 0xabc123, at_ms: 300.5 },
        WireMsg::PathProbe { session: 9, path: vec![11, 17], idx: 0, origin: 0, backup_idx: 0 },
        WireMsg::PathProbeAck { session: 9, backup_idx: 0 },
        WireMsg::CtrlCompose { request: 9, dest: 7, chain: vec![2, 4], budget: 6 },
        WireMsg::CtrlComposeResult(WireSetup {
            request: 9,
            ok: true,
            dest: 7,
            path: vec![11, 13],
            functions: vec![2, 4],
            backups: vec![vec![11, 17]],
            discovery_ms: 52.0,
            probing_ms: 88.5,
            init_ms: 48.25,
            total_ms: 188.75,
        }),
        WireMsg::CtrlStream {
            session: 9,
            path: vec![11, 13],
            functions: vec![2, 4],
            backups: vec![vec![11, 17]],
            dest: 7,
            frames: 200,
            interval_ms: 33.0,
            width: 64,
            height: 48,
        },
        WireMsg::CtrlStreamReport(WireStreamReport {
            session: 9,
            sent: 200,
            delivered: 200,
            all_valid: true,
            switches: 1,
            maintenance_probes: 12,
            final_path: vec![11, 17],
            delivery_digest: 0x1234_5678_9abc_def0,
        }),
        WireMsg::CtrlStatsRequest,
        WireMsg::CtrlStatsReply(WireStats {
            peer: 3,
            probes_sent: 14,
            dht_hops: 9,
            msgs_dropped: 1,
            store_entries: 2,
            frames_tx: 321,
            frames_rx: 318,
            bytes_tx: 65536,
            bytes_rx: 65024,
            conns_opened: 4,
            conn_retries: 1,
            decode_errors: 0,
        }),
        WireMsg::CtrlShutdown,
    ]
}

/// Pinned encodings for the fixtures above, index-aligned. Any codec
/// change that rewrites bytes on the wire must bump PROTO_VERSION and
/// re-pin these deliberately.
const GOLDEN: &[&str] = &[
    "53504452010001001e0000000300000000000000ffeeddccbbaa9988776655443322110001000100439c",
    "53504452010002000a00000005000000000000000100",
    "53504452010003002c0000002a00000000000000efbeadde0000000000000000000000000700000000000000020000000000000000404240",
    "5350445201000400260000002a00000000000000020000000b00000000000000021300000000000000020000000000905840",
    "5350445201000500410000000df0edfe0000000000000000000000000d0000000000000004020000000000000000002840000000000000e03f0000000000000040000000000000704001000000",
    "53504452010006006d00000009000000000000000000000000000000070000000000000002000000020402000000010000000b0000000000000002020000000d000000000000000411000000000000000401000000010000000b0000000000000006000000010000000000000000803b400000000000904e40",
    "53504452010007006a0000000900000000000000020000000b000000000000000d00000000000000020000000204ffffffff000000000000000002000000020000000b0000000000000011000000000000000200000013000000000000000d0000000000000000000000009061400000000000986740",
    "5350445201000800620000000900000000000000020000000b000000000000000d0000000000000002000000020401000000070000000000000000000000000000000400000002000000040000000200000011000000000000000800000000010203040506070000000000406f40",
    "535044520100090021000000090000000000000011000000000000000123c1ab00000000000000000000c87240",
    "5350445201000a002c0000000900000000000000020000000b00000000000000110000000000000000000000000000000000000000000000",
    "5350445201000b000c000000090000000000000000000000",
    "53504452010014001a0000000900000000000000070000000000000002000000020406000000",
    "5350445201001500630000000900000000000000010700000000000000020000000b000000000000000d0000000000000002000000020401000000020000000b0000000000000011000000000000000000000000004a40000000000020564000000000002048400000000000986740",
    "53504452010016005a0000000900000000000000020000000b000000000000000d0000000000000002000000020401000000020000000b0000000000000011000000000000000700000000000000c80000000000000000000000008040404000000030000000",
    "5350445201001700410000000900000000000000c800000000000000c80000000000000001010000000c00000000000000020000000b000000000000001100000000000000f0debc9a78563412",
    "535044520100180000000000",
    "53504452010019006000000003000000000000000e0000000000000009000000000000000100000000000000020000000000000041010000000000003e01000000000000000001000000000000fe000000000000040000000000000001000000000000000000000000000000",
    "5350445201001a0000000000",
];

/// Prints a fresh GOLDEN table. Run after a deliberate wire-format
/// change (with a PROTO_VERSION bump) to re-pin:
/// `cargo test -p spidernet-wire regenerate_golden -- --ignored --nocapture`
#[test]
#[ignore]
fn regenerate_golden() {
    for msg in fixtures() {
        println!("    \"{}\",", hex(&encode_to_vec(&msg)));
    }
}

#[test]
fn golden_encodings_are_pinned() {
    let msgs = fixtures();
    assert_eq!(msgs.len(), GOLDEN.len());
    for (i, msg) in msgs.iter().enumerate() {
        let bytes = encode_to_vec(msg);
        assert_eq!(hex(&bytes), GOLDEN[i], "fixture {i} ({:?}) drifted", msg.kind());
        let (back, used) = decode(&bytes).expect("golden frame decodes");
        assert_eq!(used, bytes.len());
        assert_eq!(&back, msg);
    }
}

#[test]
fn every_frame_type_round_trips_bit_exactly() {
    for msg in fixtures() {
        let bytes = encode_to_vec(&msg);
        let (back, used) = decode(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(back, msg);
        // Re-encoding the decoded value reproduces the same bytes.
        assert_eq!(encode_to_vec(&back), bytes);
    }
}

// ---------------------------------------------------------------------
// Property tests over seeded arbitrary messages
// ---------------------------------------------------------------------

fn arb_qos(rng: &mut Rng) -> QosVector {
    let dims = rng.gen_range(0..4usize);
    QosVector::from_values((0..dims).map(|_| rng.gen_range(0.0..500.0f64)).collect())
}

fn arb_path(rng: &mut Rng) -> Vec<u64> {
    let n = rng.gen_range(0..5usize);
    (0..n).map(|_| rng.gen_range(0..64u64)).collect()
}

fn arb_paths(rng: &mut Rng) -> Vec<Vec<u64>> {
    let n = rng.gen_range(0..3usize);
    (0..n).map(|_| arb_path(rng)).collect()
}

fn arb_fns(rng: &mut Rng) -> Vec<u8> {
    let n = rng.gen_range(0..4usize);
    (0..n).map(|_| rng.gen_range(0..6u32) as u8).collect()
}

fn arb_replicas(rng: &mut Rng) -> Vec<WireReplica> {
    let n = rng.gen_range(0..4usize);
    (0..n)
        .map(|_| WireReplica { peer: rng.gen_range(0..64u64), function: rng.gen_range(0..6u32) as u8 })
        .collect()
}

fn arb_msg(rng: &mut Rng) -> WireMsg {
    match rng.gen_range(0..17u32) {
        0 => WireMsg::Hello {
            peer: rng.next_u64(),
            node_id: (rng.next_u64() as u128) << 64 | rng.next_u64() as u128,
            proto_min: rng.gen_range(0..4u32) as u16,
            proto_max: rng.gen_range(0..4u32) as u16,
            listen_port: rng.gen_range(0..65536u32) as u16,
        },
        1 => WireMsg::HelloAck { peer: rng.next_u64(), proto: 1 },
        2 => WireMsg::DhtLookup {
            query: rng.next_u64(),
            key: (rng.next_u64() as u128) << 64 | rng.next_u64() as u128,
            origin: rng.gen_range(0..64u64),
            hops: rng.gen_range(0..8u32),
            at_ms: rng.gen_range(0.0..1e4f64),
        },
        3 => WireMsg::DhtReply {
            query: rng.next_u64(),
            metas: arb_replicas(rng),
            at_ms: rng.gen_range(0.0..1e4f64),
        },
        4 => WireMsg::Register {
            key: (rng.next_u64() as u128) << 64 | rng.next_u64() as u128,
            replica: WireReplica { peer: rng.gen_range(0..64u64), function: rng.gen_range(0..6u32) as u8 },
            qos: arb_qos(rng),
            res: ResourceVector::new(rng.gen_range(0.0..16.0f64), rng.gen_range(0.0..4096.0f64)),
            hops: rng.gen_range(0..8u32),
        },
        5 => {
            let chain = arb_fns(rng);
            let replica_lists = (0..chain.len()).map(|_| arb_replicas(rng)).collect();
            WireMsg::Probe(WireProbe {
                request: rng.next_u64(),
                source: rng.gen_range(0..64u64),
                dest: rng.gen_range(0..64u64),
                chain,
                replica_lists,
                pos: rng.gen_range(0..4u32),
                path: arb_path(rng),
                budget: rng.gen_range(1..32u32),
                acc_qos: arb_qos(rng),
                at_ms: rng.gen_range(0.0..1e4f64),
            })
        }
        6 => WireMsg::SetupAck {
            session: rng.next_u64(),
            path: arb_path(rng),
            functions: arb_fns(rng),
            idx: if rng.gen_range(0..4u32) == 0 { u32::MAX } else { rng.gen_range(0..4u32) },
            source: rng.gen_range(0..64u64),
            backups: arb_paths(rng),
            selected_ms: rng.gen_range(0.0..1e4f64),
            at_ms: rng.gen_range(0.0..1e4f64),
        },
        7 => {
            let n = rng.gen_range(0..64usize);
            WireMsg::StreamFrame {
                session: rng.next_u64(),
                path: arb_path(rng),
                functions: arb_fns(rng),
                idx: rng.gen_range(0..4u32),
                dest: rng.gen_range(0..64u64),
                source: rng.gen_range(0..64u64),
                orig_w: rng.gen_range(1..64u32),
                orig_h: rng.gen_range(1..64u32),
                frame: WirePixels {
                    width: rng.gen_range(1..64u32),
                    height: rng.gen_range(1..64u32),
                    seq: rng.next_u64(),
                    pixels: (0..n).map(|_| rng.gen_range(0..256u32) as u8).collect(),
                },
                at_ms: rng.gen_range(0.0..1e4f64),
            }
        }
        8 => WireMsg::FrameAck {
            session: rng.next_u64(),
            seq: rng.next_u64(),
            valid: rng.gen_range(0..2u32) == 1,
            digest: rng.next_u64(),
            at_ms: rng.gen_range(0.0..1e4f64),
        },
        9 => WireMsg::PathProbe {
            session: rng.next_u64(),
            path: arb_path(rng),
            idx: rng.gen_range(0..4u32),
            origin: rng.gen_range(0..64u64),
            backup_idx: rng.gen_range(0..4u32),
        },
        10 => WireMsg::PathProbeAck { session: rng.next_u64(), backup_idx: rng.gen_range(0..4u32) },
        11 => WireMsg::CtrlCompose {
            request: rng.next_u64(),
            dest: rng.gen_range(0..64u64),
            chain: arb_fns(rng),
            budget: rng.gen_range(1..32u32),
        },
        12 => WireMsg::CtrlComposeResult(WireSetup {
            request: rng.next_u64(),
            ok: rng.gen_range(0..2u32) == 1,
            dest: rng.gen_range(0..64u64),
            path: arb_path(rng),
            functions: arb_fns(rng),
            backups: arb_paths(rng),
            discovery_ms: rng.gen_range(0.0..1e4f64),
            probing_ms: rng.gen_range(0.0..1e4f64),
            init_ms: rng.gen_range(0.0..1e4f64),
            total_ms: rng.gen_range(0.0..1e4f64),
        }),
        13 => WireMsg::CtrlStream {
            session: rng.next_u64(),
            path: arb_path(rng),
            functions: arb_fns(rng),
            backups: arb_paths(rng),
            dest: rng.gen_range(0..64u64),
            frames: rng.gen_range(1..512u64),
            interval_ms: rng.gen_range(1.0..100.0f64),
            width: rng.gen_range(1..128u32),
            height: rng.gen_range(1..128u32),
        },
        14 => WireMsg::CtrlStreamReport(WireStreamReport {
            session: rng.next_u64(),
            sent: rng.gen_range(0..512u64),
            delivered: rng.gen_range(0..512u64),
            all_valid: rng.gen_range(0..2u32) == 1,
            switches: rng.gen_range(0..4u32),
            maintenance_probes: rng.gen_range(0..64u64),
            final_path: arb_path(rng),
            delivery_digest: rng.next_u64(),
        }),
        15 => WireMsg::CtrlStatsReply(WireStats {
            peer: rng.gen_range(0..64u64),
            probes_sent: rng.next_u64(),
            dht_hops: rng.next_u64(),
            msgs_dropped: rng.next_u64(),
            store_entries: rng.next_u64(),
            frames_tx: rng.next_u64(),
            frames_rx: rng.next_u64(),
            bytes_tx: rng.next_u64(),
            bytes_rx: rng.next_u64(),
            conns_opened: rng.next_u64(),
            conn_retries: rng.next_u64(),
            decode_errors: rng.next_u64(),
        }),
        _ => {
            if rng.gen_range(0..2u32) == 0 {
                WireMsg::CtrlStatsRequest
            } else {
                WireMsg::CtrlShutdown
            }
        }
    }
}

#[test]
fn arbitrary_messages_round_trip() {
    let mut rng = rng_for_indexed(0xC0DEC, "wire-prop", 0);
    for _ in 0..500 {
        let msg = arb_msg(&mut rng);
        let bytes = encode_to_vec(&msg);
        let (back, used) = decode(&bytes)
            .unwrap_or_else(|e| panic!("round-trip decode failed: {e} for {msg:?}"));
        assert_eq!(used, bytes.len());
        assert_eq!(back, msg);
    }
}

#[test]
fn encoded_len_is_exact_and_encode_into_is_byte_identical() {
    let mut rng = rng_for_indexed(0xC0DEC, "wire-len", 0);
    let mut msgs = fixtures();
    msgs.extend((0..500).map(|_| arb_msg(&mut rng)));
    let pool = spidernet_wire::BufPool::default();
    for msg in &msgs {
        let bytes = encode_to_vec(msg);
        assert_eq!(msg.encoded_len(), bytes.len(), "encoded_len drifted for {:?}", msg.kind());
        // encode_into appends after existing content and matches encode().
        let mut buf = vec![0xAA, 0xBB];
        msg.encode_into(&mut buf);
        assert_eq!(&buf[..2], &[0xAA, 0xBB]);
        assert_eq!(&buf[2..], &bytes[..]);
        // The pooled path produces the same bytes.
        let pooled = pool.encode(msg);
        assert_eq!(pooled, bytes);
        pool.put(pooled);
    }
}

#[test]
fn stream_decoder_handles_a_split_at_every_byte_boundary() {
    // Vectored/partial writes can cut a frame anywhere, including inside
    // the header. Feed [frame_a | frame_b] split at every position k and
    // require the exact two-message sequence back each time.
    let mut rng = rng_for_indexed(0xC0DEC, "wire-split", 0);
    let a = arb_msg(&mut rng);
    let b = arb_msg(&mut rng);
    let mut wire = Vec::new();
    spidernet_wire::encode(&a, &mut wire);
    spidernet_wire::encode(&b, &mut wire);
    for k in 0..=wire.len() {
        let mut dec = FrameDecoder::new();
        let mut out = Vec::new();
        for chunk in [&wire[..k], &wire[k..]] {
            dec.extend(chunk);
            while let Some(m) = dec.next_frame().expect("clean stream never poisons") {
                out.push(m);
            }
        }
        assert_eq!(out, vec![a.clone(), b.clone()], "split at byte {k} corrupted the stream");
        assert_eq!(dec.pending(), 0, "split at byte {k} left pending bytes");
    }
}

#[test]
fn stream_decoder_reassembles_byte_by_byte() {
    let mut rng = rng_for_indexed(0xC0DEC, "wire-stream", 0);
    let msgs: Vec<WireMsg> = (0..40).map(|_| arb_msg(&mut rng)).collect();
    let mut wire = Vec::new();
    for m in &msgs {
        spidernet_wire::encode(m, &mut wire);
    }
    // Feed the concatenated stream in ragged chunks; expect the exact
    // message sequence out, regardless of chunk boundaries.
    let mut dec = FrameDecoder::new();
    let mut out = Vec::new();
    let mut i = 0;
    while i < wire.len() {
        let n = (rng.gen_range(1..7usize)).min(wire.len() - i);
        dec.extend(&wire[i..i + n]);
        i += n;
        while let Some(m) = dec.next_frame().expect("clean stream never poisons") {
            out.push(m);
        }
    }
    assert_eq!(out, msgs);
    assert_eq!(dec.pending(), 0);
}

// ---------------------------------------------------------------------
// Typed rejection + mutation fuzz
// ---------------------------------------------------------------------

#[test]
fn decoder_rejects_hostile_frames_with_typed_errors() {
    let good = encode_to_vec(&WireMsg::HelloAck { peer: 5, proto: 1 });

    // Truncated header.
    assert!(matches!(decode(&good[..4]), Err(WireError::Truncated { .. })));
    // Truncated payload.
    assert!(matches!(decode(&good[..good.len() - 1]), Err(WireError::Truncated { .. })));

    // Bad magic.
    let mut bad = good.clone();
    bad[0] = b'X';
    assert!(matches!(decode(&bad), Err(WireError::BadMagic(_))));

    // Unknown version.
    let mut bad = good.clone();
    bad[4] = 0x63;
    assert_eq!(decode(&bad).unwrap_err(), WireError::UnsupportedVersion(0x63));

    // Unknown frame type.
    let mut bad = good.clone();
    bad[6] = 200;
    assert_eq!(decode(&bad).unwrap_err(), WireError::UnknownFrameType(200));

    // Oversized length prefix.
    let mut bad = good.clone();
    bad[8..12].copy_from_slice(&(u32::MAX).to_le_bytes());
    assert!(matches!(decode(&bad), Err(WireError::Oversized { .. })));

    // Trailing payload bytes.
    let mut bad = good.clone();
    bad.push(0);
    let len = (bad.len() - HEADER_LEN) as u32;
    bad[8..12].copy_from_slice(&len.to_le_bytes());
    assert_eq!(decode(&bad).unwrap_err(), WireError::TrailingBytes { extra: 1 });

    // Non-zero reserved flags.
    let mut bad = good.clone();
    bad[7] = 1;
    assert!(matches!(decode(&bad), Err(WireError::Malformed(_))));

    // Only Truncated is recoverable.
    assert!(WireError::Truncated { needed: 1 }.is_recoverable());
    assert!(!WireError::BadMagic([0; 4]).is_recoverable());
}

#[test]
fn mutation_fuzz_never_panics() {
    for trial in 0..200u64 {
        let mut rng = rng_for_indexed(0xF422, "wire-fuzz", trial);
        let mut bytes = encode_to_vec(&arb_msg(&mut rng));
        // Mutate a handful of random bytes, or truncate, or extend.
        match rng.gen_range(0..3u32) {
            0 => {
                for _ in 0..rng.gen_range(1..6usize) {
                    let i = rng.gen_range(0..bytes.len());
                    bytes[i] ^= rng.gen_range(1..256u32) as u8;
                }
            }
            1 => {
                let keep = rng.gen_range(0..bytes.len());
                bytes.truncate(keep);
            }
            _ => {
                for _ in 0..rng.gen_range(1..16usize) {
                    bytes.push(rng.gen_range(0..256u32) as u8);
                }
            }
        }
        // Must decode or return a typed error; never panic.
        let _ = decode(&bytes);
    }
    // Pure byte soup, assorted lengths.
    for trial in 0..64u64 {
        let mut rng = rng_for_indexed(0xF423, "wire-soup", trial);
        let n = rng.gen_range(0..256usize);
        let soup: Vec<u8> = (0..n).map(|_| rng.gen_range(0..256u32) as u8).collect();
        let _ = decode(&soup);
    }
}

#[test]
fn version_negotiation_picks_highest_common() {
    assert_eq!(negotiate((1, 1), (1, 1)), Some(1));
    assert_eq!(negotiate((1, 3), (2, 5)), Some(3));
    assert_eq!(negotiate((2, 4), (1, 9)), Some(4));
    assert_eq!(negotiate((1, 1), (2, 2)), None);
    assert_eq!(negotiate((3, 2), (1, 9)), None);
    let _ = PROTO_VERSION;
    assert_eq!(&MAGIC, b"SPDR");
}

#[test]
fn stream_decoder_accepts_duplicated_and_reordered_frames() {
    // A retransmitting or misbehaving peer may send the same frame twice,
    // or interleave frames in an order the application never produced.
    // Framing is stateless across frames: the decoder must hand every
    // well-formed frame up in feed order and let the protocol layer dedup.
    let msgs = fixtures();
    let frames: Vec<Vec<u8>> = msgs.iter().map(encode_to_vec).collect();

    // Duplication: every fixture frame sent twice back to back.
    let mut dec = FrameDecoder::new();
    for f in &frames {
        dec.extend(f);
        dec.extend(f);
    }
    let mut out = Vec::new();
    while let Some(m) = dec.next_frame().expect("duplicated frames never poison") {
        out.push(m);
    }
    let expect: Vec<WireMsg> = msgs.iter().flat_map(|m| [m.clone(), m.clone()]).collect();
    assert_eq!(out, expect);
    assert_eq!(dec.pending(), 0);

    // Reordering: the same frames in seeded shuffled order, fed in ragged
    // chunks so duplicates may straddle a chunk boundary.
    let mut rng = rng_for_indexed(0xC0DEC, "wire-reorder", 0);
    let mut order: Vec<usize> = (0..frames.len()).collect();
    for i in (1..order.len()).rev() {
        let j = rng.gen_range(0..(i + 1) as u32) as usize;
        order.swap(i, j);
    }
    let mut wire = Vec::new();
    for &i in &order {
        wire.extend_from_slice(&frames[i]);
        wire.extend_from_slice(&frames[i]); // duplicate in the new order too
    }
    let mut dec = FrameDecoder::new();
    let mut out = Vec::new();
    let mut pos = 0;
    while pos < wire.len() {
        let n = (rng.gen_range(1..9u32) as usize).min(wire.len() - pos);
        dec.extend(&wire[pos..pos + n]);
        pos += n;
        while let Some(m) = dec.next_frame().expect("reordered frames never poison") {
            out.push(m);
        }
    }
    let expect: Vec<WireMsg> =
        order.iter().flat_map(|&i| [msgs[i].clone(), msgs[i].clone()]).collect();
    assert_eq!(out, expect);
    assert_eq!(dec.pending(), 0);
}

#[test]
fn stream_decoder_poisons_on_corruption_between_duplicates() {
    // Valid frames before a corrupt one must still come out; the corrupt
    // frame must surface as its exact typed error; and the stream must
    // stay poisoned afterwards (no resync past garbage).
    let good = encode_to_vec(&WireMsg::HelloAck { peer: 5, proto: 1 });
    let mut bad_magic = good.clone();
    bad_magic[0] = b'X';
    let mut bad_type = good.clone();
    bad_type[6] = 200;

    for (bad, want) in [
        (&bad_magic, WireError::BadMagic(*b"XPDR")),
        (&bad_type, WireError::UnknownFrameType(200)),
    ] {
        let mut dec = FrameDecoder::new();
        dec.extend(&good);
        dec.extend(&good); // duplicate
        dec.extend(bad);
        dec.extend(&good); // a frame the poisoned stream must never yield
        for _ in 0..2 {
            assert_eq!(
                dec.next_frame().expect("valid prefix decodes"),
                Some(WireMsg::HelloAck { peer: 5, proto: 1 })
            );
        }
        assert_eq!(dec.next_frame().unwrap_err(), want);
        // Poisoned: subsequent polls keep failing instead of resyncing.
        assert!(dec.next_frame().is_err(), "decoder resynced past corruption");
    }
}

#[test]
fn version_negotiation_matrix() {
    // Exhaustive over all (min, max) range pairs with bounds <= 4:
    // negotiate is symmetric, picks the highest mutually supported
    // version, and returns None exactly when the ranges are disjoint
    // (or a range is itself empty, min > max).
    for a_lo in 0..=4u16 {
        for a_hi in 0..=4u16 {
            for b_lo in 0..=4u16 {
                for b_hi in 0..=4u16 {
                    let a = (a_lo, a_hi);
                    let b = (b_lo, b_hi);
                    let got = negotiate(a, b);
                    assert_eq!(got, negotiate(b, a), "negotiate not symmetric for {a:?} {b:?}");
                    let common: Vec<u16> = (0..=4)
                        .filter(|v| a_lo <= *v && *v <= a_hi && b_lo <= *v && *v <= b_hi)
                        .collect();
                    assert_eq!(got, common.last().copied(), "wrong pick for {a:?} {b:?}");
                }
            }
        }
    }
}
