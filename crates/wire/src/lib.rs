//! SpiderNet's wire protocol: a versioned, length-prefixed binary codec
//! for the full peer-to-peer message set — DHT lookup/reply/register,
//! BCP composition probes, session setup acks, maintenance keepalives,
//! media frames, and the control plane the deploy orchestrator speaks.
//!
//! The crate is transport-agnostic and dependency-free: it maps
//! [`WireMsg`] values to byte frames and back, nothing more. The socket
//! daemon in `spidernet-runtime` layers TCP connections on top; the
//! in-process cluster bypasses it entirely (its channel "wire" carries
//! the runtime `Msg` type directly). Conversions between the two message
//! types live in the runtime, keeping this crate free of `SyncSender`
//! handles and `Arc` frames that can never serialize.
//!
//! See `DESIGN.md` §12 for the frame layout and version-negotiation
//! rules in one table.

#![warn(missing_docs)]

pub mod codec;
pub mod error;
pub mod msg;
pub mod pool;

pub use codec::{Reader, Writer, MAX_ELEMS, MAX_PIXEL_BYTES};
pub use error::WireError;
pub use pool::BufPool;
pub use msg::{
    decode, encode, encode_to_vec, negotiate, FrameDecoder, WireMsg, WirePixels, WireProbe,
    WireReplica, WireSetup, WireStats, WireStreamReport, CONTROL_PEER, HEADER_LEN, MAGIC,
    MAX_PAYLOAD, PROTO_VERSION,
};
