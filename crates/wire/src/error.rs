//! Typed decode failures.
//!
//! The decoder never panics on adversarial input: every malformed byte
//! stream maps to one of these variants so transports can decide between
//! "wait for more bytes" ([`WireError::Truncated`]) and "poison the
//! connection" (everything else).

use std::fmt;

/// Why a byte stream failed to decode into a [`crate::WireMsg`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The frame did not start with the `SPDR` magic.
    BadMagic([u8; 4]),
    /// The frame's protocol version is not one this build speaks.
    UnsupportedVersion(u16),
    /// The frame-type byte names no known message.
    UnknownFrameType(u8),
    /// The buffer ends before the frame does; at least `needed` more
    /// bytes are required. Recoverable: feed more bytes and retry.
    Truncated {
        /// Additional bytes required before a decode can succeed.
        needed: usize,
    },
    /// The length prefix exceeds the protocol's payload ceiling.
    Oversized {
        /// Claimed payload length.
        len: u64,
        /// Maximum the protocol permits.
        max: u64,
    },
    /// The payload parsed but left unconsumed bytes behind.
    TrailingBytes {
        /// Unconsumed payload bytes.
        extra: usize,
    },
    /// The payload violated a structural invariant (bad bool byte,
    /// element count over limit, inner overrun, …).
    Malformed(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            WireError::UnsupportedVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::UnknownFrameType(k) => write!(f, "unknown frame type {k}"),
            WireError::Truncated { needed } => {
                write!(f, "truncated frame: need >= {needed} more bytes")
            }
            WireError::Oversized { len, max } => {
                write!(f, "oversized frame: payload {len} exceeds {max}")
            }
            WireError::TrailingBytes { extra } => {
                write!(f, "frame payload has {extra} trailing bytes")
            }
            WireError::Malformed(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

impl WireError {
    /// True when feeding more bytes could turn the failure into a
    /// successful decode (the stream itself is not poisoned).
    pub fn is_recoverable(&self) -> bool {
        matches!(self, WireError::Truncated { .. })
    }
}
