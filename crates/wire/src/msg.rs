//! The SpiderNet peer-to-peer frame set and its framing layer.
//!
//! ## Frame layout
//!
//! ```text
//! offset  size  field
//! 0       4     magic  = "SPDR"
//! 4       2     protocol version (little-endian u16)
//! 6       1     frame type (see the kind table on [`WireMsg`])
//! 7       1     flags (reserved, must be 0)
//! 8       4     payload length (little-endian u32, <= MAX_PAYLOAD)
//! 12      n     payload (per-type encoding, see `src/codec.rs` primitives)
//! ```
//!
//! Decoding is total: every byte stream maps to `Ok` or a typed
//! [`WireError`]; nothing panics. [`WireError::Truncated`] is the one
//! recoverable error — a stream decoder waits for more bytes and retries.

use crate::codec::{Reader, Writer};
use crate::error::WireError;
use spidernet_util::qos::QosVector;
use spidernet_util::res::ResourceVector;

/// Frame magic, first on the wire.
pub const MAGIC: [u8; 4] = *b"SPDR";

/// The protocol version this build speaks (both bounds of its range).
pub const PROTO_VERSION: u16 = 1;

/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 12;

/// Ceiling on one frame's payload (64 MiB).
pub const MAX_PAYLOAD: u32 = 1 << 26;

/// Pseudo peer-id used by control clients (the deploy orchestrator) in
/// their [`WireMsg::Hello`]; real peers use their dense overlay index.
pub const CONTROL_PEER: u64 = u64::MAX;

/// Picks the highest protocol version two ranges share, if any —
/// the version-negotiation rule applied to [`WireMsg::Hello`].
pub fn negotiate(a: (u16, u16), b: (u16, u16)) -> Option<u16> {
    let lo = a.0.max(b.0);
    let hi = a.1.min(b.1);
    (lo <= hi).then_some(hi)
}

/// A discovered replica advertisement: which peer hosts which function
/// (functions travel as their dense registry code).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WireReplica {
    /// Hosting peer.
    pub peer: u64,
    /// Function code (dense index into the deployment's function registry).
    pub function: u8,
}

/// A media frame payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WirePixels {
    /// Pixels per row.
    pub width: u32,
    /// Rows.
    pub height: u32,
    /// Sequence number within the stream.
    pub seq: u64,
    /// Row-major grayscale bytes.
    pub pixels: Vec<u8>,
}

/// A BCP composition probe walking the function chain: the function
/// graph (`chain` + per-position `replica_lists`), the visited set
/// (`path`), the accumulated QoS vector, the remaining budget β, and the
/// accumulated model-time latency (`at_ms`).
#[derive(Clone, Debug, PartialEq)]
pub struct WireProbe {
    /// Request this probe serves.
    pub request: u64,
    /// The application sender.
    pub source: u64,
    /// The application receiver.
    pub dest: u64,
    /// Required function codes, composition order.
    pub chain: Vec<u8>,
    /// Prefetched replica lists, one per chain position.
    pub replica_lists: Vec<Vec<WireReplica>>,
    /// Next chain position to instantiate.
    pub pos: u32,
    /// Component peers chosen so far (the visited set).
    pub path: Vec<u64>,
    /// Remaining probing budget β.
    pub budget: u32,
    /// Accumulated additive QoS along the partial path.
    pub acc_qos: QosVector,
    /// Accumulated model-time delivery timestamp, ms.
    pub at_ms: f64,
}

/// Result of one session setup, as reported to a control client.
#[derive(Clone, Debug, PartialEq)]
pub struct WireSetup {
    /// Request id (doubles as the session id).
    pub request: u64,
    /// Whether a composition was established.
    pub ok: bool,
    /// The application receiver.
    pub dest: u64,
    /// Selected component path, composition order.
    pub path: Vec<u64>,
    /// Function codes along the path.
    pub functions: Vec<u8>,
    /// Alternative complete paths (failover backups).
    pub backups: Vec<Vec<u64>>,
    /// Decentralized service discovery time, model ms.
    pub discovery_ms: f64,
    /// Probing + destination selection time, model ms.
    pub probing_ms: f64,
    /// Session initialization (reverse-ack) time, model ms.
    pub init_ms: f64,
    /// End-to-end setup time, model ms.
    pub total_ms: f64,
}

/// Final report of one streaming session, as reported to a control client.
#[derive(Clone, Debug, PartialEq)]
pub struct WireStreamReport {
    /// Session id.
    pub session: u64,
    /// Frames emitted by the source.
    pub sent: u64,
    /// Frames acknowledged by the destination.
    pub delivered: u64,
    /// Whether every delivered frame matched the expected transform chain.
    pub all_valid: bool,
    /// Path failovers performed.
    pub switches: u32,
    /// Maintenance probes sent along backup paths.
    pub maintenance_probes: u64,
    /// The path in use when the stream ended.
    pub final_path: Vec<u64>,
    /// Order-independent digest over all delivered frame pixels.
    pub delivery_digest: u64,
}

/// One node's counter snapshot, as reported to a control client.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Reporting peer.
    pub peer: u64,
    /// BCP probe transmissions.
    pub probes_sent: u64,
    /// DHT routing steps handled.
    pub dht_hops: u64,
    /// Droppable messages lost to fault injection at this sender.
    pub msgs_dropped: u64,
    /// Replica advertisements stored in this node's DHT shard.
    pub store_entries: u64,
    /// Wire frames encoded and handed to a connection.
    pub frames_tx: u64,
    /// Wire frames decoded off connections.
    pub frames_rx: u64,
    /// Payload + header bytes written.
    pub bytes_tx: u64,
    /// Payload + header bytes read.
    pub bytes_rx: u64,
    /// Outbound connections successfully established.
    pub conns_opened: u64,
    /// Outbound dial attempts that failed (and were retried or gave up).
    pub conn_retries: u64,
    /// Frames rejected by the decoder.
    pub decode_errors: u64,
}

/// Every message that can cross a SpiderNet socket.
///
/// | kind | message | | kind | message |
/// |-----:|---------|-|-----:|---------|
/// | 1 | `Hello` | | 10 | `PathProbe` |
/// | 2 | `HelloAck` | | 11 | `PathProbeAck` |
/// | 3 | `DhtLookup` | | 20 | `CtrlCompose` |
/// | 4 | `DhtReply` | | 21 | `CtrlComposeResult` |
/// | 5 | `Register` | | 22 | `CtrlStream` |
/// | 6 | `Probe` | | 23 | `CtrlStreamReport` |
/// | 7 | `SetupAck` | | 24 | `CtrlStatsRequest` |
/// | 8 | `StreamFrame` | | 25 | `CtrlStatsReply` |
/// | 9 | `FrameAck` | | 26 | `CtrlShutdown` |
#[derive(Clone, Debug, PartialEq)]
pub enum WireMsg {
    /// Connection handshake: always the first frame on a connection, in
    /// both directions. Carries the speaker's identity and supported
    /// protocol range for version negotiation (see [`negotiate`]).
    Hello {
        /// Speaking peer ([`CONTROL_PEER`] for control clients).
        peer: u64,
        /// The peer's 128-bit Pastry ring id (0 for control clients).
        node_id: u128,
        /// Lowest protocol version the speaker accepts.
        proto_min: u16,
        /// Highest protocol version the speaker accepts.
        proto_max: u16,
        /// The speaker's own listening port (0 if it does not listen).
        listen_port: u16,
    },
    /// Handshake acknowledgement with the negotiated version.
    HelloAck {
        /// Responding peer.
        peer: u64,
        /// The negotiated protocol version.
        proto: u16,
    },
    /// DHT lookup being routed hop-by-hop toward `key`'s root.
    DhtLookup {
        /// Query correlation id.
        query: u64,
        /// Target key on the ring.
        key: u128,
        /// Peer awaiting the reply.
        origin: u64,
        /// Hops taken so far.
        hops: u32,
        /// Accumulated model-time timestamp, ms.
        at_ms: f64,
    },
    /// Reply from the key's root back to the querying peer.
    DhtReply {
        /// Query correlation id.
        query: u64,
        /// The stored replica list (possibly empty).
        metas: Vec<WireReplica>,
        /// Accumulated model-time timestamp, ms.
        at_ms: f64,
    },
    /// Metadata registration routed hop-by-hop to the key's root, where
    /// the advertisement is stored in that node's DHT shard.
    Register {
        /// Target key on the ring.
        key: u128,
        /// The replica being advertised.
        replica: WireReplica,
        /// Advertised per-component QoS vector (e.g. processing delay).
        qos: QosVector,
        /// Advertised end-system resource availability.
        res: ResourceVector,
        /// Hops taken so far.
        hops: u32,
    },
    /// A BCP composition probe.
    Probe(WireProbe),
    /// Session-setup acknowledgement travelling the reversed service
    /// path. `idx == u32::MAX` marks the final leg to the source.
    SetupAck {
        /// Session id.
        session: u64,
        /// Component peers, composition order.
        path: Vec<u64>,
        /// Function codes, composition order.
        functions: Vec<u8>,
        /// Position in `path` this hop initializes (moves toward 0;
        /// `u32::MAX` = final leg to the source).
        idx: u32,
        /// The application sender to notify at the end.
        source: u64,
        /// Alternative complete paths carried to the source.
        backups: Vec<Vec<u64>>,
        /// Model ms when the destination selected the composition.
        selected_ms: f64,
        /// Accumulated model-time timestamp, ms.
        at_ms: f64,
    },
    /// A media frame in flight along a composed session.
    StreamFrame {
        /// Session id.
        session: u64,
        /// Component peers, composition order.
        path: Vec<u64>,
        /// Function codes, composition order.
        functions: Vec<u8>,
        /// Next position to process (`path.len()` = deliver to dest).
        idx: u32,
        /// The application receiver.
        dest: u64,
        /// The application sender (for the delivery ack).
        source: u64,
        /// Width of the frame as originally emitted by the source.
        orig_w: u32,
        /// Height of the frame as originally emitted by the source.
        orig_h: u32,
        /// The frame payload.
        frame: WirePixels,
        /// Accumulated model-time timestamp, ms.
        at_ms: f64,
    },
    /// Destination → source delivery acknowledgement.
    FrameAck {
        /// Session id.
        session: u64,
        /// Delivered frame sequence number.
        seq: u64,
        /// Whether the delivered frame matched the expected output.
        valid: bool,
        /// Digest of the delivered frame's pixels.
        digest: u64,
        /// Accumulated model-time timestamp, ms.
        at_ms: f64,
    },
    /// Low-rate maintenance probe (keepalive) walking a backup path.
    PathProbe {
        /// Session whose backup is being checked.
        session: u64,
        /// The backup path under test.
        path: Vec<u64>,
        /// Next hop index; `path.len()` returns to the origin.
        idx: u32,
        /// The probing source.
        origin: u64,
        /// Which backup (index into the source's backup list).
        backup_idx: u32,
    },
    /// Maintenance probe returning alive.
    PathProbeAck {
        /// Session id.
        session: u64,
        /// Backup index confirmed alive.
        backup_idx: u32,
    },
    /// Control: compose a session from the receiving node.
    CtrlCompose {
        /// Request id.
        request: u64,
        /// The application receiver.
        dest: u64,
        /// Required function codes, composition order.
        chain: Vec<u8>,
        /// Probing budget β.
        budget: u32,
    },
    /// Control: the setup result for a [`WireMsg::CtrlCompose`].
    CtrlComposeResult(WireSetup),
    /// Control: stream frames along an established session.
    CtrlStream {
        /// Session id (from the setup result).
        session: u64,
        /// Primary component path.
        path: Vec<u64>,
        /// Function codes along the path.
        functions: Vec<u8>,
        /// Backup paths, preference-ordered.
        backups: Vec<Vec<u64>>,
        /// The application receiver.
        dest: u64,
        /// Frames to send.
        frames: u64,
        /// Model-time between frames, ms.
        interval_ms: f64,
        /// Frame width.
        width: u32,
        /// Frame height.
        height: u32,
    },
    /// Control: the final report for a [`WireMsg::CtrlStream`].
    CtrlStreamReport(WireStreamReport),
    /// Control: request a counter snapshot.
    CtrlStatsRequest,
    /// Control: the counter snapshot.
    CtrlStatsReply(WireStats),
    /// Control: drain and exit.
    CtrlShutdown,
}

impl WireMsg {
    /// The frame-type byte (see the kind table on [`WireMsg`]).
    pub fn kind(&self) -> u8 {
        match self {
            WireMsg::Hello { .. } => 1,
            WireMsg::HelloAck { .. } => 2,
            WireMsg::DhtLookup { .. } => 3,
            WireMsg::DhtReply { .. } => 4,
            WireMsg::Register { .. } => 5,
            WireMsg::Probe(_) => 6,
            WireMsg::SetupAck { .. } => 7,
            WireMsg::StreamFrame { .. } => 8,
            WireMsg::FrameAck { .. } => 9,
            WireMsg::PathProbe { .. } => 10,
            WireMsg::PathProbeAck { .. } => 11,
            WireMsg::CtrlCompose { .. } => 20,
            WireMsg::CtrlComposeResult(_) => 21,
            WireMsg::CtrlStream { .. } => 22,
            WireMsg::CtrlStreamReport(_) => 23,
            WireMsg::CtrlStatsRequest => 24,
            WireMsg::CtrlStatsReply(_) => 25,
            WireMsg::CtrlShutdown => 26,
        }
    }

    /// Exact payload size [`WireMsg::encode_into`] will write, in bytes.
    /// Kept in lockstep with `write_payload` (pinned by the codec tests:
    /// every golden and fuzzed message asserts predicted == written).
    fn payload_len(&self) -> usize {
        match self {
            WireMsg::Hello { .. } => 8 + 16 + 2 + 2 + 2,
            WireMsg::HelloAck { .. } => 8 + 2,
            WireMsg::DhtLookup { .. } => 8 + 16 + 8 + 4 + 8,
            WireMsg::DhtReply { metas, .. } => 8 + replicas_len(metas) + 8,
            WireMsg::Register { qos, .. } => 16 + 9 + qos_len(qos) + res_len() + 4,
            WireMsg::Probe(p) => {
                8 + 8
                    + 8
                    + bytes_len(&p.chain)
                    + 4
                    + p.replica_lists.iter().map(|l| replicas_len(l)).sum::<usize>()
                    + 4
                    + u64s_len(&p.path)
                    + 4
                    + qos_len(&p.acc_qos)
                    + 8
            }
            WireMsg::SetupAck { path, functions, backups, .. } => {
                8 + u64s_len(path) + bytes_len(functions) + 4 + 8 + paths_len(backups) + 8 + 8
            }
            WireMsg::StreamFrame { path, functions, frame, .. } => {
                8 + u64s_len(path)
                    + bytes_len(functions)
                    + 4
                    + 8
                    + 8
                    + 4
                    + 4
                    + (4 + 4 + 8 + bytes_len(&frame.pixels))
                    + 8
            }
            WireMsg::FrameAck { .. } => 8 + 8 + 1 + 8 + 8,
            WireMsg::PathProbe { path, .. } => 8 + u64s_len(path) + 4 + 8 + 4,
            WireMsg::PathProbeAck { .. } => 8 + 4,
            WireMsg::CtrlCompose { chain, .. } => 8 + 8 + bytes_len(chain) + 4,
            WireMsg::CtrlComposeResult(s) => {
                8 + 1
                    + 8
                    + u64s_len(&s.path)
                    + bytes_len(&s.functions)
                    + paths_len(&s.backups)
                    + 8 * 4
            }
            WireMsg::CtrlStream { path, functions, backups, .. } => {
                8 + u64s_len(path) + bytes_len(functions) + paths_len(backups) + 8 + 8 + 8 + 4 + 4
            }
            WireMsg::CtrlStreamReport(r) => 8 + 8 + 8 + 1 + 4 + 8 + u64s_len(&r.final_path) + 8,
            WireMsg::CtrlStatsRequest | WireMsg::CtrlShutdown => 0,
            WireMsg::CtrlStatsReply(_) => 8 * 12,
        }
    }

    /// Exact number of bytes one encoded frame of this message occupies
    /// (header + payload). Lets a sender reserve once — pooled buffers
    /// never reallocate mid-encode.
    pub fn encoded_len(&self) -> usize {
        HEADER_LEN + self.payload_len()
    }

    /// Appends one complete frame (header + payload) onto `out` without
    /// intermediate allocation: the payload length is computed up front
    /// ([`WireMsg::encoded_len`]) and written with the header, and exactly
    /// the missing capacity is reserved. Byte-identical to the historical
    /// patch-up encoder (the golden pins prove it).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let payload = self.payload_len();
        debug_assert!(payload as u64 <= MAX_PAYLOAD as u64);
        out.reserve(HEADER_LEN + payload);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&PROTO_VERSION.to_le_bytes());
        out.push(self.kind());
        out.push(0); // flags
        out.extend_from_slice(&(payload as u32).to_le_bytes());
        let start = out.len();
        write_payload(self, &mut Writer::new(out));
        debug_assert_eq!(
            out.len() - start,
            payload,
            "payload_len out of sync with write_payload for kind {}",
            self.kind()
        );
    }

    /// Whether a fault injector may drop or jitter this frame. Mirrors
    /// the runtime's `Msg::droppable`: genuine wire traffic only —
    /// handshakes and control-plane frames always deliver.
    pub fn droppable(&self) -> bool {
        matches!(
            self,
            WireMsg::DhtLookup { .. }
                | WireMsg::DhtReply { .. }
                | WireMsg::Register { .. }
                | WireMsg::Probe(_)
                | WireMsg::SetupAck { .. }
                | WireMsg::StreamFrame { .. }
                | WireMsg::FrameAck { .. }
                | WireMsg::PathProbe { .. }
                | WireMsg::PathProbeAck { .. }
        )
    }
}

// ---------------------------------------------------------------------
// Encode
// ---------------------------------------------------------------------

/// Encoded size of a `u32`-length-prefixed byte slice.
#[inline]
fn bytes_len(v: &[u8]) -> usize {
    4 + v.len()
}

/// Encoded size of a `u32`-length-prefixed `u64` list.
#[inline]
fn u64s_len(v: &[u64]) -> usize {
    4 + 8 * v.len()
}

/// Encoded size of a QoS vector (`u32` dims + per-dimension `f64`).
#[inline]
fn qos_len(q: &QosVector) -> usize {
    4 + 8 * q.dims()
}

/// Encoded size of a resource vector (fixed-shape `f64`s, no prefix).
#[inline]
fn res_len() -> usize {
    8 * spidernet_util::res::ResourceKind::ALL.len()
}

/// Encoded size of a length-prefixed replica list.
#[inline]
fn replicas_len(ms: &[WireReplica]) -> usize {
    4 + 9 * ms.len()
}

/// Encoded size of a length-prefixed list of paths.
#[inline]
fn paths_len(paths: &[Vec<u64>]) -> usize {
    4 + paths.iter().map(|p| u64s_len(p)).sum::<usize>()
}

fn write_replica(w: &mut Writer<'_>, m: &WireReplica) {
    w.u64(m.peer);
    w.u8(m.function);
}

fn write_replicas(w: &mut Writer<'_>, ms: &[WireReplica]) {
    w.u32(ms.len() as u32);
    for m in ms {
        write_replica(w, m);
    }
}

fn write_paths(w: &mut Writer<'_>, paths: &[Vec<u64>]) {
    w.u32(paths.len() as u32);
    for p in paths {
        w.u64s(p);
    }
}

fn write_payload(msg: &WireMsg, w: &mut Writer<'_>) {
    match msg {
        WireMsg::Hello { peer, node_id, proto_min, proto_max, listen_port } => {
            w.u64(*peer);
            w.u128(*node_id);
            w.u16(*proto_min);
            w.u16(*proto_max);
            w.u16(*listen_port);
        }
        WireMsg::HelloAck { peer, proto } => {
            w.u64(*peer);
            w.u16(*proto);
        }
        WireMsg::DhtLookup { query, key, origin, hops, at_ms } => {
            w.u64(*query);
            w.u128(*key);
            w.u64(*origin);
            w.u32(*hops);
            w.f64(*at_ms);
        }
        WireMsg::DhtReply { query, metas, at_ms } => {
            w.u64(*query);
            write_replicas(w, metas);
            w.f64(*at_ms);
        }
        WireMsg::Register { key, replica, qos, res, hops } => {
            w.u128(*key);
            write_replica(w, replica);
            w.qos(qos);
            w.res(res);
            w.u32(*hops);
        }
        WireMsg::Probe(p) => {
            w.u64(p.request);
            w.u64(p.source);
            w.u64(p.dest);
            w.bytes(&p.chain);
            w.u32(p.replica_lists.len() as u32);
            for list in &p.replica_lists {
                write_replicas(w, list);
            }
            w.u32(p.pos);
            w.u64s(&p.path);
            w.u32(p.budget);
            w.qos(&p.acc_qos);
            w.f64(p.at_ms);
        }
        WireMsg::SetupAck { session, path, functions, idx, source, backups, selected_ms, at_ms } => {
            w.u64(*session);
            w.u64s(path);
            w.bytes(functions);
            w.u32(*idx);
            w.u64(*source);
            write_paths(w, backups);
            w.f64(*selected_ms);
            w.f64(*at_ms);
        }
        WireMsg::StreamFrame {
            session,
            path,
            functions,
            idx,
            dest,
            source,
            orig_w,
            orig_h,
            frame,
            at_ms,
        } => {
            w.u64(*session);
            w.u64s(path);
            w.bytes(functions);
            w.u32(*idx);
            w.u64(*dest);
            w.u64(*source);
            w.u32(*orig_w);
            w.u32(*orig_h);
            w.u32(frame.width);
            w.u32(frame.height);
            w.u64(frame.seq);
            w.bytes(&frame.pixels);
            w.f64(*at_ms);
        }
        WireMsg::FrameAck { session, seq, valid, digest, at_ms } => {
            w.u64(*session);
            w.u64(*seq);
            w.bool(*valid);
            w.u64(*digest);
            w.f64(*at_ms);
        }
        WireMsg::PathProbe { session, path, idx, origin, backup_idx } => {
            w.u64(*session);
            w.u64s(path);
            w.u32(*idx);
            w.u64(*origin);
            w.u32(*backup_idx);
        }
        WireMsg::PathProbeAck { session, backup_idx } => {
            w.u64(*session);
            w.u32(*backup_idx);
        }
        WireMsg::CtrlCompose { request, dest, chain, budget } => {
            w.u64(*request);
            w.u64(*dest);
            w.bytes(chain);
            w.u32(*budget);
        }
        WireMsg::CtrlComposeResult(s) => {
            w.u64(s.request);
            w.bool(s.ok);
            w.u64(s.dest);
            w.u64s(&s.path);
            w.bytes(&s.functions);
            write_paths(w, &s.backups);
            w.f64(s.discovery_ms);
            w.f64(s.probing_ms);
            w.f64(s.init_ms);
            w.f64(s.total_ms);
        }
        WireMsg::CtrlStream {
            session,
            path,
            functions,
            backups,
            dest,
            frames,
            interval_ms,
            width,
            height,
        } => {
            w.u64(*session);
            w.u64s(path);
            w.bytes(functions);
            write_paths(w, backups);
            w.u64(*dest);
            w.u64(*frames);
            w.f64(*interval_ms);
            w.u32(*width);
            w.u32(*height);
        }
        WireMsg::CtrlStreamReport(r) => {
            w.u64(r.session);
            w.u64(r.sent);
            w.u64(r.delivered);
            w.bool(r.all_valid);
            w.u32(r.switches);
            w.u64(r.maintenance_probes);
            w.u64s(&r.final_path);
            w.u64(r.delivery_digest);
        }
        WireMsg::CtrlStatsRequest | WireMsg::CtrlShutdown => {}
        WireMsg::CtrlStatsReply(s) => {
            w.u64(s.peer);
            w.u64(s.probes_sent);
            w.u64(s.dht_hops);
            w.u64(s.msgs_dropped);
            w.u64(s.store_entries);
            w.u64(s.frames_tx);
            w.u64(s.frames_rx);
            w.u64(s.bytes_tx);
            w.u64(s.bytes_rx);
            w.u64(s.conns_opened);
            w.u64(s.conn_retries);
            w.u64(s.decode_errors);
        }
    }
}

/// Appends one complete frame (header + payload) for `msg` onto `out`.
/// Thin wrapper over [`WireMsg::encode_into`].
pub fn encode(msg: &WireMsg, out: &mut Vec<u8>) {
    msg.encode_into(out);
}

/// Encodes one frame into a fresh, exactly-sized buffer.
pub fn encode_to_vec(msg: &WireMsg) -> Vec<u8> {
    let mut out = Vec::with_capacity(msg.encoded_len());
    msg.encode_into(&mut out);
    out
}

// ---------------------------------------------------------------------
// Decode
// ---------------------------------------------------------------------

fn read_replica(r: &mut Reader<'_>) -> Result<WireReplica, WireError> {
    Ok(WireReplica { peer: r.u64()?, function: r.u8()? })
}

fn read_replicas(r: &mut Reader<'_>) -> Result<Vec<WireReplica>, WireError> {
    let n = r.elems(9)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(read_replica(r)?);
    }
    Ok(out)
}

fn read_paths(r: &mut Reader<'_>) -> Result<Vec<Vec<u64>>, WireError> {
    let n = r.elems(4)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.u64s()?);
    }
    Ok(out)
}

fn read_fn_codes(r: &mut Reader<'_>) -> Result<Vec<u8>, WireError> {
    let n = r.elems(1)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.u8()?);
    }
    Ok(out)
}

fn read_payload(kind: u8, r: &mut Reader<'_>) -> Result<WireMsg, WireError> {
    let msg = match kind {
        1 => WireMsg::Hello {
            peer: r.u64()?,
            node_id: r.u128()?,
            proto_min: r.u16()?,
            proto_max: r.u16()?,
            listen_port: r.u16()?,
        },
        2 => WireMsg::HelloAck { peer: r.u64()?, proto: r.u16()? },
        3 => WireMsg::DhtLookup {
            query: r.u64()?,
            key: r.u128()?,
            origin: r.u64()?,
            hops: r.u32()?,
            at_ms: r.f64()?,
        },
        4 => WireMsg::DhtReply { query: r.u64()?, metas: read_replicas(r)?, at_ms: r.f64()? },
        5 => WireMsg::Register {
            key: r.u128()?,
            replica: read_replica(r)?,
            qos: r.qos()?,
            res: r.res()?,
            hops: r.u32()?,
        },
        6 => {
            let request = r.u64()?;
            let source = r.u64()?;
            let dest = r.u64()?;
            let chain = read_fn_codes(r)?;
            let lists = r.elems(4)?;
            let mut replica_lists = Vec::with_capacity(lists);
            for _ in 0..lists {
                replica_lists.push(read_replicas(r)?);
            }
            WireMsg::Probe(WireProbe {
                request,
                source,
                dest,
                chain,
                replica_lists,
                pos: r.u32()?,
                path: r.u64s()?,
                budget: r.u32()?,
                acc_qos: r.qos()?,
                at_ms: r.f64()?,
            })
        }
        7 => WireMsg::SetupAck {
            session: r.u64()?,
            path: r.u64s()?,
            functions: read_fn_codes(r)?,
            idx: r.u32()?,
            source: r.u64()?,
            backups: read_paths(r)?,
            selected_ms: r.f64()?,
            at_ms: r.f64()?,
        },
        8 => WireMsg::StreamFrame {
            session: r.u64()?,
            path: r.u64s()?,
            functions: read_fn_codes(r)?,
            idx: r.u32()?,
            dest: r.u64()?,
            source: r.u64()?,
            orig_w: r.u32()?,
            orig_h: r.u32()?,
            frame: WirePixels {
                width: r.u32()?,
                height: r.u32()?,
                seq: r.u64()?,
                pixels: r.pixel_bytes()?,
            },
            at_ms: r.f64()?,
        },
        9 => WireMsg::FrameAck {
            session: r.u64()?,
            seq: r.u64()?,
            valid: r.bool()?,
            digest: r.u64()?,
            at_ms: r.f64()?,
        },
        10 => WireMsg::PathProbe {
            session: r.u64()?,
            path: r.u64s()?,
            idx: r.u32()?,
            origin: r.u64()?,
            backup_idx: r.u32()?,
        },
        11 => WireMsg::PathProbeAck { session: r.u64()?, backup_idx: r.u32()? },
        20 => WireMsg::CtrlCompose {
            request: r.u64()?,
            dest: r.u64()?,
            chain: read_fn_codes(r)?,
            budget: r.u32()?,
        },
        21 => WireMsg::CtrlComposeResult(WireSetup {
            request: r.u64()?,
            ok: r.bool()?,
            dest: r.u64()?,
            path: r.u64s()?,
            functions: read_fn_codes(r)?,
            backups: read_paths(r)?,
            discovery_ms: r.f64()?,
            probing_ms: r.f64()?,
            init_ms: r.f64()?,
            total_ms: r.f64()?,
        }),
        22 => WireMsg::CtrlStream {
            session: r.u64()?,
            path: r.u64s()?,
            functions: read_fn_codes(r)?,
            backups: read_paths(r)?,
            dest: r.u64()?,
            frames: r.u64()?,
            interval_ms: r.f64()?,
            width: r.u32()?,
            height: r.u32()?,
        },
        23 => WireMsg::CtrlStreamReport(WireStreamReport {
            session: r.u64()?,
            sent: r.u64()?,
            delivered: r.u64()?,
            all_valid: r.bool()?,
            switches: r.u32()?,
            maintenance_probes: r.u64()?,
            final_path: r.u64s()?,
            delivery_digest: r.u64()?,
        }),
        24 => WireMsg::CtrlStatsRequest,
        25 => WireMsg::CtrlStatsReply(WireStats {
            peer: r.u64()?,
            probes_sent: r.u64()?,
            dht_hops: r.u64()?,
            msgs_dropped: r.u64()?,
            store_entries: r.u64()?,
            frames_tx: r.u64()?,
            frames_rx: r.u64()?,
            bytes_tx: r.u64()?,
            bytes_rx: r.u64()?,
            conns_opened: r.u64()?,
            conn_retries: r.u64()?,
            decode_errors: r.u64()?,
        }),
        26 => WireMsg::CtrlShutdown,
        other => return Err(WireError::UnknownFrameType(other)),
    };
    Ok(msg)
}

/// Decodes one frame from the front of `buf`; returns the message and the
/// number of bytes consumed.
///
/// [`WireError::Truncated`] means `buf` holds a valid prefix — feed more
/// bytes and retry. Every other error poisons the stream (the framing can
/// no longer be trusted).
pub fn decode(buf: &[u8]) -> Result<(WireMsg, usize), WireError> {
    if buf.len() < HEADER_LEN {
        return Err(WireError::Truncated { needed: HEADER_LEN - buf.len() });
    }
    let magic: [u8; 4] = buf[0..4].try_into().unwrap();
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let version = u16::from_le_bytes(buf[4..6].try_into().unwrap());
    if version != PROTO_VERSION {
        return Err(WireError::UnsupportedVersion(version));
    }
    let kind = buf[6];
    if buf[7] != 0 {
        return Err(WireError::Malformed("non-zero flags"));
    }
    let len = u32::from_le_bytes(buf[8..12].try_into().unwrap());
    if len > MAX_PAYLOAD {
        return Err(WireError::Oversized { len: len as u64, max: MAX_PAYLOAD as u64 });
    }
    let total = HEADER_LEN + len as usize;
    if buf.len() < total {
        return Err(WireError::Truncated { needed: total - buf.len() });
    }
    let mut r = Reader::new(&buf[HEADER_LEN..total]);
    let msg = read_payload(kind, &mut r)?;
    if r.remaining() != 0 {
        return Err(WireError::TrailingBytes { extra: r.remaining() });
    }
    Ok((msg, total))
}

/// Incremental stream decoder: feed raw socket bytes with
/// [`FrameDecoder::extend`], pop complete frames with
/// [`FrameDecoder::next_frame`].
#[derive(Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    start: usize,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw bytes read off a socket.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Compact lazily: only when the dead prefix dominates the buffer.
        if self.start > 4096 && self.start * 2 > self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet decoded.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Pops the next complete frame. `Ok(None)` means "need more bytes";
    /// any `Err` poisons the stream and the connection should be closed.
    pub fn next_frame(&mut self) -> Result<Option<WireMsg>, WireError> {
        match decode(&self.buf[self.start..]) {
            Ok((msg, used)) => {
                self.start += used;
                if self.start == self.buf.len() {
                    self.buf.clear();
                    self.start = 0;
                }
                Ok(Some(msg))
            }
            Err(WireError::Truncated { .. }) => Ok(None),
            Err(e) => Err(e),
        }
    }
}
