//! A small free-list of frame buffers shared between the encoding side
//! (protocol engine / sender queues) and the transport that eventually
//! writes the bytes out.
//!
//! The hot loop of a busy daemon encodes thousands of frames per second;
//! allocating a fresh `Vec<u8>` per frame shows up directly in
//! `wirebench`. A [`BufPool`] recycles the backing allocations instead:
//! [`BufPool::encode`] pops a cleared buffer (or allocates one on a cold
//! pool), reserves the frame's exact [`WireMsg::encoded_len`], and
//! encodes with [`WireMsg::encode_into`] — zero reallocation per frame
//! once the pool is warm. The writer returns drained buffers with
//! [`BufPool::put`].
//!
//! The pool is bounded: buffers beyond `max_buffers` (and buffers whose
//! capacity outgrew `max_buf_capacity`, e.g. one-off jumbo media frames)
//! are dropped rather than hoarded.

use crate::msg::WireMsg;
use std::sync::Mutex;

/// Default ceiling on pooled buffers.
pub const DEFAULT_MAX_BUFFERS: usize = 256;

/// Default ceiling on one pooled buffer's capacity (64 KiB — a jumbo
/// media frame's allocation is not worth keeping around).
pub const DEFAULT_MAX_BUF_CAPACITY: usize = 64 * 1024;

/// A bounded, mutex-guarded free-list of frame buffers.
///
/// Contention is negligible: `get`/`put` are two pointer moves under the
/// lock, and the encode itself happens outside it.
pub struct BufPool {
    free: Mutex<Vec<Vec<u8>>>,
    max_buffers: usize,
    max_buf_capacity: usize,
}

impl Default for BufPool {
    fn default() -> Self {
        BufPool::new(DEFAULT_MAX_BUFFERS, DEFAULT_MAX_BUF_CAPACITY)
    }
}

impl BufPool {
    /// A pool keeping at most `max_buffers` buffers of at most
    /// `max_buf_capacity` bytes capacity each.
    pub fn new(max_buffers: usize, max_buf_capacity: usize) -> BufPool {
        BufPool { free: Mutex::new(Vec::new()), max_buffers, max_buf_capacity }
    }

    /// Pops a cleared buffer, or allocates an empty one on a cold pool.
    pub fn get(&self) -> Vec<u8> {
        self.free.lock().unwrap().pop().unwrap_or_default()
    }

    /// Returns a drained buffer to the pool (cleared here; dropped if the
    /// pool is full or the buffer outgrew the capacity ceiling).
    pub fn put(&self, mut buf: Vec<u8>) {
        if buf.capacity() > self.max_buf_capacity {
            return;
        }
        buf.clear();
        let mut free = self.free.lock().unwrap();
        if free.len() < self.max_buffers {
            free.push(buf);
        }
    }

    /// Encodes one frame into a pooled buffer: exact-size reserve, no
    /// per-frame allocation once the pool is warm.
    pub fn encode(&self, msg: &WireMsg) -> Vec<u8> {
        let mut buf = self.get();
        msg.encode_into(&mut buf);
        buf
    }

    /// Buffers currently parked in the pool.
    pub fn pooled(&self) -> usize {
        self.free.lock().unwrap().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::WireMsg;

    #[test]
    fn pooled_encode_matches_fresh_encode_and_recycles() {
        let pool = BufPool::default();
        let msg = WireMsg::HelloAck { peer: 7, proto: 1 };
        let a = pool.encode(&msg);
        assert_eq!(a, crate::encode_to_vec(&msg));
        let cap = a.capacity();
        let ptr = a.as_ptr();
        pool.put(a);
        assert_eq!(pool.pooled(), 1);
        let b = pool.encode(&msg);
        assert_eq!(b.capacity(), cap);
        assert_eq!(b.as_ptr(), ptr, "the same backing allocation is reused");
        assert_eq!(pool.pooled(), 0);
    }

    #[test]
    fn pool_bounds_are_enforced() {
        let pool = BufPool::new(2, 16);
        pool.put(Vec::with_capacity(8));
        pool.put(Vec::with_capacity(8));
        pool.put(Vec::with_capacity(8)); // over max_buffers: dropped
        assert_eq!(pool.pooled(), 2);
        pool.put(Vec::with_capacity(1024)); // over capacity ceiling: dropped
        assert_eq!(pool.pooled(), 2);
    }
}
