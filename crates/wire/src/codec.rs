//! Primitive little-endian readers/writers plus wire forms for the
//! shared util value types (ids, QoS vectors, resource vectors).
//!
//! Every multi-byte integer travels little-endian; `f64`s travel as their
//! IEEE-754 bit pattern so values round-trip bit-exactly. Collections are
//! length-prefixed (`u32`) and bounded — a decoder never trusts a length
//! prefix further than [`MAX_ELEMS`] elements or the frame's own payload.

use crate::error::WireError;
use spidernet_util::qos::QosVector;
use spidernet_util::res::{ResourceKind, ResourceVector};

/// Ceiling on any single length-prefixed collection (replica lists,
/// paths, pixel buffers use their own [`MAX_PIXEL_BYTES`]).
pub const MAX_ELEMS: u32 = 1 << 20;

/// Ceiling on one frame's pixel payload (16 MiB ≈ a 4096×4096 frame).
pub const MAX_PIXEL_BYTES: u32 = 1 << 24;

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

/// Append-only payload writer over a caller-owned buffer.
pub struct Writer<'a> {
    buf: &'a mut Vec<u8>,
}

impl<'a> Writer<'a> {
    /// Wraps `buf`; written bytes are appended.
    pub fn new(buf: &'a mut Vec<u8>) -> Self {
        Writer { buf }
    }

    /// Bytes written so far (including anything already in the buffer).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if the underlying buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// One raw byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Little-endian `u128`.
    pub fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// IEEE-754 bit pattern, little-endian.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Canonical bool byte (0/1).
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Raw bytes with a `u32` length prefix.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// `u32` length prefix followed by one `u64` per element.
    pub fn u64s(&mut self, v: &[u64]) {
        self.u32(v.len() as u32);
        for &x in v {
            self.u64(x);
        }
    }

    /// A QoS vector: `u32` dimension count + per-dimension `f64`s.
    pub fn qos(&mut self, q: &QosVector) {
        self.u32(q.dims() as u32);
        for &v in q.values() {
            self.f64(v);
        }
    }

    /// A resource vector: fixed [`ResourceKind::COUNT`] `f64`s (no prefix
    /// — the shape is a protocol constant).
    pub fn res(&mut self, r: &ResourceVector) {
        for kind in ResourceKind::ALL {
            self.f64(r[kind]);
        }
    }
}

// ---------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------

/// Bounds-checked payload reader.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a payload slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Unconsumed bytes.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Malformed("payload overrun"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// One raw byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Little-endian `u128`.
    pub fn u128(&mut self) -> Result<u128, WireError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }

    /// IEEE-754 bit pattern, little-endian.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Canonical bool byte; anything but 0/1 is malformed.
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Malformed("non-canonical bool")),
        }
    }

    /// A `u32` collection length, validated against [`MAX_ELEMS`] and
    /// against the bytes actually remaining (`min_elem_size` bytes per
    /// element at minimum).
    pub fn elems(&mut self, min_elem_size: usize) -> Result<usize, WireError> {
        let n = self.u32()?;
        if n > MAX_ELEMS {
            return Err(WireError::Malformed("collection length over limit"));
        }
        let n = n as usize;
        if n.saturating_mul(min_elem_size.max(1)) > self.remaining() {
            return Err(WireError::Malformed("collection length exceeds payload"));
        }
        Ok(n)
    }

    /// Length-prefixed raw bytes (pixel buffers), capped by
    /// [`MAX_PIXEL_BYTES`].
    pub fn pixel_bytes(&mut self) -> Result<Vec<u8>, WireError> {
        let n = self.u32()?;
        if n > MAX_PIXEL_BYTES {
            return Err(WireError::Malformed("pixel buffer over limit"));
        }
        Ok(self.take(n as usize)?.to_vec())
    }

    /// Length-prefixed `u64` list.
    pub fn u64s(&mut self) -> Result<Vec<u64>, WireError> {
        let n = self.elems(8)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.u64()?);
        }
        Ok(out)
    }

    /// A QoS vector (see [`Writer::qos`]).
    pub fn qos(&mut self) -> Result<QosVector, WireError> {
        let n = self.elems(8)?;
        let mut vals = Vec::with_capacity(n);
        for _ in 0..n {
            vals.push(self.f64()?);
        }
        Ok(QosVector::from_values(vals))
    }

    /// A resource vector (see [`Writer::res`]).
    pub fn res(&mut self) -> Result<ResourceVector, WireError> {
        let cpu = self.f64()?;
        let mem = self.f64()?;
        Ok(ResourceVector::new(cpu, mem))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut buf = Vec::new();
        let mut w = Writer::new(&mut buf);
        w.u8(7);
        w.u16(0xBEEF);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.u128(u128::MAX / 3);
        w.f64(-1234.5e-9);
        w.bool(true);
        w.u64s(&[1, 2, 3]);
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.u128().unwrap(), u128::MAX / 3);
        assert_eq!(r.f64().unwrap(), -1234.5e-9);
        assert!(r.bool().unwrap());
        assert_eq!(r.u64s().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn qos_and_res_round_trip() {
        let q = QosVector::from_values(vec![12.5, 0.03, 7.0]);
        let res = ResourceVector::new(4.0, 512.0);
        let mut buf = Vec::new();
        let mut w = Writer::new(&mut buf);
        w.qos(&q);
        w.res(&res);
        let mut r = Reader::new(&buf);
        assert_eq!(r.qos().unwrap(), q);
        assert_eq!(r.res().unwrap(), res);
    }

    #[test]
    fn overrun_is_malformed_not_panic() {
        let mut r = Reader::new(&[1, 2, 3]);
        assert_eq!(r.u64().unwrap_err(), WireError::Malformed("payload overrun"));
    }

    #[test]
    fn hostile_lengths_are_rejected() {
        // A length prefix claiming 2^30 elements over a 4-byte payload.
        let mut buf = Vec::new();
        Writer::new(&mut buf).u32(1 << 30);
        assert!(Reader::new(&buf).u64s().is_err());
        // Over MAX_ELEMS even if bytes were present.
        let mut buf = Vec::new();
        Writer::new(&mut buf).u32(MAX_ELEMS + 1);
        assert!(Reader::new(&buf).elems(0).is_err());
    }

    #[test]
    fn non_canonical_bool_rejected() {
        let mut r = Reader::new(&[2]);
        assert_eq!(r.bool().unwrap_err(), WireError::Malformed("non-canonical bool"));
    }
}
