//! Protocol-overhead accounting.
//!
//! The paper's headline overhead claim ("more than one order of magnitude
//! less overhead" than the centralized global-state scheme) is a message
//! count comparison, so the sink tracks counters — but as a *registry*:
//! names are interned once into cheap [`Counter`]/[`Histogram`] handles,
//! the hot path is an indexed add, per-session rows can be kept for
//! per-request accounting (Fig. 10-style overhead curves), and two
//! registries merge deterministically by name so the parallel experiment
//! harness can fold per-trial sinks in cell order.

use crate::trace::TraceBuffer;
use spidernet_util::stats::Summary;
use std::collections::BTreeMap;

/// Conventional counter names used across the experiments.
pub mod counter {
    /// BCP composition probes sent (per-hop transmissions).
    pub const PROBES: &str = "bcp.probes";
    /// DHT routing messages (registration + discovery hops).
    pub const DHT_MESSAGES: &str = "dht.messages";
    /// Backup-graph maintenance probes.
    pub const MAINTENANCE: &str = "recovery.maintenance";
    /// Session setup/teardown control messages (acks, confirmations).
    pub const CONTROL: &str = "session.control";
    /// Periodic global-state update messages (centralized baseline).
    pub const STATE_UPDATES: &str = "centralized.state_updates";
    /// Optimal-baseline candidate combos fully evaluated.
    pub const COMBOS_EXAMINED: &str = "baseline.combos_examined";
    /// Optimal-baseline candidate combos cut by branch-and-bound pruning.
    pub const COMBOS_PRUNED: &str = "baseline.combos_pruned";
    /// Fault-injection actions applied (crashes + revives).
    pub const FAULTS_INJECTED: &str = "fault.injected";
    /// Sessions recovered by switching to a maintained backup graph.
    pub const RECOVERY_SWITCHES: &str = "recovery.switches";
    /// Sessions that exhausted their backups and needed reactive BCP.
    pub const RECOVERY_REACTIVE: &str = "recovery.reactive";
    /// Candidate replicas dropped pre-probe because the host peer's CPU
    /// utilization sat at or above the shedding watermark ψ.
    pub const LOAD_SHED: &str = "bcp.load_shed";
    /// Compose-cache hits (per-function lookup + qualified pool reused).
    pub const COMPOSE_CACHE_HITS: &str = "bcp.compose_cache_hits";
    /// Compose-cache misses (full DHT lookup + pool build performed).
    pub const COMPOSE_CACHE_MISSES: &str = "bcp.compose_cache_misses";
    /// Compose-cache flushes forced by epoch or config drift.
    pub const COMPOSE_CACHE_INVALIDATIONS: &str = "bcp.compose_cache_invalidations";
    /// Pairwise-delay cache hits (memoized SSSP distance reused).
    pub const PAIR_CACHE_HITS: &str = "topology.pair_cache_hits";
    /// Pairwise-delay cache misses (fresh SSSP distance computed).
    pub const PAIR_CACHE_MISSES: &str = "topology.pair_cache_misses";
    /// Pairwise-delay memo insert rejections (memo at capacity; the
    /// query fell back to an uncached tree walk).
    pub const PAIR_CACHE_EVICTIONS: &str = "topology.pair_cache_evictions";
    /// Pairwise-delay queries that deliberately skipped the memo because
    /// the caller wanted contention-inflated delays (the memo only stores
    /// uncongested values).
    pub const PAIR_CACHE_BYPASSES: &str = "topology.pair_cache_bypasses";
}

/// Conventional histogram names used across the experiments.
pub mod hist {
    /// Backup switchover latency (detection + switch), milliseconds.
    pub const SWITCH_MS: &str = "recovery.switch_ms";
    /// Function-graph node count per composition (DAG shape).
    pub const GRAPH_NODES: &str = "compose.graph_nodes";
    /// Function-graph branch-path count per composition (DAG shape).
    pub const GRAPH_BRANCHES: &str = "compose.graph_branches";
}

/// Handle to an interned counter. Resolve once via
/// [`MetricsRegistry::counter`]; updates are then an indexed add.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Counter(u32);

/// Handle to an interned histogram (a [`Summary`] stream).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Histogram(u32);

/// Interned counters + histograms with optional per-session scoping.
///
/// Handles stay valid across [`MetricsRegistry::reset`] and merges into
/// `self`; iteration and merge are name-ordered (`BTreeMap` indices) so
/// output is deterministic regardless of interning order.
#[derive(Default, Debug, Clone)]
pub struct MetricsRegistry {
    counter_names: Vec<String>,
    counter_index: BTreeMap<String, u32>,
    counters: Vec<u64>,
    hist_names: Vec<String>,
    hist_index: BTreeMap<String, u32>,
    hists: Vec<Summary>,
    session_tracking: bool,
    current_session: Option<u64>,
    /// Session id → per-counter values (indexed like `counters`, grown on
    /// demand). `BTreeMap` keeps export order deterministic.
    sessions: BTreeMap<u64, Vec<u64>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Interns `name`, returning its stable handle.
    pub fn counter(&mut self, name: &str) -> Counter {
        if let Some(&id) = self.counter_index.get(name) {
            return Counter(id);
        }
        let id = self.counter_names.len() as u32;
        self.counter_names.push(name.to_owned());
        self.counter_index.insert(name.to_owned(), id);
        self.counters.push(0);
        Counter(id)
    }

    /// Interns histogram `name`, returning its stable handle.
    pub fn histogram(&mut self, name: &str) -> Histogram {
        if let Some(&id) = self.hist_index.get(name) {
            return Histogram(id);
        }
        let id = self.hist_names.len() as u32;
        self.hist_names.push(name.to_owned());
        self.hist_index.insert(name.to_owned(), id);
        self.hists.push(Summary::new());
        Histogram(id)
    }

    /// Adds `n` to counter `c`.
    #[inline]
    pub fn add(&mut self, c: Counter, n: u64) {
        self.counters[c.0 as usize] += n;
        if self.session_tracking {
            if let Some(sid) = self.current_session {
                let row = self.sessions.entry(sid).or_default();
                if row.len() <= c.0 as usize {
                    row.resize(self.counters.len(), 0);
                }
                row[c.0 as usize] += n;
            }
        }
    }

    /// Increments counter `c`.
    #[inline]
    pub fn incr(&mut self, c: Counter) {
        self.add(c, 1);
    }

    /// Current value of counter `c`.
    pub fn get(&self, c: Counter) -> u64 {
        self.counters[c.0 as usize]
    }

    /// Current value of the counter named `name` (0 if never interned).
    pub fn value(&self, name: &str) -> u64 {
        self.counter_index.get(name).map_or(0, |&id| self.counters[id as usize])
    }

    /// Records an observation into histogram `h`.
    #[inline]
    pub fn observe(&mut self, h: Histogram, value: f64) {
        self.hists[h.0 as usize].record(value);
    }

    /// The summary stream of `h`, if any observation was recorded.
    pub fn summary(&self, h: Histogram) -> Option<&Summary> {
        let s = &self.hists[h.0 as usize];
        (s.count() > 0).then_some(s)
    }

    /// Iterates counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.counter_index.iter().map(|(k, &id)| (k.as_str(), self.counters[id as usize]))
    }

    /// Iterates non-empty histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Summary)> + '_ {
        self.hist_index
            .iter()
            .map(|(k, &id)| (k.as_str(), &self.hists[id as usize]))
            .filter(|(_, s)| s.count() > 0)
    }

    /// Enables or disables per-session rows. Off by default — long
    /// experiment loops that do not export per-session data should not pay
    /// the memory.
    pub fn set_session_tracking(&mut self, on: bool) {
        self.session_tracking = on;
    }

    /// True if per-session rows are being kept.
    pub fn session_tracking(&self) -> bool {
        self.session_tracking
    }

    /// Opens the per-session scope `id`: subsequent counter updates are
    /// additionally attributed to that session (when tracking is on).
    pub fn begin_session(&mut self, id: u64) {
        self.current_session = Some(id);
    }

    /// Closes the current per-session scope.
    pub fn end_session(&mut self) {
        self.current_session = None;
    }

    /// Per-session value of counter `c`.
    pub fn session_value(&self, session: u64, c: Counter) -> u64 {
        self.sessions
            .get(&session)
            .and_then(|row| row.get(c.0 as usize).copied())
            .unwrap_or(0)
    }

    /// Iterates session rows (session id ascending). Each row yields the
    /// session's value for counter `c` via [`MetricsRegistry::session_value`];
    /// this iterator exposes the raw per-counter vectors for exporters.
    pub fn sessions(&self) -> impl Iterator<Item = (u64, &[u64])> + '_ {
        self.sessions.iter().map(|(&sid, row)| (sid, row.as_slice()))
    }

    /// Number of session rows kept.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Session rows (session id ascending) with values re-ordered to match
    /// the name order of [`MetricsRegistry::counters`] — the exporter's
    /// column order.
    pub fn session_rows(&self) -> Vec<(u64, Vec<u64>)> {
        let ids: Vec<usize> = self.counter_index.values().map(|&id| id as usize).collect();
        self.sessions
            .iter()
            .map(|(&sid, row)| {
                (sid, ids.iter().map(|&i| row.get(i).copied().unwrap_or(0)).collect())
            })
            .collect()
    }

    /// Merges another registry into this one, matching by *name* (the two
    /// sides may have interned in different orders). Handles previously
    /// resolved against `self` stay valid. Deterministic: iteration is
    /// name-ordered on both sides, so any fixed merge order of registries
    /// produces identical totals and identical export order.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        // Counter id translation: other id -> self id.
        let mut xlat = vec![0u32; other.counter_names.len()];
        for (name, &oid) in &other.counter_index {
            let Counter(sid) = self.counter(name);
            xlat[oid as usize] = sid;
            self.counters[sid as usize] += other.counters[oid as usize];
        }
        for (name, &oid) in &other.hist_index {
            let Histogram(sid) = self.histogram(name);
            self.hists[sid as usize].merge(&other.hists[oid as usize]);
        }
        for (&session, row) in &other.sessions {
            let mine = self.sessions.entry(session).or_default();
            if mine.len() < self.counters.len() {
                mine.resize(self.counters.len(), 0);
            }
            for (oid, &v) in row.iter().enumerate() {
                if v > 0 {
                    mine[xlat[oid] as usize] += v;
                }
            }
        }
    }

    /// Zeroes every counter and histogram and drops session rows; interned
    /// names (and therefore outstanding handles) are kept.
    pub fn reset(&mut self) {
        self.counters.iter_mut().for_each(|v| *v = 0);
        self.hists.iter_mut().for_each(|s| *s = Summary::new());
        self.sessions.clear();
        self.current_session = None;
    }
}

/// The standard protocol instruments, resolved once per registry.
///
/// `Copy` by design: engines read the handle and call back into the
/// registry (`obs.metrics.add(obs.counters.probes, 1)` borrows cleanly).
#[derive(Clone, Copy, Debug)]
pub struct ProtocolCounters {
    /// BCP probes sent.
    pub probes: Counter,
    /// DHT routing messages.
    pub dht_messages: Counter,
    /// Backup maintenance probes.
    pub maintenance: Counter,
    /// Session control messages.
    pub control: Counter,
    /// Centralized-baseline state updates.
    pub state_updates: Counter,
    /// Optimal-baseline combos fully evaluated.
    pub combos_examined: Counter,
    /// Optimal-baseline combos cut by branch-and-bound pruning.
    pub combos_pruned: Counter,
    /// Fault-injection actions applied.
    pub faults_injected: Counter,
    /// Sessions recovered via a maintained backup.
    pub recovery_switches: Counter,
    /// Sessions that fell through to reactive BCP.
    pub recovery_reactive: Counter,
    /// Backup switchover latency (ms).
    pub switch_ms: Histogram,
    /// Function-graph node count per composition.
    pub graph_nodes: Histogram,
    /// Function-graph branch-path count per composition.
    pub graph_branches: Histogram,
}

impl ProtocolCounters {
    /// Interns the standard names into `reg` and returns the handles.
    pub fn resolve(reg: &mut MetricsRegistry) -> Self {
        ProtocolCounters {
            probes: reg.counter(counter::PROBES),
            dht_messages: reg.counter(counter::DHT_MESSAGES),
            maintenance: reg.counter(counter::MAINTENANCE),
            control: reg.counter(counter::CONTROL),
            state_updates: reg.counter(counter::STATE_UPDATES),
            combos_examined: reg.counter(counter::COMBOS_EXAMINED),
            combos_pruned: reg.counter(counter::COMBOS_PRUNED),
            faults_injected: reg.counter(counter::FAULTS_INJECTED),
            recovery_switches: reg.counter(counter::RECOVERY_SWITCHES),
            recovery_reactive: reg.counter(counter::RECOVERY_REACTIVE),
            switch_ms: reg.histogram(hist::SWITCH_MS),
            graph_nodes: reg.histogram(hist::GRAPH_NODES),
            graph_branches: reg.histogram(hist::GRAPH_BRANCHES),
        }
    }
}

/// The observability bundle one overlay instance owns: the metrics
/// registry, the pre-resolved protocol handles, and the trace ring.
#[derive(Clone, Debug)]
pub struct Instruments {
    /// Counter/histogram storage.
    pub metrics: MetricsRegistry,
    /// Pre-resolved standard handles.
    pub counters: ProtocolCounters,
    /// Typed event ring (no-op when the `trace` feature is off).
    pub trace: TraceBuffer,
}

impl Instruments {
    /// A fresh bundle with the standard handles resolved.
    pub fn new() -> Self {
        let mut metrics = MetricsRegistry::new();
        let counters = ProtocolCounters::resolve(&mut metrics);
        Instruments { metrics, counters, trace: TraceBuffer::new() }
    }

    /// Zeroes metrics and empties the trace ring (handles stay valid).
    pub fn reset(&mut self) {
        self.metrics.reset();
        self.trace.clear();
    }
}

impl Default for Instruments {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_through_handles() {
        let mut m = MetricsRegistry::new();
        let probes = m.counter(counter::PROBES);
        m.incr(probes);
        m.add(probes, 4);
        assert_eq!(m.get(probes), 5);
        assert_eq!(m.value(counter::PROBES), 5);
        assert_eq!(m.value(counter::DHT_MESSAGES), 0);
    }

    #[test]
    fn interning_is_idempotent() {
        let mut m = MetricsRegistry::new();
        let a = m.counter("x");
        let b = m.counter("x");
        assert_eq!(a, b);
        m.incr(a);
        m.incr(b);
        assert_eq!(m.get(a), 2);
        let h1 = m.histogram("y");
        let h2 = m.histogram("y");
        assert_eq!(h1, h2);
    }

    #[test]
    fn histograms_record() {
        let mut m = MetricsRegistry::new();
        let h = m.histogram("setup_ms");
        assert!(m.summary(h).is_none());
        m.observe(h, 10.0);
        m.observe(h, 20.0);
        let s = m.summary(h).unwrap();
        assert_eq!(s.count(), 2);
        assert!((s.mean() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn merge_matches_by_name_not_by_handle_order() {
        // Intern in opposite orders so raw ids disagree.
        let mut a = MetricsRegistry::new();
        let a_p = a.counter("p");
        let _a_q = a.counter("q");
        a.add(a_p, 3);
        let mut b = MetricsRegistry::new();
        let b_q = b.counter("q");
        let b_p = b.counter("p");
        b.add(b_q, 10);
        b.add(b_p, 2);
        a.merge(&b);
        assert_eq!(a.value("p"), 5);
        assert_eq!(a.value("q"), 10);
        // Handle resolved before the merge still reads the right cell.
        assert_eq!(a.get(a_p), 5);
    }

    #[test]
    fn merge_is_deterministic_across_shard_counts() {
        // Simulate the parallel harness: the same 24 increments split
        // across k shards must fold to identical registries for every k.
        let updates: Vec<(&str, u64)> =
            (0..24).map(|i| if i % 3 == 0 { ("a", i) } else { ("b", i * 2) }).collect();
        let render = |reg: &MetricsRegistry| -> Vec<(String, u64)> {
            reg.counters().map(|(k, v)| (k.to_owned(), v)).collect()
        };
        let mut reference = None;
        for shards in [1usize, 2, 8] {
            let mut parts: Vec<MetricsRegistry> =
                (0..shards).map(|_| MetricsRegistry::new()).collect();
            for (i, &(name, v)) in updates.iter().enumerate() {
                let reg = &mut parts[i % shards];
                let c = reg.counter(name);
                reg.add(c, v);
            }
            let mut folded = MetricsRegistry::new();
            for p in &parts {
                folded.merge(p);
            }
            let got = render(&folded);
            match &reference {
                None => reference = Some(got),
                Some(want) => assert_eq!(&got, want, "merge diverged at {shards} shards"),
            }
        }
    }

    #[test]
    fn session_rows_attribute_updates() {
        let mut m = MetricsRegistry::new();
        m.set_session_tracking(true);
        let p = m.counter("p");
        m.begin_session(7);
        m.add(p, 3);
        m.end_session();
        m.add(p, 10); // unscoped
        m.begin_session(9);
        m.incr(p);
        m.end_session();
        assert_eq!(m.get(p), 14);
        assert_eq!(m.session_value(7, p), 3);
        assert_eq!(m.session_value(9, p), 1);
        assert_eq!(m.session_value(8, p), 0);
        let ids: Vec<u64> = m.sessions().map(|(sid, _)| sid).collect();
        assert_eq!(ids, vec![7, 9]);
    }

    #[test]
    fn session_rows_merge_by_session_id() {
        let mut a = MetricsRegistry::new();
        a.set_session_tracking(true);
        let ap = a.counter("p");
        a.begin_session(1);
        a.add(ap, 2);
        a.end_session();
        let mut b = MetricsRegistry::new();
        b.set_session_tracking(true);
        let bq = b.counter("q"); // different interning order
        let bp = b.counter("p");
        b.begin_session(1);
        b.add(bp, 5);
        b.incr(bq);
        b.end_session();
        b.begin_session(2);
        b.add(bp, 7);
        b.end_session();
        a.merge(&b);
        assert_eq!(a.session_value(1, ap), 7);
        assert_eq!(a.session_value(2, ap), 7);
        let aq = a.counter("q");
        assert_eq!(a.session_value(1, aq), 1);
    }

    #[test]
    fn reset_keeps_handles_valid() {
        let mut m = MetricsRegistry::new();
        m.set_session_tracking(true);
        let p = m.counter("p");
        let h = m.histogram("h");
        m.begin_session(1);
        m.add(p, 5);
        m.end_session();
        m.observe(h, 1.0);
        m.reset();
        assert_eq!(m.get(p), 0);
        assert!(m.summary(h).is_none());
        assert_eq!(m.session_count(), 0);
        m.incr(p);
        assert_eq!(m.get(p), 1);
        assert_eq!(m.value("p"), 1);
    }

    #[test]
    fn instruments_resolve_standard_handles() {
        let mut obs = Instruments::new();
        obs.metrics.incr(obs.counters.probes);
        obs.metrics.observe(obs.counters.switch_ms, 250.0);
        assert_eq!(obs.metrics.value(counter::PROBES), 1);
        assert_eq!(obs.metrics.summary(obs.counters.switch_ms).unwrap().count(), 1);
        obs.reset();
        assert_eq!(obs.metrics.get(obs.counters.probes), 0);
    }
}
