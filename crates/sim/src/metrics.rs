//! Protocol-overhead accounting.
//!
//! The paper's headline overhead claim ("more than one order of magnitude
//! less overhead" than the centralized global-state scheme) is a message
//! count comparison, so the metrics sink tracks named counters; it also
//! carries named [`Summary`] streams for latency-style measurements.

use spidernet_util::stats::Summary;
use std::collections::BTreeMap;

/// Conventional counter names used across the experiments.
pub mod counter {
    /// BCP composition probes sent (per-hop transmissions).
    pub const PROBES: &str = "bcp.probes";
    /// DHT routing messages (registration + discovery hops).
    pub const DHT_MESSAGES: &str = "dht.messages";
    /// Backup-graph maintenance probes.
    pub const MAINTENANCE: &str = "recovery.maintenance";
    /// Session setup/teardown control messages (acks, confirmations).
    pub const CONTROL: &str = "session.control";
    /// Periodic global-state update messages (centralized baseline).
    pub const STATE_UPDATES: &str = "centralized.state_updates";
}

/// Named counters + named summaries.
///
/// `BTreeMap` keeps report output deterministically ordered.
#[derive(Default, Debug, Clone)]
pub struct Metrics {
    counters: BTreeMap<&'static str, u64>,
    summaries: BTreeMap<&'static str, Summary>,
}

impl Metrics {
    /// An empty sink.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Adds `n` to counter `name`.
    pub fn add(&mut self, name: &'static str, n: u64) {
        *self.counters.entry(name).or_insert(0) += n;
    }

    /// Increments counter `name`.
    pub fn incr(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Current value of counter `name` (0 if never touched).
    pub fn counter(&self, name: &'static str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Records an observation into summary `name`.
    pub fn observe(&mut self, name: &'static str, value: f64) {
        self.summaries.entry(name).or_default().record(value);
    }

    /// The summary stream `name`, if any observation was recorded.
    pub fn summary(&self, name: &'static str) -> Option<&Summary> {
        self.summaries.get(name)
    }

    /// Iterates counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (*k, *v))
    }

    /// Merges another sink into this one.
    pub fn merge(&mut self, other: &Metrics) {
        for (k, v) in &other.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
        for (k, s) in &other.summaries {
            self.summaries.entry(k).or_default().merge(s);
        }
    }

    /// Resets everything to zero.
    pub fn reset(&mut self) {
        self.counters.clear();
        self.summaries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        m.incr(counter::PROBES);
        m.add(counter::PROBES, 4);
        assert_eq!(m.counter(counter::PROBES), 5);
        assert_eq!(m.counter(counter::DHT_MESSAGES), 0);
    }

    #[test]
    fn summaries_record() {
        let mut m = Metrics::new();
        m.observe("setup_ms", 10.0);
        m.observe("setup_ms", 20.0);
        let s = m.summary("setup_ms").unwrap();
        assert_eq!(s.count(), 2);
        assert!((s.mean() - 15.0).abs() < 1e-12);
        assert!(m.summary("other").is_none());
    }

    #[test]
    fn merge_combines_both_kinds() {
        let mut a = Metrics::new();
        a.add(counter::PROBES, 3);
        a.observe("x", 1.0);
        let mut b = Metrics::new();
        b.add(counter::PROBES, 2);
        b.add(counter::CONTROL, 1);
        b.observe("x", 3.0);
        a.merge(&b);
        assert_eq!(a.counter(counter::PROBES), 5);
        assert_eq!(a.counter(counter::CONTROL), 1);
        assert_eq!(a.summary("x").unwrap().count(), 2);
        assert!((a.summary("x").unwrap().mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn counters_iterate_in_name_order() {
        let mut m = Metrics::new();
        m.incr("z");
        m.incr("a");
        let names: Vec<&str> = m.counters().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["a", "z"]);
    }

    #[test]
    fn reset_clears() {
        let mut m = Metrics::new();
        m.incr("a");
        m.observe("b", 1.0);
        m.reset();
        assert_eq!(m.counter("a"), 0);
        assert!(m.summary("b").is_none());
    }
}
