//! Indexed event core for large-scale simulation.
//!
//! [`Scheduler`](crate::event::Scheduler) boxes arbitrary payloads; at
//! 10^5–10^6 peers the event queue dominates allocation traffic, so the
//! scale path uses this flat core in the style of dslab's `simcore`:
//!
//! * events are `Copy` — a `(u32 handler, u64 payload)` pair, no per-event
//!   allocation;
//! * handlers are dense `u32` ids registered once up front;
//! * cancellation is by generation: scheduling returns an [`EventKey`]
//!   (slot + generation), and cancelling bumps the slot's generation so
//!   the heap entry is lazily discarded when popped. No heap surgery, no
//!   tombstone allocation.
//!
//! Determinism: events pop earliest-time-first with insertion-sequence
//! tie-breaking, exactly like [`Scheduler`](crate::event::Scheduler), so a
//! loop that drains events due at a given tick processes them in the order
//! they were scheduled.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Dense id of a registered event handler (a consumer-side dispatch tag —
/// the core never calls anything, it just hands the id back on pop).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct HandlerId(pub u32);

/// Handle to a scheduled (and not yet fired) event, for cancellation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EventKey {
    slot: u32,
    gen: u32,
}

/// A fired event: which handler it targets and its packed payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fired {
    /// Virtual time the event was scheduled for.
    pub at: SimTime,
    /// Target handler.
    pub handler: HandlerId,
    /// Caller-defined payload (typically a slab index or packed ids).
    pub payload: u64,
}

#[derive(Clone, Copy)]
struct HeapEntry {
    at: SimTime,
    seq: u64,
    slot: u32,
    gen: u32,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for HeapEntry {}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for earliest-first pop out of the max-heap.
        other.at.cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Clone, Copy)]
struct Slot {
    gen: u32,
    handler: HandlerId,
    payload: u64,
}

/// The indexed event core.
///
/// Slots for in-flight events are recycled lowest-first; a slot's
/// generation advances when its event fires or is cancelled, so stale
/// [`EventKey`]s can never cancel a later event that reused the slot.
pub struct EventCore {
    now: SimTime,
    seq: u64,
    heap: BinaryHeap<HeapEntry>,
    slots: Vec<Slot>,
    free: Vec<u32>,
    handlers: Vec<String>,
    live: usize,
    processed: u64,
    cancelled: u64,
}

impl Default for EventCore {
    fn default() -> Self {
        Self::new()
    }
}

impl EventCore {
    /// An empty core at time zero.
    pub fn new() -> Self {
        EventCore {
            now: SimTime::ZERO,
            seq: 0,
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            handlers: Vec::new(),
            live: 0,
            processed: 0,
            cancelled: 0,
        }
    }

    /// Registers a handler name, returning its dense id. Names are not
    /// deduplicated — register once and keep the id.
    pub fn register_handler(&mut self, name: &str) -> HandlerId {
        let id = HandlerId(self.handlers.len() as u32);
        self.handlers.push(name.to_owned());
        id
    }

    /// The name `handler` was registered under.
    pub fn handler_name(&self, handler: HandlerId) -> &str {
        &self.handlers[handler.0 as usize]
    }

    /// Current virtual time (timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules an event for `handler` at absolute time `at` (clamped to
    /// `now` if in the past). Returns a key usable with [`EventCore::cancel`].
    pub fn schedule(&mut self, at: SimTime, handler: HandlerId, payload: u64) -> EventKey {
        let at = at.max(self.now);
        let slot = match self.free.pop() {
            Some(s) => {
                let sl = &mut self.slots[s as usize];
                sl.handler = handler;
                sl.payload = payload;
                s
            }
            None => {
                self.slots.push(Slot { gen: 0, handler, payload });
                (self.slots.len() - 1) as u32
            }
        };
        let gen = self.slots[slot as usize].gen;
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(HeapEntry { at, seq, slot, gen });
        self.live += 1;
        EventKey { slot, gen }
    }

    /// Cancels a scheduled event. Returns `true` if the key was current
    /// (the event will not fire); a stale key — the event already fired,
    /// or was cancelled and its slot reused — is a no-op returning `false`.
    pub fn cancel(&mut self, key: EventKey) -> bool {
        match self.slots.get_mut(key.slot as usize) {
            Some(sl) if sl.gen == key.gen => {
                sl.gen = sl.gen.wrapping_add(1);
                self.release_slot(key.slot);
                self.live -= 1;
                self.cancelled += 1;
                true
            }
            _ => false,
        }
    }

    /// Pops the next live event, advancing virtual time. Stale heap
    /// entries (cancelled events) are skipped for free.
    pub fn pop(&mut self) -> Option<Fired> {
        while let Some(entry) = self.heap.pop() {
            let sl = &mut self.slots[entry.slot as usize];
            if sl.gen != entry.gen {
                continue; // cancelled
            }
            sl.gen = sl.gen.wrapping_add(1);
            let fired = Fired { at: entry.at, handler: sl.handler, payload: sl.payload };
            self.release_slot(entry.slot);
            self.live -= 1;
            self.processed += 1;
            self.now = entry.at;
            return Some(fired);
        }
        None
    }

    /// Pops every live event due at or before `until` (and advances `now`
    /// to `until` even if nothing fires).
    pub fn pop_until(&mut self, until: SimTime) -> Vec<Fired> {
        let mut out = Vec::new();
        while let Some(&entry) = self.heap.peek() {
            if entry.at > until {
                break;
            }
            let entry = self.heap.pop().expect("peeked entry");
            let sl = &mut self.slots[entry.slot as usize];
            if sl.gen != entry.gen {
                continue;
            }
            sl.gen = sl.gen.wrapping_add(1);
            out.push(Fired { at: entry.at, handler: sl.handler, payload: sl.payload });
            self.release_slot(entry.slot);
            self.live -= 1;
            self.processed += 1;
        }
        self.now = self.now.max(until);
        out
    }

    /// Timestamp of the next live event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(&entry) = self.heap.peek() {
            if self.slots[entry.slot as usize].gen == entry.gen {
                return Some(entry.at);
            }
            self.heap.pop();
        }
        None
    }

    /// Live (scheduled, not fired, not cancelled) events.
    pub fn pending(&self) -> usize {
        self.live
    }

    /// Events fired so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Events cancelled so far.
    pub fn cancelled(&self) -> u64 {
        self.cancelled
    }

    fn release_slot(&mut self, slot: u32) {
        let pos = self.free.partition_point(|&f| f > slot);
        self.free.insert(pos, slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: f64) -> SimTime {
        SimTime::from_ms(ms)
    }

    #[test]
    fn pops_in_time_then_insertion_order() {
        let mut core = EventCore::new();
        let h = core.register_handler("h");
        core.schedule(t(5.0), h, 50);
        core.schedule(t(1.0), h, 10);
        core.schedule(t(5.0), h, 51);
        let fired: Vec<u64> = std::iter::from_fn(|| core.pop()).map(|f| f.payload).collect();
        assert_eq!(fired, vec![10, 50, 51]);
        assert_eq!(core.now(), t(5.0));
        assert_eq!(core.processed(), 3);
    }

    #[test]
    fn cancel_prevents_firing() {
        let mut core = EventCore::new();
        let h = core.register_handler("h");
        let a = core.schedule(t(1.0), h, 1);
        core.schedule(t(2.0), h, 2);
        assert!(core.cancel(a));
        assert_eq!(core.pending(), 1);
        let fired: Vec<u64> = std::iter::from_fn(|| core.pop()).map(|f| f.payload).collect();
        assert_eq!(fired, vec![2]);
        assert_eq!(core.cancelled(), 1);
    }

    #[test]
    fn stale_key_cannot_cancel_recycled_slot() {
        let mut core = EventCore::new();
        let h = core.register_handler("h");
        let a = core.schedule(t(1.0), h, 1);
        assert!(core.cancel(a));
        // Slot is recycled for a new event; the stale key must not hit it.
        let b = core.schedule(t(2.0), h, 2);
        assert!(!core.cancel(a), "stale key aliased a recycled slot");
        assert!(core.cancel(b));
        assert!(core.pop().is_none());
    }

    #[test]
    fn fired_event_key_goes_stale() {
        let mut core = EventCore::new();
        let h = core.register_handler("h");
        let a = core.schedule(t(1.0), h, 1);
        assert!(core.pop().is_some());
        assert!(!core.cancel(a), "cancelling a fired event must be a no-op");
    }

    #[test]
    fn pop_until_drains_due_events_in_order() {
        let mut core = EventCore::new();
        let h = core.register_handler("h");
        for (at, p) in [(3.0, 30), (1.0, 10), (3.0, 31), (7.0, 70)] {
            core.schedule(t(at), h, p);
        }
        let due: Vec<u64> = core.pop_until(t(3.0)).iter().map(|f| f.payload).collect();
        assert_eq!(due, vec![10, 30, 31]);
        assert_eq!(core.now(), t(3.0));
        assert_eq!(core.pending(), 1);
        assert_eq!(core.peek_time(), Some(t(7.0)));
    }

    #[test]
    fn no_allocation_payloads_round_trip_handlers() {
        let mut core = EventCore::new();
        let expiry = core.register_handler("session-expiry");
        let sweep = core.register_handler("maintenance-sweep");
        core.schedule(t(1.0), sweep, 0);
        core.schedule(t(1.0), expiry, 42);
        let fired = core.pop_until(t(1.0));
        assert_eq!(fired.len(), 2);
        assert_eq!(fired[0].handler, sweep);
        assert_eq!(core.handler_name(fired[1].handler), "session-expiry");
        assert_eq!(fired[1].payload, 42);
    }

    #[test]
    fn past_schedule_clamps_to_now() {
        let mut core = EventCore::new();
        let h = core.register_handler("h");
        core.schedule(t(5.0), h, 1);
        core.pop();
        core.schedule(t(1.0), h, 2);
        let f = core.pop().unwrap();
        assert_eq!(f.at, t(5.0));
    }
}
