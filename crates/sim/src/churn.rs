//! Peer-failure (churn) injection.
//!
//! Fig. 9 of the paper evaluates "a dynamic P2P network where 1% of peers
//! randomly fail during each time unit". The churn model samples that
//! process; optionally, failed peers rejoin after a recovery interval so
//! long experiments keep a steady population.

use spidernet_util::id::PeerId;
use spidernet_util::rng::Rng;
use spidernet_util::rng::SliceRandom;

/// Parameters of the failure process.
#[derive(Clone, Debug)]
pub struct ChurnModel {
    /// Fraction of *live* peers failing in each time unit (paper: 0.01).
    pub fail_fraction: f64,
    /// If `Some(k)`, a failed peer rejoins after `k` time units; if `None`
    /// failures are permanent.
    pub rejoin_after_units: Option<u64>,
}

impl ChurnModel {
    /// The paper's Fig. 9 setting: 1% of peers fail per time unit and
    /// recover after the given number of units.
    pub fn paper_fig9() -> Self {
        ChurnModel { fail_fraction: 0.01, rejoin_after_units: Some(10) }
    }

    /// Samples the set of peers failing this time unit from `live`.
    ///
    /// The count is `round(fail_fraction * live.len())`, with a Bernoulli
    /// draw on the fractional remainder so the long-run rate is exact even
    /// for small populations.
    pub fn sample_failures(&self, live: &[PeerId], rng: &mut Rng) -> Vec<PeerId> {
        if live.is_empty() || self.fail_fraction <= 0.0 {
            return Vec::new();
        }
        let expected = self.fail_fraction * live.len() as f64;
        let mut count = expected.floor() as usize;
        if rng.gen::<f64>() < expected.fract() {
            count += 1;
        }
        let count = count.min(live.len());
        let mut pool: Vec<PeerId> = live.to_vec();
        pool.shuffle(rng);
        pool.truncate(count);
        pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spidernet_util::rng::rng_for;

    fn peers(n: u64) -> Vec<PeerId> {
        (0..n).map(PeerId::new).collect()
    }

    #[test]
    fn one_percent_of_one_thousand_is_ten() {
        let m = ChurnModel { fail_fraction: 0.01, rejoin_after_units: None };
        let mut rng = rng_for(1, "churn");
        let f = m.sample_failures(&peers(1000), &mut rng);
        assert_eq!(f.len(), 10);
    }

    #[test]
    fn fractional_rate_is_exact_in_the_long_run() {
        let m = ChurnModel { fail_fraction: 0.015, rejoin_after_units: None };
        let mut rng = rng_for(2, "churn");
        let live = peers(100); // expected 1.5 per unit
        let total: usize = (0..2000).map(|_| m.sample_failures(&live, &mut rng).len()).sum();
        let rate = total as f64 / 2000.0;
        assert!((rate - 1.5).abs() < 0.1, "rate {rate}");
    }

    #[test]
    fn failures_are_distinct_peers() {
        let m = ChurnModel { fail_fraction: 0.5, rejoin_after_units: None };
        let mut rng = rng_for(3, "churn");
        let f = m.sample_failures(&peers(20), &mut rng);
        let mut ids: Vec<u64> = f.iter().map(|p| p.raw()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), f.len());
    }

    #[test]
    fn zero_rate_and_empty_population() {
        let m = ChurnModel { fail_fraction: 0.0, rejoin_after_units: None };
        let mut rng = rng_for(4, "churn");
        assert!(m.sample_failures(&peers(10), &mut rng).is_empty());
        let m = ChurnModel { fail_fraction: 0.5, rejoin_after_units: None };
        assert!(m.sample_failures(&[], &mut rng).is_empty());
    }

    #[test]
    fn rate_above_one_fails_everyone() {
        let m = ChurnModel { fail_fraction: 2.0, rejoin_after_units: None };
        let mut rng = rng_for(5, "churn");
        assert_eq!(m.sample_failures(&peers(7), &mut rng).len(), 7);
    }

    #[test]
    fn sampling_is_deterministic_in_seed() {
        let m = ChurnModel::paper_fig9();
        let a = m.sample_failures(&peers(500), &mut rng_for(9, "churn"));
        let b = m.sample_failures(&peers(500), &mut rng_for(9, "churn"));
        assert_eq!(a, b);
    }
}
