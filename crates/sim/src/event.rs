//! The event scheduler.
//!
//! A min-heap of `(time, sequence, payload)` where the monotonically
//! increasing sequence number breaks time ties in insertion order, making
//! event processing fully deterministic.

use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we need earliest-first.
        other.at.cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A discrete-event scheduler over payload type `E`.
///
/// Drive it with a loop:
///
/// ```
/// use spidernet_sim::{Scheduler, SimTime};
/// use spidernet_sim::time::SimDuration;
///
/// let mut sched: Scheduler<&str> = Scheduler::new();
/// sched.schedule_at(SimTime::from_ms(1.0), "hello");
/// let mut seen = Vec::new();
/// while let Some(ev) = sched.pop() {
///     seen.push(ev);
///     if seen.len() == 1 {
///         sched.schedule_after(SimDuration::from_ms(2.0), "world");
///     }
/// }
/// assert_eq!(seen, ["hello", "world"]);
/// assert_eq!(sched.now(), SimTime::from_ms(3.0));
/// ```
pub struct Scheduler<E> {
    now: SimTime,
    seq: u64,
    heap: BinaryHeap<Entry<E>>,
    processed: u64,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// An empty scheduler at time zero.
    pub fn new() -> Self {
        Scheduler { now: SimTime::ZERO, seq: 0, heap: BinaryHeap::new(), processed: 0 }
    }

    /// Current virtual time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` at absolute time `at`. Scheduling in the past
    /// clamps to `now` (the event fires next).
    pub fn schedule_at(&mut self, at: SimTime, payload: E) {
        let at = at.max(self.now);
        self.heap.push(Entry { at, seq: self.seq, payload });
        self.seq += 1;
    }

    /// Schedules `payload` at `now + delay`.
    pub fn schedule_after(&mut self, delay: SimDuration, payload: E) {
        self.schedule_at(self.now + delay, payload);
    }

    /// Pops the earliest event, advancing `now` to its timestamp.
    pub fn pop(&mut self) -> Option<E> {
        let e = self.heap.pop()?;
        debug_assert!(e.at >= self.now, "time went backwards");
        self.now = e.at;
        self.processed += 1;
        Some(e.payload)
    }

    /// Pops the earliest event only if it fires at or before `limit`.
    pub fn pop_until(&mut self, limit: SimTime) -> Option<E> {
        if self.heap.peek().is_none_or(|e| e.at > limit) {
            return None;
        }
        self.pop()
    }

    /// Timestamp of the next pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Total events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Drops all pending events (used between experiment rounds).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut s: Scheduler<u32> = Scheduler::new();
        s.schedule_at(SimTime::from_ms(3.0), 3);
        s.schedule_at(SimTime::from_ms(1.0), 1);
        s.schedule_at(SimTime::from_ms(2.0), 2);
        assert_eq!(s.pop(), Some(1));
        assert_eq!(s.pop(), Some(2));
        assert_eq!(s.pop(), Some(3));
        assert_eq!(s.pop(), None);
        assert_eq!(s.processed(), 3);
    }

    #[test]
    fn ties_break_in_insertion_order() {
        let mut s: Scheduler<u32> = Scheduler::new();
        let t = SimTime::from_ms(5.0);
        for i in 0..10 {
            s.schedule_at(t, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| s.pop()).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn now_advances_with_pops() {
        let mut s: Scheduler<&str> = Scheduler::new();
        s.schedule_at(SimTime::from_ms(10.0), "a");
        assert_eq!(s.now(), SimTime::ZERO);
        s.pop();
        assert_eq!(s.now(), SimTime::from_ms(10.0));
    }

    #[test]
    fn past_scheduling_clamps_to_now() {
        let mut s: Scheduler<&str> = Scheduler::new();
        s.schedule_at(SimTime::from_ms(10.0), "a");
        s.pop();
        s.schedule_at(SimTime::from_ms(1.0), "late");
        assert_eq!(s.peek_time(), Some(SimTime::from_ms(10.0)));
        assert_eq!(s.pop(), Some("late"));
        assert_eq!(s.now(), SimTime::from_ms(10.0));
    }

    #[test]
    fn pop_until_respects_limit() {
        let mut s: Scheduler<u32> = Scheduler::new();
        s.schedule_at(SimTime::from_ms(1.0), 1);
        s.schedule_at(SimTime::from_ms(5.0), 5);
        assert_eq!(s.pop_until(SimTime::from_ms(2.0)), Some(1));
        assert_eq!(s.pop_until(SimTime::from_ms(2.0)), None);
        assert_eq!(s.pending(), 1);
        assert_eq!(s.pop_until(SimTime::from_ms(5.0)), Some(5));
    }

    #[test]
    fn interleaved_chains_preserve_causality() {
        // Two event chains re-scheduling themselves at different periods:
        // every delivery must observe monotonically non-decreasing time and
        // the per-chain sequence must stay ordered.
        #[derive(Clone, Copy)]
        struct Ev {
            chain: usize,
            step: u32,
        }
        let mut s: Scheduler<Ev> = Scheduler::new();
        s.schedule_at(SimTime::from_ms(1.0), Ev { chain: 0, step: 0 });
        s.schedule_at(SimTime::from_ms(1.5), Ev { chain: 1, step: 0 });
        let periods = [3.0, 7.0];
        let mut last_time = SimTime::ZERO;
        let mut last_step = [None::<u32>, None::<u32>];
        let mut count = 0;
        while let Some(ev) = s.pop() {
            assert!(s.now() >= last_time, "time went backwards");
            last_time = s.now();
            if let Some(prev) = last_step[ev.chain] {
                assert_eq!(ev.step, prev + 1, "chain {} skipped", ev.chain);
            }
            last_step[ev.chain] = Some(ev.step);
            count += 1;
            if ev.step < 20 {
                s.schedule_after(
                    crate::time::SimDuration::from_ms(periods[ev.chain]),
                    Ev { chain: ev.chain, step: ev.step + 1 },
                );
            }
        }
        assert_eq!(count, 42); // 21 events per chain
        assert_eq!(s.processed(), 42);
    }

    #[test]
    fn clear_drops_pending() {
        let mut s: Scheduler<u32> = Scheduler::new();
        s.schedule_after(crate::time::SimDuration::from_ms(1.0), 1);
        s.clear();
        assert_eq!(s.pending(), 0);
        assert_eq!(s.pop(), None);
    }
}
