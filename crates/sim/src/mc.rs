//! Message-passing model checker core.
//!
//! A dslab-`mp`-style explorer over any [`ModelSystem`]: a deterministic
//! state machine whose transitions are discrete *actions* (deliver this
//! in-flight message, fire that timer, drop, duplicate, crash). The
//! engine knows nothing about SpiderNet — the runtime crate adapts its
//! `PeerNode`/`Outbox` seam onto this trait, and `spidernet-bench`'s
//! `mcheck` binary drives both.
//!
//! Two exploration strategies share one report vocabulary:
//!
//! * [`explore`] — bounded breadth-first search over every delivery
//!   interleaving up to a depth, with state-hash dedup. The frontier
//!   stores action *paths*, not cloned worlds: each expansion replays its
//!   path from the initial state, which keeps memory proportional to the
//!   frontier's schedule lengths instead of full state clones.
//! * [`random_walks`] — seeded deep random walks (restarting at terminal
//!   states) that reach schedules far past any tractable BFS depth.
//!   Walks fan out across the worker pool but merge their digests in
//!   walk-index order, so every statistic is identical across
//!   `SPIDERNET_THREADS` settings.
//!
//! A violated invariant yields a *minimized* replayable schedule: a
//! ddmin-style chunk shrink followed by greedy single-action removal.
//! This is DPOR-lite in effect — any delivery that commutes with the
//! violation is removable without losing it, so commuting actions drop
//! out and the pinned schedule contains only the ordering that matters.

use spidernet_util::hash::FxHashSet;
use spidernet_util::par::{configured_threads, par_map_with};
use spidernet_util::rng::rng_for_indexed;
use std::collections::{BTreeSet, VecDeque};

/// A checkable system: deterministic state, discrete actions, a canonical
/// state digest, and safety invariants.
///
/// Determinism contract: `enabled()` must be a pure function of state
/// (the engine sorts it, so order is free), `apply()` must be
/// deterministic, and `digest()` must be stable across runs and
/// platforms — it is the dedup key.
pub trait ModelSystem: Clone {
    /// One transition: delivering a message, firing a timer, injecting a
    /// fault. `Ord` gives the engine a canonical expansion order.
    type Action: Clone + Ord + std::fmt::Debug;

    /// Actions enabled in the current state (empty = terminal).
    fn enabled(&self) -> Vec<Self::Action>;

    /// Applies one action. Returns `false` when the action is stale —
    /// not currently enabled (a minimized schedule replayed after a fix
    /// may reference messages that no longer exist); stale actions are
    /// skipped, not errors.
    fn apply(&mut self, action: &Self::Action) -> bool;

    /// Canonical digest of the full state (peer states, in-flight
    /// messages, timers, fault budgets). Equal digests are assumed to be
    /// equal states.
    fn digest(&self) -> u64;

    /// Checks every safety invariant; `Err` carries the violation text.
    fn check(&self) -> Result<(), String>;

    /// Extra invariants that only hold once no action remains (e.g.
    /// "the setup result was delivered"): liveness folded into safety at
    /// quiescence. Default: nothing.
    fn check_terminal(&self) -> Result<(), String> {
        Ok(())
    }

    /// Digest of the externally observable outcome (driver results), for
    /// cross-schedule determinism checks. Default: no observation.
    fn outcome(&self) -> u64 {
        0
    }

    /// Stable, replayable encoding of an action (the schedule JSON and
    /// pinned regression tests store these).
    fn encode(&self, action: &Self::Action) -> String;
}

/// Exploration bounds shared by BFS and random walks.
#[derive(Clone, Debug)]
pub struct McConfig {
    /// BFS depth bound (schedule length).
    pub depth: usize,
    /// BFS stops expanding after this many deduped states.
    pub max_states: u64,
    /// Number of independent random walks.
    pub walks: u64,
    /// Steps per random walk (terminal states restart the walk).
    pub walk_steps: u64,
    /// Master seed; walk `i` draws from `rng_for_indexed(seed, "mc-walk", i)`.
    pub seed: u64,
    /// Stop after this many distinct violations.
    pub max_violations: usize,
}

impl Default for McConfig {
    fn default() -> Self {
        McConfig { depth: 8, max_states: 200_000, walks: 8, walk_steps: 10_000, seed: 42, max_violations: 8 }
    }
}

/// Exploration counters.
#[derive(Clone, Debug, Default)]
pub struct McStats {
    /// Distinct states visited (after dedup), including the initial one.
    pub states_explored: u64,
    /// Transitions applied.
    pub transitions: u64,
    /// Transitions that landed on an already-seen state.
    pub dedup_hits: u64,
    /// Terminal states reached (no enabled action).
    pub terminal_states: u64,
    /// True when BFS hit `max_states` before exhausting the depth bound.
    pub truncated: bool,
}

impl McStats {
    /// Fraction of transitions that were dedup hits.
    pub fn dedup_hit_rate(&self) -> f64 {
        if self.transitions == 0 {
            0.0
        } else {
            self.dedup_hits as f64 / self.transitions as f64
        }
    }

    /// Folds another phase's counters into this one (`truncated` ors).
    pub fn merge(&mut self, other: &McStats) {
        self.states_explored += other.states_explored;
        self.transitions += other.transitions;
        self.dedup_hits += other.dedup_hits;
        self.terminal_states += other.terminal_states;
        self.truncated |= other.truncated;
    }
}

/// One invariant violation with its minimized replayable schedule.
#[derive(Clone, Debug)]
pub struct McViolation {
    /// The invariant error text (from the minimized replay).
    pub error: String,
    /// Schedule length before minimization.
    pub raw_len: usize,
    /// Minimized schedule, encoded per [`ModelSystem::encode`].
    pub schedule: Vec<String>,
}

/// Result of one exploration phase.
#[derive(Clone, Debug, Default)]
pub struct McReport {
    /// Counters.
    pub stats: McStats,
    /// Violations found (deduped by violating-state digest, capped by
    /// [`McConfig::max_violations`]).
    pub violations: Vec<McViolation>,
    /// Sorted distinct outcome digests observed at terminal states.
    pub terminal_outcomes: Vec<u64>,
}

/// Replays `schedule` from a fresh system, checking invariants after
/// every applied action. Returns the first violation text, if any.
/// Stale actions (no longer enabled) are skipped.
pub fn replay_violates<S: ModelSystem>(mk: &impl Fn() -> S, schedule: &[S::Action]) -> Option<String> {
    let mut sys = mk();
    if let Err(e) = sys.check() {
        return Some(e);
    }
    for a in schedule {
        if !sys.apply(a) {
            continue;
        }
        if let Err(e) = sys.check() {
            return Some(e);
        }
    }
    None
}

/// Shrinks a violating schedule while it still violates *some* invariant:
/// ddmin-style chunk removal halving down to single-action greedy
/// removal. Commuting deliveries (DPOR-lite) fall out as removable.
pub fn minimize<S: ModelSystem>(mk: &impl Fn() -> S, schedule: Vec<S::Action>) -> Vec<S::Action> {
    let mut cur = schedule;
    let mut chunk = (cur.len() / 2).max(1);
    loop {
        let mut i = 0;
        while i < cur.len() {
            let mut cand = cur.clone();
            let end = (i + chunk).min(cand.len());
            cand.drain(i..end);
            if replay_violates(mk, &cand).is_some() {
                cur = cand; // removed chunk was irrelevant; stay at i
            } else {
                i += chunk;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk = (chunk / 2).max(1);
    }
    cur
}

fn record_violation<S: ModelSystem>(
    mk: &impl Fn() -> S,
    raw: Vec<S::Action>,
    fallback_error: String,
    out: &mut Vec<McViolation>,
) {
    let raw_len = raw.len();
    let minimized = minimize(mk, raw);
    let error = replay_violates(mk, &minimized).unwrap_or(fallback_error);
    // Encode against a replay so `encode` can describe the state each
    // action acts on.
    let mut sys = mk();
    let mut schedule = Vec::with_capacity(minimized.len());
    for a in &minimized {
        schedule.push(sys.encode(a));
        sys.apply(a);
    }
    out.push(McViolation { error, raw_len, schedule });
}

/// Bounded breadth-first exploration of every interleaving up to
/// `cfg.depth`, deduping states by digest.
pub fn explore<S: ModelSystem>(mk: impl Fn() -> S, cfg: &McConfig) -> McReport {
    let mut report = McReport::default();
    let mut visited: FxHashSet<u64> = FxHashSet::default();
    let root = mk();
    visited.insert(root.digest());
    report.stats.states_explored = 1;
    if let Err(e) = root.check() {
        record_violation(&mk, Vec::new(), e, &mut report.violations);
        return report;
    }
    let mut outcomes: BTreeSet<u64> = BTreeSet::new();
    let mut frontier: VecDeque<Vec<S::Action>> = VecDeque::new();
    frontier.push_back(Vec::new());
    'outer: while let Some(path) = frontier.pop_front() {
        // Rebuild this state by replaying its path from the root.
        let mut sys = mk();
        for a in &path {
            sys.apply(a);
        }
        let mut actions = sys.enabled();
        actions.sort();
        if actions.is_empty() {
            report.stats.terminal_states += 1;
            outcomes.insert(sys.outcome());
            if let Err(e) = sys.check_terminal() {
                record_violation(&mk, path.clone(), e, &mut report.violations);
                if report.violations.len() >= cfg.max_violations {
                    break 'outer;
                }
            }
            continue;
        }
        for action in actions {
            if report.stats.states_explored >= cfg.max_states {
                report.stats.truncated = true;
                break 'outer;
            }
            let mut child = sys.clone();
            if !child.apply(&action) {
                continue;
            }
            report.stats.transitions += 1;
            if !visited.insert(child.digest()) {
                report.stats.dedup_hits += 1;
                continue;
            }
            report.stats.states_explored += 1;
            let mut child_path = path.clone();
            child_path.push(action);
            if let Err(e) = child.check() {
                record_violation(&mk, child_path, e, &mut report.violations);
                if report.violations.len() >= cfg.max_violations {
                    break 'outer;
                }
                continue; // don't expand a violating state
            }
            if child_path.len() < cfg.depth {
                frontier.push_back(child_path);
            } else if child.enabled().is_empty() {
                // Depth-bound leaf that happens to be quiescent: a
                // genuine terminal state, so the terminal checks apply.
                report.stats.terminal_states += 1;
                outcomes.insert(child.outcome());
                if let Err(e) = child.check_terminal() {
                    record_violation(&mk, child_path, e, &mut report.violations);
                    if report.violations.len() >= cfg.max_violations {
                        break 'outer;
                    }
                }
            }
        }
    }
    report.terminal_outcomes = outcomes.into_iter().collect();
    report
}

struct WalkResult<A> {
    /// First-visit digests, in visit order (walk-local dedup).
    digests: Vec<u64>,
    /// Walk-local revisits.
    local_hits: u64,
    transitions: u64,
    terminal_states: u64,
    outcomes: BTreeSet<u64>,
    violation: Option<(Vec<A>, String)>,
}

/// Seeded random walks. Walk `i` is a pure function of `(seed, i)`;
/// results merge in walk order, so the report is identical for any
/// worker-pool size.
pub fn random_walks<S>(mk: impl Fn() -> S + Sync, cfg: &McConfig) -> McReport
where
    S: ModelSystem,
    S::Action: Send,
{
    let walk = |i: u64| -> WalkResult<S::Action> {
        let mut rng = rng_for_indexed(cfg.seed, "mc-walk", i);
        let mut res = WalkResult {
            digests: Vec::new(),
            local_hits: 0,
            transitions: 0,
            terminal_states: 0,
            outcomes: BTreeSet::new(),
            violation: None,
        };
        let mut seen: FxHashSet<u64> = FxHashSet::default();
        let mut sys = mk();
        let mut path: Vec<S::Action> = Vec::new();
        let d0 = sys.digest();
        seen.insert(d0);
        res.digests.push(d0);
        for _ in 0..cfg.walk_steps {
            let mut actions = sys.enabled();
            if actions.is_empty() {
                res.terminal_states += 1;
                res.outcomes.insert(sys.outcome());
                if let Err(e) = sys.check_terminal() {
                    res.violation = Some((path.clone(), e));
                    return res;
                }
                sys = mk();
                path.clear();
                continue;
            }
            actions.sort();
            let a = actions[rng.gen_range(0..actions.len())].clone();
            sys.apply(&a);
            path.push(a);
            res.transitions += 1;
            let d = sys.digest();
            if seen.insert(d) {
                res.digests.push(d);
            } else {
                res.local_hits += 1;
            }
            if let Err(e) = sys.check() {
                res.violation = Some((path.clone(), e));
                return res;
            }
        }
        res
    };

    let results = par_map_with(configured_threads(), (0..cfg.walks).collect(), |_, i| walk(i));

    // Deterministic merge, in walk order.
    let mut report = McReport::default();
    let mut global: FxHashSet<u64> = FxHashSet::default();
    let mut outcomes: BTreeSet<u64> = BTreeSet::new();
    for res in results {
        for d in res.digests {
            if global.insert(d) {
                report.stats.states_explored += 1;
            } else {
                report.stats.dedup_hits += 1;
            }
        }
        report.stats.dedup_hits += res.local_hits;
        report.stats.transitions += res.transitions;
        report.stats.terminal_states += res.terminal_states;
        outcomes.extend(res.outcomes);
        if let Some((raw, e)) = res.violation {
            if report.violations.len() < cfg.max_violations {
                record_violation(&mk, raw, e, &mut report.violations);
            }
        }
    }
    report.terminal_outcomes = outcomes.into_iter().collect();
    report
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a model's violations as a standalone JSON document (the
/// `MC_VIOLATIONS.json` artifact `mcheck` writes and regression tests
/// replay from).
pub fn violations_to_json(model: &str, violations: &[McViolation]) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"model\": \"{}\",\n", json_escape(model)));
    s.push_str("  \"violations\": [\n");
    for (i, v) in violations.iter().enumerate() {
        s.push_str("    {\n");
        s.push_str(&format!("      \"error\": \"{}\",\n", json_escape(&v.error)));
        s.push_str(&format!("      \"raw_len\": {},\n", v.raw_len));
        s.push_str("      \"schedule\": [");
        for (j, a) in v.schedule.iter().enumerate() {
            if j > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{}\"", json_escape(a)));
        }
        s.push_str("]\n");
        s.push_str(if i + 1 == violations.len() { "    }\n" } else { "    },\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy token-ring: N counters, actions increment one counter by
    /// one; invariant: no counter exceeds `limit`.
    #[derive(Clone)]
    struct Counters {
        vals: Vec<u64>,
        limit: u64,
        budget: u64,
    }

    impl ModelSystem for Counters {
        type Action = usize;

        fn enabled(&self) -> Vec<usize> {
            if self.budget == 0 {
                return Vec::new();
            }
            (0..self.vals.len()).collect()
        }

        fn apply(&mut self, action: &usize) -> bool {
            if self.budget == 0 || *action >= self.vals.len() {
                return false;
            }
            self.vals[*action] += 1;
            self.budget -= 1;
            true
        }

        fn digest(&self) -> u64 {
            let mut h = 0xcbf29ce484222325u64;
            for &v in &self.vals {
                h = h.wrapping_mul(0x100000001b3).wrapping_add(v);
            }
            h.wrapping_mul(0x100000001b3).wrapping_add(self.budget)
        }

        fn check(&self) -> Result<(), String> {
            for (i, &v) in self.vals.iter().enumerate() {
                if v > self.limit {
                    return Err(format!("counter {i} exceeded limit: {v}"));
                }
            }
            Ok(())
        }

        fn outcome(&self) -> u64 {
            self.vals.iter().sum()
        }

        fn encode(&self, action: &usize) -> String {
            format!("inc:{action}")
        }
    }

    #[test]
    fn bfs_dedups_commuting_increments() {
        // 3 counters, depth 4: increments commute, so states are
        // multisets — far fewer than 3^4 sequences.
        let mk = || Counters { vals: vec![0; 3], limit: 100, budget: 10 };
        let rep = explore(mk, &McConfig { depth: 4, ..Default::default() });
        assert!(rep.violations.is_empty());
        assert!(rep.stats.dedup_hits > 0, "commuting actions must dedup");
        // Distinct states = multisets of ≤4 increments over 3 slots:
        // C(3,0..4 with repetition) = 1+3+6+10+15 = 35.
        assert_eq!(rep.stats.states_explored, 35);
    }

    #[test]
    fn bfs_finds_and_minimizes_a_violation() {
        // Limit 2 with a single counter: the third increment violates.
        let mk = || Counters { vals: vec![0; 2], limit: 2, budget: 8 };
        let rep = explore(mk, &McConfig { depth: 8, ..Default::default() });
        assert!(!rep.violations.is_empty());
        let v = &rep.violations[0];
        // Minimization strips everything but the three offending
        // increments of one counter.
        assert_eq!(v.schedule.len(), 3, "minimized schedule: {:?}", v.schedule);
        assert!(v.error.contains("exceeded limit"));
    }

    #[test]
    fn walks_are_deterministic_and_outcomes_merge() {
        let mk = || Counters { vals: vec![0; 3], limit: 100, budget: 6 };
        let cfg = McConfig { walks: 4, walk_steps: 100, seed: 7, ..Default::default() };
        let a = random_walks(mk, &cfg);
        let b = random_walks(mk, &cfg);
        assert_eq!(a.stats.states_explored, b.stats.states_explored);
        assert_eq!(a.stats.dedup_hits, b.stats.dedup_hits);
        assert_eq!(a.terminal_outcomes, b.terminal_outcomes);
        // All terminal outcomes are "spent the whole budget": sum == 6.
        assert_eq!(a.terminal_outcomes, vec![6]);
    }

    #[test]
    fn violations_render_as_json() {
        let v = McViolation {
            error: "bad \"thing\"".into(),
            raw_len: 5,
            schedule: vec!["inc:0".into(), "inc:0".into()],
        };
        let json = violations_to_json("toy", &[v]);
        assert!(json.contains("\"model\": \"toy\""));
        assert!(json.contains("bad \\\"thing\\\""));
        assert!(json.contains("[\"inc:0\", \"inc:0\"]"));
    }
}
