//! Virtual simulation time.
//!
//! Stored as integer microseconds so event ordering is total and exactly
//! reproducible — float timestamps would make heap ordering depend on
//! accumulated rounding.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time (microseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Constructs from (possibly fractional) milliseconds; rounds to the
    /// nearest microsecond and saturates below at zero.
    pub fn from_ms(ms: f64) -> Self {
        SimTime((ms.max(0.0) * 1_000.0).round() as u64)
    }

    /// Constructs from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds since the epoch.
    pub fn as_ms(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Seconds since the epoch.
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }
}

/// A span of virtual time. Construct with [`SimTime`]-style helpers.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// From (possibly fractional) milliseconds, rounded to the microsecond.
    pub fn from_ms(ms: f64) -> Self {
        SimDuration((ms.max(0.0) * 1_000.0).round() as u64)
    }

    /// From whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds.
    pub fn as_ms(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Integer multiplication.
    pub fn times(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}ms", self.as_ms())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Δ{:.3}ms", self.as_ms())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let t = SimTime::from_ms(12.5);
        assert_eq!(t.as_micros(), 12_500);
        assert!((t.as_ms() - 12.5).abs() < 1e-9);
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert!((SimTime::from_secs(2).as_secs() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn negative_ms_saturates_to_zero() {
        assert_eq!(SimTime::from_ms(-3.0), SimTime::ZERO);
        assert_eq!(SimDuration::from_ms(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_ms(10.0) + SimDuration::from_ms(5.0);
        assert_eq!(t, SimTime::from_ms(15.0));
        let d = SimTime::from_ms(15.0) - SimTime::from_ms(10.0);
        assert_eq!(d, SimDuration::from_ms(5.0));
        // Subtraction saturates rather than panicking.
        assert_eq!(SimTime::from_ms(1.0) - SimTime::from_ms(2.0), SimDuration::ZERO);
    }

    #[test]
    fn ordering_is_total() {
        let a = SimTime::from_micros(1);
        let b = SimTime::from_micros(2);
        assert!(a < b);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn duration_times() {
        assert_eq!(SimDuration::from_ms(2.0).times(3).as_ms(), 6.0);
    }

    #[test]
    fn sub_microsecond_rounding() {
        // 0.0004 ms rounds to 0 µs; 0.0006 ms rounds to 1 µs.
        assert_eq!(SimTime::from_ms(0.0004).as_micros(), 0);
        assert_eq!(SimTime::from_ms(0.0006).as_micros(), 1);
    }
}
