//! Seeded, replayable fault-injection plans.
//!
//! A [`FaultPlan`] is a deterministic schedule of adversarial actions —
//! peer crashes (individual or correlated), revives, and soft-state
//! expiry storms — keyed by sim time unit. Plans are pure data: the same
//! plan applied to the same world is byte-identical regardless of thread
//! count, per the PR1 determinism contract. Peers are raw `u64` ids so
//! this crate stays independent of the core model types.
//!
//! Plans come from three places: hand-built via the builder methods
//! ([`FaultPlan::crash`] and friends), generated from a seeded random
//! process ([`FaultPlan::crash_storm`], [`FaultPlan::kill_each`]), or
//! parsed from a CLI spec string ([`FaultPlan::parse`]) so the fig10
//! binary can take `--faults storm:rate=0.05,units=30,revive=5` or an
//! explicit `crash@3:7;revive@8:7;expire@4:16` atom list.

use spidernet_util::rng::{rng_for, SliceRandom};
use std::collections::{BTreeMap, BTreeSet};

/// One scheduled adversarial action.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Crash a single peer (no-op if already dead).
    Crash {
        /// Raw id of the peer to kill.
        peer: u64,
    },
    /// Crash several peers *simultaneously* — all are marked dead before
    /// any recovery runs, modeling a correlated failure (rack loss,
    /// partition) that can take out a primary component and its backup in
    /// the same instant.
    CrashCorrelated {
        /// Raw ids of the peers to kill together.
        peers: Vec<u64>,
    },
    /// Revive a previously crashed peer (no-op if alive).
    Revive {
        /// Raw id of the peer to bring back.
        peer: u64,
    },
    /// A soft-state expiry storm: place this many short-TTL soft
    /// reservations on deterministically chosen live peers, all expiring
    /// at the end of the current unit, stressing the expiry sweep.
    SoftStorm {
        /// Number of soft reservations to place.
        allocs: u32,
    },
}

/// A deterministic schedule of [`FaultAction`]s keyed by time unit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    horizon: u64,
    steps: BTreeMap<u64, Vec<FaultAction>>,
}

impl FaultPlan {
    /// An empty plan. `seed` feeds any randomness the *driver* needs while
    /// applying the plan (e.g. picking soft-storm target peers).
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, horizon: 0, steps: BTreeMap::new() }
    }

    /// The driver-side randomness seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// One past the last unit with a scheduled action (or the explicit
    /// padding set via [`FaultPlan::with_horizon`]): drivers step units
    /// `0..horizon()`.
    pub fn horizon(&self) -> u64 {
        self.horizon
    }

    /// Extends the horizon to at least `units` (trailing quiet units let
    /// revives and expiry sweeps play out).
    pub fn with_horizon(mut self, units: u64) -> Self {
        self.horizon = self.horizon.max(units);
        self
    }

    /// Total scheduled actions.
    pub fn len(&self) -> usize {
        self.steps.values().map(Vec::len).sum()
    }

    /// True if no action is scheduled.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The actions scheduled at `unit`, in insertion order.
    pub fn actions_at(&self, unit: u64) -> &[FaultAction] {
        self.steps.get(&unit).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Schedules `action` at `unit` (builder-style).
    pub fn at(mut self, unit: u64, action: FaultAction) -> Self {
        self.push(unit, action);
        self
    }

    /// Schedules a single-peer crash at `unit`.
    pub fn crash(self, unit: u64, peer: u64) -> Self {
        self.at(unit, FaultAction::Crash { peer })
    }

    /// Schedules a correlated multi-peer crash at `unit`.
    pub fn crash_correlated(self, unit: u64, peers: Vec<u64>) -> Self {
        self.at(unit, FaultAction::CrashCorrelated { peers })
    }

    /// Schedules a revive at `unit`.
    pub fn revive(self, unit: u64, peer: u64) -> Self {
        self.at(unit, FaultAction::Revive { peer })
    }

    /// Schedules a soft-state expiry storm at `unit`.
    pub fn soft_storm(self, unit: u64, allocs: u32) -> Self {
        self.at(unit, FaultAction::SoftStorm { allocs })
    }

    fn push(&mut self, unit: u64, action: FaultAction) {
        self.steps.entry(unit).or_default().push(action);
        self.horizon = self.horizon.max(unit + 1);
    }

    /// A seeded random crash storm over peers `0..peer_count`: each unit,
    /// `rate` of the currently-live population crashes (churn-style
    /// floor + Bernoulli-remainder sampling, so fractional expectations
    /// are exact in the long run). With `revive_after = Some(k)`, each
    /// victim is scheduled to revive `k` units later; the storm models the
    /// live set so a dead peer is never crashed twice.
    pub fn crash_storm(
        seed: u64,
        peer_count: u64,
        rate: f64,
        units: u64,
        revive_after: Option<u64>,
    ) -> Self {
        let mut plan = FaultPlan::new(seed).with_horizon(units);
        let mut rng = rng_for(seed, "fault-storm");
        let mut live: BTreeSet<u64> = (0..peer_count).collect();
        let mut pending_revive: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        for unit in 0..units {
            if let Some(back) = pending_revive.remove(&unit) {
                for peer in back {
                    plan.push(unit, FaultAction::Revive { peer });
                    live.insert(peer);
                }
            }
            if rate <= 0.0 || live.is_empty() {
                continue;
            }
            let expected = rate * live.len() as f64;
            let mut count = expected.floor() as usize;
            if rng.gen::<f64>() < expected.fract() {
                count += 1;
            }
            let mut pool: Vec<u64> = live.iter().copied().collect();
            pool.shuffle(&mut rng);
            pool.truncate(count.min(pool.len()));
            for peer in pool {
                live.remove(&peer);
                plan.push(unit, FaultAction::Crash { peer });
                if let Some(k) = revive_after {
                    let back_at = unit + k;
                    if back_at < units {
                        pending_revive.entry(back_at).or_default().push(peer);
                    }
                }
            }
        }
        plan
    }

    /// Kills each listed peer in order, one crash per `spacing` units
    /// starting at `start` — the acceptance scenario that takes out every
    /// component of a primary graph one at a time.
    pub fn kill_each(seed: u64, peers: &[u64], start: u64, spacing: u64) -> Self {
        let mut plan = FaultPlan::new(seed);
        for (i, &peer) in peers.iter().enumerate() {
            plan.push(start + i as u64 * spacing.max(1), FaultAction::Crash { peer });
        }
        plan
    }

    /// Parses a CLI fault spec.
    ///
    /// Two forms:
    /// * `storm:rate=0.05,units=30,revive=5` — a [`FaultPlan::crash_storm`]
    ///   over `peer_count` peers (`units` defaults to 30, `revive` to
    ///   never);
    /// * a `;`-separated atom list: `crash@U:P` (multi-peer with `+`:
    ///   `crash@2:4+9`), `revive@U:P`, `expire@U:N`.
    pub fn parse(spec: &str, seed: u64, peer_count: u64) -> Result<FaultPlan, String> {
        if let Some(params) = spec.strip_prefix("storm:") {
            let mut rate = None;
            let mut units = 30u64;
            let mut revive = None;
            for kv in params.split(',').filter(|s| !s.is_empty()) {
                let (k, v) = kv.split_once('=').ok_or_else(|| format!("bad storm param {kv:?}"))?;
                match k {
                    "rate" => {
                        let r: f64 =
                            v.parse().map_err(|_| format!("bad storm rate {v:?}"))?;
                        if !(0.0..=1.0).contains(&r) {
                            return Err(format!("storm rate {r} outside [0, 1]"));
                        }
                        rate = Some(r);
                    }
                    "units" => {
                        units = v.parse().map_err(|_| format!("bad storm units {v:?}"))?;
                    }
                    "revive" => {
                        revive =
                            Some(v.parse().map_err(|_| format!("bad storm revive {v:?}"))?);
                    }
                    _ => return Err(format!("unknown storm param {k:?}")),
                }
            }
            let rate = rate.ok_or("storm spec requires rate=<fraction>")?;
            return Ok(FaultPlan::crash_storm(seed, peer_count, rate, units, revive));
        }
        let mut plan = FaultPlan::new(seed);
        for atom in spec.split(';').filter(|s| !s.is_empty()) {
            let (kind, rest) =
                atom.split_once('@').ok_or_else(|| format!("bad fault atom {atom:?}"))?;
            let (unit, arg) =
                rest.split_once(':').ok_or_else(|| format!("bad fault atom {atom:?}"))?;
            let unit: u64 = unit.parse().map_err(|_| format!("bad unit in {atom:?}"))?;
            match kind {
                "crash" => {
                    let peers: Vec<u64> = arg
                        .split('+')
                        .map(|p| p.parse().map_err(|_| format!("bad peer in {atom:?}")))
                        .collect::<Result<_, _>>()?;
                    match peers.as_slice() {
                        [] => return Err(format!("empty peer list in {atom:?}")),
                        [peer] => plan.push(unit, FaultAction::Crash { peer: *peer }),
                        _ => plan.push(unit, FaultAction::CrashCorrelated { peers }),
                    }
                }
                "revive" => {
                    let peer = arg.parse().map_err(|_| format!("bad peer in {atom:?}"))?;
                    plan.push(unit, FaultAction::Revive { peer });
                }
                "expire" => {
                    let allocs = arg.parse().map_err(|_| format!("bad count in {atom:?}"))?;
                    plan.push(unit, FaultAction::SoftStorm { allocs });
                }
                _ => return Err(format!("unknown fault kind {kind:?}")),
            }
        }
        if plan.is_empty() {
            return Err(format!("fault spec {spec:?} contains no actions"));
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_tracks_horizon_and_order() {
        let plan = FaultPlan::new(7).crash(3, 1).revive(5, 1).soft_storm(3, 8);
        assert_eq!(plan.horizon(), 6);
        assert_eq!(plan.len(), 3);
        assert_eq!(
            plan.actions_at(3),
            &[FaultAction::Crash { peer: 1 }, FaultAction::SoftStorm { allocs: 8 }]
        );
        assert_eq!(plan.actions_at(4), &[]);
        assert_eq!(plan.with_horizon(10).horizon(), 10);
    }

    #[test]
    fn crash_storm_is_deterministic_per_seed() {
        let a = FaultPlan::crash_storm(11, 50, 0.08, 20, Some(4));
        let b = FaultPlan::crash_storm(11, 50, 0.08, 20, Some(4));
        let c = FaultPlan::crash_storm(12, 50, 0.08, 20, Some(4));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn crash_storm_never_kills_a_dead_peer() {
        let plan = FaultPlan::crash_storm(3, 20, 0.2, 30, Some(5));
        let mut dead = BTreeSet::new();
        for unit in 0..plan.horizon() {
            for a in plan.actions_at(unit) {
                match a {
                    FaultAction::Crash { peer } => assert!(dead.insert(*peer), "double crash"),
                    FaultAction::Revive { peer } => assert!(dead.remove(peer), "bogus revive"),
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn crash_storm_without_revive_drains_population() {
        let plan = FaultPlan::crash_storm(5, 10, 0.5, 40, None);
        let crashes = (0..plan.horizon())
            .flat_map(|u| plan.actions_at(u))
            .filter(|a| matches!(a, FaultAction::Crash { .. }))
            .count();
        assert!(crashes <= 10);
        assert!(crashes >= 8, "a 50% storm should kill most of 10 peers, got {crashes}");
    }

    #[test]
    fn kill_each_spaces_crashes() {
        let plan = FaultPlan::kill_each(1, &[4, 9, 2], 1, 3);
        assert_eq!(plan.actions_at(1), &[FaultAction::Crash { peer: 4 }]);
        assert_eq!(plan.actions_at(4), &[FaultAction::Crash { peer: 9 }]);
        assert_eq!(plan.actions_at(7), &[FaultAction::Crash { peer: 2 }]);
        assert_eq!(plan.horizon(), 8);
    }

    #[test]
    fn parse_storm_spec() {
        let plan = FaultPlan::parse("storm:rate=0.1,units=12,revive=3", 9, 40).unwrap();
        assert_eq!(plan, FaultPlan::crash_storm(9, 40, 0.1, 12, Some(3)));
        assert!(FaultPlan::parse("storm:units=5", 9, 40).is_err(), "rate is required");
        assert!(FaultPlan::parse("storm:rate=1.5", 9, 40).is_err());
        assert!(FaultPlan::parse("storm:rate=0.1,bogus=1", 9, 40).is_err());
    }

    #[test]
    fn parse_atom_list() {
        let plan = FaultPlan::parse("crash@2:4+9;revive@6:4;expire@3:16;crash@8:1", 9, 40).unwrap();
        assert_eq!(plan.actions_at(2), &[FaultAction::CrashCorrelated { peers: vec![4, 9] }]);
        assert_eq!(plan.actions_at(6), &[FaultAction::Revive { peer: 4 }]);
        assert_eq!(plan.actions_at(3), &[FaultAction::SoftStorm { allocs: 16 }]);
        assert_eq!(plan.actions_at(8), &[FaultAction::Crash { peer: 1 }]);
        assert_eq!(plan.horizon(), 9);
        assert!(FaultPlan::parse("crash@x:1", 9, 40).is_err());
        assert!(FaultPlan::parse("melt@2:1", 9, 40).is_err());
        assert!(FaultPlan::parse("", 9, 40).is_err());
    }
}
