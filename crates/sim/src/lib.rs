//! Deterministic discrete-event simulation engine.
//!
//! Reproduces the methodology of the paper's event-driven C++ overlay
//! simulator: virtual time, a total-order event queue, message transport
//! whose delays come from the topology layer, a churn injector for dynamic
//! peer failures, and a metrics sink for protocol-overhead accounting.
//!
//! * [`time`] — virtual time as integer microseconds (total order, no
//!   floating-point tie ambiguity);
//! * [`event`] — the scheduler: a priority queue with FIFO tie-breaking;
//! * [`event_core`] — the indexed, allocation-free event core the scale
//!   path uses (u32 handler ids, cancel-by-generation);
//! * [`transport`] — pluggable peer-to-peer latency models, including
//!   overlay-routed latency;
//! * [`churn`] — random peer-failure injection ("1% of peers fail per time
//!   unit");
//! * [`fault`] — seeded, replayable fault-injection plans (crash/revive
//!   schedules, correlated failures, soft-state expiry storms);
//! * [`mc`] — the message-passing model checker core: bounded BFS and
//!   seeded random walks over any [`mc::ModelSystem`], with state-hash
//!   dedup and minimized counterexample schedules;
//! * [`metrics`] — the interned counter/histogram registry for protocol
//!   messages, with per-session scoping and deterministic merge;
//! * [`trace`] — the typed protocol event ring (compiled out without the
//!   `trace` cargo feature);
//! * [`export`] — `TRACE_<name>.json` report rendering for the figure
//!   binaries.

#![warn(missing_docs)]

pub mod churn;
pub mod event;
pub mod event_core;
pub mod export;
pub mod fault;
pub mod mc;
pub mod metrics;
pub mod time;
pub mod trace;
pub mod transport;

pub use churn::ChurnModel;
pub use event::Scheduler;
pub use event_core::{EventCore, EventKey, HandlerId};
pub use export::TraceReport;
pub use fault::{FaultAction, FaultPlan};
pub use mc::{McConfig, McReport, McStats, McViolation, ModelSystem};
pub use metrics::{Counter, Histogram, Instruments, MetricsRegistry, ProtocolCounters};
pub use time::SimTime;
pub use trace::{DropReason, TraceBuffer, TraceEvent};
pub use transport::{OverlayTransport, Transport, UniformTransport};
