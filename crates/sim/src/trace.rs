//! Structured protocol tracing.
//!
//! The experiment drivers need to see *inside* a run — which sessions
//! spawned how many probes, where budget was split, when soft state
//! churned, how long a backup switch took — not just end-state counters.
//! [`TraceBuffer`] records typed [`TraceEvent`]s into a pre-allocated ring
//! so the hot path never allocates; when the `trace` cargo feature is
//! disabled the buffer is a zero-sized no-op and every `record` call
//! compiles away.

/// Why a BCP probe was discarded before completing its branch walk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DropReason {
    /// The accumulated partial QoS already violated the request bound.
    Qos,
    /// The candidate peer failed the resource admission check.
    Admission,
}

/// One typed protocol event.
///
/// Events are small `Copy` values; identifiers are raw `u64`s so the sim
/// crate stays independent of the core model types.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TraceEvent {
    /// A BCP probe was spawned (initial, per-hop child, or final leg).
    ProbeSpawned {
        /// Composition session the probe belongs to.
        session: u64,
        /// Hop depth along the branch (0 = source).
        depth: u16,
        /// Probe budget carried at the spawn point.
        budget: u32,
    },
    /// A BCP probe was discarded mid-walk.
    ProbeDropped {
        /// Composition session the probe belonged to.
        session: u64,
        /// Why it was dropped.
        reason: DropReason,
    },
    /// A soft (probe-time) resource reservation was placed on a peer.
    SoftAlloc {
        /// The reserving peer.
        peer: u64,
    },
    /// A soft reservation was released (explicitly or by TTL expiry).
    SoftRelease {
        /// The peer whose reservation was returned.
        peer: u64,
    },
    /// Proactive recovery switched a session onto a backup graph.
    BackupSwitch {
        /// The recovered session.
        session: u64,
        /// The failed peer that triggered the switch.
        from: u64,
        /// Head peer of the promoted backup graph.
        to: u64,
        /// Detection + switchover latency.
        latency_ms: f64,
    },
    /// A DHT lookup or registration was routed to its directory node.
    DhtLookup {
        /// Overlay routing hops the message traversed.
        hops: u32,
    },
    /// A fault-injection plan changed a peer's liveness.
    FaultInjected {
        /// Plan time unit the action fired at.
        unit: u64,
        /// The affected peer.
        peer: u64,
        /// `true` for a crash, `false` for a revive.
        crash: bool,
    },
    /// The recovery layer resolved a primary-graph failure: either it
    /// switched to the backup at `rank` (`reactive` = false) or it
    /// exhausted `rank` backups and fell through to reactive BCP
    /// (`reactive` = true).
    RecoverySwitch {
        /// The affected session.
        session: u64,
        /// Backup rank promoted, or — when `reactive` — backups tried.
        rank: u32,
        /// True if the session needed a reactive re-composition.
        reactive: bool,
    },
    /// A transport connection to a peer was established (socket
    /// deployments: outbound TCP dial + handshake completed).
    ConnOpened {
        /// The remote peer.
        peer: u64,
    },
    /// A transport connection was torn down (write failure, EOF, or the
    /// peer was declared unreachable).
    ConnClosed {
        /// The remote peer.
        peer: u64,
    },
    /// A dial attempt to a peer failed and will be retried with backoff.
    ConnRetry {
        /// The remote peer.
        peer: u64,
        /// Zero-based attempt number that failed.
        attempt: u32,
    },
    /// The event transport's bounded outbound queue for a peer was full
    /// and shed a droppable media frame rather than queueing it.
    ConnBackpressure {
        /// The congested remote peer.
        peer: u64,
        /// Encoded size of the frame that was shed, bytes.
        shed_bytes: u64,
    },
    /// A peer's outbound queue depth crossed its high-water mark (half
    /// the shed threshold) — early warning that backpressure is close.
    QueueDepth {
        /// The remote peer.
        peer: u64,
        /// Bytes currently queued toward the peer.
        queued_bytes: u64,
    },
    /// The pair-delay memo hit its capacity cap and refused inserts since
    /// the last report — delay queries beyond the cap silently fall back
    /// to full tree walks, which this event makes visible.
    PairCacheSaturated {
        /// Inserts refused so far (monotone across a run).
        rejected: u64,
    },
    /// An optimal-baseline enumeration finished, summarizing how much of
    /// the candidate combo space branch-and-bound pruning cut away.
    BaselinePruned {
        /// Composition session of the run.
        session: u64,
        /// Candidate positions considered (`examined + pruned`; equals the
        /// capped combo count).
        considered: u64,
        /// Leaves fully evaluated.
        examined: u64,
        /// Leaves skipped by admissible prefix pruning.
        pruned: u64,
    },
}

/// Default ring capacity (events). At ~40 bytes per event this is well
/// under a megabyte per overlay instance.
pub const DEFAULT_TRACE_CAPACITY: usize = 16_384;

/// Ring-buffered event sink (`trace` feature enabled).
///
/// Backing storage is reserved in full on the first `record`, so the
/// steady-state hot path is an indexed store — no allocation, no
/// branching beyond the wrap check. Once the ring is full, the oldest
/// event is overwritten and counted in [`TraceBuffer::overwritten`].
#[cfg(feature = "trace")]
#[derive(Clone, Debug)]
pub struct TraceBuffer {
    buf: Vec<TraceEvent>,
    cap: usize,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    overwritten: u64,
}

#[cfg(feature = "trace")]
impl TraceBuffer {
    /// A buffer with the default capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// A buffer holding at most `cap` events (minimum 1).
    pub fn with_capacity(cap: usize) -> Self {
        TraceBuffer { buf: Vec::new(), cap: cap.max(1), head: 0, overwritten: 0 }
    }

    /// Records one event. O(1); allocates only on the very first call.
    #[inline]
    pub fn record(&mut self, ev: TraceEvent) {
        if self.buf.len() < self.cap {
            if self.buf.capacity() < self.cap {
                self.buf.reserve_exact(self.cap - self.buf.capacity());
            }
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.cap;
            self.overwritten += 1;
        }
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been recorded (or everything was cleared).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events ever recorded, including overwritten ones.
    pub fn recorded(&self) -> u64 {
        self.buf.len() as u64 + self.overwritten
    }

    /// Events lost to ring overwrite.
    pub fn overwritten(&self) -> u64 {
        self.overwritten
    }

    /// The buffered events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }

    /// The buffered events whose global sequence number is ≥ `mark`
    /// (a value previously returned by [`TraceBuffer::recorded`]).
    /// Events older than the ring window are gone; the slice starts at
    /// whichever is newer.
    pub fn events_since(&self, mark: u64) -> Vec<TraceEvent> {
        let oldest = self.overwritten; // global index of buf[head]
        let skip = mark.saturating_sub(oldest) as usize;
        let mut all = self.events();
        if skip >= all.len() {
            return Vec::new();
        }
        all.split_off(skip)
    }

    /// Empties the ring (capacity and overwrite count are kept).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
    }

    /// Appends another buffer's events, oldest first — used when the
    /// parallel harness folds per-trial buffers together. Deterministic:
    /// purely sequential replay of `other` into `self`.
    pub fn merge(&mut self, other: &TraceBuffer) {
        for ev in other.events() {
            self.record(ev);
        }
        self.overwritten += other.overwritten;
    }
}

#[cfg(feature = "trace")]
impl Default for TraceBuffer {
    fn default() -> Self {
        Self::new()
    }
}

/// No-op event sink (`trace` feature disabled): a zero-sized type whose
/// `record` compiles to nothing, keeping call sites identical either way.
#[cfg(not(feature = "trace"))]
#[derive(Clone, Copy, Debug, Default)]
pub struct TraceBuffer;

#[cfg(not(feature = "trace"))]
impl TraceBuffer {
    /// A buffer with the default capacity (no-op).
    pub fn new() -> Self {
        TraceBuffer
    }

    /// A buffer holding at most `cap` events (no-op).
    pub fn with_capacity(_cap: usize) -> Self {
        TraceBuffer
    }

    /// Records one event (compiled out).
    #[inline(always)]
    pub fn record(&mut self, _ev: TraceEvent) {}

    /// Events currently buffered (always 0).
    pub fn len(&self) -> usize {
        0
    }

    /// Always true.
    pub fn is_empty(&self) -> bool {
        true
    }

    /// Total events ever recorded (always 0).
    pub fn recorded(&self) -> u64 {
        0
    }

    /// Events lost to ring overwrite (always 0).
    pub fn overwritten(&self) -> u64 {
        0
    }

    /// The buffered events (always empty).
    pub fn events(&self) -> Vec<TraceEvent> {
        Vec::new()
    }

    /// Events since `mark` (always empty).
    pub fn events_since(&self, _mark: u64) -> Vec<TraceEvent> {
        Vec::new()
    }

    /// Empties the ring (no-op).
    pub fn clear(&mut self) {}

    /// Merges another buffer (no-op).
    pub fn merge(&mut self, _other: &TraceBuffer) {}
}

#[cfg(all(test, feature = "trace"))]
mod tests {
    use super::*;

    fn probe(n: u64) -> TraceEvent {
        TraceEvent::ProbeSpawned { session: n, depth: 0, budget: 1 }
    }

    #[test]
    fn records_in_order() {
        let mut t = TraceBuffer::with_capacity(8);
        for i in 0..5 {
            t.record(probe(i));
        }
        assert_eq!(t.len(), 5);
        assert_eq!(t.recorded(), 5);
        assert_eq!(t.events(), (0..5).map(probe).collect::<Vec<_>>());
    }

    #[test]
    fn ring_overwrites_oldest_when_full() {
        let mut t = TraceBuffer::with_capacity(4);
        for i in 0..7 {
            t.record(probe(i));
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.recorded(), 7);
        assert_eq!(t.overwritten(), 3);
        assert_eq!(t.events(), (3..7).map(probe).collect::<Vec<_>>());
    }

    #[test]
    fn events_since_mark() {
        let mut t = TraceBuffer::with_capacity(16);
        t.record(probe(0));
        t.record(probe(1));
        let mark = t.recorded();
        t.record(probe(2));
        t.record(probe(3));
        assert_eq!(t.events_since(mark), vec![probe(2), probe(3)]);
        assert!(t.events_since(t.recorded()).is_empty());
    }

    #[test]
    fn events_since_survives_wraparound() {
        let mut t = TraceBuffer::with_capacity(4);
        t.record(probe(0));
        let mark = t.recorded(); // = 1
        for i in 1..6 {
            t.record(probe(i));
        }
        // Oldest surviving event is #2; the mark points below the window,
        // so everything buffered comes back.
        assert_eq!(t.events_since(mark), (2..6).map(probe).collect::<Vec<_>>());
    }

    #[test]
    fn merge_replays_in_order() {
        let mut a = TraceBuffer::with_capacity(8);
        a.record(probe(0));
        let mut b = TraceBuffer::with_capacity(8);
        b.record(probe(1));
        b.record(probe(2));
        a.merge(&b);
        assert_eq!(a.events(), vec![probe(0), probe(1), probe(2)]);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut t = TraceBuffer::with_capacity(4);
        for i in 0..6 {
            t.record(probe(i));
        }
        t.clear();
        assert!(t.is_empty());
        t.record(probe(9));
        assert_eq!(t.events(), vec![probe(9)]);
    }
}
