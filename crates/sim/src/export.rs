//! JSON export for the observability layer.
//!
//! The figure binaries emit a `TRACE_<name>.json` next to their
//! `BENCH_<name>.json` when invoked with `--trace-json`: merged protocol
//! counters, DAG-shape histograms, per-session rows (e.g. probes spent
//! per composition request), and trace-ring statistics. Everything is
//! hand-rolled flat JSON — the workspace deliberately has no external
//! dependencies.

use crate::metrics::MetricsRegistry;
use crate::trace::TraceBuffer;
use spidernet_util::stats::Summary;

/// Builder for one `TRACE_<name>.json` report.
///
/// Field order is insertion order; all collection inputs are iterated in
/// deterministic (name / session id) order, so a report built from the
/// same run renders byte-identically.
pub struct TraceReport {
    name: String,
    counters: Vec<(String, u64)>,
    histograms: Vec<(String, Summary)>,
    session_columns: Vec<String>,
    sessions: Vec<(u64, Vec<u64>)>,
    trace_stats: Option<(u64, u64, u64)>, // recorded, buffered, overwritten
}

impl TraceReport {
    /// A report for figure `name` (e.g. `"overhead"`).
    pub fn new(name: &str) -> Self {
        TraceReport {
            name: name.to_owned(),
            counters: Vec::new(),
            histograms: Vec::new(),
            session_columns: Vec::new(),
            sessions: Vec::new(),
            trace_stats: None,
        }
    }

    /// Adds one named counter total.
    pub fn counter(&mut self, name: &str, v: u64) -> &mut Self {
        self.counters.push((name.to_owned(), v));
        self
    }

    /// Adds one named histogram.
    pub fn histogram(&mut self, name: &str, s: &Summary) -> &mut Self {
        self.histograms.push((name.to_owned(), s.clone()));
        self
    }

    /// Declares the per-session columns (must precede
    /// [`TraceReport::session`]).
    pub fn session_columns(&mut self, columns: &[&str]) -> &mut Self {
        self.session_columns = columns.iter().map(|c| (*c).to_owned()).collect();
        self
    }

    /// Adds one per-session row; `values` align with the declared columns.
    pub fn session(&mut self, session: u64, values: &[u64]) -> &mut Self {
        debug_assert_eq!(values.len(), self.session_columns.len());
        self.sessions.push((session, values.to_vec()));
        self
    }

    /// Imports every counter, histogram, and session row of a registry.
    pub fn add_registry(&mut self, reg: &MetricsRegistry) -> &mut Self {
        for (name, v) in reg.counters() {
            self.counter(name, v);
        }
        for (name, s) in reg.histograms() {
            self.histogram(name, s);
        }
        if reg.session_count() > 0 {
            self.session_columns = reg.counters().map(|(n, _)| n.to_owned()).collect();
            self.sessions.extend(reg.session_rows());
        }
        self
    }

    /// Records trace-ring statistics.
    pub fn add_trace(&mut self, trace: &TraceBuffer) -> &mut Self {
        self.trace_stats = Some((trace.recorded(), trace.len() as u64, trace.overwritten()));
        self
    }

    /// Records pre-measured trace-ring statistics `(recorded, buffered,
    /// overwritten)` — for drivers that only carry the numbers, not the
    /// ring itself.
    pub fn trace_stats(&mut self, recorded: u64, buffered: u64, overwritten: u64) -> &mut Self {
        self.trace_stats = Some((recorded, buffered, overwritten));
        self
    }

    /// Renders the report as JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"figure\": \"{}\",\n", self.name));
        s.push_str("  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            s.push_str(&format!("    \"{k}\": {v}"));
        }
        s.push_str(if self.counters.is_empty() { "},\n" } else { "\n  },\n" });
        s.push_str("  \"histograms\": {");
        for (i, (k, sm)) in self.histograms.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            s.push_str(&format!(
                "    \"{k}\": {{\"count\": {}, \"mean\": {:.4}, \"min\": {:.4}, \"max\": {:.4}}}",
                sm.count(),
                sm.mean(),
                if sm.count() > 0 { sm.min() } else { 0.0 },
                if sm.count() > 0 { sm.max() } else { 0.0 },
            ));
        }
        s.push_str(if self.histograms.is_empty() { "},\n" } else { "\n  },\n" });
        s.push_str("  \"session_columns\": [");
        for (i, c) in self.session_columns.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{c}\""));
        }
        s.push_str("],\n");
        s.push_str("  \"sessions\": [");
        for (i, (sid, values)) in self.sessions.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            s.push_str(&format!("    {{\"session\": {sid}, \"values\": ["));
            for (j, v) in values.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                s.push_str(&v.to_string());
            }
            s.push_str("]}");
        }
        s.push_str(if self.sessions.is_empty() { "],\n" } else { "\n  ],\n" });
        let (rec, buf, lost) = self.trace_stats.unwrap_or((0, 0, 0));
        s.push_str(&format!(
            "  \"trace\": {{\"recorded\": {rec}, \"buffered\": {buf}, \"overwritten\": {lost}}}\n"
        ));
        s.push_str("}\n");
        s
    }

    /// Writes `TRACE_<name>.json` into the current directory and returns
    /// the path.
    pub fn write(&self) -> std::io::Result<std::path::PathBuf> {
        let path = std::path::PathBuf::from(format!("TRACE_{}.json", self.name));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_flat_report() {
        let mut rep = TraceReport::new("figX");
        rep.counter("bcp.probes", 42)
            .session_columns(&["probes", "functions"])
            .session(1, &[10, 3])
            .session(2, &[7, 2]);
        let json = rep.to_json();
        assert!(json.starts_with("{\n"));
        assert!(json.ends_with("}\n"));
        assert!(json.contains("\"figure\": \"figX\""));
        assert!(json.contains("\"bcp.probes\": 42"));
        assert!(json.contains("\"session_columns\": [\"probes\", \"functions\"]"));
        assert!(json.contains("{\"session\": 1, \"values\": [10, 3]}"));
        assert!(json.contains("\"trace\": {\"recorded\": 0"));
    }

    #[test]
    fn imports_registry_counters_and_sessions() {
        let mut reg = MetricsRegistry::new();
        reg.set_session_tracking(true);
        // Intern out of name order to exercise the column re-ordering.
        let z = reg.counter("z.second");
        let a = reg.counter("a.first");
        reg.begin_session(5);
        reg.add(z, 2);
        reg.add(a, 9);
        reg.end_session();
        let mut rep = TraceReport::new("t");
        rep.add_registry(&reg);
        let json = rep.to_json();
        assert!(json.contains("\"a.first\": 9"));
        assert!(json.contains("\"session_columns\": [\"a.first\", \"z.second\"]"));
        assert!(json.contains("{\"session\": 5, \"values\": [9, 2]}"));
    }

    #[test]
    fn histogram_rendering_has_stats() {
        let mut s = Summary::new();
        s.record(1.0);
        s.record(3.0);
        let mut rep = TraceReport::new("h");
        rep.histogram("lat", &s);
        let json = rep.to_json();
        assert!(json.contains("\"lat\": {\"count\": 2, \"mean\": 2.0000"));
    }
}
