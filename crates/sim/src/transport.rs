//! Peer-to-peer message latency models.
//!
//! Protocol code asks a [`Transport`] how long a message from peer `a` to
//! peer `b` takes; the simulator schedules delivery that far in the future.
//! [`OverlayTransport`] routes over the overlay graph (application-level
//! routing, as in the paper); [`UniformTransport`] is a constant-delay
//! model for unit tests.

use spidernet_topology::routing::{dijkstra, PathResult};
use spidernet_topology::Overlay;
use spidernet_util::id::PeerId;
use std::collections::HashMap;

/// A source of peer-to-peer one-way latencies (milliseconds).
pub trait Transport {
    /// One-way latency from `a` to `b`, in ms.
    fn latency_ms(&mut self, a: PeerId, b: PeerId) -> f64;
}

/// Constant latency between every pair of distinct peers.
pub struct UniformTransport {
    /// The constant one-way delay, ms.
    pub delay_ms: f64,
}

impl Transport for UniformTransport {
    fn latency_ms(&mut self, a: PeerId, b: PeerId) -> f64 {
        if a == b {
            0.0
        } else {
            self.delay_ms
        }
    }
}

/// Latency = shortest-path delay over the overlay graph, with per-source
/// SSSP caching. Owns a clone-free borrow of the overlay.
pub struct OverlayTransport<'o> {
    overlay: &'o Overlay,
    cache: HashMap<PeerId, PathResult>,
}

impl<'o> OverlayTransport<'o> {
    /// Creates a transport over `overlay`.
    pub fn new(overlay: &'o Overlay) -> Self {
        OverlayTransport { overlay, cache: HashMap::new() }
    }

    /// The underlying overlay.
    pub fn overlay(&self) -> &Overlay {
        self.overlay
    }

    fn sssp(&mut self, a: PeerId) -> &PathResult {
        self.cache
            .entry(a)
            .or_insert_with(|| dijkstra(self.overlay.graph(), a.index()))
    }
}

impl Transport for OverlayTransport<'_> {
    fn latency_ms(&mut self, a: PeerId, b: PeerId) -> f64 {
        if a == b {
            return 0.0;
        }
        self.sssp(a).delay_to(b.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spidernet_topology::inet::{generate_power_law, InetConfig};
    use spidernet_topology::overlay::{OverlayConfig, OverlayStyle};

    #[test]
    fn uniform_transport_is_constant() {
        let mut t = UniformTransport { delay_ms: 25.0 };
        assert_eq!(t.latency_ms(PeerId::new(0), PeerId::new(1)), 25.0);
        assert_eq!(t.latency_ms(PeerId::new(5), PeerId::new(5)), 0.0);
    }

    #[test]
    fn overlay_transport_matches_route_delay() {
        let ip = generate_power_law(&InetConfig { nodes: 200, ..InetConfig::default() }, 3);
        let ov = Overlay::build(
            &ip,
            &OverlayConfig { peers: 40, style: OverlayStyle::Mesh { neighbors: 4 } },
            3,
        );
        let mut t = OverlayTransport::new(&ov);
        for (a, b) in [(0u64, 7u64), (3, 20), (39, 0)] {
            let got = t.latency_ms(PeerId::new(a), PeerId::new(b));
            let expect = ov.route_delay(PeerId::new(a), PeerId::new(b));
            assert!((got - expect).abs() < 1e-9);
        }
        assert_eq!(t.latency_ms(PeerId::new(2), PeerId::new(2)), 0.0);
    }

    #[test]
    fn overlay_transport_caches_sources() {
        let ip = generate_power_law(&InetConfig { nodes: 100, ..InetConfig::default() }, 1);
        let ov = Overlay::build(
            &ip,
            &OverlayConfig { peers: 20, style: OverlayStyle::Mesh { neighbors: 3 } },
            1,
        );
        let mut t = OverlayTransport::new(&ov);
        let x = t.latency_ms(PeerId::new(0), PeerId::new(10));
        let y = t.latency_ms(PeerId::new(0), PeerId::new(10));
        assert_eq!(x, y);
        assert_eq!(t.cache.len(), 1);
    }
}
