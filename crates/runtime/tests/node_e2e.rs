//! End-to-end tests of the socket transport: real `spidernet-node`
//! processes on loopback TCP, compared against the in-process cluster.

use spidernet_runtime::msg::{Msg, Probe, ReplicaMeta};
use spidernet_runtime::net::{deploy, DeployConfig, TransportKind};
use spidernet_runtime::{Cluster, MediaFunction};
use spidernet_dht::NodeId;
use spidernet_util::id::PeerId;
use spidernet_util::qos::QosVector;
use spidernet_util::res::ResourceVector;
use std::path::PathBuf;
use std::time::Duration;

fn node_exe() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_spidernet-node"))
}

const TIMEOUT: Duration = Duration::from_secs(20);

/// The headline smoke test: an 8-process loopback deployment produces the
/// same composition (path, backups, model-time metrics bit-for-bit) and
/// the same delivered pixels (order-independent digest) as the in-process
/// cluster built from the identical config and seed.
#[test]
fn socket_deploy_matches_in_process_cluster() {
    let cfg = DeployConfig::standard(8, 42, node_exe());
    let cluster_cfg = cfg.cluster.clone();
    let (source, dest) = (cfg.source, cfg.dest);
    let (chain, budget) = (cfg.chain.clone(), cfg.budget);
    let (frames, interval_ms, dims) = (cfg.frames, cfg.interval_ms, cfg.dims);

    let outcome = deploy(cfg).expect("loopback deployment completes");
    assert!(outcome.setup.ok, "socket composition succeeds");
    assert_eq!(outcome.report.sent, frames);
    assert_eq!(outcome.report.delivered, frames, "no faults: every frame lands");
    assert!(outcome.report.all_valid, "delivered frames match the transform chain");

    let cluster = Cluster::start(cluster_cfg);
    let setup = cluster
        .compose(source, dest, chain, budget, TIMEOUT)
        .expect("in-process composition completes");
    assert!(setup.ok);

    // The composition outcome is a pure function of message content, so
    // both transports agree exactly — including the f64 metric bits.
    let path: Vec<u64> = setup.path.iter().map(|p| p.raw()).collect();
    assert_eq!(outcome.setup.path, path, "selected path matches");
    let backups: Vec<Vec<u64>> =
        setup.backups.iter().map(|b| b.iter().map(|p| p.raw()).collect()).collect();
    assert_eq!(outcome.setup.backups, backups, "backup paths match");
    for (name, socket, inproc) in [
        ("discovery", outcome.setup.discovery_ms, setup.discovery_ms),
        ("probing", outcome.setup.probing_ms, setup.probing_ms),
        ("init", outcome.setup.init_ms, setup.init_ms),
        ("total", outcome.setup.total_ms, setup.total_ms),
    ] {
        assert_eq!(
            socket.to_bits(),
            inproc.to_bits(),
            "{name} metric differs: socket {socket} vs in-process {inproc}"
        );
    }

    let report = cluster
        .stream(source, &setup, frames, interval_ms, (dims.0 as usize, dims.1 as usize), TIMEOUT)
        .expect("in-process stream completes");
    assert_eq!(report.delivered, frames);
    assert!(report.all_valid);
    assert_eq!(
        outcome.report.delivery_digest, report.delivery_digest,
        "delivered frame pixels are byte-identical across transports"
    );
}

/// Killing the primary path's head mid-stream forces a proactive switch
/// to a probed backup path — no reactive recomposition.
#[test]
fn kill_primary_switches_to_backup() {
    let mut cfg = DeployConfig::standard(8, 7, node_exe());
    cfg.kill_primary = true;
    let outcome = deploy(cfg).expect("deployment survives the kill");
    assert!(outcome.setup.ok);
    assert!(outcome.report.switches >= 1, "backup switchover happened");
    assert!(outcome.report.delivered > 0, "frames kept flowing after the kill");
    assert!(outcome.report.all_valid, "post-switch frames still transform correctly");
    assert_ne!(
        outcome.report.final_path.first(),
        outcome.setup.path.first(),
        "the final path no longer starts at the killed peer"
    );
}

/// Two deployments with the same seed report the same fingerprint: the
/// selected path, backups, model-time metrics, and delivered pixels are
/// all reproducible even though wall-clock scheduling differs.
#[test]
fn deploy_fingerprint_is_deterministic() {
    let a = deploy(DeployConfig::standard(8, 1234, node_exe())).expect("first run");
    let b = deploy(DeployConfig::standard(8, 1234, node_exe())).expect("second run");
    assert_eq!(a.fingerprint, b.fingerprint, "same seed, same outcome");
}

/// The event transport (default) and the legacy blocking transport
/// produce bit-identical deployment fingerprints for the same seed —
/// readiness polling, bounded queues, and pooled encoding change no
/// observable outcome, including under a mid-stream primary kill.
#[test]
fn event_and_blocking_transports_agree() {
    for kill in [false, true] {
        let mut ev = DeployConfig::standard(8, 77, node_exe());
        ev.transport = TransportKind::Event;
        ev.kill_primary = kill;
        let mut bl = DeployConfig::standard(8, 77, node_exe());
        bl.transport = TransportKind::Blocking;
        bl.kill_primary = kill;
        let ev = deploy(ev).expect("event deployment completes");
        let bl = deploy(bl).expect("blocking deployment completes");
        assert_eq!(ev.setup.path, bl.setup.path, "kill={kill}: same path");
        assert_eq!(ev.setup.backups, bl.setup.backups, "kill={kill}: same backups");
        assert_eq!(
            ev.setup.total_ms.to_bits(),
            bl.setup.total_ms.to_bits(),
            "kill={kill}: setup metrics agree bit-for-bit"
        );
        if !kill {
            // A kill perturbs wall-clock delivery counts; the fault-free
            // runs must agree on everything the fingerprint folds.
            assert_eq!(ev.fingerprint, bl.fingerprint, "transports agree on the outcome");
        }
    }
}

/// `NetFaultConfig` means the same thing in both deployments: the socket
/// transport drops droppable traffic at the sender's network layer, the
/// protocol rides out the loss, and the drop counters move in both.
#[test]
fn fault_injection_applies_in_both_transports() {
    // Message loss sits on the composition critical path (a dropped DHT
    // reply fails that setup, by design — see the in-process
    // `lossy_network_degrades_without_wedging`), so any individual
    // deployment may legitimately fail to compose. Retry across seeds;
    // what must hold is that a lossy deployment can still complete and
    // that the drop counters move in BOTH transports.
    let mut outcome = None;
    let mut cluster_cfg = None;
    for seed in [5u64, 105, 205, 305] {
        let mut cfg = DeployConfig::standard(8, seed, node_exe());
        cfg.cluster.faults.drop_prob = 0.04;
        cfg.cluster.faults.extra_delay_ms = 30.0;
        cluster_cfg = Some(cfg.cluster.clone());
        if let Ok(o) = deploy(cfg) {
            outcome = Some(o);
            break;
        }
    }
    let outcome = outcome.expect("a lossy deployment completed within four attempts");
    assert!(outcome.setup.ok, "composition succeeds despite loss");
    assert!(outcome.report.delivered > 0);
    let socket_dropped: u64 = outcome.stats.iter().map(|s| s.msgs_dropped).sum();
    assert!(socket_dropped > 0, "socket transport dropped droppable traffic");

    // Same fault config in the in-process transport: setups may fail, but
    // the injector must fire on the same message classes.
    let cluster = Cluster::start(cluster_cfg.expect("at least one attempt ran"));
    let chain = vec![MediaFunction::ALL[0], MediaFunction::ALL[1]];
    for _ in 0..3 {
        let _ = cluster.compose(PeerId::new(2), PeerId::new(3), chain.clone(), 8, TIMEOUT);
        if cluster.messages_dropped() > 0 {
            break;
        }
    }
    assert!(cluster.messages_dropped() > 0, "in-process transport dropped traffic too");
}

/// Every wire-expressible runtime message keeps its fault-injection class
/// through the conversion: `Msg::droppable` and `WireMsg::droppable`
/// agree, so a fault config selects the same traffic in both transports.
#[test]
fn droppable_class_survives_wire_conversion() {
    let meta = ReplicaMeta { peer: PeerId::new(3), function: MediaFunction::ALL[0] };
    let msgs = vec![
        Msg::DhtLookup { query: 9, key: NodeId::new(7), origin: PeerId::new(1), hops: 2, at_ms: 10.0 },
        Msg::DhtReply { query: 9, metas: vec![meta], at_ms: 20.0 },
        Msg::Register {
            key: NodeId::new(7),
            replica: meta,
            qos: QosVector::delay_loss(5.0, 0.0),
            res: ResourceVector::new(1.0, 1.0),
            hops: 0,
        },
        Msg::Probe(Probe {
            request: 1,
            source: PeerId::new(0),
            dest: PeerId::new(3),
            chain: vec![MediaFunction::ALL[0]],
            replica_lists: vec![vec![meta]],
            pos: 0,
            path: vec![],
            budget: 4,
            acc_qos: QosVector::zeros(2),
            at_ms: 1.0,
        }),
        Msg::SetupAck {
            session: 1,
            path: vec![PeerId::new(2)],
            functions: vec![MediaFunction::ALL[0]],
            idx: 0,
            source: PeerId::new(0),
            backups: vec![],
            selected_ms: 50.0,
            at_ms: 60.0,
        },
        Msg::FrameAck { session: 1, seq: 3, valid: true, digest: 99, at_ms: 70.0 },
        Msg::PathProbe {
            session: 1,
            path: vec![PeerId::new(4)],
            idx: 0,
            origin: PeerId::new(0),
            backup_idx: 0,
        },
        Msg::PathProbeAck { session: 1, backup_idx: 0 },
    ];
    for msg in msgs {
        let wire = msg.to_wire().expect("wire-expressible variant");
        assert_eq!(
            msg.droppable(),
            wire.droppable(),
            "droppable class must survive conversion: {wire:?}"
        );
        let back = Msg::from_wire(&wire).expect("round-trips");
        assert_eq!(back.droppable(), msg.droppable());
    }
}
