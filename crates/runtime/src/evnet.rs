//! The event-driven socket transport: every connection of a daemon
//! multiplexed over one `epoll` poller thread (see [`crate::poll`]).
//!
//! The engine, delay queues, fault injection, and control protocol are
//! untouched — this module only replaces the *connection I/O* of
//! [`crate::net`]'s blocking transport (thread-per-connection reads,
//! per-peer writer threads). Everything upstream of a socket behaves
//! identically, which is what keeps deployment fingerprints bit-equal
//! across the two transports and the in-process cluster.
//!
//! ## Structure
//!
//! One `evnet` thread owns the listener, every established socket, and
//! all outbound queues. Other threads talk to it through a command
//! channel paired with an eventfd waker:
//!
//! * the outbound delay queue sends `Cmd::Send` (a wire message for a
//!   peer, already WAN-delayed and fault-filtered);
//! * engine reply sinks send `Cmd::Reply` (a control frame back to the
//!   client connection it came from);
//! * transient dial helpers send `Cmd::Dialed`/`Cmd::DialFailed` once a
//!   blocking [`dial_peer`] handshake resolves.
//!
//! Dials stay blocking — on loopback they resolve in microseconds, and
//! running them on short-lived helper threads keeps the retry/backoff/
//! handshake logic shared with the blocking transport instead of
//! reimplemented as a poller state machine.
//!
//! ## Backpressure
//!
//! Each connection carries a bounded outbound queue
//! ([`OUTQ_CAP_BYTES`]). When a queue is full, *media frames*
//! (`StreamFrame` — droppable by protocol design, the stream layer
//! tolerates loss) are shed and their buffers recycled; everything else
//! (probes, acks, registrations, control replies) is always queued, so
//! a slow consumer can never change setup or failover outcomes — only
//! delivery counts, exactly like a congested WAN. Shedding records
//! [`TraceEvent::ConnBackpressure`]; crossing the high-water mark (half
//! the cap) records [`TraceEvent::QueueDepth`].
//!
//! ## Buffers
//!
//! All frames are encoded through a shared [`BufPool`] —
//! `encoded_len()`-sized, recycled after the write (or the shed), so
//! steady-state streaming does not allocate per frame.

#![cfg(target_os = "linux")]

use crate::msg::Msg;
use crate::net::{dial_peer, EngineInput, NetStats, ReplySink, PEER_DOWN_COOLDOWN};
use crate::node::World;
use crate::poll::{Poller, Waker};
use spidernet_sim::trace::TraceEvent;
use spidernet_util::id::PeerId;
use spidernet_wire::{negotiate, BufPool, FrameDecoder, WireMsg, CONTROL_PEER, PROTO_VERSION};
use std::collections::{HashMap, VecDeque};
use std::io::{self, IoSlice, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Outbound queue budget per connection. At the default 8×8 media frames
/// (~300 B on the wire) this is deep enough that shedding only starts
/// when a peer is genuinely not draining.
pub(crate) const OUTQ_CAP_BYTES: usize = 256 * 1024;

/// Most frames handed to one `writev` call.
const MAX_WRITE_BATCH: usize = 16;

const TOKEN_LISTENER: u64 = u64::MAX;
const TOKEN_WAKER: u64 = u64::MAX - 1;

// ---------------------------------------------------------------------
// The bounded outbound queue.
// ---------------------------------------------------------------------

/// What happened to a frame offered to an [`OutQueue`].
#[derive(Debug)]
pub(crate) enum Push {
    /// Queued; `crossed_high_water` is true the first time the queue
    /// grows past half its cap (re-armed once it drains back below).
    Queued {
        /// True exactly when this push crossed the high-water mark.
        crossed_high_water: bool,
    },
    /// The queue was full and the frame was droppable media — it never
    /// entered the queue. The buffer comes back for recycling.
    Shed(Vec<u8>),
}

/// A per-connection outbound byte queue with a shed policy: droppable
/// media frames bounce off a full queue, everything else always enters
/// (control traffic must never be lost to backpressure — setup and
/// failover determinism depends on it).
pub(crate) struct OutQueue {
    frames: VecDeque<Vec<u8>>,
    /// Bytes of `frames[0]` already written.
    front_off: usize,
    bytes: usize,
    cap: usize,
    above_high_water: bool,
}

impl OutQueue {
    pub(crate) fn new(cap: usize) -> OutQueue {
        OutQueue { frames: VecDeque::new(), front_off: 0, bytes: 0, cap, above_high_water: false }
    }

    pub(crate) fn bytes(&self) -> usize {
        self.bytes
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Offers one encoded frame. `droppable` marks media frames — the
    /// only class the queue may refuse.
    pub(crate) fn push(&mut self, frame: Vec<u8>, droppable: bool) -> Push {
        if droppable && self.bytes + frame.len() > self.cap {
            return Push::Shed(frame);
        }
        self.bytes += frame.len();
        self.frames.push_back(frame);
        let crossed = !self.above_high_water && self.bytes > self.cap / 2;
        if crossed {
            self.above_high_water = true;
        }
        Push::Queued { crossed_high_water: crossed }
    }

    /// Writes as much as the socket takes (vectored, up to
    /// [`MAX_WRITE_BATCH`] frames per call), recycling fully-written
    /// frames into `pool`. `Ok` with a non-empty queue means the socket
    /// is full — keep write interest registered.
    fn flush(&mut self, stream: &mut TcpStream, pool: &BufPool, stats: &NetStats) -> io::Result<()> {
        while !self.frames.is_empty() {
            let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(MAX_WRITE_BATCH);
            for (i, f) in self.frames.iter().take(MAX_WRITE_BATCH).enumerate() {
                slices.push(IoSlice::new(if i == 0 { &f[self.front_off..] } else { f }));
            }
            match stream.write_vectored(&slices) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(mut n) => {
                    stats.bytes_tx.fetch_add(n as u64, Ordering::Relaxed);
                    self.bytes -= n;
                    while n > 0 {
                        let front_rem = self.frames[0].len() - self.front_off;
                        if n >= front_rem {
                            n -= front_rem;
                            self.front_off = 0;
                            let done = self.frames.pop_front().expect("non-empty");
                            stats.frames_tx.fetch_add(1, Ordering::Relaxed);
                            pool.put(done);
                        } else {
                            self.front_off += n;
                            n = 0;
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if self.above_high_water && self.bytes <= self.cap / 2 {
            self.above_high_water = false;
        }
        Ok(())
    }

    /// Recycles every queued buffer (connection teardown).
    fn drain_to_pool(&mut self, pool: &BufPool) {
        self.front_off = 0;
        self.bytes = 0;
        for f in self.frames.drain(..) {
            pool.put(f);
        }
    }
}

// ---------------------------------------------------------------------
// Connections and commands.
// ---------------------------------------------------------------------

enum ConnKind {
    /// Accepted, `Hello` not yet seen.
    Pending,
    /// Inbound peer connection (read side of a neighbor's dial).
    PeerIn(PeerId),
    /// Inbound control client.
    Ctrl,
    /// Outbound peer connection we dialed (write side; read only for
    /// EOF detection).
    PeerOut(PeerId),
}

struct Conn {
    stream: TcpStream,
    kind: ConnKind,
    dec: FrameDecoder,
    outq: OutQueue,
    want_write: bool,
}

impl Conn {
    fn peer_raw(&self) -> u64 {
        match self.kind {
            ConnKind::PeerIn(p) | ConnKind::PeerOut(p) => p.raw(),
            ConnKind::Ctrl => CONTROL_PEER,
            ConnKind::Pending => u64::MAX - 1,
        }
    }
}

/// Where a peer's outbound traffic currently goes.
enum OutState {
    /// A helper thread is dialing; frames queue here meanwhile.
    Dialing(OutQueue),
    /// Established — frames go to this connection token.
    Up(u64),
    /// Dial budget exhausted; traffic dropped until the cooldown ends.
    Down(Instant),
}

enum Cmd {
    /// Encode and send one wire message toward a peer (dialing it first
    /// if needed).
    Send { to: PeerId, msg: WireMsg },
    /// Send a control reply back down the connection it belongs to
    /// (dropped silently if that connection is gone).
    Reply { conn: u64, msg: WireMsg },
    /// A dial helper finished its handshake.
    Dialed { to: PeerId, stream: TcpStream },
    /// A dial helper exhausted its attempt budget.
    DialFailed { to: PeerId },
}

// ---------------------------------------------------------------------
// The public handle.
// ---------------------------------------------------------------------

/// Handle to a running event transport: cheap to clone, safe to use from
/// any thread. Dropping every handle does not stop the poller thread —
/// the daemon's lifetime is the process (shutdown is `CtrlShutdown` →
/// `run_node` returns → process exit), matching the blocking transport.
#[derive(Clone)]
pub(crate) struct EventNet {
    cmds: Sender<Cmd>,
    waker: Arc<Waker>,
}

impl EventNet {
    /// Takes ownership of the daemon's listener and spawns the poller
    /// thread. Decoded peer frames and control inputs flow into
    /// `engine`.
    pub(crate) fn start(
        listener: TcpListener,
        me: PeerId,
        ports: Arc<Vec<u16>>,
        stats: Arc<NetStats>,
        world: Arc<World>,
        engine: Sender<EngineInput>,
    ) -> io::Result<EventNet> {
        listener.set_nonblocking(true)?;
        let poller = Poller::new()?;
        let waker = Arc::new(Waker::new()?);
        poller.add(listener.as_raw_fd(), TOKEN_LISTENER, true, false)?;
        poller.add(waker.fd(), TOKEN_WAKER, true, false)?;
        let (cmds, rx) = channel();
        let net = EventNet { cmds, waker };
        let lp = Loop {
            me,
            ports,
            stats,
            world,
            engine,
            net: net.clone(),
            poller,
            listener,
            rx,
            conns: HashMap::new(),
            next_token: 0,
            out: HashMap::new(),
            pool: BufPool::default(),
        };
        std::thread::Builder::new().name("evnet".into()).spawn(move || lp.run())?;
        Ok(net)
    }

    /// Queues one wire message toward `to`.
    pub(crate) fn send(&self, to: PeerId, msg: WireMsg) {
        if self.cmds.send(Cmd::Send { to, msg }).is_ok() {
            self.waker.wake();
        }
    }

    /// A reply sink bound to connection `conn` (for the engine's control
    /// inputs).
    fn reply_sink(&self, conn: u64) -> ReplySink {
        let net = self.clone();
        Arc::new(move |msg| {
            if net.cmds.send(Cmd::Reply { conn, msg }).is_ok() {
                net.waker.wake();
            }
        })
    }
}

// ---------------------------------------------------------------------
// The poller loop.
// ---------------------------------------------------------------------

struct Loop {
    me: PeerId,
    ports: Arc<Vec<u16>>,
    stats: Arc<NetStats>,
    world: Arc<World>,
    engine: Sender<EngineInput>,
    net: EventNet,
    poller: Poller,
    listener: TcpListener,
    rx: Receiver<Cmd>,
    conns: HashMap<u64, Conn>,
    /// Monotonic; tokens are never reused, so a stale reply sink can
    /// never reach a recycled connection slot.
    next_token: u64,
    out: HashMap<PeerId, OutState>,
    pool: BufPool,
}

impl Loop {
    fn run(mut self) {
        let mut events = Vec::new();
        loop {
            loop {
                match self.rx.try_recv() {
                    Ok(cmd) => self.handle_cmd(cmd),
                    Err(TryRecvError::Empty) => break,
                    // Every handle dropped: the daemon is shutting down.
                    Err(TryRecvError::Disconnected) => return,
                }
            }
            // The timeout is a safety valve (Down-state expiry has no
            // dedicated timer); commands arrive via the waker.
            if self.poller.wait(&mut events, Some(Duration::from_millis(500))).is_err() {
                return;
            }
            for ev in std::mem::take(&mut events) {
                match ev.token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKER => self.net.waker.drain(),
                    token => self.conn_event(token, ev.readable, ev.writable, ev.hangup),
                }
            }
        }
    }

    fn handle_cmd(&mut self, cmd: Cmd) {
        match cmd {
            Cmd::Send { to, msg } => self.send_to_peer(to, msg),
            Cmd::Reply { conn, msg } => {
                let frame = self.pool.encode(&msg);
                self.enqueue(conn, frame, false);
            }
            Cmd::Dialed { to, stream } => self.on_dialed(to, stream),
            Cmd::DialFailed { to } => self.on_dial_failed(to),
        }
    }

    /// Routes one outbound wire message: straight onto an established
    /// connection's queue, into the holding queue of an in-flight dial,
    /// dropped during a peer's down cooldown, or triggering a fresh dial.
    fn send_to_peer(&mut self, to: PeerId, msg: WireMsg) {
        // The only frame class backpressure may shed. This is narrower
        // than `Msg::droppable` on purpose: probes/acks tolerate *wire*
        // loss, but shedding them locally under load would couple setup
        // outcomes to scheduling. Media frames are the paper's droppable
        // payload class.
        let droppable = matches!(msg, WireMsg::StreamFrame { .. });
        match self.out.get_mut(&to) {
            Some(OutState::Up(token)) => {
                let token = *token;
                let frame = self.pool.encode(&msg);
                self.enqueue(token, frame, droppable);
            }
            Some(OutState::Dialing(q)) => {
                let frame = self.pool.encode(&msg);
                match q.push(frame, droppable) {
                    Push::Shed(f) => {
                        self.world.record(TraceEvent::ConnBackpressure {
                            peer: to.raw(),
                            shed_bytes: f.len() as u64,
                        });
                        self.pool.put(f);
                    }
                    Push::Queued { crossed_high_water: true } => {
                        let queued_bytes = q.bytes() as u64;
                        self.world.record(TraceEvent::QueueDepth { peer: to.raw(), queued_bytes });
                    }
                    Push::Queued { .. } => {}
                }
            }
            Some(OutState::Down(until)) if Instant::now() < *until => {
                // Peer presumed dead: drop its traffic (the blocking
                // transport's writer loop does the same).
            }
            _ => {
                // No state or an expired cooldown: dial.
                let mut q = OutQueue::new(OUTQ_CAP_BYTES);
                let frame = self.pool.encode(&msg);
                let _ = q.push(frame, droppable); // empty queue always accepts
                self.out.insert(to, OutState::Dialing(q));
                self.spawn_dial(to);
            }
        }
    }

    /// Runs the blocking dial + handshake on a transient helper thread;
    /// the outcome comes back as a command.
    fn spawn_dial(&self, to: PeerId) {
        let me = self.me;
        let ports = self.ports.clone();
        let stats = self.stats.clone();
        let world = self.world.clone();
        let cmds = self.net.cmds.clone();
        let waker = self.net.waker.clone();
        std::thread::spawn(move || {
            let cmd = match dial_peer(me, &ports, to, &stats, &world) {
                Some(stream) => Cmd::Dialed { to, stream },
                None => Cmd::DialFailed { to },
            };
            if cmds.send(cmd).is_ok() {
                waker.wake();
            }
        });
    }

    fn on_dialed(&mut self, to: PeerId, stream: TcpStream) {
        let outq = match self.out.remove(&to) {
            Some(OutState::Dialing(q)) => q,
            other => {
                // A stale dial result (state already moved on): keep the
                // newer state, use the socket with an empty queue.
                if let Some(state) = other {
                    self.out.insert(to, state);
                    return;
                }
                OutQueue::new(OUTQ_CAP_BYTES)
            }
        };
        if stream.set_nonblocking(true).is_err() {
            self.out.insert(to, OutState::Down(Instant::now() + PEER_DOWN_COOLDOWN));
            return;
        }
        let token = self.next_token;
        self.next_token += 1;
        let want_write = !outq.is_empty();
        if self.poller.add(stream.as_raw_fd(), token, true, want_write).is_err() {
            self.out.insert(to, OutState::Down(Instant::now() + PEER_DOWN_COOLDOWN));
            return;
        }
        self.conns.insert(
            token,
            Conn { stream, kind: ConnKind::PeerOut(to), dec: FrameDecoder::new(), outq, want_write },
        );
        self.out.insert(to, OutState::Up(token));
        self.flush_conn(token);
    }

    fn on_dial_failed(&mut self, to: PeerId) {
        self.world.record(TraceEvent::ConnClosed { peer: to.raw() });
        if let Some(OutState::Dialing(mut q)) = self.out.remove(&to) {
            q.drain_to_pool(&self.pool);
        }
        self.out.insert(to, OutState::Down(Instant::now() + PEER_DOWN_COOLDOWN));
    }

    /// Adds `frame` to connection `token`'s queue (recording shed /
    /// high-water traces) and flushes.
    fn enqueue(&mut self, token: u64, frame: Vec<u8>, droppable: bool) {
        let Some(conn) = self.conns.get_mut(&token) else {
            // Connection already gone (e.g. a reply racing a disconnect).
            self.pool.put(frame);
            return;
        };
        let peer = conn.peer_raw();
        match conn.outq.push(frame, droppable) {
            Push::Shed(f) => {
                self.world
                    .record(TraceEvent::ConnBackpressure { peer, shed_bytes: f.len() as u64 });
                self.pool.put(f);
            }
            Push::Queued { crossed_high_water } => {
                if crossed_high_water {
                    let queued_bytes = conn.outq.bytes() as u64;
                    self.world.record(TraceEvent::QueueDepth { peer, queued_bytes });
                }
                self.flush_conn(token);
            }
        }
    }

    /// Flushes a connection's queue and reconciles its write interest.
    fn flush_conn(&mut self, token: u64) {
        let Some(mut conn) = self.conns.remove(&token) else { return };
        match conn.outq.flush(&mut conn.stream, &self.pool, &self.stats) {
            Ok(()) => {
                let want = !conn.outq.is_empty();
                if want != conn.want_write {
                    conn.want_write = want;
                    let _ = self.poller.modify(conn.stream.as_raw_fd(), token, true, want);
                }
                self.conns.insert(token, conn);
            }
            Err(_) => self.drop_conn(token, conn),
        }
    }

    /// Tears down a connection already removed from the map.
    fn drop_conn(&mut self, _token: u64, mut conn: Conn) {
        let _ = self.poller.remove(conn.stream.as_raw_fd());
        conn.outq.drain_to_pool(&self.pool);
        if let ConnKind::PeerOut(peer) = conn.kind {
            self.world.record(TraceEvent::ConnClosed { peer: peer.raw() });
            self.out.insert(peer, OutState::Down(Instant::now() + PEER_DOWN_COOLDOWN));
        }
        // `conn.stream` drops here, closing the fd.
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nodelay(true);
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let token = self.next_token;
                    self.next_token += 1;
                    if self.poller.add(stream.as_raw_fd(), token, true, false).is_err() {
                        continue;
                    }
                    self.conns.insert(
                        token,
                        Conn {
                            stream,
                            kind: ConnKind::Pending,
                            dec: FrameDecoder::new(),
                            outq: OutQueue::new(OUTQ_CAP_BYTES),
                            want_write: false,
                        },
                    );
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    fn conn_event(&mut self, token: u64, readable: bool, writable: bool, hangup: bool) {
        if readable || hangup {
            if !self.read_ready(token) {
                return; // connection closed during the read
            }
            if hangup {
                // ERR/HUP with nothing left to read: tear down.
                if let Some(conn) = self.conns.remove(&token) {
                    self.drop_conn(token, conn);
                }
                return;
            }
        }
        if writable {
            self.flush_conn(token);
        }
    }

    /// Drains the socket's read side, decoding and dispatching frames.
    /// Returns false when the connection was closed.
    fn read_ready(&mut self, token: u64) -> bool {
        let Some(mut conn) = self.conns.remove(&token) else { return false };
        let mut buf = [0u8; 64 * 1024];
        loop {
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    self.drop_conn(token, conn);
                    return false;
                }
                Ok(n) => {
                    self.stats.bytes_rx.fetch_add(n as u64, Ordering::Relaxed);
                    conn.dec.extend(&buf[..n]);
                    loop {
                        match conn.dec.next_frame() {
                            Ok(Some(frame)) => {
                                self.stats.frames_rx.fetch_add(1, Ordering::Relaxed);
                                if !self.on_frame(token, &mut conn, frame) {
                                    self.drop_conn(token, conn);
                                    return false;
                                }
                            }
                            Ok(None) => break,
                            Err(_) => {
                                self.stats.decode_errors.fetch_add(1, Ordering::Relaxed);
                                self.drop_conn(token, conn);
                                return false;
                            }
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.drop_conn(token, conn);
                    return false;
                }
            }
        }
        self.conns.insert(token, conn);
        true
    }

    /// One decoded frame off a connection. Returns false to close it.
    fn on_frame(&mut self, token: u64, conn: &mut Conn, frame: WireMsg) -> bool {
        match conn.kind {
            ConnKind::Pending => match frame {
                WireMsg::Hello { peer, proto_min, proto_max, .. } => {
                    let Some(proto) =
                        negotiate((PROTO_VERSION, PROTO_VERSION), (proto_min, proto_max))
                    else {
                        return false;
                    };
                    conn.kind = if peer == CONTROL_PEER {
                        ConnKind::Ctrl
                    } else {
                        ConnKind::PeerIn(PeerId::new(peer))
                    };
                    let ack = self.pool.encode(&WireMsg::HelloAck { peer: u64::MAX, proto });
                    match conn.outq.push(ack, false) {
                        Push::Queued { .. } => {}
                        Push::Shed(f) => self.pool.put(f), // unreachable: not droppable
                    }
                    // The conn is checked out of the map; flush directly.
                    if conn.outq.flush(&mut conn.stream, &self.pool, &self.stats).is_err() {
                        return false;
                    }
                    let want = !conn.outq.is_empty();
                    if want != conn.want_write {
                        conn.want_write = want;
                        let _ = self.poller.modify(conn.stream.as_raw_fd(), token, true, want);
                    }
                    true
                }
                _ => {
                    // Anything before the Hello is a protocol violation.
                    self.stats.decode_errors.fetch_add(1, Ordering::Relaxed);
                    false
                }
            },
            ConnKind::PeerIn(_) | ConnKind::PeerOut(_) => match Msg::from_wire(&frame) {
                Some(msg) => self.engine.send(EngineInput::Deliver(msg)).is_ok(),
                None => true, // not peer traffic; ignore
            },
            ConnKind::Ctrl => {
                let sink = self.net.reply_sink(token);
                self.engine.send(EngineInput::Ctrl(frame, sink)).is_ok()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::ClusterConfig;
    use spidernet_wire::encode_to_vec;

    /// The backpressure contract the tentpole pins: a full bounded queue
    /// sheds ONLY droppable media frames; control-class traffic always
    /// enters, even past the cap.
    #[test]
    fn full_queue_sheds_only_droppable_media_frames() {
        let mut q = OutQueue::new(1000);
        let media = vec![7u8; 400];
        assert!(matches!(q.push(media.clone(), true), Push::Queued { .. }));
        assert!(matches!(q.push(media.clone(), true), Push::Queued { .. }));
        // 800 + 400 > 1000: the media frame bounces, untouched.
        match q.push(media.clone(), true) {
            Push::Shed(f) => assert_eq!(f.len(), 400),
            other => panic!("expected shed, got {other:?}"),
        }
        assert_eq!(q.bytes(), 800);
        // A control frame of the same size always enters, even over cap.
        assert!(matches!(q.push(vec![1u8; 400], false), Push::Queued { .. }));
        assert!(q.bytes() > 1000, "control frames are never bounded away");
        // And media stays shed while the queue remains over-full.
        assert!(matches!(q.push(media, true), Push::Shed(_)));
    }

    #[test]
    fn high_water_mark_fires_once_per_congestion_episode() {
        let mut q = OutQueue::new(1000);
        match q.push(vec![0u8; 400], false) {
            Push::Queued { crossed_high_water } => assert!(!crossed_high_water),
            other => panic!("{other:?}"),
        }
        match q.push(vec![0u8; 400], false) {
            Push::Queued { crossed_high_water } => assert!(crossed_high_water, "800 > 500"),
            other => panic!("{other:?}"),
        }
        match q.push(vec![0u8; 100], false) {
            Push::Queued { crossed_high_water } => {
                assert!(!crossed_high_water, "already above: no repeat event")
            }
            other => panic!("{other:?}"),
        }
    }

    fn test_world(peers: usize) -> Arc<World> {
        Arc::new(World::build(ClusterConfig { peers, ..ClusterConfig::default() }))
    }

    fn hello(peer: u64) -> WireMsg {
        WireMsg::Hello {
            peer,
            node_id: 0,
            proto_min: PROTO_VERSION,
            proto_max: PROTO_VERSION,
            listen_port: 0,
        }
    }

    fn read_one_frame(stream: &mut TcpStream, dec: &mut FrameDecoder) -> WireMsg {
        let mut buf = [0u8; 4096];
        loop {
            if let Ok(Some(frame)) = dec.next_frame() {
                return frame;
            }
            let n = stream.read(&mut buf).expect("read");
            assert!(n > 0, "unexpected EOF");
            dec.extend(&buf[..n]);
        }
    }

    /// End-to-end through one poller: a blocking control client
    /// handshakes, sends a control frame, the engine replies through the
    /// sink, and the reply comes back over the same connection.
    #[test]
    fn accepts_a_control_client_and_replies_through_the_sink() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let port = listener.local_addr().unwrap().port();
        let (engine_tx, engine_rx) = channel();
        let _net = EventNet::start(
            listener,
            PeerId::new(0),
            Arc::new(vec![port]),
            Arc::new(NetStats::default()),
            test_world(8),
            engine_tx,
        )
        .unwrap();

        let mut stream = TcpStream::connect(("127.0.0.1", port)).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut dec = FrameDecoder::new();
        stream.write_all(&encode_to_vec(&hello(CONTROL_PEER))).unwrap();
        match read_one_frame(&mut stream, &mut dec) {
            WireMsg::HelloAck { proto, .. } => assert_eq!(proto, PROTO_VERSION),
            other => panic!("expected HelloAck, got {other:?}"),
        }

        stream.write_all(&encode_to_vec(&WireMsg::CtrlStatsRequest)).unwrap();
        let sink = match engine_rx.recv_timeout(Duration::from_secs(5)).unwrap() {
            EngineInput::Ctrl(WireMsg::CtrlStatsRequest, sink) => sink,
            _ => panic!("expected the control frame at the engine"),
        };
        sink(WireMsg::CtrlShutdown);
        match read_one_frame(&mut stream, &mut dec) {
            WireMsg::CtrlShutdown => {}
            other => panic!("expected the sink's reply, got {other:?}"),
        }
    }

    /// Two pollers: node 0 dials node 1 on demand (helper thread +
    /// handshake) and a protocol frame arrives at node 1's engine.
    #[test]
    fn dials_on_demand_and_delivers_peer_frames() {
        let l0 = TcpListener::bind("127.0.0.1:0").unwrap();
        let l1 = TcpListener::bind("127.0.0.1:0").unwrap();
        let ports = Arc::new(vec![
            l0.local_addr().unwrap().port(),
            l1.local_addr().unwrap().port(),
        ]);
        let world = test_world(8);
        let (tx0, _rx0) = channel();
        let (tx1, rx1) = channel();
        let net0 = EventNet::start(
            l0,
            PeerId::new(0),
            ports.clone(),
            Arc::new(NetStats::default()),
            world.clone(),
            tx0,
        )
        .unwrap();
        let _net1 = EventNet::start(
            l1,
            PeerId::new(1),
            ports,
            Arc::new(NetStats::default()),
            world,
            tx1,
        )
        .unwrap();

        let msg = WireMsg::DhtLookup { query: 9, key: 42, origin: 0, hops: 1, at_ms: 12.5 };
        net0.send(PeerId::new(1), msg);
        match rx1.recv_timeout(Duration::from_secs(5)).unwrap() {
            EngineInput::Deliver(Msg::DhtLookup { query, hops, .. }) => {
                assert_eq!((query, hops), (9, 1));
            }
            _ => panic!("expected the lookup delivered to node 1's engine"),
        }
    }
}
