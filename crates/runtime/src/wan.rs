//! Wide-area latency model.
//!
//! The prototype ran on 102 PlanetLab hosts "distributed across U.S. and
//! Europe". We assign each peer to a region and draw per-message one-way
//! delays from measured-RTT-scale ranges: intra-region tens of
//! milliseconds, transcontinental ~35–45 ms one-way, transatlantic
//! ~45–75 ms one-way, plus multiplicative jitter. A global `time_scale`
//! lets tests compress wall-clock time without changing reported
//! model-time numbers.

use spidernet_util::id::PeerId;
use spidernet_util::rng::{rng_for_indexed, splitmix64, Rng};

/// Deployment region of a peer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Region {
    /// US east coast.
    UsEast,
    /// US west coast.
    UsWest,
    /// Europe.
    Europe,
}

impl Region {
    /// All regions.
    pub const ALL: [Region; 3] = [Region::UsEast, Region::UsWest, Region::Europe];
}

/// One-way base delay between two regions, ms (PlanetLab-era RTT/2).
fn base_delay_ms(a: Region, b: Region) -> f64 {
    use Region::*;
    match (a, b) {
        (UsEast, UsEast) | (UsWest, UsWest) => 12.0,
        (Europe, Europe) => 15.0,
        (UsEast, UsWest) | (UsWest, UsEast) => 38.0,
        (UsEast, Europe) | (Europe, UsEast) => 48.0,
        (UsWest, Europe) | (Europe, UsWest) => 72.0,
    }
}

/// The per-deployment latency model: region assignment plus jitter.
#[derive(Clone, Debug)]
pub struct WanModel {
    regions: Vec<Region>,
    /// Multiplicative jitter bound: each message's delay is scaled by a
    /// factor drawn uniformly from `[1, 1 + jitter]`.
    pub jitter: f64,
    seed: u64,
}

impl WanModel {
    /// Assigns `peers` round-robin across regions (roughly the paper's
    /// US-heavy mix: two US regions to one European).
    pub fn new(peers: usize, jitter: f64, seed: u64) -> Self {
        let regions = (0..peers).map(|i| Region::ALL[i % 3]).collect();
        WanModel { regions, jitter, seed }
    }

    /// Number of modeled peers.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// True if no peers are modeled.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// A peer's region.
    pub fn region(&self, p: PeerId) -> Region {
        self.regions[p.index()]
    }

    /// Deterministic per-pair base one-way delay (no jitter), ms.
    pub fn base_ms(&self, a: PeerId, b: PeerId) -> f64 {
        if a == b {
            return 0.0;
        }
        base_delay_ms(self.region(a), self.region(b))
    }

    /// One sampled message delay `a → b`, ms (jittered).
    pub fn sample_ms(&self, a: PeerId, b: PeerId, rng: &mut Rng) -> f64 {
        let base = self.base_ms(a, b);
        if base == 0.0 {
            return 0.0;
        }
        base * (1.0 + rng.gen::<f64>() * self.jitter)
    }

    /// Content-keyed message delay `a → b`, ms: the jitter factor is a
    /// pure function of `(seed, a, b, salt)` rather than a draw from a
    /// stateful stream. Two transports (or two runs) delivering the same
    /// message between the same pair compute the same delay regardless of
    /// scheduling order — the foundation of cross-transport determinism.
    pub fn delay_keyed(&self, a: PeerId, b: PeerId, salt: u64) -> f64 {
        let base = self.base_ms(a, b);
        if base == 0.0 {
            return 0.0;
        }
        let mut h = splitmix64(self.seed ^ 0x57414e5f44454c59); // "WAN_DELY"
        h = splitmix64(h ^ a.raw());
        h = splitmix64(h ^ b.raw().rotate_left(32));
        h = splitmix64(h ^ salt);
        // Top 53 bits → uniform in [0, 1), same construction as Rng's f64.
        let unit = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        base * (1.0 + unit * self.jitter)
    }

    /// A deterministic RNG for one peer's message stream.
    pub fn rng_for_peer(&self, p: PeerId) -> Rng {
        rng_for_indexed(self.seed, "wan", p.raw())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_round_robin() {
        let m = WanModel::new(9, 0.2, 1);
        assert_eq!(m.len(), 9);
        assert_eq!(m.region(PeerId::new(0)), Region::UsEast);
        assert_eq!(m.region(PeerId::new(1)), Region::UsWest);
        assert_eq!(m.region(PeerId::new(2)), Region::Europe);
        assert_eq!(m.region(PeerId::new(3)), Region::UsEast);
    }

    #[test]
    fn base_delays_are_symmetric_and_ordered() {
        let m = WanModel::new(6, 0.0, 1);
        let (e, w, eu) = (PeerId::new(0), PeerId::new(1), PeerId::new(2));
        assert_eq!(m.base_ms(e, w), m.base_ms(w, e));
        // Transatlantic beats transcontinental beats intra-region.
        assert!(m.base_ms(w, eu) > m.base_ms(e, w));
        assert!(m.base_ms(e, w) > m.base_ms(e, PeerId::new(3)));
        assert_eq!(m.base_ms(e, e), 0.0);
    }

    #[test]
    fn jitter_bounds_hold() {
        let m = WanModel::new(4, 0.5, 2);
        let mut rng = m.rng_for_peer(PeerId::new(0));
        let base = m.base_ms(PeerId::new(0), PeerId::new(1));
        for _ in 0..100 {
            let d = m.sample_ms(PeerId::new(0), PeerId::new(1), &mut rng);
            assert!(d >= base && d <= base * 1.5 + 1e-9);
        }
    }

    #[test]
    fn self_delay_is_zero_even_with_jitter() {
        let m = WanModel::new(4, 0.5, 3);
        let mut rng = m.rng_for_peer(PeerId::new(1));
        assert_eq!(m.sample_ms(PeerId::new(1), PeerId::new(1), &mut rng), 0.0);
    }

    #[test]
    fn keyed_delays_are_pure_and_bounded() {
        let m = WanModel::new(6, 0.4, 11);
        let (a, b) = (PeerId::new(0), PeerId::new(1));
        let base = m.base_ms(a, b);
        for salt in 0..200u64 {
            let d = m.delay_keyed(a, b, salt);
            assert!(d >= base && d <= base * 1.4 + 1e-9);
            // Pure: same inputs, same output.
            assert_eq!(d, m.delay_keyed(a, b, salt));
        }
        // Different salts actually vary the jitter.
        assert_ne!(m.delay_keyed(a, b, 1), m.delay_keyed(a, b, 2));
        // Direction matters (one-way paths jitter independently).
        assert_ne!(m.delay_keyed(a, b, 1), m.delay_keyed(b, a, 1));
        assert_eq!(m.delay_keyed(a, a, 9), 0.0);
    }

    #[test]
    fn peer_streams_are_deterministic() {
        let m = WanModel::new(4, 0.3, 4);
        let mut a = m.rng_for_peer(PeerId::new(2));
        let mut b = m.rng_for_peer(PeerId::new(2));
        for _ in 0..10 {
            assert_eq!(
                m.sample_ms(PeerId::new(2), PeerId::new(3), &mut a),
                m.sample_ms(PeerId::new(2), PeerId::new(3), &mut b)
            );
        }
    }
}
