//! The six multimedia service components (paper §6.2), as real byte
//! transforms over synthetic video frames.
//!
//! "(1) embedding weather forecast ticker; (2) embedding stock ticker;
//! (3) up-scaling video frames; (4) down-scaling video frames;
//! (5) extracting sub-image; and (6) re-quantification of video frames."
//!
//! Frames are grayscale byte matrices; each transform manipulates the
//! pixel buffer for real, so a composed chain's output is checkable.

use std::sync::Arc;

/// A synthetic video frame: `width × height` grayscale pixels.
#[derive(Clone, Debug, PartialEq)]
pub struct Frame {
    /// Pixels per row.
    pub width: usize,
    /// Rows.
    pub height: usize,
    /// Row-major pixel bytes (`width * height` long).
    pub pixels: Arc<[u8]>,
    /// Sequence number within the stream.
    pub seq: u64,
}

impl Frame {
    /// A deterministic test-pattern frame (diagonal gradient).
    pub fn synthetic(width: usize, height: usize, seq: u64) -> Frame {
        assert!(width > 0 && height > 0);
        let mut px = Vec::with_capacity(width * height);
        for y in 0..height {
            for x in 0..width {
                px.push(((x + y + seq as usize) % 251) as u8);
            }
        }
        Frame { width, height, pixels: px.into(), seq }
    }

    /// Pixel at (x, y).
    pub fn pixel(&self, x: usize, y: usize) -> u8 {
        self.pixels[y * self.width + x]
    }

    /// Byte size of the pixel payload.
    pub fn byte_len(&self) -> usize {
        self.pixels.len()
    }

    /// Content digest over dimensions, sequence number, and every pixel —
    /// the per-frame fingerprint carried in delivery acks so two
    /// transports can prove they delivered identical bytes.
    pub fn digest(&self) -> u64 {
        use spidernet_util::rng::splitmix64;
        let mut h = splitmix64(0x4652414d45 ^ (self.width as u64) << 32 ^ self.height as u64);
        h = splitmix64(h ^ self.seq);
        for chunk in self.pixels.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            h = splitmix64(h ^ u64::from_le_bytes(word));
        }
        h
    }
}

/// The six media functions of the prototype deployment.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MediaFunction {
    /// Embeds a weather-forecast ticker in the bottom rows.
    WeatherTicker,
    /// Embeds a stock ticker in the top rows.
    StockTicker,
    /// Doubles both dimensions (nearest-neighbour).
    UpScale,
    /// Halves both dimensions (2×2 box average).
    DownScale,
    /// Extracts the centered sub-image at half size.
    SubImage,
    /// Re-quantizes pixels to 16 levels.
    Requantize,
}

/// Ticker band height in rows.
const TICKER_ROWS: usize = 4;

impl MediaFunction {
    /// All six functions, in the paper's order.
    pub const ALL: [MediaFunction; 6] = [
        MediaFunction::WeatherTicker,
        MediaFunction::StockTicker,
        MediaFunction::UpScale,
        MediaFunction::DownScale,
        MediaFunction::SubImage,
        MediaFunction::Requantize,
    ];

    /// The function's registration name.
    pub fn name(&self) -> &'static str {
        match self {
            MediaFunction::WeatherTicker => "weather-ticker",
            MediaFunction::StockTicker => "stock-ticker",
            MediaFunction::UpScale => "up-scale",
            MediaFunction::DownScale => "down-scale",
            MediaFunction::SubImage => "sub-image",
            MediaFunction::Requantize => "requantize",
        }
    }

    /// Looks a function up by its registration name.
    pub fn by_name(name: &str) -> Option<MediaFunction> {
        MediaFunction::ALL.iter().copied().find(|f| f.name() == name)
    }

    /// Dense wire code (index into [`MediaFunction::ALL`]).
    pub fn code(&self) -> u8 {
        MediaFunction::ALL.iter().position(|f| f == self).expect("ALL is exhaustive") as u8
    }

    /// Looks a function up by its wire code.
    pub fn from_code(code: u8) -> Option<MediaFunction> {
        MediaFunction::ALL.get(code as usize).copied()
    }

    /// Output bandwidth relative to input (scaling transforms change the
    /// stream rate).
    pub fn bandwidth_factor(&self) -> f64 {
        match self {
            MediaFunction::UpScale => 4.0,
            MediaFunction::DownScale | MediaFunction::SubImage => 0.25,
            MediaFunction::Requantize => 0.5,
            _ => 1.0,
        }
    }

    /// Nominal per-frame processing delay, ms (used as Q_p when these
    /// components are registered).
    pub fn processing_ms(&self) -> f64 {
        match self {
            MediaFunction::WeatherTicker | MediaFunction::StockTicker => 4.0,
            MediaFunction::UpScale => 12.0,
            MediaFunction::DownScale => 8.0,
            MediaFunction::SubImage => 3.0,
            MediaFunction::Requantize => 6.0,
        }
    }

    /// Applies the transform.
    pub fn apply(&self, input: &Frame) -> Frame {
        match self {
            MediaFunction::WeatherTicker => embed_ticker(input, false),
            MediaFunction::StockTicker => embed_ticker(input, true),
            MediaFunction::UpScale => upscale(input),
            MediaFunction::DownScale => downscale(input),
            MediaFunction::SubImage => sub_image(input),
            MediaFunction::Requantize => requantize(input),
        }
    }
}

/// Writes a recognizable ticker band: alternating 0xFF/0x00 columns, at the
/// top (stock) or bottom (weather).
fn embed_ticker(f: &Frame, top: bool) -> Frame {
    let mut px = f.pixels.to_vec();
    let rows = TICKER_ROWS.min(f.height);
    let row_range = if top { 0..rows } else { f.height - rows..f.height };
    for y in row_range {
        for x in 0..f.width {
            px[y * f.width + x] = if x % 2 == 0 { 0xFF } else { 0x00 };
        }
    }
    Frame { width: f.width, height: f.height, pixels: px.into(), seq: f.seq }
}

fn upscale(f: &Frame) -> Frame {
    let (w, h) = (f.width * 2, f.height * 2);
    let mut px = Vec::with_capacity(w * h);
    for y in 0..h {
        for x in 0..w {
            px.push(f.pixel(x / 2, y / 2));
        }
    }
    Frame { width: w, height: h, pixels: px.into(), seq: f.seq }
}

fn downscale(f: &Frame) -> Frame {
    let (w, h) = ((f.width / 2).max(1), (f.height / 2).max(1));
    let mut px = Vec::with_capacity(w * h);
    for y in 0..h {
        for x in 0..w {
            // 2×2 box average, clamped at the original frame edge.
            let (x2, y2) = (x * 2, y * 2);
            let xr = (x2 + 1).min(f.width - 1);
            let yd = (y2 + 1).min(f.height - 1);
            let sum = f.pixel(x2, y2) as u32
                + f.pixel(xr, y2) as u32
                + f.pixel(x2, yd) as u32
                + f.pixel(xr, yd) as u32;
            px.push((sum / 4) as u8);
        }
    }
    Frame { width: w, height: h, pixels: px.into(), seq: f.seq }
}

fn sub_image(f: &Frame) -> Frame {
    let (w, h) = ((f.width / 2).max(1), (f.height / 2).max(1));
    let (ox, oy) = ((f.width - w) / 2, (f.height - h) / 2);
    let mut px = Vec::with_capacity(w * h);
    for y in 0..h {
        for x in 0..w {
            px.push(f.pixel(x + ox, y + oy));
        }
    }
    Frame { width: w, height: h, pixels: px.into(), seq: f.seq }
}

fn requantize(f: &Frame) -> Frame {
    let px: Vec<u8> = f.pixels.iter().map(|&p| p & 0xF0).collect();
    Frame { width: f.width, height: f.height, pixels: px.into(), seq: f.seq }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> Frame {
        Frame::synthetic(32, 24, 7)
    }

    #[test]
    fn synthetic_frame_shape() {
        let f = frame();
        assert_eq!(f.byte_len(), 32 * 24);
        assert_eq!(f.pixel(0, 0), 7);
        assert_eq!(f.pixel(3, 5), (3 + 5 + 7));
    }

    #[test]
    fn tickers_write_their_bands() {
        let f = frame();
        let weather = MediaFunction::WeatherTicker.apply(&f);
        // Bottom band striped, top untouched.
        assert_eq!(weather.pixel(0, 23), 0xFF);
        assert_eq!(weather.pixel(1, 23), 0x00);
        assert_eq!(weather.pixel(0, 0), f.pixel(0, 0));

        let stock = MediaFunction::StockTicker.apply(&f);
        assert_eq!(stock.pixel(0, 0), 0xFF);
        assert_eq!(stock.pixel(1, 0), 0x00);
        assert_eq!(stock.pixel(0, 23), f.pixel(0, 23));
    }

    #[test]
    fn upscale_doubles_and_replicates() {
        let f = frame();
        let up = MediaFunction::UpScale.apply(&f);
        assert_eq!((up.width, up.height), (64, 48));
        assert_eq!(up.pixel(10, 10), f.pixel(5, 5));
        assert_eq!(up.pixel(11, 10), f.pixel(5, 5));
    }

    #[test]
    fn downscale_halves_and_averages() {
        let f = frame();
        let down = MediaFunction::DownScale.apply(&f);
        assert_eq!((down.width, down.height), (16, 12));
        let expect = (f.pixel(0, 0) as u32
            + f.pixel(1, 0) as u32
            + f.pixel(0, 1) as u32
            + f.pixel(1, 1) as u32)
            / 4;
        assert_eq!(down.pixel(0, 0) as u32, expect);
    }

    #[test]
    fn up_then_down_is_identity_on_even_frames() {
        let f = frame();
        let round = MediaFunction::DownScale.apply(&MediaFunction::UpScale.apply(&f));
        assert_eq!(round, f);
    }

    #[test]
    fn sub_image_is_centered_crop() {
        let f = frame();
        let s = MediaFunction::SubImage.apply(&f);
        assert_eq!((s.width, s.height), (16, 12));
        assert_eq!(s.pixel(0, 0), f.pixel(8, 6));
    }

    #[test]
    fn requantize_clears_low_nibble() {
        let f = frame();
        let q = MediaFunction::Requantize.apply(&f);
        assert!(q.pixels.iter().all(|p| p & 0x0F == 0));
        assert_eq!(q.pixel(3, 5), f.pixel(3, 5) & 0xF0);
        // Idempotent.
        assert_eq!(MediaFunction::Requantize.apply(&q), q);
    }

    #[test]
    fn names_round_trip() {
        for f in MediaFunction::ALL {
            assert_eq!(MediaFunction::by_name(f.name()), Some(f));
        }
        assert_eq!(MediaFunction::by_name("nope"), None);
    }

    #[test]
    fn codes_round_trip() {
        for f in MediaFunction::ALL {
            assert_eq!(MediaFunction::from_code(f.code()), Some(f));
        }
        assert_eq!(MediaFunction::from_code(6), None);
    }

    #[test]
    fn frame_digest_is_content_sensitive() {
        let f = frame();
        assert_eq!(f.digest(), frame().digest());
        assert_ne!(f.digest(), Frame::synthetic(32, 24, 8).digest());
        assert_ne!(f.digest(), Frame::synthetic(24, 32, 7).digest());
        assert_ne!(f.digest(), MediaFunction::Requantize.apply(&f).digest());
    }

    #[test]
    fn bandwidth_factors_reflect_size_change() {
        let f = frame();
        for func in MediaFunction::ALL {
            let out = func.apply(&f);
            let actual = out.byte_len() as f64 / f.byte_len() as f64;
            match func {
                MediaFunction::Requantize => {
                    // Requantization halves *entropy*, not raw byte count.
                    assert_eq!(actual, 1.0);
                }
                _ => assert!(
                    (actual - func.bandwidth_factor()).abs() < 1e-9,
                    "{func:?}: {actual} vs {}",
                    func.bandwidth_factor()
                ),
            }
        }
    }

    #[test]
    fn tiny_frames_do_not_panic() {
        let f = Frame::synthetic(1, 1, 0);
        for func in MediaFunction::ALL {
            let out = func.apply(&f);
            assert!(out.width >= 1 && out.height >= 1);
        }
    }
}
