//! Model-checker adapter: real `PeerNode`s behind a virtual outbox.
//!
//! [`CheckedWorld`] drives N unmodified [`PeerNode`]s through a
//! [`ModelOutbox`] that captures every emitted message and timer instead
//! of shipping them. The set of captured-but-undelivered messages *is*
//! the network: each [`McAction`] delivers one of them (or fires a
//! timer, drops, duplicates, crashes a peer), so the
//! [`spidernet_sim::mc`] engine can explore delivery interleavings that
//! the channel and socket transports would only hit under rare
//! scheduling, loss, or WAN jitter.
//!
//! The adversary is bounded by a [`NetModel`]: arbitrary reorder (or
//! FIFO per channel), a drop budget over the droppable message class, a
//! duplication budget, timer-vs-wire races, and a crash budget over the
//! scenario's crashable peers. Invariants checked after every transition
//! combine [`PeerNode::local_invariants`] with *ghost state* the nodes
//! themselves cannot see — which path each maintenance probe actually
//! walked, and what the failover candidates looked like the instant a
//! switch fired — so a stale `PathProbeAck` credited to the wrong backup
//! or a failover onto a dead-marked slot is caught as a safety
//! violation, not a silent misbehaviour.
//!
//! Action keys are content-based (`mix` over endpoints and the message's
//! delay salt, disambiguated by an occurrence counter), which keeps a
//! minimized schedule replayable: removing an unrelated action does not
//! renumber the survivors.

use crate::media::MediaFunction;
use crate::msg::{mix, Msg};
use crate::node::{
    probe_digest, ClusterConfig, Outbox, PeerNode, SetupResult, StreamReport, World,
};
use spidernet_sim::mc::ModelSystem;
use spidernet_util::id::PeerId;
use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Network adversary model: which interleavings and faults the checker
/// may explore.
#[derive(Clone, Debug, Default)]
pub struct NetModel {
    /// Deliver in-flight messages in any order. When false, delivery is
    /// FIFO per `(from, to)` channel — the TCP ordering guarantee.
    pub reorder: bool,
    /// How many droppable-class messages ([`Msg::droppable`]) the
    /// adversary may drop.
    pub drops: u32,
    /// How many droppable-class messages the adversary may duplicate.
    pub dups: u32,
    /// Let timers race in-flight deliveries. When false, a peer's timer
    /// fires only once no wire message with an earlier model timestamp
    /// is bound for that peer (deliveries-before-timeouts discipline).
    pub timer_race: bool,
    /// How many peers (from [`McScenario::crashable`]) may crash.
    pub crashes: u32,
}

impl NetModel {
    /// Pure reordering: no loss, no duplication, no crashes, timers
    /// gated behind deliveries. Every terminal outcome must be
    /// identical under this model.
    pub fn reorder_only() -> NetModel {
        NetModel { reorder: true, ..NetModel::default() }
    }

    /// Reordering plus loss and duplication budgets.
    pub fn lossy(drops: u32, dups: u32) -> NetModel {
        NetModel { reorder: true, drops, dups, ..NetModel::default() }
    }

    /// The full adversary: reorder, loss, duplication, timer races, and
    /// peer crashes.
    pub fn full(drops: u32, dups: u32, crashes: u32) -> NetModel {
        NetModel { reorder: true, drops, dups, timer_race: true, crashes }
    }
}

/// One checkable deployment: peers, the request under test, and the
/// adversary. Two stock shapes cover the protocol's phases —
/// [`McScenario::setup`] (composition from cold) and
/// [`McScenario::stream`] (an established session with backups, under
/// failover pressure).
#[derive(Clone, Debug)]
pub struct McScenario {
    /// Cluster size.
    pub peers: usize,
    /// World seed (WAN delays, overlay).
    pub seed: u64,
    /// Requested function chain.
    pub chain: Vec<MediaFunction>,
    /// The composing/streaming source peer.
    pub source: PeerId,
    /// The application receiver.
    pub dest: PeerId,
    /// Probing budget for composition.
    pub budget: u32,
    /// The adversary.
    pub net: NetModel,
    /// Peers the crash budget may be spent on.
    pub crashable: Vec<PeerId>,
    /// Frames to stream (0 = setup only; the `Start` action never
    /// enables).
    pub stream_frames: u64,
    /// Model ms between frames.
    pub frame_interval_ms: f64,
    /// Streaming failover timeout, model ms.
    pub failover_timeout_ms: f64,
    /// Backup maintenance period, model ms (0 disables).
    pub maintenance_period_ms: f64,
    /// Skip composition: start streaming directly over paths derived
    /// from component placement (slot 0 primary, later replicas as
    /// backups).
    pub pre_established: bool,
}

impl McScenario {
    /// Composition from cold at 4 peers: two-function chain, one replica
    /// per function (peers 0 and 1), source 2, destination 3.
    pub fn setup(net: NetModel) -> McScenario {
        McScenario {
            peers: 4,
            seed: 42,
            chain: vec![MediaFunction::ALL[0], MediaFunction::ALL[1]],
            source: PeerId::new(2),
            dest: PeerId::new(3),
            budget: 4,
            net,
            crashable: Vec::new(),
            stream_frames: 0,
            frame_interval_ms: 20.0,
            failover_timeout_ms: 50.0,
            maintenance_period_ms: 0.0,
            pre_established: false,
        }
    }

    /// An established one-function stream at 14 peers with two backup
    /// paths (replica hosts 0, 6, 12), maintenance probing on, and the
    /// primary host crashable — the failover state machine under fire.
    pub fn stream(net: NetModel) -> McScenario {
        McScenario {
            peers: 14,
            seed: 42,
            chain: vec![MediaFunction::ALL[0]],
            source: PeerId::new(2),
            dest: PeerId::new(3),
            budget: 4,
            net,
            crashable: vec![PeerId::new(0)],
            stream_frames: 3,
            frame_interval_ms: 20.0,
            failover_timeout_ms: 50.0,
            maintenance_period_ms: 40.0,
            pre_established: true,
        }
    }

    /// Derives the stable slot list for a pre-established stream from
    /// component placement: path `i` picks replica `i` of every chain
    /// function, excluding the source and destination.
    fn service_paths(&self, world: &World) -> Vec<Vec<PeerId>> {
        let hosts: Vec<Vec<PeerId>> = self
            .chain
            .iter()
            .map(|&f| {
                (0..world.cfg.peers as u64)
                    .map(PeerId::new)
                    .filter(|&p| {
                        world.functions[p.index()] == f && p != self.source && p != self.dest
                    })
                    .collect()
            })
            .collect();
        let replicas = hosts.iter().map(Vec::len).min().unwrap_or(0);
        (0..replicas).map(|i| hosts.iter().map(|h| h[i]).collect()).collect()
    }
}

/// A virtual [`Outbox`] that captures everything a [`PeerNode`] emits —
/// wire sends, timer schedules, driver results — instead of shipping
/// it, and reads a fixed model clock. [`CheckedWorld`] drains one after
/// every `handle` call and turns the captures into explorable actions.
#[derive(Clone, Debug, Default)]
pub struct ModelOutbox {
    /// Model time [`Outbox::now_ms`] reports.
    pub now: f64,
    /// Captured wire sends: `(to, msg, delay_ms)`.
    pub sent: Vec<(PeerId, Msg, f64)>,
    /// Captured timer schedules: `(msg, delay_ms)`.
    pub timers: Vec<(Msg, f64)>,
    /// Captured driver setup results.
    pub setups: Vec<SetupResult>,
    /// Captured driver stream reports.
    pub reports: Vec<StreamReport>,
}

impl ModelOutbox {
    /// An empty outbox whose clock reads `now`.
    pub fn at(now: f64) -> ModelOutbox {
        ModelOutbox { now, ..ModelOutbox::default() }
    }
}

impl Outbox for ModelOutbox {
    fn wire(&mut self, to: PeerId, msg: Msg, delay_ms: f64) {
        self.sent.push((to, msg, delay_ms));
    }

    fn timer(&mut self, msg: Msg, delay_ms: f64) {
        self.timers.push((msg, delay_ms));
    }

    fn now_ms(&self) -> f64 {
        self.now
    }

    fn setup_result(&mut self, result: SetupResult) {
        self.setups.push(result);
    }

    fn stream_report(&mut self, report: StreamReport) {
        self.reports.push(report);
    }
}

/// One transition of the checked world. Keys are content-based, so a
/// minimized schedule replays against a fresh world.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum McAction {
    /// Deliver the in-flight wire message with this key.
    Deliver(u64),
    /// Fire the pending timer with this key.
    Timer(u64),
    /// Drop the in-flight droppable message with this key.
    Drop(u64),
    /// Duplicate the in-flight droppable message with this key.
    Duplicate(u64),
    /// Crash the peer with this raw id.
    Crash(u64),
    /// Start streaming over the first successful setup.
    Start,
}

#[derive(Clone, Debug)]
struct InFlight {
    key: u64,
    seq: u64,
    from: PeerId,
    to: PeerId,
    msg: Msg,
}

#[derive(Clone, Debug)]
struct TimerEntry {
    key: u64,
    peer: PeerId,
    due_ms: f64,
    msg: Msg,
}

/// The model timestamp a wire message carries (0 for variants without
/// one — they sort as "already due").
fn msg_at(msg: &Msg) -> f64 {
    match msg {
        Msg::DhtLookup { at_ms, .. }
        | Msg::DhtReply { at_ms, .. }
        | Msg::SetupAck { at_ms, .. }
        | Msg::StreamFrame { at_ms, .. }
        | Msg::FrameAck { at_ms, .. } => *at_ms,
        Msg::Probe(p) => p.at_ms,
        _ => 0.0,
    }
}

/// Content salt for timer identity (parallels [`Msg::delay_salt`] for
/// the timer variants, which that salt does not cover).
fn timer_salt(msg: &Msg) -> u64 {
    match msg {
        Msg::TimerCollect { request } => mix(20, *request),
        Msg::TimerStream { session } => mix(21, *session),
        Msg::TimerMaintenance { session } => mix(22, *session),
        _ => mix(29, 0),
    }
}

fn kind_name(msg: &Msg) -> &'static str {
    match msg {
        Msg::DhtLookup { .. } => "DhtLookup",
        Msg::DhtReply { .. } => "DhtReply",
        Msg::Register { .. } => "Register",
        Msg::Probe(_) => "Probe",
        Msg::SetupAck { .. } => "SetupAck",
        Msg::StreamFrame { .. } => "StreamFrame",
        Msg::FrameAck { .. } => "FrameAck",
        Msg::Compose { .. } => "Compose",
        Msg::StartStream { .. } => "StartStream",
        Msg::PathProbe { .. } => "PathProbe",
        Msg::PathProbeAck { .. } => "PathProbeAck",
        Msg::TimerMaintenance { .. } => "TimerMaintenance",
        Msg::TimerCollect { .. } => "TimerCollect",
        Msg::TimerStream { .. } => "TimerStream",
        Msg::Halt => "Halt",
    }
}

/// Full-content digest of a wire or timer message (the delay salt plus
/// everything it elides: timestamps, payload bits, carried paths).
fn msg_digest(msg: &Msg) -> u64 {
    let mut h = mix(0x4d53_4744, msg.delay_salt());
    match msg {
        Msg::DhtLookup { origin, at_ms, .. } => {
            h = mix(h, 1);
            h = mix(h, origin.raw());
            h = mix(h, at_ms.to_bits());
        }
        Msg::DhtReply { metas, at_ms, .. } => {
            h = mix(h, 2);
            for m in metas {
                h = mix(h, m.peer.raw());
                h = mix(h, m.function.code() as u64);
            }
            h = mix(h, at_ms.to_bits());
        }
        Msg::Register { replica, .. } => {
            h = mix(h, 3);
            h = mix(h, replica.peer.raw());
            h = mix(h, replica.function.code() as u64);
        }
        Msg::Probe(p) => {
            h = mix(h, 4);
            h = probe_digest(h, p);
        }
        Msg::SetupAck { path, functions, source, backups, selected_ms, at_ms, .. } => {
            h = mix(h, 5);
            for p in path {
                h = mix(h, p.raw());
            }
            for f in functions {
                h = mix(h, f.code() as u64);
            }
            h = mix(h, source.raw());
            for b in backups {
                h = mix(h, b.len() as u64);
                for p in b {
                    h = mix(h, p.raw());
                }
            }
            h = mix(h, selected_ms.to_bits());
            h = mix(h, at_ms.to_bits());
        }
        Msg::StreamFrame { frame, orig_dims, at_ms, .. } => {
            h = mix(h, 6);
            h = mix(h, frame.digest());
            h = mix(h, frame.seq);
            h = mix(h, orig_dims.0 as u64);
            h = mix(h, orig_dims.1 as u64);
            h = mix(h, at_ms.to_bits());
        }
        Msg::FrameAck { valid, digest, at_ms, .. } => {
            h = mix(h, 7);
            h = mix(h, *valid as u64);
            h = mix(h, *digest);
            h = mix(h, at_ms.to_bits());
        }
        Msg::PathProbe { path, .. } => {
            h = mix(h, 8);
            for p in path {
                h = mix(h, p.raw());
            }
        }
        Msg::PathProbeAck { .. } => h = mix(h, 9),
        Msg::TimerCollect { request } => h = mix(h, mix(10, *request)),
        Msg::TimerStream { session } => h = mix(h, mix(11, *session)),
        Msg::TimerMaintenance { session } => h = mix(h, mix(12, *session)),
        Msg::Compose { .. } | Msg::StartStream { .. } | Msg::Halt => h = mix(h, 99),
    }
    h
}

fn setup_digest(mut h: u64, s: &SetupResult) -> u64 {
    h = mix(h, s.request);
    h = mix(h, s.ok as u64);
    h = mix(h, s.dest.raw());
    for p in &s.path {
        h = mix(h, p.raw());
    }
    for f in &s.functions {
        h = mix(h, f.code() as u64);
    }
    for b in &s.backups {
        h = mix(h, b.len() as u64);
        for p in b {
            h = mix(h, p.raw());
        }
    }
    h = mix(h, s.discovery_ms.to_bits());
    h = mix(h, s.probing_ms.to_bits());
    h = mix(h, s.init_ms.to_bits());
    mix(h, s.total_ms.to_bits())
}

fn report_digest(mut h: u64, r: &StreamReport) -> u64 {
    h = mix(h, r.session);
    h = mix(h, r.sent);
    h = mix(h, r.delivered);
    h = mix(h, r.all_valid as u64);
    h = mix(h, r.switches as u64);
    h = mix(h, r.maintenance_probes);
    for p in &r.final_path {
        h = mix(h, p.raw());
    }
    mix(h, r.delivery_digest)
}

/// N real [`PeerNode`]s plus the virtual network between them, as a
/// [`ModelSystem`] the [`spidernet_sim::mc`] engine can explore.
#[derive(Clone)]
pub struct CheckedWorld {
    scenario: McScenario,
    world: Arc<World>,
    nodes: Vec<PeerNode>,
    alive: Vec<bool>,
    wire: Vec<InFlight>,
    timers: Vec<TimerEntry>,
    clock_ms: f64,
    /// Per-base occurrence counters for action-key disambiguation.
    /// Excluded from the digest: merged states replay from the root, so
    /// key naming is always consistent with the replayed path.
    occ: BTreeMap<u64, u64>,
    next_seq: u64,
    drops_used: u32,
    dups_used: u32,
    crashes_used: u32,
    started: bool,
    sent_to_dead: u64,
    setups: Vec<SetupResult>,
    reports: Vec<StreamReport>,
    /// Ghost: the path each `(session, backup_idx)` maintenance probe
    /// walks. Slots are stable, so this must never change — and a
    /// credited ack must resolve to exactly this path.
    ghost_paths: BTreeMap<(u64, usize), Vec<PeerId>>,
    ghost_violation: Option<String>,
}

impl CheckedWorld {
    /// Builds the scenario's world and kicks off its request: a
    /// composition from cold, or a pre-established stream.
    pub fn new(scenario: McScenario) -> CheckedWorld {
        let cfg = ClusterConfig {
            peers: scenario.peers,
            seed: scenario.seed,
            failover_timeout_ms: scenario.failover_timeout_ms,
            maintenance_period_ms: scenario.maintenance_period_ms,
            ..ClusterConfig::default()
        };
        let world = Arc::new(World::build(cfg));
        let nodes: Vec<PeerNode> = world
            .seeded_stores()
            .into_iter()
            .enumerate()
            .map(|(i, st)| PeerNode::new(PeerId::new(i as u64), world.clone(), st))
            .collect();
        let alive = vec![true; scenario.peers];
        let mut cw = CheckedWorld {
            world,
            nodes,
            alive,
            wire: Vec::new(),
            timers: Vec::new(),
            clock_ms: 0.0,
            occ: BTreeMap::new(),
            next_seq: 0,
            drops_used: 0,
            dups_used: 0,
            crashes_used: 0,
            started: false,
            sent_to_dead: 0,
            setups: Vec::new(),
            reports: Vec::new(),
            ghost_paths: BTreeMap::new(),
            ghost_violation: None,
            scenario,
        };
        let sc = cw.scenario.clone();
        let mut out = ModelOutbox::at(0.0);
        if sc.pre_established {
            let mut paths = sc.service_paths(&cw.world);
            assert!(!paths.is_empty(), "no hosts for the scenario chain");
            let primary = paths.remove(0);
            cw.nodes[sc.source.index()].start_stream(
                1,
                primary,
                sc.chain.clone(),
                paths,
                sc.dest,
                sc.stream_frames,
                sc.frame_interval_ms,
                (4, 4),
                &mut out,
            );
            cw.started = true;
        } else {
            cw.nodes[sc.source.index()].compose(1, sc.dest, sc.chain.clone(), sc.budget, &mut out);
        }
        cw.drain(sc.source, out);
        cw
    }

    /// Completed driver setup results captured so far.
    pub fn setup_results(&self) -> &[SetupResult] {
        &self.setups
    }

    /// Completed stream reports captured so far.
    pub fn stream_reports(&self) -> &[StreamReport] {
        &self.reports
    }

    /// Injects an adversarial wire message (as if a rogue peer sent it)
    /// and returns its action key. Exercises handler paths only
    /// reachable over the wire — e.g. a zero-function probe.
    pub fn inject_wire(&mut self, from: PeerId, to: PeerId, msg: Msg) -> u64 {
        let base = mix(mix(mix(1, from.raw()), to.raw()), msg.delay_salt());
        let key = self.next_key(base);
        let seq = self.bump_seq();
        self.wire.push(InFlight { key, seq, from, to, msg });
        key
    }

    fn next_key(&mut self, base: u64) -> u64 {
        let occ = self.occ.entry(base).or_insert(0);
        let key = mix(base, *occ);
        *occ += 1;
        key
    }

    fn bump_seq(&mut self) -> u64 {
        let s = self.next_seq;
        self.next_seq += 1;
        s
    }

    /// Files one drained outbox into the virtual network: wire sends
    /// become in-flight messages (sends to dead peers vanish, as the
    /// cluster's network thread would lose them), timers become pending
    /// entries due relative to the current clock, and driver results are
    /// recorded for the invariant checks. Maintenance probes leaving the
    /// streaming source also update the ghost path table.
    fn drain(&mut self, from: PeerId, out: ModelOutbox) {
        self.setups.extend(out.setups);
        self.reports.extend(out.reports);
        for (to, msg, _delay) in out.sent {
            if let Msg::PathProbe { session, path, idx: 0, origin, backup_idx } = &msg {
                if *origin == from {
                    self.ghost_check_probe_send(from, *session, *backup_idx, path);
                }
            }
            if !self.alive[to.index()] {
                self.sent_to_dead += 1;
                continue;
            }
            let base = mix(mix(mix(1, from.raw()), to.raw()), msg.delay_salt());
            let key = self.next_key(base);
            let seq = self.bump_seq();
            self.wire.push(InFlight { key, seq, from, to, msg });
        }
        for (msg, delay) in out.timers {
            let base = mix(mix(2, from.raw()), timer_salt(&msg));
            let key = self.next_key(base);
            let due_ms = self.clock_ms + delay;
            self.timers.push(TimerEntry { key, peer: from, due_ms, msg });
        }
    }

    /// Ghost check at maintenance-probe send time: the probed slot must
    /// be a held-in-reserve backup (not consumed, not active), and its
    /// path must match every earlier probe of the same backup — slots
    /// are stable identities.
    fn ghost_check_probe_send(
        &mut self,
        source: PeerId,
        session: u64,
        backup_idx: usize,
        path: &[PeerId],
    ) {
        let Some(snap) = self.nodes[source.index()].stream_snapshot(session) else {
            return;
        };
        let slot = backup_idx + 1;
        if slot >= snap.paths.len() || snap.consumed[slot] || slot == snap.active {
            self.ghost_violation = Some(format!(
                "session {session}: maintenance probes backup {backup_idx} but slot {slot} \
                 is consumed, active, or out of range"
            ));
            return;
        }
        if snap.paths[slot] != path {
            self.ghost_violation = Some(format!(
                "session {session}: maintenance probe for backup {backup_idx} walks a path \
                 that is not slot {slot}'s path"
            ));
            return;
        }
        match self.ghost_paths.get(&(session, backup_idx)) {
            Some(prev) if prev != path => {
                self.ghost_violation = Some(format!(
                    "session {session}: backup {backup_idx} probed along a different path \
                     than an earlier round — slot identity drifted"
                ));
            }
            Some(_) => {}
            None => {
                self.ghost_paths.insert((session, backup_idx), path.to_vec());
            }
        }
    }

    /// Delivers `msg` to `to`, running the ghost checks that bracket the
    /// two handlers the stable-slot refactor protects: crediting a
    /// maintenance ack, and choosing a failover target.
    fn deliver(&mut self, to: PeerId, msg: Msg) {
        let ack_pre = match &msg {
            Msg::PathProbeAck { session, backup_idx } => self.nodes[to.index()]
                .stream_snapshot(*session)
                .map(|s| (*session, *backup_idx, s)),
            _ => None,
        };
        let switch_pre = match &msg {
            Msg::TimerStream { session } => {
                self.nodes[to.index()].stream_snapshot(*session).map(|s| (*session, s))
            }
            _ => None,
        };
        let mut out = ModelOutbox::at(self.clock_ms);
        self.nodes[to.index()].handle(msg, &mut out);
        if let Some((session, bi, pre)) = ack_pre {
            if let Some(post) = self.nodes[to.index()].stream_snapshot(session) {
                let credited =
                    bi < post.backup_alive.len() && post.backup_alive[bi] && !pre.backup_alive[bi];
                if credited {
                    let slot = bi + 1;
                    if post.consumed[slot] || post.active == slot {
                        self.ghost_violation = Some(format!(
                            "session {session}: maintenance ack credited backup {bi} but \
                             slot {slot} is consumed or active"
                        ));
                    } else if let Some(walked) = self.ghost_paths.get(&(session, bi)) {
                        if *walked != post.paths[slot] {
                            self.ghost_violation = Some(format!(
                                "session {session}: stale maintenance ack credited to \
                                 backup {bi}, whose slot no longer holds the path the \
                                 probe walked"
                            ));
                        }
                    }
                }
            }
        }
        if let Some((session, pre)) = switch_pre {
            if let Some(post) = self.nodes[to.index()].stream_snapshot(session) {
                if post.switches > pre.switches {
                    let had_alive = (1..pre.paths.len())
                        .any(|s| s != pre.active && !pre.consumed[s] && pre.backup_alive[s - 1]);
                    let chose_alive = post.active >= 1
                        && !pre.consumed[post.active]
                        && pre.backup_alive[post.active - 1];
                    if had_alive && !chose_alive {
                        self.ghost_violation = Some(format!(
                            "session {session}: failover chose slot {} while a \
                             maintenance-alive backup existed",
                            post.active
                        ));
                    }
                }
            }
        }
        self.drain(to, out);
    }

    /// Starts streaming over the first successful captured setup.
    fn start_stream_from_setup(&mut self) -> bool {
        let Some(s) = self.setups.iter().find(|s| s.ok).cloned() else {
            return false;
        };
        let sc = self.scenario.clone();
        let mut out = ModelOutbox::at(self.clock_ms);
        self.nodes[sc.source.index()].start_stream(
            s.request,
            s.path,
            s.functions,
            s.backups,
            s.dest,
            sc.stream_frames,
            sc.frame_interval_ms,
            (4, 4),
            &mut out,
        );
        self.drain(sc.source, out);
        self.started = true;
        true
    }
}

impl ModelSystem for CheckedWorld {
    type Action = McAction;

    fn enabled(&self) -> Vec<McAction> {
        let mut acts = Vec::new();
        if self.scenario.net.reorder {
            for e in &self.wire {
                acts.push(McAction::Deliver(e.key));
            }
        } else {
            // FIFO per channel: only the oldest message of each
            // (from, to) pair is deliverable.
            let mut heads: BTreeMap<(u64, u64), (u64, u64)> = BTreeMap::new();
            for e in &self.wire {
                let ch = (e.from.raw(), e.to.raw());
                let cand = (e.seq, e.key);
                let head = heads.entry(ch).or_insert(cand);
                if cand.0 < head.0 {
                    *head = cand;
                }
            }
            for (_, (_, key)) in heads {
                acts.push(McAction::Deliver(key));
            }
        }
        if self.drops_used < self.scenario.net.drops {
            for e in &self.wire {
                if e.msg.droppable() {
                    acts.push(McAction::Drop(e.key));
                }
            }
        }
        if self.dups_used < self.scenario.net.dups {
            for e in &self.wire {
                if e.msg.droppable() {
                    acts.push(McAction::Duplicate(e.key));
                }
            }
        }
        // One timer per peer (its earliest), gated behind wire messages
        // bound for that peer unless the model races timers.
        let mut earliest: BTreeMap<u64, (f64, u64, u64)> = BTreeMap::new();
        for t in &self.timers {
            if !self.alive[t.peer.index()] {
                continue;
            }
            let cand = (t.due_ms, t.key, t.key);
            let e = earliest.entry(t.peer.raw()).or_insert(cand);
            if (cand.0, cand.1) < (e.0, e.1) {
                *e = cand;
            }
        }
        for (peer, (due, _, key)) in earliest {
            let blocked = !self.scenario.net.timer_race
                && self.wire.iter().any(|e| e.to.raw() == peer && msg_at(&e.msg) < due);
            if !blocked {
                acts.push(McAction::Timer(key));
            }
        }
        if self.crashes_used < self.scenario.net.crashes {
            for &p in &self.scenario.crashable {
                if self.alive[p.index()] {
                    acts.push(McAction::Crash(p.raw()));
                }
            }
        }
        if !self.started
            && self.scenario.stream_frames > 0
            && self.setups.iter().any(|s| s.ok)
        {
            acts.push(McAction::Start);
        }
        acts
    }

    fn apply(&mut self, action: &McAction) -> bool {
        match *action {
            McAction::Deliver(key) => {
                let Some(i) = self.wire.iter().position(|e| e.key == key) else {
                    return false;
                };
                let e = self.wire.remove(i);
                if !self.alive[e.to.index()] {
                    return false;
                }
                self.clock_ms = self.clock_ms.max(msg_at(&e.msg));
                self.deliver(e.to, e.msg);
                true
            }
            McAction::Timer(key) => {
                let Some(i) = self.timers.iter().position(|t| t.key == key) else {
                    return false;
                };
                let t = self.timers.remove(i);
                if !self.alive[t.peer.index()] {
                    return false;
                }
                self.clock_ms = self.clock_ms.max(t.due_ms);
                self.deliver(t.peer, t.msg);
                true
            }
            McAction::Drop(key) => {
                if self.drops_used >= self.scenario.net.drops {
                    return false;
                }
                let Some(i) =
                    self.wire.iter().position(|e| e.key == key && e.msg.droppable())
                else {
                    return false;
                };
                self.wire.remove(i);
                self.drops_used += 1;
                true
            }
            McAction::Duplicate(key) => {
                if self.dups_used >= self.scenario.net.dups {
                    return false;
                }
                let Some(i) =
                    self.wire.iter().position(|e| e.key == key && e.msg.droppable())
                else {
                    return false;
                };
                let (from, to, msg) =
                    (self.wire[i].from, self.wire[i].to, self.wire[i].msg.clone());
                let base = mix(mix(mix(1, from.raw()), to.raw()), msg.delay_salt());
                let key = self.next_key(base);
                let seq = self.bump_seq();
                self.wire.push(InFlight { key, seq, from, to, msg });
                self.dups_used += 1;
                true
            }
            McAction::Crash(peer) => {
                let p = PeerId::new(peer);
                if p.index() >= self.alive.len() || !self.alive[p.index()] {
                    return false;
                }
                self.alive[p.index()] = false;
                self.wire.retain(|e| e.to != p);
                self.timers.retain(|t| t.peer != p);
                self.crashes_used += 1;
                true
            }
            McAction::Start => {
                if self.started || self.scenario.stream_frames == 0 {
                    return false;
                }
                self.start_stream_from_setup()
            }
        }
    }

    fn digest(&self) -> u64 {
        let mut h = mix(0x004d_4357_4f52_4c44, self.clock_ms.to_bits());
        for n in &self.nodes {
            h = mix(h, n.state_digest());
        }
        for &a in &self.alive {
            h = mix(h, a as u64);
        }
        let mut wire: Vec<(u64, u64)> = self.wire.iter().map(|e| (e.key, msg_digest(&e.msg))).collect();
        wire.sort_unstable();
        for (k, d) in wire {
            h = mix(h, k);
            h = mix(h, d);
        }
        let mut timers: Vec<(u64, u64, u64)> = self
            .timers
            .iter()
            .map(|t| (t.key, t.due_ms.to_bits(), msg_digest(&t.msg)))
            .collect();
        timers.sort_unstable();
        for (k, due, d) in timers {
            h = mix(h, k);
            h = mix(h, due);
            h = mix(h, d);
        }
        h = mix(h, self.drops_used as u64);
        h = mix(h, self.dups_used as u64);
        h = mix(h, self.crashes_used as u64);
        h = mix(h, self.started as u64);
        h = mix(h, self.sent_to_dead);
        for s in &self.setups {
            h = setup_digest(h, s);
        }
        for r in &self.reports {
            h = report_digest(h, r);
        }
        mix(h, self.ghost_violation.is_some() as u64)
    }

    fn check(&self) -> Result<(), String> {
        if let Some(v) = &self.ghost_violation {
            return Err(v.clone());
        }
        for n in &self.nodes {
            n.local_invariants()?;
        }
        let mut seen = BTreeSet::new();
        for s in &self.setups {
            if !seen.insert(s.request) {
                return Err(format!("request {}: duplicate setup result", s.request));
            }
            if s.discovery_ms < 0.0 || s.probing_ms < 0.0 || s.init_ms < 0.0 || s.total_ms < 0.0 {
                return Err(format!("request {}: negative setup phase time", s.request));
            }
            if !s.ok {
                continue;
            }
            if s.path.is_empty() || s.path.len() != s.functions.len() {
                return Err(format!("request {}: malformed ok setup path", s.request));
            }
            let check_path = |label: &str, path: &[PeerId]| -> Result<(), String> {
                let distinct: BTreeSet<u64> = path.iter().map(|p| p.raw()).collect();
                if distinct.len() != path.len() {
                    return Err(format!("request {}: repeated peer in {label}", s.request));
                }
                if path.contains(&s.dest) {
                    return Err(format!("request {}: destination inside {label}", s.request));
                }
                for (p, f) in path.iter().zip(&s.functions) {
                    if self.world.functions[p.index()] != *f {
                        return Err(format!(
                            "request {}: peer {} in {label} does not host {}",
                            s.request,
                            p.raw(),
                            f.name()
                        ));
                    }
                }
                Ok(())
            };
            check_path("path", &s.path)?;
            for b in &s.backups {
                if b.len() != s.path.len() {
                    return Err(format!("request {}: backup length mismatch", s.request));
                }
                if *b == s.path {
                    return Err(format!("request {}: backup equals the primary", s.request));
                }
                check_path("backup", b)?;
            }
        }
        let mut seen = BTreeSet::new();
        for r in &self.reports {
            if !seen.insert(r.session) {
                return Err(format!("session {}: duplicate stream report", r.session));
            }
            if r.delivered > r.sent {
                return Err(format!(
                    "session {}: report delivered {} exceeds sent {}",
                    r.session, r.delivered, r.sent
                ));
            }
        }
        Ok(())
    }

    fn check_terminal(&self) -> Result<(), String> {
        let lossless = self.drops_used == 0 && self.crashes_used == 0 && self.sent_to_dead == 0;
        if !self.scenario.pre_established && lossless {
            // No loss anywhere: composition must have completed, and
            // with every replica reachable it must have succeeded.
            match self.setups.iter().find(|s| s.request == 1) {
                None => return Err("request 1: composition never completed".into()),
                Some(s) if self.scenario.chain.is_empty() => {
                    // A zero-function chain is unsatisfiable by
                    // construction: the only correct outcome is a fast
                    // failure.
                    if s.ok {
                        return Err("request 1: zero-function chain composed".into());
                    }
                }
                Some(s) if !s.ok => {
                    return Err("request 1: composition failed without loss".into())
                }
                Some(_) => {}
            }
        }
        if self.started {
            let Some(r) = self.reports.first() else {
                return Err("stream started but no report at quiescence".into());
            };
            if lossless && (r.delivered != r.sent || !r.all_valid) {
                return Err(format!(
                    "lossless stream ended with {}/{} delivered (valid: {})",
                    r.delivered, r.sent, r.all_valid
                ));
            }
        }
        Ok(())
    }

    fn outcome(&self) -> u64 {
        let mut h = 0x4f55_5443u64;
        let mut setups: Vec<u64> = self.setups.iter().map(|s| setup_digest(0, s)).collect();
        setups.sort_unstable();
        for d in setups {
            h = mix(h, d);
        }
        let mut reports: Vec<u64> = self.reports.iter().map(|r| report_digest(0, r)).collect();
        reports.sort_unstable();
        for d in reports {
            h = mix(h, d);
        }
        h
    }

    fn encode(&self, action: &McAction) -> String {
        let wire_desc = |key: u64| {
            self.wire
                .iter()
                .find(|e| e.key == key)
                .map(|e| format!("{}:{}->{}", kind_name(&e.msg), e.from.raw(), e.to.raw()))
                .unwrap_or_else(|| "?".into())
        };
        match *action {
            McAction::Deliver(key) => format!("deliver:{}:{key:016x}", wire_desc(key)),
            McAction::Drop(key) => format!("drop:{}:{key:016x}", wire_desc(key)),
            McAction::Duplicate(key) => format!("dup:{}:{key:016x}", wire_desc(key)),
            McAction::Timer(key) => {
                let desc = self
                    .timers
                    .iter()
                    .find(|t| t.key == key)
                    .map(|t| format!("{}:{}", kind_name(&t.msg), t.peer.raw()))
                    .unwrap_or_else(|| "?".into());
                format!("timer:{desc}:{key:016x}")
            }
            McAction::Crash(peer) => format!("crash:{peer}"),
            McAction::Start => "start".into(),
        }
    }
}

/// Parses an encoded action back into an [`McAction`]. The middle
/// segments are informational; identity lives in the first token and
/// the final key.
pub fn decode_action(s: &str) -> Option<McAction> {
    let kind = s.split(':').next()?;
    let last = s.rsplit(':').next()?;
    let key = || u64::from_str_radix(last, 16).ok();
    match kind {
        "deliver" => Some(McAction::Deliver(key()?)),
        "timer" => Some(McAction::Timer(key()?)),
        "drop" => Some(McAction::Drop(key()?)),
        "dup" => Some(McAction::Duplicate(key()?)),
        "crash" => Some(McAction::Crash(last.parse().ok()?)),
        "start" => Some(McAction::Start),
        _ => None,
    }
}

/// Outcome of replaying an encoded schedule against a fresh scenario.
#[derive(Clone, Debug)]
pub struct ReplayOutcome {
    /// Actions that were enabled and applied.
    pub applied: usize,
    /// Actions skipped as stale or undecodable.
    pub skipped: usize,
    /// First invariant violation hit, if any (including the terminal
    /// checks when the replay ends quiescent).
    pub violation: Option<String>,
}

/// Replays an encoded schedule (the regression-test pin format) against
/// a fresh [`CheckedWorld`], checking every invariant along the way.
pub fn replay(scenario: &McScenario, schedule: &[&str]) -> ReplayOutcome {
    let mut sys = CheckedWorld::new(scenario.clone());
    let mut outcome = ReplayOutcome { applied: 0, skipped: 0, violation: None };
    if let Err(e) = sys.check() {
        outcome.violation = Some(e);
        return outcome;
    }
    for s in schedule {
        let Some(a) = decode_action(s) else {
            outcome.skipped += 1;
            continue;
        };
        if !sys.apply(&a) {
            outcome.skipped += 1;
            continue;
        }
        outcome.applied += 1;
        if let Err(e) = sys.check() {
            outcome.violation = Some(e);
            return outcome;
        }
    }
    if sys.enabled().is_empty() {
        if let Err(e) = sys.check_terminal() {
            outcome.violation = Some(e);
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use spidernet_sim::mc::{explore, random_walks, McConfig};

    #[test]
    fn setup_bfs_reorder_only_is_clean() {
        let root = CheckedWorld::new(McScenario::setup(NetModel::reorder_only()));
        let cfg = McConfig { depth: 6, max_states: 20_000, ..McConfig::default() };
        let rep = explore(|| root.clone(), &cfg);
        assert!(rep.violations.is_empty(), "violations: {:?}", rep.violations);
        assert!(rep.stats.states_explored > 10);
        assert!(rep.stats.dedup_hits > 0, "commuting deliveries must dedup");
    }

    #[test]
    fn stream_walks_under_full_adversary_are_clean_and_deterministic() {
        let root = CheckedWorld::new(McScenario::stream(NetModel::full(1, 1, 1)));
        let cfg = McConfig { walks: 3, walk_steps: 250, seed: 7, ..McConfig::default() };
        let a = random_walks(|| root.clone(), &cfg);
        let b = random_walks(|| root.clone(), &cfg);
        assert!(a.violations.is_empty(), "violations: {:?}", a.violations);
        assert_eq!(a.stats.states_explored, b.stats.states_explored);
        assert_eq!(a.stats.dedup_hits, b.stats.dedup_hits);
        assert_eq!(a.terminal_outcomes, b.terminal_outcomes);
    }

    #[test]
    fn replay_skips_stale_actions_instead_of_failing() {
        let sc = McScenario::setup(NetModel::reorder_only());
        let out = replay(&sc, &["deliver:?:0000000000000000", "bogus", "start"]);
        assert_eq!(out.applied, 0);
        assert_eq!(out.skipped, 3);
    }

    #[test]
    fn encoded_actions_decode_to_themselves() {
        let sys = CheckedWorld::new(McScenario::setup(NetModel::lossy(1, 1)));
        for a in sys.enabled() {
            let enc = sys.encode(&a);
            assert_eq!(decode_action(&enc), Some(a), "round-trip of {enc}");
        }
    }
}
