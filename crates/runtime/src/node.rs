//! The transport-agnostic SpiderNet protocol engine.
//!
//! [`PeerNode`] holds one peer's complete protocol state — DHT shard,
//! composition jobs, destination-side probe collection, streaming
//! sessions with proactive failure recovery — and is driven entirely
//! through [`PeerNode::handle`]. It never touches a channel or a socket:
//! every outbound effect goes through the [`Outbox`] trait, implemented
//! by the in-process channel transport ([`crate::cluster`]) and the
//! socket daemon ([`crate::net`]). Protocol logic exists exactly once.
//!
//! ## Deterministic model time
//!
//! WAN delays are *content-keyed* ([`WanModel::delay_keyed`]): the jitter
//! of each message is a pure function of `(seed, from, to, salt)`.
//! Messages carry an `at_ms` model timestamp accumulated hop by hop, and
//! every session-setup metric (discovery, probing, init, total) is
//! computed from these timestamps — never from the wall clock. For a
//! fixed seed the reported metrics are bit-identical across transports,
//! runs, and thread schedules. Wall time (via [`Outbox::now_ms`]) is used
//! only where the protocol genuinely reacts to real elapsed time: the
//! streaming failover detector.
//!
//! The destination filters collected probes to a *model* sub-window
//! (half the collect window) before selecting, so a probe's membership in
//! the selection set depends on its deterministic model arrival, not on
//! how close to the wall deadline the transport delivered it.

use crate::media::{Frame, MediaFunction};
use crate::msg::{mix, Msg, Probe, ReplicaMeta};
use crate::wan::WanModel;
use spidernet_dht::{NodeId, PastryNetwork};
use spidernet_sim::trace::{TraceBuffer, TraceEvent};
use spidernet_util::hash::function_key;
use spidernet_util::id::PeerId;
use spidernet_util::qos::QosVector;
use spidernet_util::res::ResourceVector;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Message-level fault injection applied by the transport's network
/// layer, at the sender side.
///
/// Only wire traffic ([`Msg::droppable`]) is affected; driver commands
/// and self-timers always deliver. Each droppable message is considered
/// exactly once: survivors of the drop roll are delivered with their
/// extra jitter and never rolled again.
#[derive(Clone, Copy, Debug, Default)]
#[non_exhaustive]
pub struct NetFaultConfig {
    /// Probability a droppable message is silently lost.
    pub drop_prob: f64,
    /// Upper bound of uniformly-sampled extra delivery delay, model ms.
    pub extra_delay_ms: f64,
}

impl NetFaultConfig {
    /// A builder seeded with the defaults (no faults).
    pub fn builder() -> NetFaultConfigBuilder {
        NetFaultConfigBuilder { cfg: NetFaultConfig::default() }
    }

    /// True when either knob is set.
    pub fn is_active(&self) -> bool {
        self.drop_prob > 0.0 || self.extra_delay_ms > 0.0
    }
}

/// Builder for [`NetFaultConfig`] (the struct is `#[non_exhaustive]`, so
/// out-of-crate construction goes through here; both the in-process
/// cluster and the socket transports consume the resulting config
/// unchanged).
#[derive(Clone, Debug)]
pub struct NetFaultConfigBuilder {
    cfg: NetFaultConfig,
}

impl NetFaultConfigBuilder {
    /// Probability a droppable message is silently lost.
    pub fn drop_prob(mut self, p: f64) -> Self {
        self.cfg.drop_prob = p;
        self
    }

    /// Upper bound of uniformly-sampled extra delivery delay, model ms.
    pub fn extra_delay_ms(mut self, ms: f64) -> Self {
        self.cfg.extra_delay_ms = ms;
        self
    }

    /// Finalizes the config.
    pub fn build(self) -> NetFaultConfig {
        self.cfg
    }
}

/// Cluster construction parameters, shared verbatim by both transports —
/// a socket deployment built from the same config and seed reproduces the
/// in-process cluster's topology, component placement, and model-time
/// behaviour exactly.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of peers (paper: 102 PlanetLab hosts).
    pub peers: usize,
    /// WAN jitter bound (multiplicative).
    pub jitter: f64,
    /// Master seed.
    pub seed: u64,
    /// Wall seconds per model second (0.02 = 50× compression).
    pub time_scale: f64,
    /// Destination-side probe collection window, model ms.
    pub collect_window_ms: f64,
    /// Per-hop probe fan-out quota.
    pub quota: u32,
    /// A streaming source fails over when no delivery ack has arrived for
    /// this long (model ms). Must exceed the path round-trip time, or
    /// frames legitimately in flight look like loss.
    pub failover_timeout_ms: f64,
    /// Period of backup-path maintenance probing, model ms (0 disables).
    pub maintenance_period_ms: f64,
    /// Wall-deadline slack for destination probe collection, as a
    /// multiple of `collect_window_ms`. Purely a liveness knob — the
    /// model-time filter decides which probes count; this only bounds how
    /// long the destination waits for them to physically land. Must be
    /// ≥ 1.0 (validated by [`spidernet_core::bcp::BcpConfigBuilder`] on
    /// the protocol side; the cluster trusts its caller).
    pub collect_deadline_slack: f64,
    /// Message-level loss and delay injection (off by default).
    pub faults: NetFaultConfig,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            peers: 102,
            jitter: 0.3,
            seed: 0,
            time_scale: 0.02,
            collect_window_ms: 200.0,
            quota: 3,
            failover_timeout_ms: 400.0,
            maintenance_period_ms: 120.0,
            collect_deadline_slack: 3.0,
            faults: NetFaultConfig::default(),
        }
    }
}

/// Result of one session setup (all times in model ms, derived from
/// accumulated message timestamps — deterministic for a fixed seed).
#[derive(Clone, Debug)]
pub struct SetupResult {
    /// Request id (doubles as the session id).
    pub request: u64,
    /// Whether a composition was established.
    pub ok: bool,
    /// The application receiver.
    pub dest: PeerId,
    /// Selected component path (composition order).
    pub path: Vec<PeerId>,
    /// Functions along the path.
    pub functions: Vec<MediaFunction>,
    /// Alternative complete paths found by probing (failover backups).
    pub backups: Vec<Vec<PeerId>>,
    /// Decentralized service discovery time.
    pub discovery_ms: f64,
    /// Probing + destination selection time.
    pub probing_ms: f64,
    /// Session initialization (reverse-ack) time.
    pub init_ms: f64,
    /// End-to-end setup time.
    pub total_ms: f64,
}

/// Final report of one streaming session.
#[derive(Clone, Debug)]
pub struct StreamReport {
    /// Session id.
    pub session: u64,
    /// Frames emitted by the source.
    pub sent: u64,
    /// Frames acknowledged by the destination.
    pub delivered: u64,
    /// Whether every delivered frame matched the expected transform chain.
    pub all_valid: bool,
    /// Path failovers performed.
    pub switches: u32,
    /// Low-rate maintenance probes sent along backup paths.
    pub maintenance_probes: u64,
    /// The path in use when the stream ended.
    pub final_path: Vec<PeerId>,
    /// Order-independent digest over all delivered frame pixels (sum of
    /// per-frame digests) — equal across transports when the same frames
    /// arrive.
    pub delivery_digest: u64,
}

/// Read-only view of one streaming session's failover state, exposed for
/// external checkers (the model checker's ghost invariants inspect the
/// slot table around every switchover).
#[derive(Clone, Debug)]
pub struct StreamSnapshot {
    /// The stable slot table: slot 0 the original primary, slots 1.. the
    /// backups in preference order.
    pub paths: Vec<Vec<PeerId>>,
    /// Slot currently serving frames.
    pub active: usize,
    /// Slots abandoned by failover.
    pub consumed: Vec<bool>,
    /// Per-backup maintenance verdict (`backup_alive[i]` ↔ slot `i+1`).
    pub backup_alive: Vec<bool>,
    /// Failovers performed so far.
    pub switches: u32,
    /// Frames emitted so far.
    pub sent: u64,
    /// Frames acknowledged so far.
    pub delivered: u64,
    /// True once the source stopped emitting and is draining acks.
    pub draining: bool,
}

/// Everything all peers of one deployment agree on: the latency model,
/// the Pastry overlay, component placement, configuration, and the shared
/// counters/trace. Built deterministically from a [`ClusterConfig`] —
/// every process of a socket deployment reconstructs an identical World
/// from the same config.
pub struct World {
    /// The wide-area latency model.
    pub wan: WanModel,
    /// The structured overlay used for discovery routing.
    pub pastry: PastryNetwork,
    /// Deployment configuration.
    pub cfg: ClusterConfig,
    /// Media component hosted by each peer (index = peer).
    pub functions: Vec<MediaFunction>,
    /// Total BCP probe transmissions.
    pub probes_sent: AtomicU64,
    /// Total DHT routing steps.
    pub dht_hops: AtomicU64,
    /// Droppable messages lost to fault injection.
    pub msgs_dropped: AtomicU64,
    /// Deployment-wide event ring. Recorded through a mutex — protocol
    /// events are orders of magnitude rarer than frames, and with the
    /// `trace` feature off the buffer is a ZST no-op anyway.
    pub trace: Mutex<TraceBuffer>,
    /// Probe transmissions attributed per composition session.
    pub session_probes: Mutex<BTreeMap<u64, u64>>,
}

impl World {
    /// Builds the deployment environment: WAN model, Pastry overlay over
    /// it, and round-robin component placement (at 102 peers that is the
    /// paper's ≈17 replicas per function).
    pub fn build(cfg: ClusterConfig) -> World {
        let peers: Vec<PeerId> = (0..cfg.peers as u64).map(PeerId::new).collect();
        let wan = WanModel::new(cfg.peers, cfg.jitter, cfg.seed);
        let mut prox = |a: PeerId, b: PeerId| wan.base_ms(a, b);
        let pastry = PastryNetwork::build(&peers, &mut prox);
        let functions: Vec<MediaFunction> =
            (0..cfg.peers).map(|i| MediaFunction::ALL[i % MediaFunction::ALL.len()]).collect();
        World {
            wan,
            pastry,
            cfg,
            functions,
            probes_sent: AtomicU64::new(0),
            dht_hops: AtomicU64::new(0),
            msgs_dropped: AtomicU64::new(0),
            trace: Mutex::new(TraceBuffer::new()),
            session_probes: Mutex::new(BTreeMap::new()),
        }
    }

    /// Startup DHT shards with every component pre-registered at its
    /// key's root — the in-process cluster's shortcut past the wire
    /// bootstrap (socket daemons instead register via [`Msg::Register`]).
    pub fn seeded_stores(&self) -> Vec<HashMap<u128, Vec<ReplicaMeta>>> {
        let mut stores: Vec<HashMap<u128, Vec<ReplicaMeta>>> =
            vec![HashMap::new(); self.cfg.peers];
        for (i, &f) in self.functions.iter().enumerate() {
            let key = function_key(f.name());
            let root = self.pastry.responsible(NodeId::new(key)).expect("non-empty ring");
            stores[root.index()]
                .entry(key)
                .or_default()
                .push(ReplicaMeta { peer: PeerId::from(i), function: f });
        }
        stores
    }

    /// Records one trace event.
    pub fn record(&self, ev: TraceEvent) {
        self.trace.lock().unwrap().record(ev);
    }

    fn count_probe(&self, session: u64, depth: u16, budget: u32) {
        self.probes_sent.fetch_add(1, Ordering::Relaxed);
        *self.session_probes.lock().unwrap().entry(session).or_insert(0) += 1;
        self.record(TraceEvent::ProbeSpawned { session, depth, budget });
    }
}

/// The engine's view of a transport: where outbound messages, timers, and
/// driver results go. Implementations decide what "wire" means (an
/// in-process delay queue, or a fault-injecting sender queue feeding TCP
/// connections).
pub trait Outbox {
    /// Ships `msg` to peer `to`; the transport must deliver it after
    /// `delay_ms` of model time (the content-keyed WAN delay, already
    /// accumulated into the message's `at_ms`).
    fn wire(&mut self, to: PeerId, msg: Msg, delay_ms: f64);
    /// Schedules `msg` back into this same peer after `delay_ms` of model
    /// time. Timers are local bookkeeping: never dropped, never jittered.
    fn timer(&mut self, msg: Msg, delay_ms: f64);
    /// Wall-derived model time, ms since the deployment epoch. Used only
    /// by the streaming failover detector.
    fn now_ms(&self) -> f64;
    /// Delivers a finished setup result to whoever asked (driver channel
    /// or control connection).
    fn setup_result(&mut self, result: SetupResult);
    /// Delivers a finished stream report likewise.
    fn stream_report(&mut self, report: StreamReport);
}

#[derive(Clone)]
struct ComposeJob {
    dest: PeerId,
    chain: Vec<MediaFunction>,
    budget: u32,
    /// Per-position replica list and the model time its reply arrived.
    replica_lists: Vec<Option<(Vec<ReplicaMeta>, f64)>>,
    /// Model time discovery finished (latest reply), once all are in.
    discovery_done_ms: Option<f64>,
}

#[derive(Clone)]
struct DestJob {
    source: PeerId,
    chain: Vec<MediaFunction>,
    /// Collected complete probes, keyed by model arrival time.
    probes: Vec<(f64, Probe)>,
    timer_armed: bool,
}

#[derive(Clone)]
enum StreamPhase {
    Sending,
    Draining,
}

#[derive(Clone)]
struct StreamJob {
    /// Every path known for the session in one *stable* slot list:
    /// slot 0 is the original primary, slots 1.. the backups in
    /// preference order. Slots never move or disappear — maintenance
    /// probes and their acks identify a backup by `backup_idx` (slot
    /// `backup_idx + 1`), so an ack that raced a failover must still
    /// resolve to the path it actually walked. Failover switches
    /// `active` and marks the abandoned slot `consumed` instead of
    /// reshuffling the list.
    paths: Vec<Vec<PeerId>>,
    /// Slot currently serving frames.
    active: usize,
    /// Slots abandoned by a failover; never served or probed again.
    consumed: Vec<bool>,
    /// `backup_alive[i]` mirrors slot `i+1`'s last maintenance verdict
    /// (true until proven dead).
    backup_alive: Vec<bool>,
    /// Maintenance round bookkeeping; an ack for round r-1 arriving late
    /// still counts (liveness, not freshness).
    maintenance_pending: Vec<bool>,
    maintenance_messages: u64,
    functions: Vec<MediaFunction>,
    dest: PeerId,
    remaining: u64,
    interval_ms: f64,
    dims: (usize, usize),
    seq: u64,
    delivered: u64,
    /// Frame seqs already credited by a delivery ack. A duplicated or
    /// replayed `FrameAck` (transport retry, model-checker duplication)
    /// must count once, or `delivered` overruns `sent` and the delivery
    /// digest double-folds.
    acked: HashSet<u64>,
    all_valid: bool,
    delivery_digest: u64,
    /// Model ms (wall-derived) of the last sign of progress — the
    /// failover detector's baseline.
    last_progress_ms: f64,
    switches: u32,
    phase: StreamPhase,
}

/// One peer's protocol state, transport-agnostic. `Clone` exists for the
/// model checker ([`crate::mc`]), which forks a peer's state at every
/// explored branch; the shared [`World`] stays one `Arc`.
#[derive(Clone)]
pub struct PeerNode {
    /// This peer.
    pub me: PeerId,
    /// The shared deployment environment.
    pub world: Arc<World>,
    /// This peer's DHT shard: key → advertised replicas.
    pub store: HashMap<u128, Vec<ReplicaMeta>>,
    compose_jobs: HashMap<u64, ComposeJob>,
    dest_jobs: HashMap<u64, DestJob>,
    done_requests: HashSet<u64>,
    stream_jobs: HashMap<u64, StreamJob>,
}

impl PeerNode {
    /// A peer with the given starting DHT shard (empty for socket daemons,
    /// pre-seeded for the in-process cluster).
    pub fn new(me: PeerId, world: Arc<World>, store: HashMap<u128, Vec<ReplicaMeta>>) -> PeerNode {
        PeerNode {
            me,
            world,
            store,
            compose_jobs: HashMap::new(),
            dest_jobs: HashMap::new(),
            done_requests: HashSet::new(),
            stream_jobs: HashMap::new(),
        }
    }

    /// Entries currently stored in this peer's DHT shard.
    pub fn store_entries(&self) -> u64 {
        self.store.values().map(|v| v.len() as u64).sum()
    }

    /// Sends `msg` to `to` with the content-keyed WAN delay, accumulating
    /// the delay into the message's model timestamp.
    fn send(&mut self, to: PeerId, mut msg: Msg, out: &mut impl Outbox) {
        let d = self.world.wan.delay_keyed(self.me, to, msg.delay_salt());
        if let Some(at) = msg.at_ms_mut() {
            *at += d;
        }
        out.wire(to, msg, d);
    }

    /// Advertises this peer's own component into the DHT over the wire —
    /// the socket daemon's bootstrap registration. The in-process cluster
    /// doesn't call this (its shards are pre-seeded).
    pub fn announce(&mut self, out: &mut impl Outbox) {
        let f = self.world.functions[self.me.index()];
        let key = NodeId::new(function_key(f.name()));
        let replica = ReplicaMeta { peer: self.me, function: f };
        let qos = QosVector::delay_loss(f.processing_ms(), 0.0);
        let res = ResourceVector::new(1.0, 1.0);
        self.route_register(key, replica, qos, res, 0, out);
    }

    /// Drives the engine with one delivered message. Driver commands and
    /// `Halt` are transport concerns and must not reach this point.
    pub fn handle(&mut self, msg: Msg, out: &mut impl Outbox) {
        match msg {
            Msg::DhtLookup { query, key, origin, hops, at_ms } => {
                self.route_dht(query, key, origin, hops, at_ms, out)
            }
            Msg::DhtReply { query, metas, at_ms } => self.on_dht_reply(query, metas, at_ms, out),
            Msg::Register { key, replica, qos, res, hops } => {
                self.route_register(key, replica, qos, res, hops, out)
            }
            Msg::Probe(p) => self.on_probe(p, out),
            Msg::TimerCollect { request } => self.on_collect(request, out),
            Msg::SetupAck { session, path, functions, idx, source, backups, selected_ms, at_ms } => {
                if idx == usize::MAX {
                    self.on_compose_completion(session, path, functions, backups, selected_ms, at_ms, out)
                } else {
                    self.on_setup_ack(session, path, functions, idx, source, backups, selected_ms, at_ms, out)
                }
            }
            Msg::TimerStream { session } => self.on_stream_timer(session, out),
            Msg::TimerMaintenance { session } => self.on_maintenance_timer(session, out),
            Msg::PathProbe { session, path, idx, origin, backup_idx } => {
                self.on_path_probe(session, path, idx, origin, backup_idx, out)
            }
            Msg::PathProbeAck { session, backup_idx } => {
                if let Some(job) = self.stream_jobs.get_mut(&session) {
                    // Slots are stable, so `backup_idx` always names the
                    // path the probe actually walked. Acks for a consumed
                    // slot (the probe raced a failover) or the now-active
                    // slot carry no maintenance information — crediting
                    // them would mark the wrong path alive.
                    let slot = backup_idx + 1;
                    if slot < job.paths.len() && !job.consumed[slot] && slot != job.active {
                        job.backup_alive[backup_idx] = true;
                        job.maintenance_pending[backup_idx] = false;
                    }
                }
            }
            Msg::StreamFrame { session, path, functions, idx, dest, source, orig_dims, frame, at_ms } => {
                self.on_frame(session, path, functions, idx, dest, source, orig_dims, frame, at_ms, out)
            }
            Msg::FrameAck { session, seq, valid, digest, at_ms: _ } => {
                let now = out.now_ms();
                if let Some(job) = self.stream_jobs.get_mut(&session) {
                    // Credit each frame seq exactly once: a duplicated ack
                    // must not push `delivered` past `sent` or double-fold
                    // the delivery digest. Any ack — even a duplicate —
                    // still counts as path progress for the failover
                    // detector.
                    if seq > 0 && seq <= job.seq && job.acked.insert(seq) {
                        job.delivered += 1;
                        job.all_valid &= valid;
                        job.delivery_digest = job.delivery_digest.wrapping_add(digest);
                    }
                    job.last_progress_ms = now;
                }
            }
            Msg::Compose { .. } | Msg::StartStream { .. } | Msg::Halt => {
                debug_assert!(false, "driver commands are handled by the transport");
            }
        }
    }

    // --- discovery --------------------------------------------------

    fn route_dht(
        &mut self,
        query: u64,
        key: NodeId,
        origin: PeerId,
        hops: u32,
        at_ms: f64,
        out: &mut impl Outbox,
    ) {
        self.world.dht_hops.fetch_add(1, Ordering::Relaxed);
        match self.world.pastry.next_hop_from(self.me, key) {
            Some(Some(next)) => {
                self.send(next, Msg::DhtLookup { query, key, origin, hops: hops + 1, at_ms }, out);
            }
            _ => {
                // This peer is the key's root.
                self.world.record(TraceEvent::DhtLookup { hops });
                let metas = self.store.get(&key.0).cloned().unwrap_or_default();
                self.send(origin, Msg::DhtReply { query, metas, at_ms }, out);
            }
        }
    }

    /// Routes a metadata registration toward the key's root; the root
    /// stores the advertisement in its shard.
    fn route_register(
        &mut self,
        key: NodeId,
        replica: ReplicaMeta,
        qos: QosVector,
        res: ResourceVector,
        hops: u32,
        out: &mut impl Outbox,
    ) {
        self.world.dht_hops.fetch_add(1, Ordering::Relaxed);
        match self.world.pastry.next_hop_from(self.me, key) {
            Some(Some(next)) => {
                self.send(next, Msg::Register { key, replica, qos, res, hops: hops + 1 }, out);
            }
            _ => {
                let list = self.store.entry(key.0).or_default();
                if !list.contains(&replica) {
                    list.push(replica);
                    // Keep shard order deterministic regardless of the
                    // order registrations arrived over the wire.
                    list.sort_by_key(|m| m.peer);
                }
            }
        }
    }

    fn on_dht_reply(&mut self, query: u64, metas: Vec<ReplicaMeta>, at_ms: f64, out: &mut impl Outbox) {
        let request = query / 64;
        let pos = (query % 64) as usize;
        let Some(job) = self.compose_jobs.get_mut(&request) else { return };
        if pos >= job.replica_lists.len() {
            return;
        }
        if job.replica_lists[pos].is_none() {
            job.replica_lists[pos] = Some((metas, at_ms));
            if job.replica_lists.iter().all(Option::is_some) {
                self.start_probing(request, out);
            }
        }
    }

    // --- composition (source side) ----------------------------------

    /// Starts a composition request: parallel DHT lookups, one per chain
    /// function; query ids encode the chain position. Model time for this
    /// request starts at 0 here.
    pub fn compose(
        &mut self,
        request: u64,
        dest: PeerId,
        chain: Vec<MediaFunction>,
        budget: u32,
        out: &mut impl Outbox,
    ) {
        let n = chain.len();
        assert!(n < 63, "query encoding supports chains up to 62 functions");
        self.compose_jobs.insert(
            request,
            ComposeJob { dest, chain: chain.clone(), budget, replica_lists: vec![None; n], discovery_done_ms: None },
        );
        if n == 0 {
            // A zero-function chain sends no lookups, so no reply would
            // ever call `start_probing` — the job would wedge forever.
            // There is nothing to compose; fail it immediately.
            self.finish_failure(request, out);
            return;
        }
        for (pos, f) in chain.iter().enumerate() {
            let key = NodeId::new(function_key(f.name()));
            self.route_dht(request * 64 + pos as u64, key, self.me, 0, 0.0, out);
        }
    }

    fn start_probing(&mut self, request: u64, out: &mut impl Outbox) {
        let (dest, chain, lists, budget, failed, discovery_done) = {
            let job = self.compose_jobs.get_mut(&request).expect("caller holds the job");
            // Discovery finishes when the slowest reply lands (model time).
            let discovery_done = job
                .replica_lists
                .iter()
                .map(|l| l.as_ref().expect("all present").1)
                .fold(0.0f64, f64::max);
            job.discovery_done_ms = Some(discovery_done);
            let lists: Vec<Vec<ReplicaMeta>> = job
                .replica_lists
                .iter()
                .map(|l| l.as_ref().expect("all present").0.clone())
                .collect();
            let failed = lists.iter().any(Vec::is_empty);
            (job.dest, job.chain.clone(), lists, job.budget, failed, discovery_done)
        };
        if failed {
            self.finish_failure(request, out);
            return;
        }
        self.spawn_probes(
            Probe {
                request,
                source: self.me,
                dest,
                chain,
                replica_lists: lists,
                pos: 0,
                path: Vec::new(),
                budget,
                acc_qos: QosVector::zeros(2),
                at_ms: discovery_done,
            },
            out,
        );
    }

    fn finish_failure(&mut self, request: u64, out: &mut impl Outbox) {
        if let Some(job) = self.compose_jobs.remove(&request) {
            let discovery = job.discovery_done_ms.unwrap_or(0.0);
            out.setup_result(SetupResult {
                request,
                ok: false,
                dest: job.dest,
                path: Vec::new(),
                functions: job.chain,
                backups: Vec::new(),
                discovery_ms: discovery,
                probing_ms: 0.0,
                init_ms: 0.0,
                total_ms: discovery,
            });
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_compose_completion(
        &mut self,
        session: u64,
        path: Vec<PeerId>,
        functions: Vec<MediaFunction>,
        backups: Vec<Vec<PeerId>>,
        selected_ms: f64,
        at_ms: f64,
        out: &mut impl Outbox,
    ) {
        let Some(job) = self.compose_jobs.remove(&session) else { return };
        let discovery_end = job.discovery_done_ms.unwrap_or(0.0);
        let ok = !path.is_empty();
        out.setup_result(SetupResult {
            request: session,
            ok,
            dest: job.dest,
            path,
            functions,
            backups,
            discovery_ms: discovery_end,
            probing_ms: if ok { selected_ms - discovery_end } else { 0.0 },
            init_ms: if ok { at_ms - selected_ms } else { 0.0 },
            total_ms: if ok { at_ms } else { discovery_end },
        });
    }

    // --- probing (all peers) ----------------------------------------

    /// Fans a probe out to the next chain position's candidates, or ships
    /// a completed probe to the destination.
    fn spawn_probes(&mut self, probe: Probe, out: &mut impl Outbox) {
        let pos = probe.pos;
        if pos == probe.chain.len() {
            self.world.count_probe(probe.request, pos as u16, probe.budget);
            let dest = probe.dest;
            self.send(dest, Msg::Probe(probe), out);
            return;
        }
        let mut candidates: Vec<ReplicaMeta> = probe.replica_lists[pos]
            .iter()
            .copied()
            .filter(|m| !probe.path.contains(&m.peer) && m.peer != probe.dest)
            .collect();
        // Composite next-hop metric, runtime flavour: nearest first.
        let me = self.me;
        // total_cmp: a non-finite delay (impossible today, but NaN-safe by
        // construction) sorts last instead of panicking.
        candidates.sort_by(|a, b| {
            self.world
                .wan
                .base_ms(me, a.peer)
                .total_cmp(&self.world.wan.base_ms(me, b.peer))
                .then_with(|| a.peer.cmp(&b.peer))
        });
        let k = (probe.budget.min(self.world.cfg.quota) as usize).min(candidates.len());
        if k == 0 {
            return; // probe dies; the destination window handles silence
        }
        let child_budget = (probe.budget / k as u32).max(1);
        for meta in candidates.into_iter().take(k) {
            let mut child = probe.clone();
            child.pos = pos + 1;
            child.path.push(meta.peer);
            child.budget = child_budget;
            child.acc_qos.accumulate(&QosVector::delay_loss(meta.function.processing_ms(), 0.0));
            self.world.count_probe(probe.request, pos as u16, child_budget);
            self.send(meta.peer, Msg::Probe(child), out);
        }
    }

    fn on_probe(&mut self, probe: Probe, out: &mut impl Outbox) {
        if probe.pos == probe.chain.len() && probe.dest == self.me {
            if self.done_requests.contains(&probe.request) {
                return; // stragglers after selection
            }
            let request = probe.request;
            let window = self.world.cfg.collect_window_ms;
            let job = self.dest_jobs.entry(request).or_insert_with(|| DestJob {
                source: probe.source,
                chain: probe.chain.clone(),
                probes: Vec::new(),
                timer_armed: false,
            });
            job.probes.push((probe.at_ms, probe));
            if !job.timer_armed {
                job.timer_armed = true;
                // Selection content is a pure function of the *eligible*
                // probes (model arrival within half a window of the
                // earliest — see `on_collect`), so the wall deadline is
                // free to fire late: it only has to fire after every
                // eligible probe has physically arrived. Arm it with
                // slack — under hundreds of concurrent composes,
                // transport queueing pushes wall arrivals well past the
                // scaled model timestamp, and a tight deadline would
                // make the collected set scheduling-dependent.
                out.timer(Msg::TimerCollect { request }, window * self.world.cfg.collect_deadline_slack);
            }
            return;
        }
        self.spawn_probes(probe, out);
    }

    fn on_collect(&mut self, request: u64, out: &mut impl Outbox) {
        let Some(job) = self.dest_jobs.remove(&request) else { return };
        self.done_requests.insert(request);
        if job.probes.is_empty() {
            self.send(
                job.source,
                Msg::SetupAck {
                    session: request,
                    path: Vec::new(),
                    functions: job.chain,
                    idx: usize::MAX,
                    source: job.source,
                    backups: Vec::new(),
                    selected_ms: 0.0,
                    at_ms: 0.0,
                },
                out,
            );
            return;
        }
        // Selection is a pure function of the collected probes' model
        // arrival times: keep only probes within half the collect window
        // of the earliest (probes past that margin may or may not have
        // crossed the wall deadline, depending on transport noise — so
        // they never count), then pick the earliest, tie-broken by path.
        let mut probes = job.probes;
        let min_at = probes.iter().map(|(at, _)| *at).fold(f64::INFINITY, f64::min);
        let window = self.world.cfg.collect_window_ms;
        probes.retain(|(at, _)| *at <= min_at + window * 0.5);
        probes.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.path.cmp(&b.1.path)));
        let best = probes[0].1.clone();
        let mut backups: Vec<Vec<PeerId>> = Vec::new();
        for (_, p) in probes.iter().skip(1) {
            if p.path != best.path && !backups.contains(&p.path) {
                backups.push(p.path.clone());
            }
        }
        // The selection instant, in model time: the full collect window
        // after the first probe landed.
        let selected_ms = min_at + window;
        if best.path.is_empty() {
            // A zero-function probe (only constructible over the wire —
            // `compose` rejects empty chains) selects an empty path:
            // nothing to initialize, so complete straight back to the
            // source instead of indexing path[len-1] of nothing.
            self.send(
                best.source,
                Msg::SetupAck {
                    session: request,
                    path: Vec::new(),
                    functions: best.chain,
                    idx: usize::MAX,
                    source: best.source,
                    backups: Vec::new(),
                    selected_ms,
                    at_ms: selected_ms,
                },
                out,
            );
            return;
        }
        let last = best.path.len() - 1;
        let to = best.path[last];
        self.send(
            to,
            Msg::SetupAck {
                session: request,
                path: best.path,
                functions: best.chain,
                idx: last,
                source: best.source,
                backups,
                selected_ms,
                at_ms: selected_ms,
            },
            out,
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn on_setup_ack(
        &mut self,
        session: u64,
        path: Vec<PeerId>,
        functions: Vec<MediaFunction>,
        idx: usize,
        source: PeerId,
        backups: Vec<Vec<PeerId>>,
        selected_ms: f64,
        at_ms: f64,
        out: &mut impl Outbox,
    ) {
        // Initialize the local component for this session (soft state made
        // firm), then keep walking toward the head of the path.
        let (to, next_idx) = if idx == 0 { (source, usize::MAX) } else { (path[idx - 1], idx - 1) };
        self.send(
            to,
            Msg::SetupAck { session, path, functions, idx: next_idx, source, backups, selected_ms, at_ms },
            out,
        );
    }

    // --- streaming ---------------------------------------------------

    /// Starts a streaming session over an established composition.
    #[allow(clippy::too_many_arguments)]
    pub fn start_stream(
        &mut self,
        session: u64,
        path: Vec<PeerId>,
        functions: Vec<MediaFunction>,
        backups: Vec<Vec<PeerId>>,
        dest: PeerId,
        frames: u64,
        interval_ms: f64,
        dims: (usize, usize),
        out: &mut impl Outbox,
    ) {
        let mut paths = vec![path];
        paths.extend(backups);
        let n_backups = paths.len() - 1;
        self.stream_jobs.insert(
            session,
            StreamJob {
                consumed: vec![false; paths.len()],
                paths,
                active: 0,
                backup_alive: vec![true; n_backups],
                maintenance_pending: vec![false; n_backups],
                maintenance_messages: 0,
                functions,
                dest,
                remaining: frames,
                interval_ms,
                dims,
                seq: 0,
                delivered: 0,
                acked: HashSet::new(),
                all_valid: true,
                delivery_digest: 0,
                last_progress_ms: out.now_ms(),
                switches: 0,
                phase: StreamPhase::Sending,
            },
        );
        out.timer(Msg::TimerStream { session }, 0.0);
        if self.world.cfg.maintenance_period_ms > 0.0 {
            out.timer(Msg::TimerMaintenance { session }, self.world.cfg.maintenance_period_ms);
        }
    }

    fn on_stream_timer(&mut self, session: u64, out: &mut impl Outbox) {
        let Some(job) = self.stream_jobs.get_mut(&session) else { return };
        match job.phase {
            StreamPhase::Draining => {
                let job = self.stream_jobs.remove(&session).expect("present");
                out.stream_report(StreamReport {
                    session,
                    sent: job.seq,
                    delivered: job.delivered,
                    all_valid: job.all_valid,
                    switches: job.switches,
                    maintenance_probes: job.maintenance_messages,
                    final_path: job.paths.get(job.active).cloned().unwrap_or_default(),
                    delivery_digest: job.delivery_digest,
                });
            }
            StreamPhase::Sending => {
                // Failover: no delivery ack for longer than the timeout
                // while a backup exists. The baseline resets on switch so
                // one broken path triggers one switch, not a cascade.
                let now = out.now_ms();
                let candidates: Vec<usize> = (0..job.paths.len())
                    .filter(|&s| s != job.active && !job.consumed[s])
                    .collect();
                if job.seq > 0
                    && now - job.last_progress_ms > self.world.cfg.failover_timeout_ms
                    && !candidates.is_empty()
                {
                    // Prefer the first backup slot the maintenance probes
                    // still believe alive; fall back to blind preference
                    // order otherwise. Slots are stable, so
                    // `backup_alive[s-1]` always describes `paths[s]`.
                    let choice = candidates
                        .iter()
                        .copied()
                        .find(|&s| s >= 1 && job.backup_alive[s - 1])
                        .unwrap_or(candidates[0]);
                    let from = job.paths[job.active].first().map(|p| p.raw()).unwrap_or(0);
                    let latency_ms = now - job.last_progress_ms;
                    job.consumed[job.active] = true;
                    job.active = choice;
                    job.switches += 1;
                    job.last_progress_ms = now;
                    let to = job.paths[job.active].first().map(|p| p.raw()).unwrap_or(0);
                    self.world.record(TraceEvent::BackupSwitch { session, from, to, latency_ms });
                }
                if job.remaining == 0 {
                    job.phase = StreamPhase::Draining;
                    let drain = job.interval_ms * 4.0 + 800.0;
                    out.timer(Msg::TimerStream { session }, drain);
                    return;
                }
                job.remaining -= 1;
                job.seq += 1;
                let seq = job.seq;
                let frame = Frame::synthetic(job.dims.0, job.dims.1, seq);
                let path = job.paths[job.active].clone();
                let functions = job.functions.clone();
                let dest = job.dest;
                let dims = job.dims;
                let interval = job.interval_ms;
                let first = path[0];
                let me = self.me;
                self.send(
                    first,
                    Msg::StreamFrame {
                        session,
                        path,
                        functions,
                        idx: 0,
                        dest,
                        source: me,
                        orig_dims: dims,
                        frame,
                        at_ms: 0.0,
                    },
                    out,
                );
                out.timer(Msg::TimerStream { session }, interval);
            }
        }
    }

    /// One maintenance round at the streaming source: probe every backup
    /// path; a backup whose previous probe never returned is marked dead.
    fn on_maintenance_timer(&mut self, session: u64, out: &mut impl Outbox) {
        let period = self.world.cfg.maintenance_period_ms;
        let Some(job) = self.stream_jobs.get_mut(&session) else { return };
        if matches!(job.phase, StreamPhase::Draining) {
            return; // stream ending: stop maintaining
        }
        let me = self.me;
        let mut sends: Vec<(PeerId, Msg)> = Vec::new();
        for bi in 0..job.backup_alive.len() {
            let slot = bi + 1;
            // Probe only slots still held in reserve: the active slot is
            // monitored by its own frame acks, consumed slots are gone.
            if slot == job.active || job.consumed[slot] {
                continue;
            }
            if job.maintenance_pending[bi] {
                // Last round's probe never came back: declare dead until a
                // late ack revives it.
                job.backup_alive[bi] = false;
            }
            job.maintenance_pending[bi] = true;
            job.maintenance_messages += 1;
            let path = &job.paths[slot];
            if let Some(&first) = path.first() {
                sends.push((
                    first,
                    Msg::PathProbe { session, path: path.clone(), idx: 0, origin: me, backup_idx: bi },
                ));
            }
        }
        for (to, msg) in sends {
            self.send(to, msg, out);
        }
        out.timer(Msg::TimerMaintenance { session }, period);
    }

    /// Forwards a maintenance probe along a backup path; the last hop
    /// returns the ack straight to the origin.
    fn on_path_probe(
        &mut self,
        session: u64,
        path: Vec<PeerId>,
        idx: usize,
        origin: PeerId,
        backup_idx: usize,
        out: &mut impl Outbox,
    ) {
        let next = idx + 1;
        if next >= path.len() {
            self.send(origin, Msg::PathProbeAck { session, backup_idx }, out);
        } else {
            let to = path[next];
            self.send(to, Msg::PathProbe { session, path, idx: next, origin, backup_idx }, out);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_frame(
        &mut self,
        session: u64,
        path: Vec<PeerId>,
        functions: Vec<MediaFunction>,
        idx: usize,
        dest: PeerId,
        source: PeerId,
        orig_dims: (usize, usize),
        frame: Frame,
        at_ms: f64,
        out: &mut impl Outbox,
    ) {
        if idx >= path.len() {
            // Delivery: verify against the expected transform chain.
            let expected = functions
                .iter()
                .fold(Frame::synthetic(orig_dims.0, orig_dims.1, frame.seq), |f, func| func.apply(&f));
            let valid = expected == frame;
            let seq = frame.seq;
            let digest = frame.digest();
            self.send(source, Msg::FrameAck { session, seq, valid, digest, at_ms }, out);
            return;
        }
        // Apply this hop's transform and forward. `functions[idx]` is the
        // function of `path[idx]`; backup paths host the same function
        // sequence by construction.
        let out_frame = functions[idx].apply(&frame);
        let next_idx = idx + 1;
        let to = if next_idx >= path.len() { dest } else { path[next_idx] };
        self.send(
            to,
            Msg::StreamFrame {
                session,
                path,
                functions,
                idx: next_idx,
                dest,
                source,
                orig_dims,
                frame: out_frame,
                at_ms,
            },
            out,
        );
    }

    // --- model-checker seams ------------------------------------------

    /// Sessions this peer is currently streaming (sorted).
    pub fn stream_sessions(&self) -> Vec<u64> {
        let mut s: Vec<u64> = self.stream_jobs.keys().copied().collect();
        s.sort_unstable();
        s
    }

    /// Snapshot of one streaming session's failover state, or `None` when
    /// this peer isn't sourcing `session`.
    pub fn stream_snapshot(&self, session: u64) -> Option<StreamSnapshot> {
        self.stream_jobs.get(&session).map(|job| StreamSnapshot {
            paths: job.paths.clone(),
            active: job.active,
            consumed: job.consumed.clone(),
            backup_alive: job.backup_alive.clone(),
            switches: job.switches,
            sent: job.seq,
            delivered: job.delivered,
            draining: matches!(job.phase, StreamPhase::Draining),
        })
    }

    /// Structural invariants over this peer's own state, checked by the
    /// model checker after every transition. These are safety properties
    /// no interleaving — reorder, drop, duplication, crash — may break.
    pub fn local_invariants(&self) -> Result<(), String> {
        for (&session, job) in &self.stream_jobs {
            let slots = job.paths.len();
            if slots == 0 {
                return Err(format!("session {session}: stream job with zero paths"));
            }
            if job.active >= slots {
                return Err(format!("session {session}: active slot {} of {slots}", job.active));
            }
            if job.consumed.len() != slots
                || job.backup_alive.len() != slots - 1
                || job.maintenance_pending.len() != slots - 1
            {
                return Err(format!("session {session}: slot bookkeeping out of sync"));
            }
            if job.consumed[job.active] {
                return Err(format!("session {session}: serving a consumed slot"));
            }
            if job.delivered > job.seq {
                return Err(format!(
                    "session {session}: delivered {} exceeds sent {}",
                    job.delivered, job.seq
                ));
            }
            if job.acked.len() as u64 != job.delivered {
                return Err(format!(
                    "session {session}: {} acked seqs vs delivered {}",
                    job.acked.len(),
                    job.delivered
                ));
            }
            if let Some(&bad) = job.acked.iter().find(|&&s| s == 0 || s > job.seq) {
                return Err(format!("session {session}: ack for unsent frame seq {bad}"));
            }
        }
        Ok(())
    }

    /// Canonical digest of this peer's complete protocol state. Every
    /// collection folds in sorted order, f64s fold as bits — stable
    /// across runs, platforms, and thread counts. The model checker's
    /// state-dedup key is built from these.
    pub fn state_digest(&self) -> u64 {
        let mut h = mix(0x5049_4545_524e_4f44, self.me.raw());
        let mut keys: Vec<u128> = self.store.keys().copied().collect();
        keys.sort_unstable();
        for k in keys {
            h = mix(h, k as u64);
            h = mix(h, (k >> 64) as u64);
            for m in &self.store[&k] {
                h = mix(h, m.peer.raw());
                h = mix(h, m.function.code() as u64);
            }
        }
        let mut reqs: Vec<u64> = self.compose_jobs.keys().copied().collect();
        reqs.sort_unstable();
        for r in reqs {
            let job = &self.compose_jobs[&r];
            h = mix(h, r);
            h = mix(h, job.dest.raw());
            for f in &job.chain {
                h = mix(h, f.code() as u64);
            }
            h = mix(h, job.budget as u64);
            for l in &job.replica_lists {
                match l {
                    None => h = mix(h, 0),
                    Some((metas, at)) => {
                        h = mix(h, 1 + metas.len() as u64);
                        for m in metas {
                            h = mix(h, m.peer.raw());
                        }
                        h = mix(h, at.to_bits());
                    }
                }
            }
            h = mix(h, job.discovery_done_ms.map(f64::to_bits).unwrap_or(1));
        }
        let mut reqs: Vec<u64> = self.dest_jobs.keys().copied().collect();
        reqs.sort_unstable();
        for r in reqs {
            let job = &self.dest_jobs[&r];
            h = mix(h, r);
            h = mix(h, job.source.raw());
            for f in &job.chain {
                h = mix(h, f.code() as u64);
            }
            h = mix(h, job.timer_armed as u64);
            for (at, p) in &job.probes {
                h = mix(h, at.to_bits());
                h = probe_digest(h, p);
            }
        }
        let mut done: Vec<u64> = self.done_requests.iter().copied().collect();
        done.sort_unstable();
        for r in done {
            h = mix(h, r);
        }
        let mut sessions: Vec<u64> = self.stream_jobs.keys().copied().collect();
        sessions.sort_unstable();
        for s in sessions {
            let job = &self.stream_jobs[&s];
            h = mix(h, s);
            for p in &job.paths {
                h = mix(h, p.len() as u64);
                for peer in p {
                    h = mix(h, peer.raw());
                }
            }
            h = mix(h, job.active as u64);
            for &b in &job.consumed {
                h = mix(h, b as u64);
            }
            for &b in &job.backup_alive {
                h = mix(h, b as u64);
            }
            for &b in &job.maintenance_pending {
                h = mix(h, b as u64);
            }
            h = mix(h, job.maintenance_messages);
            for f in &job.functions {
                h = mix(h, f.code() as u64);
            }
            h = mix(h, job.dest.raw());
            h = mix(h, job.remaining);
            h = mix(h, job.interval_ms.to_bits());
            h = mix(h, job.dims.0 as u64);
            h = mix(h, job.dims.1 as u64);
            h = mix(h, job.seq);
            h = mix(h, job.delivered);
            let mut acked: Vec<u64> = job.acked.iter().copied().collect();
            acked.sort_unstable();
            for a in acked {
                h = mix(h, a);
            }
            h = mix(h, job.all_valid as u64);
            h = mix(h, job.delivery_digest);
            h = mix(h, job.last_progress_ms.to_bits());
            h = mix(h, job.switches as u64);
            h = mix(h, matches!(job.phase, StreamPhase::Draining) as u64);
        }
        h
    }
}

/// Folds a probe's full content into a digest.
pub(crate) fn probe_digest(mut h: u64, p: &Probe) -> u64 {
    h = mix(h, p.request);
    h = mix(h, p.source.raw());
    h = mix(h, p.dest.raw());
    for f in &p.chain {
        h = mix(h, f.code() as u64);
    }
    for l in &p.replica_lists {
        h = mix(h, l.len() as u64);
        for m in l {
            h = mix(h, m.peer.raw());
            h = mix(h, m.function.code() as u64);
        }
    }
    h = mix(h, p.pos as u64);
    for peer in &p.path {
        h = mix(h, peer.raw());
    }
    h = mix(h, p.budget as u64);
    for &q in p.acc_qos.values() {
        h = mix(h, q.to_bits());
    }
    mix(h, p.at_ms.to_bits())
}
