//! The threaded peer cluster: one actor thread per peer, one network
//! thread injecting WAN delays.
//!
//! Every protocol step of the prototype travels through real channels:
//! DHT lookups route hop by hop along Pastry next-hops, BCP probes walk
//! candidate component chains, the destination collects probes for a
//! window and acknowledges the selected composition back along the
//! reversed path, and media frames stream through the composed components
//! (each applying its transform). Peer failure is modeled by the network
//! dropping all traffic to the dead peer; streaming sources detect the
//! resulting ack gap and fail over to a backup path — the proactive
//! recovery data path of §5, exercised with real threads.
//!
//! Wall-clock time is compressed by `time_scale` (wall = model × scale);
//! all reported times are model milliseconds.

use crate::media::{Frame, MediaFunction};
use crate::msg::{Msg, Probe, ReplicaMeta};
use crate::wan::WanModel;
use spidernet_dht::{NodeId, PastryNetwork};
use spidernet_sim::trace::{TraceBuffer, TraceEvent};
use spidernet_util::hash::function_key;
use spidernet_util::id::PeerId;
use spidernet_util::rng::{rng_for, Rng};
use std::collections::{BTreeMap, BinaryHeap, HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Message-level fault injection applied by the network thread.
///
/// Only wire traffic ([`Msg::droppable`]) is affected; driver commands
/// and self-timers always deliver. Each droppable message is considered
/// exactly once: survivors of the drop roll are re-queued with their
/// extra jitter and marked so they are not rolled again.
#[derive(Clone, Copy, Debug, Default)]
pub struct NetFaultConfig {
    /// Probability a droppable message is silently lost.
    pub drop_prob: f64,
    /// Upper bound of uniformly-sampled extra delivery delay, model ms.
    pub extra_delay_ms: f64,
}

impl NetFaultConfig {
    /// True when either knob is set.
    pub fn is_active(&self) -> bool {
        self.drop_prob > 0.0 || self.extra_delay_ms > 0.0
    }
}

/// Cluster construction parameters.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of peers (paper: 102 PlanetLab hosts).
    pub peers: usize,
    /// WAN jitter bound (multiplicative).
    pub jitter: f64,
    /// Master seed.
    pub seed: u64,
    /// Wall seconds per model second (0.02 = 50× compression).
    pub time_scale: f64,
    /// Destination-side probe collection window, model ms.
    pub collect_window_ms: f64,
    /// Per-hop probe fan-out quota.
    pub quota: u32,
    /// A streaming source fails over when no delivery ack has arrived for
    /// this long (model ms). Must exceed the path round-trip time, or
    /// frames legitimately in flight look like loss.
    pub failover_timeout_ms: f64,
    /// Period of backup-path maintenance probing, model ms (0 disables).
    pub maintenance_period_ms: f64,
    /// Message-level loss and delay injection (off by default).
    pub faults: NetFaultConfig,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            peers: 102,
            jitter: 0.3,
            seed: 0,
            time_scale: 0.02,
            collect_window_ms: 200.0,
            quota: 3,
            failover_timeout_ms: 400.0,
            maintenance_period_ms: 120.0,
            faults: NetFaultConfig::default(),
        }
    }
}

/// Result of one session setup (all times in model ms).
#[derive(Clone, Debug)]
pub struct SetupResult {
    /// Request id (doubles as the session id).
    pub request: u64,
    /// Whether a composition was established.
    pub ok: bool,
    /// The application receiver.
    pub dest: PeerId,
    /// Selected component path (composition order).
    pub path: Vec<PeerId>,
    /// Functions along the path.
    pub functions: Vec<MediaFunction>,
    /// Alternative complete paths found by probing (failover backups).
    pub backups: Vec<Vec<PeerId>>,
    /// Decentralized service discovery time.
    pub discovery_ms: f64,
    /// Probing + destination selection time.
    pub probing_ms: f64,
    /// Session initialization (reverse-ack) time.
    pub init_ms: f64,
    /// End-to-end setup time.
    pub total_ms: f64,
}

/// Final report of one streaming session.
#[derive(Clone, Debug)]
pub struct StreamReport {
    /// Session id.
    pub session: u64,
    /// Frames emitted by the source.
    pub sent: u64,
    /// Frames acknowledged by the destination.
    pub delivered: u64,
    /// Whether every delivered frame matched the expected transform chain.
    pub all_valid: bool,
    /// Path failovers performed.
    pub switches: u32,
    /// Low-rate maintenance probes sent along backup paths.
    pub maintenance_probes: u64,
    /// The path in use when the stream ended.
    pub final_path: Vec<PeerId>,
}

// ---------------------------------------------------------------------
// Network thread: a delay queue delivering messages at their due time.
// ---------------------------------------------------------------------

struct QueuedMsg {
    due: Instant,
    seq: u64,
    to: PeerId,
    msg: Msg,
    /// Already went through fault injection (re-queued with extra jitter);
    /// never rolled twice.
    delayed: bool,
}

impl PartialEq for QueuedMsg {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl Eq for QueuedMsg {}
impl Ord for QueuedMsg {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.due.cmp(&self.due).then_with(|| other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for QueuedMsg {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Default)]
struct NetQueue {
    heap: BinaryHeap<QueuedMsg>,
    seq: u64,
    shutdown: bool,
}

struct NetInner {
    queue: Mutex<NetQueue>,
    cond: Condvar,
}

/// Sender handle into the delay-queue network.
#[derive(Clone)]
struct Net {
    inner: Arc<NetInner>,
    scale: f64,
}

impl Net {
    /// Enqueues `msg` for `to`, delivered after `model_ms` of model time.
    fn send(&self, to: PeerId, msg: Msg, model_ms: f64) {
        let wall = Duration::from_secs_f64((model_ms * self.scale / 1_000.0).max(0.0));
        let mut q = self.inner.queue.lock().unwrap();
        let seq = q.seq;
        q.seq += 1;
        q.heap.push(QueuedMsg { due: Instant::now() + wall, seq, to, msg, delayed: false });
        self.inner.cond.notify_one();
    }

    fn shutdown(&self) {
        self.inner.queue.lock().unwrap().shutdown = true;
        self.inner.cond.notify_one();
    }
}

fn network_thread(inner: Arc<NetInner>, peers: Vec<Sender<Msg>>, shared: Arc<Shared>) {
    let faults = shared.cfg.faults;
    let mut rng = rng_for(shared.cfg.seed, "net-faults");
    loop {
        let mut q = inner.queue.lock().unwrap();
        if q.shutdown {
            return;
        }
        let now = Instant::now();
        let wait = match q.heap.peek() {
            Some(e) if e.due <= now => {
                let e = q.heap.pop().expect("peeked");
                drop(q);
                if shared.dead[e.to.index()].load(Ordering::Relaxed) {
                    continue;
                }
                if faults.is_active() && !e.delayed && e.msg.droppable() {
                    if faults.drop_prob > 0.0 && rng.gen::<f64>() < faults.drop_prob {
                        shared.msgs_dropped.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    if faults.extra_delay_ms > 0.0 {
                        // Re-queue once with the extra jitter, marked so the
                        // message is not rolled again on redelivery.
                        let extra = rng.gen::<f64>() * faults.extra_delay_ms;
                        let wall =
                            Duration::from_secs_f64(extra * shared.scale / 1_000.0);
                        let mut q = inner.queue.lock().unwrap();
                        let seq = q.seq;
                        q.seq += 1;
                        q.heap.push(QueuedMsg {
                            due: Instant::now() + wall,
                            seq,
                            to: e.to,
                            msg: e.msg,
                            delayed: true,
                        });
                        inner.cond.notify_one();
                        continue;
                    }
                }
                // Channels are unbounded; send only fails at shutdown.
                let _ = peers[e.to.index()].send(e.msg);
                continue;
            }
            Some(e) => e.due - now,
            None => Duration::from_millis(50),
        };
        let _ = inner.cond.wait_timeout(q, wait).unwrap();
    }
}

// ---------------------------------------------------------------------
// Shared immutable state.
// ---------------------------------------------------------------------

struct Shared {
    wan: WanModel,
    pastry: PastryNetwork,
    dead: Arc<Vec<AtomicBool>>,
    epoch: Instant,
    scale: f64,
    probes_sent: AtomicU64,
    dht_hops: AtomicU64,
    /// Droppable messages lost to fault injection.
    msgs_dropped: AtomicU64,
    /// Cluster-wide event ring. Actor threads record through a mutex —
    /// protocol events are orders of magnitude rarer than frames, and with
    /// the `trace` feature off the buffer is a ZST no-op anyway.
    trace: Mutex<TraceBuffer>,
    /// Probe transmissions attributed per composition session.
    session_probes: Mutex<BTreeMap<u64, u64>>,
    cfg: ClusterConfig,
    functions: Vec<MediaFunction>,
}

impl Shared {
    /// Milliseconds of *model* time since the cluster epoch.
    fn now_ms(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64() * 1_000.0 / self.scale
    }

    fn record(&self, ev: TraceEvent) {
        self.trace.lock().unwrap().record(ev);
    }

    fn count_probe(&self, session: u64, depth: u16, budget: u32) {
        self.probes_sent.fetch_add(1, Ordering::Relaxed);
        *self.session_probes.lock().unwrap().entry(session).or_insert(0) += 1;
        self.record(TraceEvent::ProbeSpawned { session, depth, budget });
    }
}

// ---------------------------------------------------------------------
// Per-peer actor.
// ---------------------------------------------------------------------

struct ComposeJob {
    dest: PeerId,
    chain: Vec<MediaFunction>,
    budget: u32,
    reply: SyncSender<SetupResult>,
    replica_lists: Vec<Option<Vec<ReplicaMeta>>>,
    t0_ms: f64,
    discovery_done_ms: Option<f64>,
}

struct DestJob {
    source: PeerId,
    chain: Vec<MediaFunction>,
    probes: Vec<(f64, Probe)>,
    timer_armed: bool,
}

enum StreamPhase {
    Sending,
    Draining,
}

struct StreamJob {
    /// paths[0] is the active path; the rest are backups in preference
    /// order. `backup_alive[i]` mirrors paths[i+1]'s last maintenance
    /// verdict (true until proven dead).
    paths: Vec<Vec<PeerId>>,
    backup_alive: Vec<bool>,
    /// Maintenance round counter; an ack for round r-1 arriving late still
    /// counts (liveness, not freshness).
    maintenance_pending: Vec<bool>,
    maintenance_messages: u64,
    functions: Vec<MediaFunction>,
    dest: PeerId,
    remaining: u64,
    interval_ms: f64,
    dims: (usize, usize),
    reply: SyncSender<StreamReport>,
    seq: u64,
    delivered: u64,
    all_valid: bool,
    /// Model ms of the last sign of progress (stream start, delivery ack,
    /// or failover) — the failover detector's baseline.
    last_progress_ms: f64,
    switches: u32,
    phase: StreamPhase,
}

struct PeerActor {
    me: PeerId,
    inbox: Receiver<Msg>,
    net: Net,
    shared: Arc<Shared>,
    store: HashMap<u128, Vec<ReplicaMeta>>,
    rng: Rng,
    compose_jobs: HashMap<u64, ComposeJob>,
    dest_jobs: HashMap<u64, DestJob>,
    done_requests: HashSet<u64>,
    stream_jobs: HashMap<u64, StreamJob>,
}

impl PeerActor {
    fn send(&mut self, to: PeerId, msg: Msg) {
        let d = self.shared.wan.sample_ms(self.me, to, &mut self.rng);
        self.net.send(to, msg, d);
    }

    fn run(mut self) {
        while let Ok(msg) = self.inbox.recv() {
            match msg {
                Msg::Halt => return,
                Msg::Compose { request, dest, chain, budget, reply } => {
                    self.on_compose(request, dest, chain, budget, reply)
                }
                Msg::DhtLookup { query, key, origin, hops } => {
                    self.route_dht(query, key, origin, hops)
                }
                Msg::DhtReply { query, metas } => self.on_dht_reply(query, metas),
                Msg::Probe(p) => self.on_probe(p),
                Msg::TimerCollect { request } => self.on_collect(request),
                Msg::SetupAck { session, path, functions, idx, source, backups, selected_ms } => {
                    if idx == usize::MAX {
                        self.on_compose_completion(session, path, functions, backups, selected_ms)
                    } else {
                        self.on_setup_ack(session, path, functions, idx, source, backups, selected_ms)
                    }
                }
                Msg::StartStream {
                    session,
                    path,
                    functions,
                    backups,
                    dest,
                    frames,
                    interval_ms,
                    dims,
                    reply,
                } => {
                    let mut paths = vec![path];
                    paths.extend(backups);
                    let n_backups = paths.len() - 1;
                    self.stream_jobs.insert(
                        session,
                        StreamJob {
                            paths,
                            backup_alive: vec![true; n_backups],
                            maintenance_pending: vec![false; n_backups],
                            maintenance_messages: 0,
                            functions,
                            dest,
                            remaining: frames,
                            interval_ms,
                            dims,
                            reply,
                            seq: 0,
                            delivered: 0,
                            all_valid: true,
                            last_progress_ms: self.shared.now_ms(),
                            switches: 0,
                            phase: StreamPhase::Sending,
                        },
                    );
                    self.net.send(self.me, Msg::TimerStream { session }, 0.0);
                    if self.shared.cfg.maintenance_period_ms > 0.0 {
                        self.net.send(
                            self.me,
                            Msg::TimerMaintenance { session },
                            self.shared.cfg.maintenance_period_ms,
                        );
                    }
                }
                Msg::TimerStream { session } => self.on_stream_timer(session),
                Msg::TimerMaintenance { session } => self.on_maintenance_timer(session),
                Msg::PathProbe { session, path, idx, origin, backup_idx } => {
                    self.on_path_probe(session, path, idx, origin, backup_idx)
                }
                Msg::PathProbeAck { session, backup_idx } => {
                    if let Some(job) = self.stream_jobs.get_mut(&session) {
                        if let Some(alive) = job.backup_alive.get_mut(backup_idx) {
                            *alive = true;
                        }
                        if let Some(p) = job.maintenance_pending.get_mut(backup_idx) {
                            *p = false;
                        }
                    }
                }
                Msg::StreamFrame { session, path, functions, idx, dest, source, orig_dims, frame } => {
                    self.on_frame(session, path, functions, idx, dest, source, orig_dims, frame)
                }
                Msg::FrameAck { session, seq: _, valid } => {
                    let now = self.shared.now_ms();
                    if let Some(job) = self.stream_jobs.get_mut(&session) {
                        job.delivered += 1;
                        job.all_valid &= valid;
                        job.last_progress_ms = now;
                    }
                }
            }
        }
    }

    // --- discovery --------------------------------------------------

    fn route_dht(&mut self, query: u64, key: NodeId, origin: PeerId, hops: u32) {
        self.shared.dht_hops.fetch_add(1, Ordering::Relaxed);
        match self.shared.pastry.next_hop_from(self.me, key) {
            Some(Some(next)) => {
                self.send(next, Msg::DhtLookup { query, key, origin, hops: hops + 1 });
            }
            _ => {
                // This peer is the key's root.
                self.shared.record(TraceEvent::DhtLookup { hops });
                let metas = self.store.get(&key.0).cloned().unwrap_or_default();
                self.send(origin, Msg::DhtReply { query, metas });
            }
        }
    }

    fn on_dht_reply(&mut self, query: u64, metas: Vec<ReplicaMeta>) {
        let request = query / 64;
        let pos = (query % 64) as usize;
        let Some(job) = self.compose_jobs.get_mut(&request) else { return };
        if pos >= job.replica_lists.len() {
            return;
        }
        if job.replica_lists[pos].is_none() {
            job.replica_lists[pos] = Some(metas);
            if job.replica_lists.iter().all(Option::is_some) {
                self.start_probing(request);
            }
        }
    }

    // --- composition (source side) ----------------------------------

    fn on_compose(
        &mut self,
        request: u64,
        dest: PeerId,
        chain: Vec<MediaFunction>,
        budget: u32,
        reply: SyncSender<SetupResult>,
    ) {
        let t0_ms = self.shared.now_ms();
        let n = chain.len();
        assert!(n < 63, "query encoding supports chains up to 62 functions");
        self.compose_jobs.insert(
            request,
            ComposeJob {
                dest,
                chain: chain.clone(),
                budget,
                reply,
                replica_lists: vec![None; n],
                t0_ms,
                discovery_done_ms: None,
            },
        );
        // Parallel DHT lookups, one per function; query ids encode the
        // chain position. Routing starts at this peer.
        for (pos, f) in chain.iter().enumerate() {
            let key = NodeId::new(function_key(f.name()));
            self.route_dht(request * 64 + pos as u64, key, self.me, 0);
        }
    }

    fn start_probing(&mut self, request: u64) {
        let now = self.shared.now_ms();
        let (dest, chain, lists, budget, failed) = {
            let job = self.compose_jobs.get_mut(&request).expect("caller holds the job");
            job.discovery_done_ms = Some(now);
            let lists: Vec<Vec<ReplicaMeta>> =
                job.replica_lists.iter().map(|l| l.clone().expect("all present")).collect();
            let failed = lists.iter().any(Vec::is_empty);
            (job.dest, job.chain.clone(), lists, job.budget, failed)
        };
        if failed {
            self.finish_failure(request);
            return;
        }
        self.spawn_probes(Probe {
            request,
            source: self.me,
            dest,
            chain,
            replica_lists: lists,
            pos: 0,
            path: Vec::new(),
            budget,
            started_ms: now,
        });
    }

    fn finish_failure(&mut self, request: u64) {
        if let Some(job) = self.compose_jobs.remove(&request) {
            let now = self.shared.now_ms();
            let _ = job.reply.send(SetupResult {
                request,
                ok: false,
                dest: job.dest,
                path: Vec::new(),
                functions: job.chain,
                backups: Vec::new(),
                discovery_ms: job.discovery_done_ms.unwrap_or(now) - job.t0_ms,
                probing_ms: 0.0,
                init_ms: 0.0,
                total_ms: now - job.t0_ms,
            });
        }
    }

    fn on_compose_completion(
        &mut self,
        session: u64,
        path: Vec<PeerId>,
        functions: Vec<MediaFunction>,
        backups: Vec<Vec<PeerId>>,
        selected_ms: f64,
    ) {
        let Some(job) = self.compose_jobs.remove(&session) else { return };
        let now = self.shared.now_ms();
        let discovery_end = job.discovery_done_ms.unwrap_or(job.t0_ms);
        let ok = !path.is_empty();
        let _ = job.reply.send(SetupResult {
            request: session,
            ok,
            dest: job.dest,
            path,
            functions,
            backups,
            discovery_ms: discovery_end - job.t0_ms,
            probing_ms: selected_ms - discovery_end,
            init_ms: if ok { now - selected_ms } else { 0.0 },
            total_ms: now - job.t0_ms,
        });
    }

    // --- probing (all peers) ----------------------------------------

    /// Fans a probe out to the next chain position's candidates, or ships
    /// a completed probe to the destination.
    fn spawn_probes(&mut self, probe: Probe) {
        let pos = probe.pos;
        if pos == probe.chain.len() {
            self.shared.count_probe(probe.request, pos as u16, probe.budget);
            let dest = probe.dest;
            self.send(dest, Msg::Probe(probe));
            return;
        }
        let mut candidates: Vec<ReplicaMeta> = probe.replica_lists[pos]
            .iter()
            .copied()
            .filter(|m| !probe.path.contains(&m.peer) && m.peer != probe.dest)
            .collect();
        // Composite next-hop metric, runtime flavour: nearest first.
        let me = self.me;
        // total_cmp: a non-finite delay (impossible today, but NaN-safe by
        // construction) sorts last instead of panicking.
        candidates.sort_by(|a, b| {
            self.shared
                .wan
                .base_ms(me, a.peer)
                .total_cmp(&self.shared.wan.base_ms(me, b.peer))
                .then_with(|| a.peer.cmp(&b.peer))
        });
        let k = (probe.budget.min(self.shared.cfg.quota) as usize).min(candidates.len());
        if k == 0 {
            return; // probe dies; the destination window handles silence
        }
        let child_budget = (probe.budget / k as u32).max(1);
        for meta in candidates.into_iter().take(k) {
            let mut child = probe.clone();
            child.pos = pos + 1;
            child.path.push(meta.peer);
            child.budget = child_budget;
            self.shared.count_probe(probe.request, pos as u16, child_budget);
            self.send(meta.peer, Msg::Probe(child));
        }
    }

    fn on_probe(&mut self, probe: Probe) {
        if probe.pos == probe.chain.len() && probe.dest == self.me {
            if self.done_requests.contains(&probe.request) {
                return; // stragglers after selection
            }
            let now = self.shared.now_ms();
            let request = probe.request;
            let window = self.shared.cfg.collect_window_ms;
            let job = self.dest_jobs.entry(request).or_insert_with(|| DestJob {
                source: probe.source,
                chain: probe.chain.clone(),
                probes: Vec::new(),
                timer_armed: false,
            });
            job.probes.push((now, probe));
            if !job.timer_armed {
                job.timer_armed = true;
                self.net.send(self.me, Msg::TimerCollect { request }, window);
            }
            return;
        }
        self.spawn_probes(probe);
    }

    fn on_collect(&mut self, request: u64) {
        let Some(job) = self.dest_jobs.remove(&request) else { return };
        self.done_requests.insert(request);
        let now = self.shared.now_ms();
        if job.probes.is_empty() {
            self.send(
                job.source,
                Msg::SetupAck {
                    session: request,
                    path: Vec::new(),
                    functions: job.chain,
                    idx: usize::MAX,
                    source: job.source,
                    backups: Vec::new(),
                    selected_ms: now,
                },
            );
            return;
        }
        // Earliest arrival = lowest-latency candidate path.
        let mut probes = job.probes;
        probes.sort_by(|a, b| a.0.total_cmp(&b.0));
        let best = probes[0].1.clone();
        let mut backups: Vec<Vec<PeerId>> = Vec::new();
        for (_, p) in probes.iter().skip(1) {
            if p.path != best.path && !backups.contains(&p.path) {
                backups.push(p.path.clone());
            }
        }
        let last = best.path.len() - 1;
        let to = best.path[last];
        self.send(
            to,
            Msg::SetupAck {
                session: request,
                path: best.path,
                functions: best.chain,
                idx: last,
                source: best.source,
                backups,
                selected_ms: now,
            },
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn on_setup_ack(
        &mut self,
        session: u64,
        path: Vec<PeerId>,
        functions: Vec<MediaFunction>,
        idx: usize,
        source: PeerId,
        backups: Vec<Vec<PeerId>>,
        selected_ms: f64,
    ) {
        // Initialize the local component for this session (soft state made
        // firm), then keep walking toward the head of the path.
        let (to, next_idx) = if idx == 0 { (source, usize::MAX) } else { (path[idx - 1], idx - 1) };
        self.send(
            to,
            Msg::SetupAck { session, path, functions, idx: next_idx, source, backups, selected_ms },
        );
    }

    // --- streaming ---------------------------------------------------

    fn on_stream_timer(&mut self, session: u64) {
        let Some(job) = self.stream_jobs.get_mut(&session) else { return };
        match job.phase {
            StreamPhase::Draining => {
                let job = self.stream_jobs.remove(&session).expect("present");
                let _ = job.reply.send(StreamReport {
                    session,
                    sent: job.seq,
                    delivered: job.delivered,
                    all_valid: job.all_valid,
                    switches: job.switches,
                    maintenance_probes: job.maintenance_messages,
                    final_path: job.paths.first().cloned().unwrap_or_default(),
                });
            }
            StreamPhase::Sending => {
                // Failover: no delivery ack for longer than the timeout
                // while a backup exists. The baseline resets on switch so
                // one broken path triggers one switch, not a cascade.
                let now = self.shared.now_ms();
                if job.seq > 0
                    && now - job.last_progress_ms > self.shared.cfg.failover_timeout_ms
                    && job.paths.len() > 1
                {
                    // Prefer the first backup the maintenance probes still
                    // believe alive; fall back to blind order otherwise.
                    let choice =
                        job.backup_alive.iter().position(|&alive| alive).unwrap_or(0);
                    let from = job.paths[0].first().map(|p| p.raw()).unwrap_or(0);
                    let latency_ms = now - job.last_progress_ms;
                    job.paths.remove(0);
                    // Promote the chosen backup to the front; liveness
                    // bookkeeping mirrors the path list (paths[i+1] ↔
                    // backup_alive[i]).
                    if choice > 0 && choice < job.paths.len() {
                        let chosen = job.paths.remove(choice);
                        job.paths.insert(0, chosen);
                    }
                    if choice < job.backup_alive.len() {
                        job.backup_alive.remove(choice);
                        job.maintenance_pending.remove(choice);
                    }
                    job.switches += 1;
                    job.last_progress_ms = now;
                    let to = job.paths[0].first().map(|p| p.raw()).unwrap_or(0);
                    self.shared.record(TraceEvent::BackupSwitch {
                        session,
                        from,
                        to,
                        latency_ms,
                    });
                }
                if job.remaining == 0 {
                    job.phase = StreamPhase::Draining;
                    let drain = job.interval_ms * 4.0 + 800.0;
                    self.net.send(self.me, Msg::TimerStream { session }, drain);
                    return;
                }
                job.remaining -= 1;
                job.seq += 1;
                let seq = job.seq;
                let frame = Frame::synthetic(job.dims.0, job.dims.1, seq);
                let path = job.paths[0].clone();
                let functions = job.functions.clone();
                let dest = job.dest;
                let dims = job.dims;
                let interval = job.interval_ms;
                let first = path[0];
                let me = self.me;
                self.send(
                    first,
                    Msg::StreamFrame {
                        session,
                        path,
                        functions,
                        idx: 0,
                        dest,
                        source: me,
                        orig_dims: dims,
                        frame,
                    },
                );
                self.net.send(self.me, Msg::TimerStream { session }, interval);
            }
        }
    }

    /// One maintenance round at the streaming source: probe every backup
    /// path; a backup whose previous probe never returned is marked dead.
    fn on_maintenance_timer(&mut self, session: u64) {
        let period = self.shared.cfg.maintenance_period_ms;
        let Some(job) = self.stream_jobs.get_mut(&session) else { return };
        if matches!(job.phase, StreamPhase::Draining) {
            return; // stream ending: stop maintaining
        }
        let me = self.me;
        let mut sends: Vec<(PeerId, Msg)> = Vec::new();
        for (bi, path) in job.paths.iter().skip(1).enumerate() {
            if bi >= job.maintenance_pending.len() {
                break;
            }
            if job.maintenance_pending[bi] {
                // Last round's probe never came back: declare dead until a
                // late ack revives it.
                job.backup_alive[bi] = false;
            }
            job.maintenance_pending[bi] = true;
            job.maintenance_messages += 1;
            if let Some(&first) = path.first() {
                sends.push((
                    first,
                    Msg::PathProbe {
                        session,
                        path: path.clone(),
                        idx: 0,
                        origin: me,
                        backup_idx: bi,
                    },
                ));
            }
        }
        for (to, msg) in sends {
            self.send(to, msg);
        }
        self.net.send(self.me, Msg::TimerMaintenance { session }, period);
    }

    /// Forwards a maintenance probe along a backup path; the last hop
    /// returns the ack straight to the origin.
    fn on_path_probe(
        &mut self,
        session: u64,
        path: Vec<PeerId>,
        idx: usize,
        origin: PeerId,
        backup_idx: usize,
    ) {
        let next = idx + 1;
        if next >= path.len() {
            self.send(origin, Msg::PathProbeAck { session, backup_idx });
        } else {
            let to = path[next];
            self.send(to, Msg::PathProbe { session, path, idx: next, origin, backup_idx });
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_frame(
        &mut self,
        session: u64,
        path: Vec<PeerId>,
        functions: Vec<MediaFunction>,
        idx: usize,
        dest: PeerId,
        source: PeerId,
        orig_dims: (usize, usize),
        frame: Frame,
    ) {
        if idx >= path.len() {
            // Delivery: verify against the expected transform chain.
            let expected = functions
                .iter()
                .fold(Frame::synthetic(orig_dims.0, orig_dims.1, frame.seq), |f, func| {
                    func.apply(&f)
                });
            let valid = expected == frame;
            let seq = frame.seq;
            self.send(source, Msg::FrameAck { session, seq, valid });
            return;
        }
        // Apply this hop's transform and forward. `functions[idx]` is the
        // function of `path[idx]`; backup paths host the same function
        // sequence by construction.
        let out = functions[idx].apply(&frame);
        let next_idx = idx + 1;
        let to = if next_idx >= path.len() { dest } else { path[next_idx] };
        self.send(
            to,
            Msg::StreamFrame {
                session,
                path,
                functions,
                idx: next_idx,
                dest,
                source,
                orig_dims,
                frame: out,
            },
        );
    }
}

// ---------------------------------------------------------------------
// The cluster facade.
// ---------------------------------------------------------------------

/// A running cluster of peer threads.
pub struct Cluster {
    cfg: ClusterConfig,
    senders: Vec<Sender<Msg>>,
    shared: Arc<Shared>,
    net: Net,
    handles: Vec<std::thread::JoinHandle<()>>,
    net_handle: Option<std::thread::JoinHandle<()>>,
    next_request: AtomicU64,
}

impl Cluster {
    /// Builds and starts the cluster: assigns one media component per peer
    /// (round-robin over the six functions — at 102 peers that is the
    /// paper's ≈17 replicas each), registers them into the per-peer DHT
    /// shards, and spawns the actor threads.
    pub fn start(cfg: ClusterConfig) -> Cluster {
        assert!(cfg.peers >= 8, "the runtime needs a handful of peers");
        let peers: Vec<PeerId> = (0..cfg.peers as u64).map(PeerId::new).collect();
        let wan = WanModel::new(cfg.peers, cfg.jitter, cfg.seed);
        let mut prox = |a: PeerId, b: PeerId| wan.base_ms(a, b);
        let pastry = PastryNetwork::build(&peers, &mut prox);

        // Component assignment + startup registration into DHT shards
        // (run-time lookups go over the network hop by hop).
        let functions: Vec<MediaFunction> =
            (0..cfg.peers).map(|i| MediaFunction::ALL[i % MediaFunction::ALL.len()]).collect();
        let mut stores: Vec<HashMap<u128, Vec<ReplicaMeta>>> = vec![HashMap::new(); cfg.peers];
        for (i, &f) in functions.iter().enumerate() {
            let key = function_key(f.name());
            let root = pastry.responsible(NodeId::new(key)).expect("non-empty ring");
            stores[root.index()]
                .entry(key)
                .or_default()
                .push(ReplicaMeta { peer: PeerId::from(i), function: f });
        }

        let dead: Arc<Vec<AtomicBool>> =
            Arc::new((0..cfg.peers).map(|_| AtomicBool::new(false)).collect());
        let shared = Arc::new(Shared {
            wan,
            pastry,
            dead: dead.clone(),
            epoch: Instant::now(),
            scale: cfg.time_scale,
            probes_sent: AtomicU64::new(0),
            dht_hops: AtomicU64::new(0),
            msgs_dropped: AtomicU64::new(0),
            trace: Mutex::new(TraceBuffer::new()),
            session_probes: Mutex::new(BTreeMap::new()),
            cfg: cfg.clone(),
            functions,
        });

        let inner = Arc::new(NetInner { queue: Mutex::new(NetQueue::default()), cond: Condvar::new() });
        let net = Net { inner: inner.clone(), scale: cfg.time_scale };

        let mut senders = Vec::with_capacity(cfg.peers);
        let mut receivers = Vec::with_capacity(cfg.peers);
        for _ in 0..cfg.peers {
            let (tx, rx) = channel();
            senders.push(tx);
            receivers.push(rx);
        }
        let net_handle = {
            let senders = senders.clone();
            let shared = shared.clone();
            std::thread::spawn(move || network_thread(inner, senders, shared))
        };
        let mut handles = Vec::with_capacity(cfg.peers);
        for (i, inbox) in receivers.into_iter().enumerate() {
            let actor = PeerActor {
                me: PeerId::from(i),
                inbox,
                net: net.clone(),
                shared: shared.clone(),
                store: std::mem::take(&mut stores[i]),
                rng: shared.wan.rng_for_peer(PeerId::from(i)),
                compose_jobs: HashMap::new(),
                dest_jobs: HashMap::new(),
                done_requests: HashSet::new(),
                stream_jobs: HashMap::new(),
            };
            handles.push(std::thread::spawn(move || actor.run()));
        }
        Cluster {
            cfg,
            senders,
            shared,
            net,
            handles,
            net_handle: Some(net_handle),
            next_request: AtomicU64::new(1),
        }
    }

    /// Number of peers.
    pub fn peers(&self) -> usize {
        self.cfg.peers
    }

    /// The media function hosted by a peer.
    pub fn function_of(&self, p: PeerId) -> MediaFunction {
        self.shared.functions[p.index()]
    }

    /// Replicas deployed for one function.
    pub fn replica_count(&self, f: MediaFunction) -> usize {
        self.shared.functions.iter().filter(|&&g| g == f).count()
    }

    /// Composes a session from `source` to `dest` over `chain`. Blocks up
    /// to `timeout` wall time; `None` means the driver-side timeout hit.
    pub fn compose(
        &self,
        source: PeerId,
        dest: PeerId,
        chain: Vec<MediaFunction>,
        budget: u32,
        timeout: Duration,
    ) -> Option<SetupResult> {
        let request = self.next_request.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = sync_channel(1);
        self.senders[source.index()]
            .send(Msg::Compose { request, dest, chain, budget, reply: tx })
            .ok()?;
        rx.recv_timeout(timeout).ok()
    }

    /// Streams `frames` synthetic frames along an established composition;
    /// blocks until the source reports (or `timeout`).
    pub fn stream(
        &self,
        source: PeerId,
        setup: &SetupResult,
        frames: u64,
        interval_ms: f64,
        dims: (usize, usize),
        timeout: Duration,
    ) -> Option<StreamReport> {
        assert!(setup.ok, "cannot stream over a failed setup");
        let (tx, rx) = sync_channel(1);
        self.senders[source.index()]
            .send(Msg::StartStream {
                session: setup.request,
                path: setup.path.clone(),
                functions: setup.functions.clone(),
                backups: setup.backups.clone(),
                dest: setup.dest,
                frames,
                interval_ms,
                dims,
                reply: tx,
            })
            .ok()?;
        rx.recv_timeout(timeout).ok()
    }

    /// Kills a peer: the network drops everything addressed to it.
    pub fn kill(&self, peer: PeerId) {
        self.shared.dead[peer.index()].store(true, Ordering::Relaxed);
    }

    /// Revives a killed peer: the network delivers to it again. Messages
    /// dropped while it was dead are gone — state the peer accumulated
    /// before the kill is still there (the actor thread never stopped).
    pub fn revive(&self, peer: PeerId) {
        self.shared.dead[peer.index()].store(false, Ordering::Relaxed);
    }

    /// Droppable messages lost to fault injection so far.
    pub fn messages_dropped(&self) -> u64 {
        self.shared.msgs_dropped.load(Ordering::Relaxed)
    }

    /// Total probe transmissions so far.
    pub fn probes_sent(&self) -> u64 {
        self.shared.probes_sent.load(Ordering::Relaxed)
    }

    /// Total DHT routing steps so far.
    pub fn dht_hops(&self) -> u64 {
        self.shared.dht_hops.load(Ordering::Relaxed)
    }

    /// Snapshot of the cluster-wide trace ring, oldest event first. Empty
    /// when the `trace` feature is compiled out.
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.shared.trace.lock().unwrap().events()
    }

    /// Trace-ring statistics `(recorded, buffered, overwritten)`.
    pub fn trace_stats(&self) -> (u64, u64, u64) {
        let t = self.shared.trace.lock().unwrap();
        (t.recorded(), t.len() as u64, t.overwritten())
    }

    /// Probe transmissions per composition session, ascending by session
    /// id. Kept regardless of the `trace` feature — the figure exporters
    /// publish these rows.
    pub fn session_probe_counts(&self) -> Vec<(u64, u64)> {
        self.shared.session_probes.lock().unwrap().iter().map(|(&s, &p)| (s, p)).collect()
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        for (i, s) in self.senders.iter().enumerate() {
            self.shared.dead[i].store(false, Ordering::Relaxed);
            let _ = s.send(Msg::Halt);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        self.net.shutdown();
        if let Some(h) = self.net_handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_cfg(peers: usize, seed: u64) -> ClusterConfig {
        ClusterConfig {
            peers,
            seed,
            time_scale: 0.004, // 250× compression: 48ms hop → ~0.2ms wall
            collect_window_ms: 250.0,
            // At 250× compression, OS scheduling jitter (~ms wall) becomes
            // hundreds of model ms; an effectively-infinite failover
            // timeout keeps non-failover tests deterministic.
            failover_timeout_ms: 1e9,
            ..ClusterConfig::default()
        }
    }

    const TIMEOUT: Duration = Duration::from_secs(20);

    #[test]
    fn composes_a_three_function_session() {
        let cluster = Cluster::start(fast_cfg(24, 1));
        let chain = vec![
            MediaFunction::StockTicker,
            MediaFunction::DownScale,
            MediaFunction::Requantize,
        ];
        let res = cluster
            .compose(PeerId::new(0), PeerId::new(7), chain.clone(), 8, TIMEOUT)
            .expect("driver timeout");
        assert!(res.ok, "setup failed");
        assert_eq!(res.path.len(), 3);
        // The chosen peers host the right functions in order.
        for (i, &p) in res.path.iter().enumerate() {
            assert_eq!(cluster.function_of(p), chain[i]);
        }
        assert_eq!(res.functions, chain);
        // Phase decomposition is sane.
        assert!(res.discovery_ms > 0.0, "discovery took no time");
        assert!(res.probing_ms > 0.0, "probing took no time");
        assert!(res.init_ms > 0.0, "init took no time");
        assert!(res.total_ms >= res.discovery_ms + res.probing_ms + res.init_ms - 1.0);
        assert!(cluster.probes_sent() > 0);
        assert!(cluster.dht_hops() > 0);
    }

    #[test]
    fn probing_respects_budget_scaling() {
        let cluster = Cluster::start(fast_cfg(24, 2));
        let chain = vec![MediaFunction::UpScale, MediaFunction::DownScale];
        let before = cluster.probes_sent();
        let _ = cluster.compose(PeerId::new(1), PeerId::new(8), chain.clone(), 1, TIMEOUT);
        let small = cluster.probes_sent() - before;
        let before = cluster.probes_sent();
        let _ = cluster.compose(PeerId::new(1), PeerId::new(8), chain, 16, TIMEOUT);
        let large = cluster.probes_sent() - before;
        assert!(large > small, "bigger budget sent no more probes: {large} vs {small}");
    }

    #[test]
    fn streaming_applies_the_transform_chain() {
        let cluster = Cluster::start(fast_cfg(24, 3));
        let chain = vec![MediaFunction::DownScale, MediaFunction::WeatherTicker];
        let setup = cluster
            .compose(PeerId::new(2), PeerId::new(9), chain, 8, TIMEOUT)
            .expect("driver timeout");
        assert!(setup.ok);
        let report = cluster
            .stream(PeerId::new(2), &setup, 20, 30.0, (16, 16), TIMEOUT)
            .expect("stream timeout");
        assert_eq!(report.sent, 20);
        assert!(report.delivered >= 18, "only {} of 20 delivered", report.delivered);
        assert!(report.all_valid, "a delivered frame failed transform verification");
        assert_eq!(report.switches, 0);
    }

    #[test]
    fn killed_component_triggers_failover_to_backup() {
        // Gentler time compression than the other tests: failover timing
        // must stay visible even when the whole suite runs in parallel.
        let cluster = Cluster::start(ClusterConfig {
            peers: 30,
            seed: 4,
            time_scale: 0.05, // 20×: failover timeout is ~20ms wall, well
            collect_window_ms: 250.0, // above scheduler jitter
            failover_timeout_ms: 400.0,
            ..ClusterConfig::default()
        });
        let chain = vec![MediaFunction::Requantize, MediaFunction::StockTicker];
        let setup = cluster
            .compose(PeerId::new(3), PeerId::new(11), chain, 16, TIMEOUT)
            .expect("driver timeout");
        assert!(setup.ok);
        assert!(!setup.backups.is_empty(), "probing found no backup paths");
        // Kill the first component of the primary before streaming.
        cluster.kill(setup.path[0]);
        let report = cluster
            .stream(PeerId::new(3), &setup, 80, 25.0, (8, 8), TIMEOUT)
            .expect("stream timeout");
        assert!(report.switches >= 1, "source never failed over");
        assert!(
            report.delivered > 0,
            "no frames delivered after failover (sent {})",
            report.sent
        );
        assert!(report.all_valid);
        assert_ne!(report.final_path.first(), setup.path.first());
    }

    #[test]
    fn maintenance_probes_steer_failover_around_dead_backups() {
        let cluster = Cluster::start(ClusterConfig {
            peers: 36,
            seed: 7,
            time_scale: 0.05,
            collect_window_ms: 250.0,
            failover_timeout_ms: 400.0,
            maintenance_period_ms: 100.0,
            ..ClusterConfig::default()
        });
        let chain = vec![MediaFunction::DownScale, MediaFunction::Requantize];
        let setup = cluster
            .compose(PeerId::new(2), PeerId::new(20), chain, 16, TIMEOUT)
            .expect("driver timeout");
        assert!(setup.ok);
        assert!(setup.backups.len() >= 2, "need ≥2 backups, got {}", setup.backups.len());
        // Kill the primary's head AND the first backup's head (when they
        // differ) before streaming: maintenance should learn the backup is
        // dead and the failover should land on a live one.
        cluster.kill(setup.path[0]);
        if setup.backups[0][0] != setup.path[0] {
            cluster.kill(setup.backups[0][0]);
        }
        let report = cluster
            .stream(PeerId::new(2), &setup, 100, 25.0, (8, 8), TIMEOUT)
            .expect("stream timeout");
        assert!(report.maintenance_probes > 0, "no maintenance probes sent");
        assert!(report.switches >= 1);
        assert!(report.delivered > 0, "never recovered: {report:?}");
        assert!(report.all_valid);
    }

    #[test]
    fn lossy_network_degrades_without_wedging() {
        let cluster = Cluster::start(ClusterConfig {
            faults: NetFaultConfig { drop_prob: 0.25, extra_delay_ms: 0.0 },
            ..fast_cfg(24, 8)
        });
        let chain = vec![MediaFunction::DownScale, MediaFunction::StockTicker];
        // With 25% loss any individual setup may fail or time out; what
        // must hold is that every call returns within its timeout and the
        // cluster never wedges.
        let mut completed = 0;
        for r in 0..6u64 {
            let res = cluster.compose(
                PeerId::new(r),
                PeerId::new(12 + r),
                chain.clone(),
                8,
                Duration::from_secs(5),
            );
            if matches!(res, Some(ref s) if s.ok) {
                completed += 1;
            }
        }
        assert!(cluster.messages_dropped() > 0, "fault injector never fired");
        // Shutdown (Drop) must also complete cleanly — implicitly tested
        // by the test not hanging.
        let _ = completed;
    }

    #[test]
    fn kill_and_revive_restores_delivery() {
        let cluster = Cluster::start(fast_cfg(12, 9));
        cluster.kill(PeerId::new(5));
        let dead_res = cluster.compose(
            PeerId::new(0),
            PeerId::new(5),
            vec![MediaFunction::UpScale],
            4,
            Duration::from_millis(400),
        );
        assert!(dead_res.is_none(), "composition toward a dead peer should time out");
        cluster.revive(PeerId::new(5));
        let res = cluster
            .compose(PeerId::new(0), PeerId::new(5), vec![MediaFunction::UpScale], 4, TIMEOUT)
            .expect("revived peer still unreachable");
        assert!(res.ok, "composition toward a revived peer failed");
    }

    #[test]
    fn delay_jitter_preserves_stream_validity() {
        let cluster = Cluster::start(ClusterConfig {
            faults: NetFaultConfig { drop_prob: 0.0, extra_delay_ms: 60.0 },
            ..fast_cfg(24, 10)
        });
        let chain = vec![MediaFunction::Requantize, MediaFunction::WeatherTicker];
        let setup = cluster
            .compose(PeerId::new(1), PeerId::new(10), chain, 8, TIMEOUT)
            .expect("driver timeout");
        assert!(setup.ok);
        let report = cluster
            .stream(PeerId::new(1), &setup, 20, 30.0, (8, 8), TIMEOUT)
            .expect("stream timeout");
        assert_eq!(report.sent, 20);
        assert!(report.delivered >= 18, "jitter lost frames: {}", report.delivered);
        assert!(report.all_valid, "a jittered frame failed transform verification");
        assert_eq!(report.switches, 0, "pure delay must not trigger failover");
    }

    #[test]
    fn unknown_source_requests_fail_cleanly() {
        let cluster = Cluster::start(fast_cfg(12, 5));
        // Composing toward a dead destination times out at the driver
        // rather than wedging the cluster.
        cluster.kill(PeerId::new(5));
        let res = cluster.compose(
            PeerId::new(0),
            PeerId::new(5),
            vec![MediaFunction::UpScale],
            4,
            Duration::from_millis(400),
        );
        assert!(res.is_none(), "composition toward a dead peer should time out");
        // The cluster still works afterwards.
        let ok = cluster
            .compose(PeerId::new(0), PeerId::new(6), vec![MediaFunction::UpScale], 4, TIMEOUT)
            .expect("cluster wedged");
        assert!(ok.ok);
    }

    #[test]
    fn setup_times_scale_with_chain_length() {
        let cluster = Cluster::start(fast_cfg(36, 6));
        let chains: Vec<Vec<MediaFunction>> = vec![
            MediaFunction::ALL[..2].to_vec(),
            MediaFunction::ALL[..5].to_vec(),
        ];
        let mut totals = Vec::new();
        for chain in chains {
            let mut sum = 0.0;
            for r in 0..3u64 {
                let res = cluster
                    .compose(PeerId::new(r), PeerId::new(20 + r), chain.clone(), 8, TIMEOUT)
                    .expect("timeout");
                sum += res.total_ms;
            }
            totals.push(sum / 3.0);
        }
        // Longer chains cannot be *faster* on average (more probe hops).
        assert!(
            totals[1] > totals[0] * 0.8,
            "5-function setup implausibly fast: {totals:?}"
        );
    }
}
