//! The in-process channel transport: one actor thread per peer, one
//! network thread injecting WAN delays.
//!
//! All protocol logic lives in [`crate::node::PeerNode`]; this module
//! only moves messages. Each peer actor drains an mpsc inbox and feeds
//! the engine through a [`ChannelOutbox`] whose `wire` goes into the
//! delay-queue network thread (converting model delay to compressed wall
//! time) and whose driver results resolve the caller's reply channels.
//! The socket transport ([`crate::net`]) drives the *same* engine over
//! TCP — a deployment built from the same [`ClusterConfig`] and seed
//! behaves identically in model time.
//!
//! Peer failure is modeled by the network dropping all traffic to the
//! dead peer; streaming sources detect the resulting ack gap and fail
//! over to a backup path — the proactive recovery data path of §5,
//! exercised with real threads.
//!
//! Wall-clock time is compressed by `time_scale` (wall = model × scale);
//! all reported times are model milliseconds.

use crate::media::MediaFunction;
use crate::msg::Msg;
use crate::node::{Outbox, PeerNode, World};
use spidernet_sim::trace::TraceEvent;
use spidernet_util::id::PeerId;
use spidernet_util::rng::rng_for;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

pub use crate::node::{ClusterConfig, NetFaultConfig, SetupResult, StreamReport};

// ---------------------------------------------------------------------
// Network thread: a delay queue delivering messages at their due time.
// ---------------------------------------------------------------------

struct QueuedMsg {
    due: Instant,
    seq: u64,
    to: PeerId,
    msg: Msg,
    /// Already went through fault injection (re-queued with extra jitter);
    /// never rolled twice.
    delayed: bool,
}

impl PartialEq for QueuedMsg {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl Eq for QueuedMsg {}
impl Ord for QueuedMsg {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.due.cmp(&self.due).then_with(|| other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for QueuedMsg {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Default)]
struct NetQueue {
    heap: BinaryHeap<QueuedMsg>,
    seq: u64,
    shutdown: bool,
}

struct NetInner {
    queue: Mutex<NetQueue>,
    cond: Condvar,
}

/// Sender handle into the delay-queue network.
#[derive(Clone)]
struct Net {
    inner: Arc<NetInner>,
    scale: f64,
}

impl Net {
    /// Enqueues `msg` for `to`, delivered after `model_ms` of model time.
    fn send(&self, to: PeerId, msg: Msg, model_ms: f64) {
        let wall = Duration::from_secs_f64((model_ms * self.scale / 1_000.0).max(0.0));
        let mut q = self.inner.queue.lock().unwrap();
        let seq = q.seq;
        q.seq += 1;
        q.heap.push(QueuedMsg { due: Instant::now() + wall, seq, to, msg, delayed: false });
        self.inner.cond.notify_one();
    }

    fn shutdown(&self) {
        self.inner.queue.lock().unwrap().shutdown = true;
        self.inner.cond.notify_one();
    }
}

fn network_thread(
    inner: Arc<NetInner>,
    peers: Vec<Sender<Msg>>,
    world: Arc<World>,
    dead: Arc<Vec<AtomicBool>>,
) {
    let faults = world.cfg.faults;
    let mut rng = rng_for(world.cfg.seed, "net-faults");
    let scale = world.cfg.time_scale;
    loop {
        let mut q = inner.queue.lock().unwrap();
        if q.shutdown {
            return;
        }
        let now = Instant::now();
        let wait = match q.heap.peek() {
            Some(e) if e.due <= now => {
                let e = q.heap.pop().expect("peeked");
                drop(q);
                if dead[e.to.index()].load(Ordering::Relaxed) {
                    continue;
                }
                if faults.is_active() && !e.delayed && e.msg.droppable() {
                    if faults.drop_prob > 0.0 && rng.gen::<f64>() < faults.drop_prob {
                        world.msgs_dropped.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    if faults.extra_delay_ms > 0.0 {
                        // Re-queue once with the extra jitter, marked so the
                        // message is not rolled again on redelivery.
                        let extra = rng.gen::<f64>() * faults.extra_delay_ms;
                        let wall = Duration::from_secs_f64(extra * scale / 1_000.0);
                        let mut q = inner.queue.lock().unwrap();
                        let seq = q.seq;
                        q.seq += 1;
                        q.heap.push(QueuedMsg {
                            due: Instant::now() + wall,
                            seq,
                            to: e.to,
                            msg: e.msg,
                            delayed: true,
                        });
                        inner.cond.notify_one();
                        continue;
                    }
                }
                // Channels are unbounded; send only fails at shutdown.
                let _ = peers[e.to.index()].send(e.msg);
                continue;
            }
            Some(e) => e.due - now,
            None => Duration::from_millis(50),
        };
        let _ = inner.cond.wait_timeout(q, wait).unwrap();
    }
}

// ---------------------------------------------------------------------
// Per-peer actor: inbox pump + channel-backed Outbox.
// ---------------------------------------------------------------------

/// The engine's effects, routed through the in-process transport:
/// `wire` and `timer` go into the delay-queue network, driver results
/// resolve the pending reply channels.
struct ChannelOutbox<'a> {
    me: PeerId,
    net: &'a Net,
    epoch: Instant,
    scale: f64,
    pending_setups: &'a mut HashMap<u64, SyncSender<SetupResult>>,
    pending_reports: &'a mut HashMap<u64, SyncSender<StreamReport>>,
}

impl Outbox for ChannelOutbox<'_> {
    fn wire(&mut self, to: PeerId, msg: Msg, delay_ms: f64) {
        self.net.send(to, msg, delay_ms);
    }

    fn timer(&mut self, msg: Msg, delay_ms: f64) {
        self.net.send(self.me, msg, delay_ms);
    }

    fn now_ms(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64() * 1_000.0 / self.scale
    }

    fn setup_result(&mut self, result: SetupResult) {
        if let Some(reply) = self.pending_setups.remove(&result.request) {
            let _ = reply.send(result);
        }
    }

    fn stream_report(&mut self, report: StreamReport) {
        if let Some(reply) = self.pending_reports.remove(&report.session) {
            let _ = reply.send(report);
        }
    }
}

struct PeerActor {
    me: PeerId,
    inbox: Receiver<Msg>,
    net: Net,
    epoch: Instant,
    scale: f64,
    node: PeerNode,
    pending_setups: HashMap<u64, SyncSender<SetupResult>>,
    pending_reports: HashMap<u64, SyncSender<StreamReport>>,
}

impl PeerActor {
    fn run(mut self) {
        while let Ok(msg) = self.inbox.recv() {
            let mut out = ChannelOutbox {
                me: self.me,
                net: &self.net,
                epoch: self.epoch,
                scale: self.scale,
                pending_setups: &mut self.pending_setups,
                pending_reports: &mut self.pending_reports,
            };
            match msg {
                Msg::Halt => return,
                Msg::Compose { request, dest, chain, budget, reply } => {
                    out.pending_setups.insert(request, reply);
                    self.node.compose(request, dest, chain, budget, &mut out);
                }
                Msg::StartStream {
                    session,
                    path,
                    functions,
                    backups,
                    dest,
                    frames,
                    interval_ms,
                    dims,
                    reply,
                } => {
                    out.pending_reports.insert(session, reply);
                    self.node.start_stream(
                        session,
                        path,
                        functions,
                        backups,
                        dest,
                        frames,
                        interval_ms,
                        dims,
                        &mut out,
                    );
                }
                other => self.node.handle(other, &mut out),
            }
        }
    }
}

// ---------------------------------------------------------------------
// The cluster facade.
// ---------------------------------------------------------------------

/// A running cluster of peer threads.
pub struct Cluster {
    world: Arc<World>,
    senders: Vec<Sender<Msg>>,
    dead: Arc<Vec<AtomicBool>>,
    net: Net,
    handles: Vec<std::thread::JoinHandle<()>>,
    net_handle: Option<std::thread::JoinHandle<()>>,
    next_request: AtomicU64,
}

impl Cluster {
    /// Builds and starts the cluster: assigns one media component per peer
    /// (round-robin over the six functions — at 102 peers that is the
    /// paper's ≈17 replicas each), registers them into the per-peer DHT
    /// shards, and spawns the actor threads.
    pub fn start(cfg: ClusterConfig) -> Cluster {
        assert!(cfg.peers >= 8, "the runtime needs a handful of peers");
        let world = Arc::new(World::build(cfg));
        let cfg = &world.cfg;
        let mut stores = world.seeded_stores();

        let dead: Arc<Vec<AtomicBool>> =
            Arc::new((0..cfg.peers).map(|_| AtomicBool::new(false)).collect());
        let inner =
            Arc::new(NetInner { queue: Mutex::new(NetQueue::default()), cond: Condvar::new() });
        let net = Net { inner: inner.clone(), scale: cfg.time_scale };
        let epoch = Instant::now();

        let mut senders = Vec::with_capacity(cfg.peers);
        let mut receivers = Vec::with_capacity(cfg.peers);
        for _ in 0..cfg.peers {
            let (tx, rx) = channel();
            senders.push(tx);
            receivers.push(rx);
        }
        let net_handle = {
            let senders = senders.clone();
            let world = world.clone();
            let dead = dead.clone();
            std::thread::spawn(move || network_thread(inner, senders, world, dead))
        };
        let scale = cfg.time_scale;
        let mut handles = Vec::with_capacity(cfg.peers);
        for (i, inbox) in receivers.into_iter().enumerate() {
            let actor = PeerActor {
                me: PeerId::from(i),
                inbox,
                net: net.clone(),
                epoch,
                scale,
                node: PeerNode::new(PeerId::from(i), world.clone(), std::mem::take(&mut stores[i])),
                pending_setups: HashMap::new(),
                pending_reports: HashMap::new(),
            };
            handles.push(std::thread::spawn(move || actor.run()));
        }
        Cluster {
            world,
            senders,
            dead,
            net,
            handles,
            net_handle: Some(net_handle),
            next_request: AtomicU64::new(1),
        }
    }

    /// Number of peers.
    pub fn peers(&self) -> usize {
        self.world.cfg.peers
    }

    /// The media function hosted by a peer.
    pub fn function_of(&self, p: PeerId) -> MediaFunction {
        self.world.functions[p.index()]
    }

    /// Replicas deployed for one function.
    pub fn replica_count(&self, f: MediaFunction) -> usize {
        self.world.functions.iter().filter(|&&g| g == f).count()
    }

    /// Composes a session from `source` to `dest` over `chain`. Blocks up
    /// to `timeout` wall time; `None` means the driver-side timeout hit.
    pub fn compose(
        &self,
        source: PeerId,
        dest: PeerId,
        chain: Vec<MediaFunction>,
        budget: u32,
        timeout: Duration,
    ) -> Option<SetupResult> {
        let request = self.next_request.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = sync_channel(1);
        self.senders[source.index()]
            .send(Msg::Compose { request, dest, chain, budget, reply: tx })
            .ok()?;
        rx.recv_timeout(timeout).ok()
    }

    /// Streams `frames` synthetic frames along an established composition;
    /// blocks until the source reports (or `timeout`).
    pub fn stream(
        &self,
        source: PeerId,
        setup: &SetupResult,
        frames: u64,
        interval_ms: f64,
        dims: (usize, usize),
        timeout: Duration,
    ) -> Option<StreamReport> {
        assert!(setup.ok, "cannot stream over a failed setup");
        let (tx, rx) = sync_channel(1);
        self.senders[source.index()]
            .send(Msg::StartStream {
                session: setup.request,
                path: setup.path.clone(),
                functions: setup.functions.clone(),
                backups: setup.backups.clone(),
                dest: setup.dest,
                frames,
                interval_ms,
                dims,
                reply: tx,
            })
            .ok()?;
        rx.recv_timeout(timeout).ok()
    }

    /// Kills a peer: the network drops everything addressed to it.
    pub fn kill(&self, peer: PeerId) {
        self.dead[peer.index()].store(true, Ordering::Relaxed);
    }

    /// Revives a killed peer: the network delivers to it again. Messages
    /// dropped while it was dead are gone — state the peer accumulated
    /// before the kill is still there (the actor thread never stopped).
    pub fn revive(&self, peer: PeerId) {
        self.dead[peer.index()].store(false, Ordering::Relaxed);
    }

    /// Droppable messages lost to fault injection so far.
    pub fn messages_dropped(&self) -> u64 {
        self.world.msgs_dropped.load(Ordering::Relaxed)
    }

    /// Total probe transmissions so far.
    pub fn probes_sent(&self) -> u64 {
        self.world.probes_sent.load(Ordering::Relaxed)
    }

    /// Total DHT routing steps so far.
    pub fn dht_hops(&self) -> u64 {
        self.world.dht_hops.load(Ordering::Relaxed)
    }

    /// Snapshot of the cluster-wide trace ring, oldest event first. Empty
    /// when the `trace` feature is compiled out.
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.world.trace.lock().unwrap().events()
    }

    /// Trace-ring statistics `(recorded, buffered, overwritten)`.
    pub fn trace_stats(&self) -> (u64, u64, u64) {
        let t = self.world.trace.lock().unwrap();
        (t.recorded(), t.len() as u64, t.overwritten())
    }

    /// Probe transmissions per composition session, ascending by session
    /// id. Kept regardless of the `trace` feature — the figure exporters
    /// publish these rows.
    pub fn session_probe_counts(&self) -> Vec<(u64, u64)> {
        self.world.session_probes.lock().unwrap().iter().map(|(&s, &p)| (s, p)).collect()
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        for (i, s) in self.senders.iter().enumerate() {
            self.dead[i].store(false, Ordering::Relaxed);
            let _ = s.send(Msg::Halt);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        self.net.shutdown();
        if let Some(h) = self.net_handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::media::MediaFunction;

    fn fast_cfg(peers: usize, seed: u64) -> ClusterConfig {
        ClusterConfig {
            peers,
            seed,
            time_scale: 0.004, // 250× compression: 48ms hop → ~0.2ms wall
            collect_window_ms: 250.0,
            // At 250× compression, OS scheduling jitter (~ms wall) becomes
            // hundreds of model ms; an effectively-infinite failover
            // timeout keeps non-failover tests deterministic.
            failover_timeout_ms: 1e9,
            ..ClusterConfig::default()
        }
    }

    const TIMEOUT: Duration = Duration::from_secs(20);

    #[test]
    fn composes_a_three_function_session() {
        let cluster = Cluster::start(fast_cfg(24, 1));
        let chain = vec![
            MediaFunction::StockTicker,
            MediaFunction::DownScale,
            MediaFunction::Requantize,
        ];
        let res = cluster
            .compose(PeerId::new(0), PeerId::new(7), chain.clone(), 8, TIMEOUT)
            .expect("driver timeout");
        assert!(res.ok, "setup failed");
        assert_eq!(res.path.len(), 3);
        // The chosen peers host the right functions in order.
        for (i, &p) in res.path.iter().enumerate() {
            assert_eq!(cluster.function_of(p), chain[i]);
        }
        assert_eq!(res.functions, chain);
        // Phase decomposition is sane.
        assert!(res.discovery_ms > 0.0, "discovery took no time");
        assert!(res.probing_ms > 0.0, "probing took no time");
        assert!(res.init_ms > 0.0, "init took no time");
        assert!(res.total_ms >= res.discovery_ms + res.probing_ms + res.init_ms - 1.0);
        assert!(cluster.probes_sent() > 0);
        assert!(cluster.dht_hops() > 0);
    }

    #[test]
    fn setup_metrics_are_deterministic_across_runs() {
        // Model-time metrics are pure functions of message content: two
        // clusters with the same seed must report bit-identical setup
        // phases regardless of thread scheduling.
        let run = || {
            let cluster = Cluster::start(fast_cfg(24, 42));
            let chain = vec![
                MediaFunction::StockTicker,
                MediaFunction::DownScale,
                MediaFunction::Requantize,
            ];
            cluster
                .compose(PeerId::new(0), PeerId::new(7), chain, 8, TIMEOUT)
                .expect("driver timeout")
        };
        let a = run();
        let b = run();
        assert_eq!(a.path, b.path, "selected paths differ across runs");
        assert_eq!(a.backups, b.backups, "backup sets differ across runs");
        assert_eq!(a.discovery_ms.to_bits(), b.discovery_ms.to_bits());
        assert_eq!(a.probing_ms.to_bits(), b.probing_ms.to_bits());
        assert_eq!(a.init_ms.to_bits(), b.init_ms.to_bits());
        assert_eq!(a.total_ms.to_bits(), b.total_ms.to_bits());
    }

    #[test]
    fn probing_respects_budget_scaling() {
        let cluster = Cluster::start(fast_cfg(24, 2));
        let chain = vec![MediaFunction::UpScale, MediaFunction::DownScale];
        let before = cluster.probes_sent();
        let _ = cluster.compose(PeerId::new(1), PeerId::new(8), chain.clone(), 1, TIMEOUT);
        let small = cluster.probes_sent() - before;
        let before = cluster.probes_sent();
        let _ = cluster.compose(PeerId::new(1), PeerId::new(8), chain, 16, TIMEOUT);
        let large = cluster.probes_sent() - before;
        assert!(large > small, "bigger budget sent no more probes: {large} vs {small}");
    }

    #[test]
    fn streaming_applies_the_transform_chain() {
        let cluster = Cluster::start(fast_cfg(24, 3));
        let chain = vec![MediaFunction::DownScale, MediaFunction::WeatherTicker];
        let setup = cluster
            .compose(PeerId::new(2), PeerId::new(9), chain, 8, TIMEOUT)
            .expect("driver timeout");
        assert!(setup.ok);
        let report = cluster
            .stream(PeerId::new(2), &setup, 20, 30.0, (16, 16), TIMEOUT)
            .expect("stream timeout");
        assert_eq!(report.sent, 20);
        assert!(report.delivered >= 18, "only {} of 20 delivered", report.delivered);
        assert!(report.all_valid, "a delivered frame failed transform verification");
        assert_eq!(report.switches, 0);
        assert_ne!(report.delivery_digest, 0, "delivered frames left no digest");
    }

    #[test]
    fn killed_component_triggers_failover_to_backup() {
        // Gentler time compression than the other tests: failover timing
        // must stay visible even when the whole suite runs in parallel.
        let cluster = Cluster::start(ClusterConfig {
            peers: 30,
            seed: 4,
            time_scale: 0.05, // 20×: failover timeout is ~20ms wall, well
            collect_window_ms: 250.0, // above scheduler jitter
            failover_timeout_ms: 400.0,
            ..ClusterConfig::default()
        });
        let chain = vec![MediaFunction::Requantize, MediaFunction::StockTicker];
        let setup = cluster
            .compose(PeerId::new(3), PeerId::new(11), chain, 16, TIMEOUT)
            .expect("driver timeout");
        assert!(setup.ok);
        assert!(!setup.backups.is_empty(), "probing found no backup paths");
        // Kill the first component of the primary before streaming.
        cluster.kill(setup.path[0]);
        let report = cluster
            .stream(PeerId::new(3), &setup, 80, 25.0, (8, 8), TIMEOUT)
            .expect("stream timeout");
        assert!(report.switches >= 1, "source never failed over");
        assert!(
            report.delivered > 0,
            "no frames delivered after failover (sent {})",
            report.sent
        );
        assert!(report.all_valid);
        assert_ne!(report.final_path.first(), setup.path.first());
    }

    #[test]
    fn maintenance_probes_steer_failover_around_dead_backups() {
        let cluster = Cluster::start(ClusterConfig {
            peers: 36,
            seed: 7,
            time_scale: 0.05,
            collect_window_ms: 250.0,
            failover_timeout_ms: 400.0,
            maintenance_period_ms: 100.0,
            ..ClusterConfig::default()
        });
        let chain = vec![MediaFunction::DownScale, MediaFunction::Requantize];
        let setup = cluster
            .compose(PeerId::new(2), PeerId::new(20), chain, 16, TIMEOUT)
            .expect("driver timeout");
        assert!(setup.ok);
        assert!(setup.backups.len() >= 2, "need ≥2 backups, got {}", setup.backups.len());
        // Kill the primary's head AND the first backup's head (when they
        // differ) before streaming: maintenance should learn the backup is
        // dead and the failover should land on a live one.
        cluster.kill(setup.path[0]);
        if setup.backups[0][0] != setup.path[0] {
            cluster.kill(setup.backups[0][0]);
        }
        let report = cluster
            .stream(PeerId::new(2), &setup, 100, 25.0, (8, 8), TIMEOUT)
            .expect("stream timeout");
        assert!(report.maintenance_probes > 0, "no maintenance probes sent");
        assert!(report.switches >= 1);
        assert!(report.delivered > 0, "never recovered: {report:?}");
        assert!(report.all_valid);
    }

    #[test]
    fn lossy_network_degrades_without_wedging() {
        let cluster = Cluster::start(ClusterConfig {
            faults: NetFaultConfig::builder().drop_prob(0.25).build(),
            ..fast_cfg(24, 8)
        });
        let chain = vec![MediaFunction::DownScale, MediaFunction::StockTicker];
        // With 25% loss any individual setup may fail or time out; what
        // must hold is that every call returns within its timeout and the
        // cluster never wedges.
        let mut completed = 0;
        for r in 0..6u64 {
            let res = cluster.compose(
                PeerId::new(r),
                PeerId::new(12 + r),
                chain.clone(),
                8,
                Duration::from_secs(5),
            );
            if matches!(res, Some(ref s) if s.ok) {
                completed += 1;
            }
        }
        assert!(cluster.messages_dropped() > 0, "fault injector never fired");
        // Shutdown (Drop) must also complete cleanly — implicitly tested
        // by the test not hanging.
        let _ = completed;
    }

    #[test]
    fn kill_and_revive_restores_delivery() {
        let cluster = Cluster::start(fast_cfg(12, 9));
        cluster.kill(PeerId::new(5));
        let dead_res = cluster.compose(
            PeerId::new(0),
            PeerId::new(5),
            vec![MediaFunction::UpScale],
            4,
            Duration::from_millis(400),
        );
        assert!(dead_res.is_none(), "composition toward a dead peer should time out");
        cluster.revive(PeerId::new(5));
        let res = cluster
            .compose(PeerId::new(0), PeerId::new(5), vec![MediaFunction::UpScale], 4, TIMEOUT)
            .expect("revived peer still unreachable");
        assert!(res.ok, "composition toward a revived peer failed");
    }

    #[test]
    fn delay_jitter_preserves_stream_validity() {
        let cluster = Cluster::start(ClusterConfig {
            faults: NetFaultConfig::builder().extra_delay_ms(60.0).build(),
            ..fast_cfg(24, 10)
        });
        let chain = vec![MediaFunction::Requantize, MediaFunction::WeatherTicker];
        let setup = cluster
            .compose(PeerId::new(1), PeerId::new(10), chain, 8, TIMEOUT)
            .expect("driver timeout");
        assert!(setup.ok);
        let report = cluster
            .stream(PeerId::new(1), &setup, 20, 30.0, (8, 8), TIMEOUT)
            .expect("stream timeout");
        assert_eq!(report.sent, 20);
        assert!(report.delivered >= 18, "jitter lost frames: {}", report.delivered);
        assert!(report.all_valid, "a jittered frame failed transform verification");
        assert_eq!(report.switches, 0, "pure delay must not trigger failover");
    }

    #[test]
    fn unknown_source_requests_fail_cleanly() {
        let cluster = Cluster::start(fast_cfg(12, 5));
        // Composing toward a dead destination times out at the driver
        // rather than wedging the cluster.
        cluster.kill(PeerId::new(5));
        let res = cluster.compose(
            PeerId::new(0),
            PeerId::new(5),
            vec![MediaFunction::UpScale],
            4,
            Duration::from_millis(400),
        );
        assert!(res.is_none(), "composition toward a dead peer should time out");
        // The cluster still works afterwards.
        let ok = cluster
            .compose(PeerId::new(0), PeerId::new(6), vec![MediaFunction::UpScale], 4, TIMEOUT)
            .expect("cluster wedged");
        assert!(ok.ok);
    }

    #[test]
    fn setup_times_scale_with_chain_length() {
        let cluster = Cluster::start(fast_cfg(36, 6));
        let chains: Vec<Vec<MediaFunction>> = vec![
            MediaFunction::ALL[..2].to_vec(),
            MediaFunction::ALL[..5].to_vec(),
        ];
        let mut totals = Vec::new();
        for chain in chains {
            let mut sum = 0.0;
            for r in 0..3u64 {
                let res = cluster
                    .compose(PeerId::new(r), PeerId::new(20 + r), chain.clone(), 8, TIMEOUT)
                    .expect("timeout");
                sum += res.total_ms;
            }
            totals.push(sum / 3.0);
        }
        // Longer chains cannot be *faster* on average (more probe hops).
        assert!(
            totals[1] > totals[0] * 0.8,
            "5-function setup implausibly fast: {totals:?}"
        );
    }
}
