//! A minimal readiness poller over raw `epoll`, plus an `eventfd` waker.
//!
//! The workspace is dependency-free, so instead of `mio`/`tokio` this
//! module declares the four syscall wrappers it needs directly; the
//! symbols live in the platform libc that `std` already links. Linux
//! only — the event transport falls back to the blocking socket
//! transport elsewhere (see `net::TransportKind`).
//!
//! Level-triggered semantics throughout: an fd keeps reporting readable/
//! writable until drained, so the event loop never needs to track
//! "spurious wakeup vs missed edge" state. Write interest is toggled per
//! connection as its outbound queue fills and drains.

#![cfg(target_os = "linux")]

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

const EPOLL_CLOEXEC: i32 = 0o2000000;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

const EFD_CLOEXEC: i32 = 0o2000000;
const EFD_NONBLOCK: i32 = 0o4000;

/// The kernel's `struct epoll_event`; packed on x86-64 (the kernel ABI
/// packs it there so 32- and 64-bit layouts agree), natural layout on
/// other architectures.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn close(fd: i32) -> i32;
    fn read(fd: i32, buf: *mut core::ffi::c_void, count: usize) -> isize;
    fn write(fd: i32, buf: *const core::ffi::c_void, count: usize) -> isize;
}

/// One readiness notification out of [`Poller::wait`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// The fd has bytes to read (or a pending accept).
    pub readable: bool,
    /// The fd can take more bytes.
    pub writable: bool,
    /// Peer closed or the fd errored; the connection is done.
    pub hangup: bool,
}

/// An `epoll` instance. Register fds with a `u64` token; `wait` reports
/// which tokens are ready.
pub struct Poller {
    epfd: RawFd,
}

impl Poller {
    /// A fresh epoll instance (close-on-exec).
    pub fn new() -> io::Result<Poller> {
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Poller { epfd })
    }

    fn interest(readable: bool, writable: bool) -> u32 {
        // ERR/HUP are always reported by the kernel; RDHUP must be asked
        // for and is how a half-closed read side surfaces.
        let mut ev = EPOLLRDHUP;
        if readable {
            ev |= EPOLLIN;
        }
        if writable {
            ev |= EPOLLOUT;
        }
        ev
    }

    fn ctl(&self, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events, data: token };
        let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Starts watching `fd` under `token`.
    pub fn add(&self, fd: RawFd, token: u64, readable: bool, writable: bool) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, Self::interest(readable, writable), token)
    }

    /// Changes the interest set of a watched fd.
    pub fn modify(&self, fd: RawFd, token: u64, readable: bool, writable: bool) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, Self::interest(readable, writable), token)
    }

    /// Stops watching `fd` (must still be open when called).
    pub fn remove(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Blocks until at least one fd is ready (or `timeout` passes, if
    /// given), filling `out` with the ready set. EINTR retries
    /// internally.
    pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        out.clear();
        let timeout_ms = match timeout {
            Some(t) => t.as_millis().min(i32::MAX as u128) as i32,
            None => -1,
        };
        let mut raw = [EpollEvent { events: 0, data: 0 }; 256];
        let n = loop {
            let n =
                unsafe { epoll_wait(self.epfd, raw.as_mut_ptr(), raw.len() as i32, timeout_ms) };
            if n >= 0 {
                break n as usize;
            }
            let e = io::Error::last_os_error();
            if e.kind() != io::ErrorKind::Interrupted {
                return Err(e);
            }
        };
        for ev in &raw[..n] {
            // Copy out of the (possibly packed) struct before touching.
            let events = ev.events;
            let token = ev.data;
            out.push(Event {
                token,
                readable: events & EPOLLIN != 0,
                writable: events & EPOLLOUT != 0,
                hangup: events & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
            });
        }
        Ok(())
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        unsafe { close(self.epfd) };
    }
}

/// Cross-thread wakeup for a [`Poller`]: an `eventfd` registered like any
/// connection. Other threads call [`Waker::wake`]; the poller thread sees
/// its token readable and calls [`Waker::drain`].
pub struct Waker {
    fd: RawFd,
}

impl Waker {
    /// A fresh non-blocking eventfd.
    pub fn new() -> io::Result<Waker> {
        let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Waker { fd })
    }

    /// The fd to register with the poller.
    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// Makes the poller's next (or current) `wait` return. Wakes coalesce:
    /// any number of calls before a drain produce one readable event.
    pub fn wake(&self) {
        let one: u64 = 1;
        unsafe { write(self.fd, (&one as *const u64).cast(), 8) };
    }

    /// Consumes pending wakes so the fd stops reading as ready.
    pub fn drain(&self) {
        let mut counter: u64 = 0;
        unsafe { read(self.fd, (&mut counter as *mut u64).cast(), 8) };
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        unsafe { close(self.fd) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn poller_reports_accept_read_and_write_readiness() {
        let poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        poller.add(listener.as_raw_fd(), 1, true, false).unwrap();

        let mut events = Vec::new();
        // Nothing pending: a zero timeout returns empty.
        poller.wait(&mut events, Some(Duration::from_millis(0))).unwrap();
        assert!(events.iter().all(|e| e.token != 1));

        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.readable), "accept readiness");

        let (mut served, _) = listener.accept().unwrap();
        served.set_nonblocking(true).unwrap();
        poller.add(served.as_raw_fd(), 2, true, true).unwrap();
        client.write_all(b"ping").unwrap();
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        let ev = events.iter().find(|e| e.token == 2).expect("conn event");
        assert!(ev.writable, "fresh socket is writable");
        // Readable may need one more wait round for the bytes to land.
        if !ev.readable {
            poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        }
        let mut buf = [0u8; 8];
        assert_eq!(served.read(&mut buf).unwrap(), 4);

        // Peer hangup surfaces on the next wait.
        drop(client);
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token == 2 && e.hangup), "hangup reported");
        poller.remove(served.as_raw_fd()).unwrap();
    }

    #[test]
    fn waker_wakes_a_blocked_wait_and_coalesces() {
        let poller = Poller::new().unwrap();
        let waker = std::sync::Arc::new(Waker::new().unwrap());
        poller.add(waker.fd(), 7, true, false).unwrap();
        let w = waker.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            w.wake();
            w.wake();
            w.wake();
        });
        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable));
        waker.drain();
        // All three wakes coalesced into the drained counter.
        poller.wait(&mut events, Some(Duration::from_millis(0))).unwrap();
        assert!(events.iter().all(|e| e.token != 7), "drain cleared readiness");
        t.join().unwrap();
    }
}
