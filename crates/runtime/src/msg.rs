//! The runtime message set, shared by both transports.
//!
//! Everything a peer learns arrives as one of these messages: through its
//! inbox channel in the in-process cluster, or decoded off a TCP
//! connection in the socket daemon. Driver commands (compose, stream)
//! carry reply channels and exist only in-process; every other variant
//! has a wire form ([`Msg::to_wire`] / [`Msg::from_wire`]).
//!
//! Wire variants carry an `at_ms` model timestamp accumulated hop by hop:
//! each send adds its content-keyed WAN delay
//! ([`crate::wan::WanModel::delay_keyed`]). Session-setup metrics are
//! computed from these accumulated timestamps, making them pure functions
//! of message content — identical across transports, runs, and thread
//! schedules for a fixed seed.

use crate::cluster::{SetupResult, StreamReport};
use crate::media::{Frame, MediaFunction};
use spidernet_dht::NodeId;
use spidernet_util::id::PeerId;
use spidernet_util::qos::QosVector;
use spidernet_util::res::ResourceVector;
use spidernet_util::rng::splitmix64;
use spidernet_wire::{WireMsg, WirePixels, WireProbe, WireReplica};
use std::sync::mpsc::SyncSender;
use std::sync::Arc;

/// A discovered replica: which peer provides which function.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReplicaMeta {
    /// Hosting peer.
    pub peer: PeerId,
    /// Provided function.
    pub function: MediaFunction,
}

/// One composition probe walking the function chain (runtime flavour of
/// the BCP probe).
#[derive(Clone, Debug)]
pub struct Probe {
    /// Request this probe serves.
    pub request: u64,
    /// The application sender.
    pub source: PeerId,
    /// The application receiver.
    pub dest: PeerId,
    /// Required functions, in composition order.
    pub chain: Vec<MediaFunction>,
    /// Prefetched replica lists, one per chain position.
    pub replica_lists: Vec<Vec<ReplicaMeta>>,
    /// Next chain position to instantiate.
    pub pos: usize,
    /// Component peers chosen so far.
    pub path: Vec<PeerId>,
    /// Remaining probing budget.
    pub budget: u32,
    /// Accumulated per-dimension QoS along the partial path (paper §4.2's
    /// additive QoS accumulation, carried on the wire).
    pub acc_qos: QosVector,
    /// Accumulated model-time timestamp, ms since the request started.
    pub at_ms: f64,
}

/// Messages between peers (and from the driver).
#[derive(Clone, Debug)]
pub enum Msg {
    /// DHT lookup being routed hop-by-hop toward `key`'s root.
    DhtLookup {
        /// Query correlation id.
        query: u64,
        /// Target key.
        key: NodeId,
        /// Peer awaiting the reply.
        origin: PeerId,
        /// Hops taken so far.
        hops: u32,
        /// Accumulated model-time timestamp, ms.
        at_ms: f64,
    },
    /// Reply from the key's root back to the querying peer.
    DhtReply {
        /// Query correlation id.
        query: u64,
        /// The stored replica list (possibly empty).
        metas: Vec<ReplicaMeta>,
        /// Accumulated model-time timestamp, ms.
        at_ms: f64,
    },
    /// Metadata registration routed hop-by-hop to the key's root, where
    /// the advertisement lands in that node's DHT shard. The in-process
    /// cluster pre-seeds its shards at startup; socket daemons register
    /// over the wire during bootstrap.
    Register {
        /// Target key.
        key: NodeId,
        /// The replica being advertised.
        replica: ReplicaMeta,
        /// Advertised per-component QoS (e.g. processing delay).
        qos: QosVector,
        /// Advertised end-system resource availability.
        res: ResourceVector,
        /// Hops taken so far.
        hops: u32,
    },
    /// A BCP probe.
    Probe(Probe),
    /// Session-setup acknowledgement travelling the reversed service path.
    /// `idx == usize::MAX` marks the final leg to the source (setup
    /// complete, or failed when `path` is empty).
    SetupAck {
        /// Session id.
        session: u64,
        /// Component peers, composition order.
        path: Vec<PeerId>,
        /// Functions, composition order.
        functions: Vec<MediaFunction>,
        /// Position in `path` this hop initializes (moves toward 0).
        idx: usize,
        /// The application sender to notify at the end.
        source: PeerId,
        /// Alternative complete paths discovered by probing (failover
        /// backups), carried to the source.
        backups: Vec<Vec<PeerId>>,
        /// Model ms when the destination selected the composition.
        selected_ms: f64,
        /// Accumulated model-time timestamp, ms.
        at_ms: f64,
    },
    /// A media frame in flight along a composed session.
    StreamFrame {
        /// Session id.
        session: u64,
        /// Component peers, composition order.
        path: Vec<PeerId>,
        /// Functions, composition order.
        functions: Vec<MediaFunction>,
        /// Next position to process (`path.len()` = deliver to dest).
        idx: usize,
        /// The application receiver.
        dest: PeerId,
        /// The application sender (for the delivery ack).
        source: PeerId,
        /// Dimensions of the frame as originally emitted by the source
        /// (lets the destination recompute the expected transform output).
        orig_dims: (usize, usize),
        /// The frame payload.
        frame: Frame,
        /// Accumulated model-time timestamp, ms.
        at_ms: f64,
    },
    /// Destination → source delivery acknowledgement.
    FrameAck {
        /// Session id.
        session: u64,
        /// Delivered frame sequence number.
        seq: u64,
        /// Whether the delivered frame matched the expected transform
        /// output.
        valid: bool,
        /// Digest of the delivered frame's pixels (see
        /// [`Frame::digest`]) — lets the source prove byte-identical
        /// delivery across transports.
        digest: u64,
        /// Accumulated model-time timestamp, ms.
        at_ms: f64,
    },
    /// Driver command: compose a session.
    Compose {
        /// Request id.
        request: u64,
        /// The application receiver.
        dest: PeerId,
        /// Required functions, composition order.
        chain: Vec<MediaFunction>,
        /// Probing budget.
        budget: u32,
        /// Reply channel to the driver.
        reply: SyncSender<SetupResult>,
    },
    /// Driver command: stream frames along an established session.
    StartStream {
        /// Session id (from the setup result).
        session: u64,
        /// Primary component path.
        path: Vec<PeerId>,
        /// Functions along the path.
        functions: Vec<MediaFunction>,
        /// Backup paths, preference-ordered (for failover).
        backups: Vec<Vec<PeerId>>,
        /// The application receiver.
        dest: PeerId,
        /// Frames to send.
        frames: u64,
        /// Model-time between frames, ms.
        interval_ms: f64,
        /// Frame dimensions.
        dims: (usize, usize),
        /// Reply channel for the final report.
        reply: SyncSender<StreamReport>,
    },
    /// Low-rate maintenance probe walking a backup path (paper §5: the
    /// source "periodically sends low-rate measurement probes along these
    /// backup service graphs to monitor their liveness").
    PathProbe {
        /// Session whose backup is being checked.
        session: u64,
        /// The backup path under test.
        path: Vec<PeerId>,
        /// Next hop index; `path.len()` returns to the origin.
        idx: usize,
        /// The probing source.
        origin: PeerId,
        /// Which backup (index into the source's backup list).
        backup_idx: usize,
    },
    /// Maintenance probe returning alive.
    PathProbeAck {
        /// Session id.
        session: u64,
        /// Backup index confirmed alive.
        backup_idx: usize,
    },
    /// Self-scheduled timer: run one backup-maintenance round.
    TimerMaintenance {
        /// The streaming session to maintain.
        session: u64,
    },
    /// Self-scheduled timer: destination-side probe collection deadline.
    TimerCollect {
        /// The request whose probes are due for selection.
        request: u64,
    },
    /// Self-scheduled timer: emit the next stream frame.
    TimerStream {
        /// The session to advance.
        session: u64,
    },
    /// Stop the peer thread.
    Halt,
}

/// Folds one value into a content hash (used for delay salts and the
/// model checker's state digests).
#[inline]
pub(crate) fn mix(h: u64, v: u64) -> u64 {
    splitmix64(h ^ v)
}

fn mix_path(mut h: u64, path: &[PeerId]) -> u64 {
    for p in path {
        h = mix(h, p.raw());
    }
    h
}

impl Msg {
    /// Whether the fault injector may drop or jitter this message. Only
    /// genuine wire traffic is droppable — the protocol tolerates losing
    /// probes, lookups, registrations, acks, and frames (timeouts and
    /// retries cover them). Driver commands, self-scheduled timers, and
    /// `Halt` are control-plane bookkeeping: dropping one would wedge the
    /// harness, not exercise the protocol.
    pub fn droppable(&self) -> bool {
        matches!(
            self,
            Msg::DhtLookup { .. }
                | Msg::DhtReply { .. }
                | Msg::Register { .. }
                | Msg::Probe(_)
                | Msg::SetupAck { .. }
                | Msg::StreamFrame { .. }
                | Msg::FrameAck { .. }
                | Msg::PathProbe { .. }
                | Msg::PathProbeAck { .. }
        )
    }

    /// The accumulated model-time timestamp, when this variant carries
    /// one. The sender adds its sampled WAN delay before the message goes
    /// out, so the receiver reads "model time at delivery".
    pub fn at_ms_mut(&mut self) -> Option<&mut f64> {
        match self {
            Msg::DhtLookup { at_ms, .. }
            | Msg::DhtReply { at_ms, .. }
            | Msg::SetupAck { at_ms, .. }
            | Msg::StreamFrame { at_ms, .. }
            | Msg::FrameAck { at_ms, .. } => Some(at_ms),
            Msg::Probe(p) => Some(&mut p.at_ms),
            _ => None,
        }
    }

    /// Content hash used to key the deterministic WAN jitter for this
    /// message. Excludes `at_ms` (the timestamp depends on the sampled
    /// delay) and bulk payloads; includes enough identity that distinct
    /// messages between the same pair draw distinct jitter.
    pub fn delay_salt(&self) -> u64 {
        match self {
            Msg::DhtLookup { query, hops, .. } => mix(mix(1, *query), *hops as u64),
            Msg::DhtReply { query, .. } => mix(2, *query),
            Msg::Register { key, hops, .. } => mix(mix(3, key.0 as u64), *hops as u64),
            Msg::Probe(p) => mix_path(mix(mix(4, p.request), p.pos as u64), &p.path),
            Msg::SetupAck { session, idx, .. } => mix(mix(5, *session), *idx as u64),
            Msg::StreamFrame { session, idx, frame, .. } => {
                mix(mix(mix(6, *session), frame.seq), *idx as u64)
            }
            Msg::FrameAck { session, seq, .. } => mix(mix(7, *session), *seq),
            Msg::PathProbe { session, idx, backup_idx, .. } => {
                mix(mix(mix(8, *session), *idx as u64), *backup_idx as u64)
            }
            Msg::PathProbeAck { session, backup_idx } => {
                mix(mix(9, *session), *backup_idx as u64)
            }
            _ => 0,
        }
    }
}

// ---------------------------------------------------------------------
// Wire conversions
// ---------------------------------------------------------------------

fn idx_to_wire(idx: usize) -> u32 {
    if idx == usize::MAX {
        u32::MAX
    } else {
        idx as u32
    }
}

fn idx_from_wire(idx: u32) -> usize {
    if idx == u32::MAX {
        usize::MAX
    } else {
        idx as usize
    }
}

fn replica_to_wire(m: &ReplicaMeta) -> WireReplica {
    WireReplica { peer: m.peer.raw(), function: m.function.code() }
}

fn replica_from_wire(m: &WireReplica) -> Option<ReplicaMeta> {
    Some(ReplicaMeta { peer: PeerId::new(m.peer), function: MediaFunction::from_code(m.function)? })
}

fn peers_to_wire(path: &[PeerId]) -> Vec<u64> {
    path.iter().map(|p| p.raw()).collect()
}

fn peers_from_wire(path: &[u64]) -> Vec<PeerId> {
    path.iter().map(|&p| PeerId::new(p)).collect()
}

fn fns_to_wire(fns: &[MediaFunction]) -> Vec<u8> {
    fns.iter().map(|f| f.code()).collect()
}

fn fns_from_wire(codes: &[u8]) -> Option<Vec<MediaFunction>> {
    codes.iter().map(|&c| MediaFunction::from_code(c)).collect()
}

impl Msg {
    /// The wire form of this message, or `None` for in-process-only
    /// variants (driver commands carrying reply channels, self-timers,
    /// `Halt`) — exactly the variants a socket transport never ships.
    pub fn to_wire(&self) -> Option<WireMsg> {
        Some(match self {
            Msg::DhtLookup { query, key, origin, hops, at_ms } => WireMsg::DhtLookup {
                query: *query,
                key: key.0,
                origin: origin.raw(),
                hops: *hops,
                at_ms: *at_ms,
            },
            Msg::DhtReply { query, metas, at_ms } => WireMsg::DhtReply {
                query: *query,
                metas: metas.iter().map(replica_to_wire).collect(),
                at_ms: *at_ms,
            },
            Msg::Register { key, replica, qos, res, hops } => WireMsg::Register {
                key: key.0,
                replica: replica_to_wire(replica),
                qos: qos.clone(),
                res: *res,
                hops: *hops,
            },
            Msg::Probe(p) => WireMsg::Probe(WireProbe {
                request: p.request,
                source: p.source.raw(),
                dest: p.dest.raw(),
                chain: fns_to_wire(&p.chain),
                replica_lists: p
                    .replica_lists
                    .iter()
                    .map(|l| l.iter().map(replica_to_wire).collect())
                    .collect(),
                pos: p.pos as u32,
                path: peers_to_wire(&p.path),
                budget: p.budget,
                acc_qos: p.acc_qos.clone(),
                at_ms: p.at_ms,
            }),
            Msg::SetupAck { session, path, functions, idx, source, backups, selected_ms, at_ms } => {
                WireMsg::SetupAck {
                    session: *session,
                    path: peers_to_wire(path),
                    functions: fns_to_wire(functions),
                    idx: idx_to_wire(*idx),
                    source: source.raw(),
                    backups: backups.iter().map(|b| peers_to_wire(b)).collect(),
                    selected_ms: *selected_ms,
                    at_ms: *at_ms,
                }
            }
            Msg::StreamFrame { session, path, functions, idx, dest, source, orig_dims, frame, at_ms } => {
                WireMsg::StreamFrame {
                    session: *session,
                    path: peers_to_wire(path),
                    functions: fns_to_wire(functions),
                    idx: idx_to_wire(*idx),
                    dest: dest.raw(),
                    source: source.raw(),
                    orig_w: orig_dims.0 as u32,
                    orig_h: orig_dims.1 as u32,
                    frame: WirePixels {
                        width: frame.width as u32,
                        height: frame.height as u32,
                        seq: frame.seq,
                        pixels: frame.pixels.to_vec(),
                    },
                    at_ms: *at_ms,
                }
            }
            Msg::FrameAck { session, seq, valid, digest, at_ms } => WireMsg::FrameAck {
                session: *session,
                seq: *seq,
                valid: *valid,
                digest: *digest,
                at_ms: *at_ms,
            },
            Msg::PathProbe { session, path, idx, origin, backup_idx } => WireMsg::PathProbe {
                session: *session,
                path: peers_to_wire(path),
                idx: idx_to_wire(*idx),
                origin: origin.raw(),
                backup_idx: *backup_idx as u32,
            },
            Msg::PathProbeAck { session, backup_idx } => {
                WireMsg::PathProbeAck { session: *session, backup_idx: *backup_idx as u32 }
            }
            Msg::Compose { .. }
            | Msg::StartStream { .. }
            | Msg::TimerMaintenance { .. }
            | Msg::TimerCollect { .. }
            | Msg::TimerStream { .. }
            | Msg::Halt => return None,
        })
    }

    /// Reconstructs a runtime message from its wire form. `None` for
    /// control-plane frames (handshakes, Ctrl*) and for frames carrying
    /// unknown function codes — a daemon treats both as "not peer
    /// protocol traffic".
    pub fn from_wire(w: &WireMsg) -> Option<Msg> {
        Some(match w {
            WireMsg::DhtLookup { query, key, origin, hops, at_ms } => Msg::DhtLookup {
                query: *query,
                key: NodeId::new(*key),
                origin: PeerId::new(*origin),
                hops: *hops,
                at_ms: *at_ms,
            },
            WireMsg::DhtReply { query, metas, at_ms } => Msg::DhtReply {
                query: *query,
                metas: metas.iter().map(replica_from_wire).collect::<Option<_>>()?,
                at_ms: *at_ms,
            },
            WireMsg::Register { key, replica, qos, res, hops } => Msg::Register {
                key: NodeId::new(*key),
                replica: replica_from_wire(replica)?,
                qos: qos.clone(),
                res: *res,
                hops: *hops,
            },
            WireMsg::Probe(p) => Msg::Probe(Probe {
                request: p.request,
                source: PeerId::new(p.source),
                dest: PeerId::new(p.dest),
                chain: fns_from_wire(&p.chain)?,
                replica_lists: p
                    .replica_lists
                    .iter()
                    .map(|l| l.iter().map(replica_from_wire).collect::<Option<_>>())
                    .collect::<Option<_>>()?,
                pos: p.pos as usize,
                path: peers_from_wire(&p.path),
                budget: p.budget,
                acc_qos: p.acc_qos.clone(),
                at_ms: p.at_ms,
            }),
            WireMsg::SetupAck { session, path, functions, idx, source, backups, selected_ms, at_ms } => {
                Msg::SetupAck {
                    session: *session,
                    path: peers_from_wire(path),
                    functions: fns_from_wire(functions)?,
                    idx: idx_from_wire(*idx),
                    source: PeerId::new(*source),
                    backups: backups.iter().map(|b| peers_from_wire(b)).collect(),
                    selected_ms: *selected_ms,
                    at_ms: *at_ms,
                }
            }
            WireMsg::StreamFrame {
                session,
                path,
                functions,
                idx,
                dest,
                source,
                orig_w,
                orig_h,
                frame,
                at_ms,
            } => {
                if frame.pixels.len() != frame.width as usize * frame.height as usize {
                    return None;
                }
                Msg::StreamFrame {
                    session: *session,
                    path: peers_from_wire(path),
                    functions: fns_from_wire(functions)?,
                    idx: idx_from_wire(*idx),
                    dest: PeerId::new(*dest),
                    source: PeerId::new(*source),
                    orig_dims: (*orig_w as usize, *orig_h as usize),
                    frame: Frame {
                        width: frame.width as usize,
                        height: frame.height as usize,
                        pixels: Arc::from(frame.pixels.as_slice()),
                        seq: frame.seq,
                    },
                    at_ms: *at_ms,
                }
            }
            WireMsg::FrameAck { session, seq, valid, digest, at_ms } => Msg::FrameAck {
                session: *session,
                seq: *seq,
                valid: *valid,
                digest: *digest,
                at_ms: *at_ms,
            },
            WireMsg::PathProbe { session, path, idx, origin, backup_idx } => Msg::PathProbe {
                session: *session,
                path: peers_from_wire(path),
                idx: idx_from_wire(*idx),
                origin: PeerId::new(*origin),
                backup_idx: *backup_idx as usize,
            },
            WireMsg::PathProbeAck { session, backup_idx } => {
                Msg::PathProbeAck { session: *session, backup_idx: *backup_idx as usize }
            }
            WireMsg::Hello { .. }
            | WireMsg::HelloAck { .. }
            | WireMsg::CtrlCompose { .. }
            | WireMsg::CtrlComposeResult(_)
            | WireMsg::CtrlStream { .. }
            | WireMsg::CtrlStreamReport(_)
            | WireMsg::CtrlStatsRequest
            | WireMsg::CtrlStatsReply(_)
            | WireMsg::CtrlShutdown => return None,
        })
    }
}
