//! Wire protocol between runtime peers.
//!
//! Everything a peer learns arrives as one of these messages through its
//! inbox channel; the network thread injects WAN-scale delays between send
//! and delivery. Driver commands (compose, stream) carry reply channels.

use crate::cluster::{SetupResult, StreamReport};
use crate::media::{Frame, MediaFunction};
use spidernet_dht::NodeId;
use std::sync::mpsc::SyncSender;
use spidernet_util::id::PeerId;

/// A discovered replica: which peer provides which function.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReplicaMeta {
    /// Hosting peer.
    pub peer: PeerId,
    /// Provided function.
    pub function: MediaFunction,
}

/// One composition probe walking the function chain (runtime flavour of
/// the BCP probe).
#[derive(Clone, Debug)]
pub struct Probe {
    /// Request this probe serves.
    pub request: u64,
    /// The application sender.
    pub source: PeerId,
    /// The application receiver.
    pub dest: PeerId,
    /// Required functions, in composition order.
    pub chain: Vec<MediaFunction>,
    /// Prefetched replica lists, one per chain position.
    pub replica_lists: Vec<Vec<ReplicaMeta>>,
    /// Next chain position to instantiate.
    pub pos: usize,
    /// Component peers chosen so far.
    pub path: Vec<PeerId>,
    /// Remaining probing budget.
    pub budget: u32,
    /// Wall timestamp (ms since cluster epoch) when probing started.
    pub started_ms: f64,
}

/// Messages between peers (and from the driver).
#[derive(Clone, Debug)]
pub enum Msg {
    /// DHT lookup being routed hop-by-hop toward `key`'s root.
    DhtLookup {
        /// Query correlation id.
        query: u64,
        /// Target key.
        key: NodeId,
        /// Peer awaiting the reply.
        origin: PeerId,
        /// Hops taken so far.
        hops: u32,
    },
    /// Reply from the key's root back to the querying peer.
    DhtReply {
        /// Query correlation id.
        query: u64,
        /// The stored replica list (possibly empty).
        metas: Vec<ReplicaMeta>,
    },
    /// A BCP probe.
    Probe(Probe),
    /// Session-setup acknowledgement travelling the reversed service path.
    /// `idx == usize::MAX` marks the final leg to the source (setup
    /// complete, or failed when `path` is empty).
    SetupAck {
        /// Session id.
        session: u64,
        /// Component peers, composition order.
        path: Vec<PeerId>,
        /// Functions, composition order.
        functions: Vec<MediaFunction>,
        /// Position in `path` this hop initializes (moves toward 0).
        idx: usize,
        /// The application sender to notify at the end.
        source: PeerId,
        /// Alternative complete paths discovered by probing (failover
        /// backups), carried to the source.
        backups: Vec<Vec<PeerId>>,
        /// Model ms when the destination selected the composition.
        selected_ms: f64,
    },
    /// A media frame in flight along a composed session.
    StreamFrame {
        /// Session id.
        session: u64,
        /// Component peers, composition order.
        path: Vec<PeerId>,
        /// Functions, composition order.
        functions: Vec<MediaFunction>,
        /// Next position to process (`path.len()` = deliver to dest).
        idx: usize,
        /// The application receiver.
        dest: PeerId,
        /// The application sender (for the delivery ack).
        source: PeerId,
        /// Dimensions of the frame as originally emitted by the source
        /// (lets the destination recompute the expected transform output).
        orig_dims: (usize, usize),
        /// The frame payload.
        frame: Frame,
    },
    /// Destination → source delivery acknowledgement.
    FrameAck {
        /// Session id.
        session: u64,
        /// Delivered frame sequence number.
        seq: u64,
        /// Whether the delivered frame matched the expected transform
        /// output.
        valid: bool,
    },
    /// Driver command: compose a session.
    Compose {
        /// Request id.
        request: u64,
        /// The application receiver.
        dest: PeerId,
        /// Required functions, composition order.
        chain: Vec<MediaFunction>,
        /// Probing budget.
        budget: u32,
        /// Reply channel to the driver.
        reply: SyncSender<SetupResult>,
    },
    /// Driver command: stream frames along an established session.
    StartStream {
        /// Session id (from the setup result).
        session: u64,
        /// Primary component path.
        path: Vec<PeerId>,
        /// Functions along the path.
        functions: Vec<MediaFunction>,
        /// Backup paths, preference-ordered (for failover).
        backups: Vec<Vec<PeerId>>,
        /// The application receiver.
        dest: PeerId,
        /// Frames to send.
        frames: u64,
        /// Model-time between frames, ms.
        interval_ms: f64,
        /// Frame dimensions.
        dims: (usize, usize),
        /// Reply channel for the final report.
        reply: SyncSender<StreamReport>,
    },
    /// Low-rate maintenance probe walking a backup path (paper §5: the
    /// source "periodically sends low-rate measurement probes along these
    /// backup service graphs to monitor their liveness").
    PathProbe {
        /// Session whose backup is being checked.
        session: u64,
        /// The backup path under test.
        path: Vec<PeerId>,
        /// Next hop index; `path.len()` returns to the origin.
        idx: usize,
        /// The probing source.
        origin: PeerId,
        /// Which backup (index into the source's backup list).
        backup_idx: usize,
    },
    /// Maintenance probe returning alive.
    PathProbeAck {
        /// Session id.
        session: u64,
        /// Backup index confirmed alive.
        backup_idx: usize,
    },
    /// Self-scheduled timer: run one backup-maintenance round.
    TimerMaintenance {
        /// The streaming session to maintain.
        session: u64,
    },
    /// Self-scheduled timer: destination-side probe collection deadline.
    TimerCollect {
        /// The request whose probes are due for selection.
        request: u64,
    },
    /// Self-scheduled timer: emit the next stream frame.
    TimerStream {
        /// The session to advance.
        session: u64,
    },
    /// Stop the peer thread.
    Halt,
}

impl Msg {
    /// Whether the fault injector may drop or jitter this message. Only
    /// genuine wire traffic is droppable — the protocol tolerates losing
    /// probes, lookups, acks, and frames (timeouts and retries cover
    /// them). Driver commands, self-scheduled timers, and `Halt` are
    /// control-plane bookkeeping: dropping one would wedge the harness,
    /// not exercise the protocol.
    pub fn droppable(&self) -> bool {
        matches!(
            self,
            Msg::DhtLookup { .. }
                | Msg::DhtReply { .. }
                | Msg::Probe(_)
                | Msg::SetupAck { .. }
                | Msg::StreamFrame { .. }
                | Msg::FrameAck { .. }
                | Msg::PathProbe { .. }
                | Msg::PathProbeAck { .. }
        )
    }
}
