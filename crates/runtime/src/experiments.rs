//! Fig. 10 — average service session setup time vs function number, on the
//! wide-area (PlanetLab stand-in) runtime.
//!
//! The paper measures, over 500+ requests from 102 hosts, the end-to-end
//! session setup time decomposed into (1) decentralized service discovery,
//! (2) service graph finding via BCP, and (3) session initialization, for
//! compositions of 2–6 functions. Setup completes "within several seconds"
//! — multi-hop WAN round trips dominate.

use crate::cluster::{Cluster, ClusterConfig};
use crate::media::MediaFunction;
use spidernet_util::id::PeerId;
use spidernet_util::rng::{rng_for, Rng};
use spidernet_util::stats::Summary;
use spidernet_util::rng::SliceRandom;
use std::fmt;
use std::time::Duration;

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct Fig10Config {
    /// Cluster shape (peers, WAN model, time compression).
    pub cluster: ClusterConfig,
    /// Function counts to sweep (paper: 2–6).
    pub function_counts: Vec<usize>,
    /// Requests per function count.
    pub requests_per_point: usize,
    /// Per-request probing budget.
    pub budget: u32,
    /// Driver-side wall timeout per request.
    pub request_timeout: Duration,
}

impl Default for Fig10Config {
    fn default() -> Self {
        Fig10Config {
            // 10× compression keeps thread-scheduling noise (≈ms wall)
            // an order of magnitude below the WAN signal (≈100ms model).
            cluster: ClusterConfig { peers: 102, time_scale: 0.1, ..ClusterConfig::default() },
            function_counts: vec![2, 3, 4, 5, 6],
            requests_per_point: 25,
            budget: 16,
            request_timeout: Duration::from_secs(30),
        }
    }
}

/// One row of the figure.
#[derive(Clone, Debug)]
pub struct Fig10Row {
    /// Functions composed.
    pub functions: usize,
    /// Mean discovery time, model ms.
    pub discovery_ms: f64,
    /// Mean probing + selection time, model ms.
    pub composition_ms: f64,
    /// Mean session-initialization time, model ms.
    pub init_ms: f64,
    /// Mean total setup time, model ms.
    pub total_ms: f64,
    /// Requests that set up successfully.
    pub successes: usize,
    /// Requests attempted.
    pub attempts: usize,
}

/// The regenerated figure.
#[derive(Clone, Debug)]
pub struct Fig10Result {
    /// One row per function count.
    pub rows: Vec<Fig10Row>,
    /// Probe transmissions per composition session `(session id, probes)`,
    /// ascending — the per-session rows the `--trace-json` exporter
    /// publishes (includes the warm-up requests).
    pub session_probes: Vec<(u64, u64)>,
    /// Cluster trace-ring statistics `(recorded, buffered, overwritten)`;
    /// all zero when the `trace` feature is compiled out.
    pub trace_stats: (u64, u64, u64),
}

impl fmt::Display for Fig10Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# Fig. 10 — session setup time in wide-area networks (model ms)")?;
        writeln!(
            f,
            "{:>10} {:>12} {:>14} {:>10} {:>10} {:>9}",
            "functions", "discovery", "composition", "init", "total", "success"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>10} {:>12.0} {:>14.0} {:>10.0} {:>10.0} {:>6}/{:<3}",
                r.functions, r.discovery_ms, r.composition_ms, r.init_ms, r.total_ms,
                r.successes, r.attempts
            )?;
        }
        Ok(())
    }
}

impl Fig10Result {
    /// CSV rendering: `functions,discovery_ms,composition_ms,init_ms,total_ms,successes,attempts`.
    pub fn to_csv(&self) -> String {
        let mut out =
            String::from("functions,discovery_ms,composition_ms,init_ms,total_ms,successes,attempts\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{},{:.1},{:.1},{:.1},{:.1},{},{}\n",
                r.functions, r.discovery_ms, r.composition_ms, r.init_ms, r.total_ms,
                r.successes, r.attempts
            ));
        }
        out
    }
}

/// Draws a random chain of `k` distinct media functions.
fn random_chain(k: usize, rng: &mut Rng) -> Vec<MediaFunction> {
    let mut all = MediaFunction::ALL.to_vec();
    all.shuffle(rng);
    all.truncate(k);
    all
}

/// Runs the sweep on a freshly started cluster.
pub fn run(cfg: &Fig10Config) -> Fig10Result {
    let cluster = Cluster::start(cfg.cluster.clone());
    let n = cluster.peers() as u64;
    let mut rng = rng_for(cfg.cluster.seed, "fig10");
    let mut rows = Vec::new();

    // Warm-up requests: populate thread stacks, path caches, and branch
    // predictors so the measured rows don't absorb cold-start wall noise.
    for w in 0..3u64 {
        let _ = cluster.compose(
            PeerId::new(w),
            PeerId::new((w + 7) % n),
            random_chain(3, &mut rng),
            cfg.budget,
            cfg.request_timeout,
        );
    }

    for &k in &cfg.function_counts {
        assert!(k <= MediaFunction::ALL.len(), "only six media functions exist");
        let mut discovery = Summary::new();
        let mut composition = Summary::new();
        let mut init = Summary::new();
        let mut total = Summary::new();
        let mut successes = 0usize;
        for _ in 0..cfg.requests_per_point {
            let source = PeerId::new(rng.gen_range(0..n));
            let mut dest = PeerId::new(rng.gen_range(0..n));
            while dest == source {
                dest = PeerId::new(rng.gen_range(0..n));
            }
            let chain = random_chain(k, &mut rng);
            if let Some(res) =
                cluster.compose(source, dest, chain, cfg.budget, cfg.request_timeout)
            {
                if res.ok {
                    successes += 1;
                    discovery.record(res.discovery_ms);
                    composition.record(res.probing_ms);
                    init.record(res.init_ms);
                    total.record(res.total_ms);
                }
            }
        }
        rows.push(Fig10Row {
            functions: k,
            discovery_ms: discovery.mean(),
            composition_ms: composition.mean(),
            init_ms: init.mean(),
            total_ms: total.mean(),
            successes,
            attempts: cfg.requests_per_point,
        });
    }
    Fig10Result {
        rows,
        session_probes: cluster.session_probe_counts(),
        trace_stats: cluster.trace_stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_has_one_row_per_function_count() {
        let cfg = Fig10Config {
            cluster: ClusterConfig { peers: 24, time_scale: 0.004, ..ClusterConfig::default() },
            function_counts: vec![2],
            requests_per_point: 2,
            ..Fig10Config::default()
        };
        let res = run(&cfg);
        let csv = res.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert!(lines[0].starts_with("functions,"));
        assert_eq!(lines.len(), 2);
    }

    #[test]
    fn setup_time_decomposes_and_grows_with_functions() {
        let cfg = Fig10Config {
            cluster: ClusterConfig {
                peers: 30,
                time_scale: 0.004,
                ..ClusterConfig::default()
            },
            function_counts: vec![2, 5],
            requests_per_point: 6,
            ..Fig10Config::default()
        };
        let res = run(&cfg);
        assert_eq!(res.rows.len(), 2);
        // Every successful setup spent probes inside its own session row.
        assert!(!res.session_probes.is_empty());
        assert!(res.session_probes.iter().all(|&(_, p)| p > 0));
        #[cfg(feature = "trace")]
        assert!(res.trace_stats.0 > 0, "no events traced");
        for r in &res.rows {
            assert!(r.successes > 0, "no successful setups at k={}", r.functions);
            assert!(r.discovery_ms > 0.0);
            assert!(r.composition_ms > 0.0);
            assert!(r.total_ms > r.discovery_ms);
            // "within several seconds" at WAN scale: sanity ceiling.
            assert!(r.total_ms < 30_000.0, "implausible setup time {}", r.total_ms);
        }
        // Probing cost grows with chain length; totals should not shrink
        // dramatically.
        assert!(
            res.rows[1].total_ms > res.rows[0].total_ms * 0.7,
            "5-function setup implausibly fast: {res}"
        );
        assert!(res.to_string().contains("discovery"));
    }
}
