//! The socket transport: TCP connection management, the `spidernet-node`
//! daemon runtime, and the loopback `deploy` orchestrator.
//!
//! One OS process per peer. Each daemon rebuilds the shared [`World`]
//! deterministically from `(config, seed)`, runs the same
//! [`PeerNode`] engine as the in-process cluster, and exchanges
//! [`spidernet_wire`] frames over per-pair TCP connections
//! (thread-per-connection, `std::net` — no async runtime, so
//! deterministic tests never depend on an executor's scheduling).
//!
//! ## Connection lifecycle
//!
//! Connections are directional: a peer dials on demand when it first
//! sends to a neighbor (outbound connections are write-only after the
//! handshake) and accepts inbound connections for receiving. Every
//! connection opens with a `Hello` carrying the speaker's identity and
//! supported protocol range; the acceptor answers `HelloAck` with the
//! negotiated version ([`spidernet_wire::negotiate`]). Dial failures
//! retry with capped exponential backoff; a peer that stays unreachable
//! is treated as dead — its traffic is dropped, exactly like the
//! in-process network's dead-peer rule.
//!
//! ## Fault injection
//!
//! [`NetFaultConfig`] is honored at the *sender's* network layer, before
//! bytes reach a socket: droppable frames ([`Msg::droppable`]) roll the
//! drop probability once and survivors may be re-queued with extra
//! delay — the same two-step rule as the in-process delay queue, so a
//! fault config means the same thing in both deployments.
//!
//! ## Model time
//!
//! The content-keyed WAN delay of every message is served by a wall
//! delay queue before transmission (model ms × `time_scale`), and the
//! accumulated `at_ms` timestamps make all reported setup metrics pure
//! functions of message content — a socket deployment reports the same
//! numbers as the in-process cluster for the same seed.

use crate::media::MediaFunction;
use crate::msg::Msg;
use crate::node::{ClusterConfig, Outbox, PeerNode, SetupResult, StreamReport, World};
use spidernet_sim::trace::TraceEvent;
use spidernet_util::id::PeerId;
use spidernet_util::rng::{rng_for_indexed, splitmix64, Rng};
use spidernet_wire::{
    encode_to_vec, negotiate, FrameDecoder, WireMsg, WireSetup, WireStats, WireStreamReport,
    CONTROL_PEER, PROTO_VERSION,
};
use std::collections::{BinaryHeap, HashMap};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// Conversions between engine results and their control-frame forms.
// ---------------------------------------------------------------------

/// The control-frame form of a setup result.
pub fn setup_to_wire(s: &SetupResult) -> WireSetup {
    WireSetup {
        request: s.request,
        ok: s.ok,
        dest: s.dest.raw(),
        path: s.path.iter().map(|p| p.raw()).collect(),
        functions: s.functions.iter().map(|f| f.code()).collect(),
        backups: s.backups.iter().map(|b| b.iter().map(|p| p.raw()).collect()).collect(),
        discovery_ms: s.discovery_ms,
        probing_ms: s.probing_ms,
        init_ms: s.init_ms,
        total_ms: s.total_ms,
    }
}

/// Reconstructs a setup result from its control frame (`None` on unknown
/// function codes).
pub fn setup_from_wire(w: &WireSetup) -> Option<SetupResult> {
    Some(SetupResult {
        request: w.request,
        ok: w.ok,
        dest: PeerId::new(w.dest),
        path: w.path.iter().map(|&p| PeerId::new(p)).collect(),
        functions: w.functions.iter().map(|&c| MediaFunction::from_code(c)).collect::<Option<_>>()?,
        backups: w
            .backups
            .iter()
            .map(|b| b.iter().map(|&p| PeerId::new(p)).collect())
            .collect(),
        discovery_ms: w.discovery_ms,
        probing_ms: w.probing_ms,
        init_ms: w.init_ms,
        total_ms: w.total_ms,
    })
}

/// The control-frame form of a stream report.
pub fn report_to_wire(r: &StreamReport) -> WireStreamReport {
    WireStreamReport {
        session: r.session,
        sent: r.sent,
        delivered: r.delivered,
        all_valid: r.all_valid,
        switches: r.switches,
        maintenance_probes: r.maintenance_probes,
        final_path: r.final_path.iter().map(|p| p.raw()).collect(),
        delivery_digest: r.delivery_digest,
    }
}

/// Reconstructs a stream report from its control frame.
pub fn report_from_wire(w: &WireStreamReport) -> StreamReport {
    StreamReport {
        session: w.session,
        sent: w.sent,
        delivered: w.delivered,
        all_valid: w.all_valid,
        switches: w.switches,
        maintenance_probes: w.maintenance_probes,
        final_path: w.final_path.iter().map(|&p| PeerId::new(p)).collect(),
        delivery_digest: w.delivery_digest,
    }
}

// ---------------------------------------------------------------------
// Per-daemon transport counters.
// ---------------------------------------------------------------------

/// Socket-layer counters, reported via `CtrlStatsReply`.
#[derive(Default)]
pub struct NetStats {
    /// Wire frames encoded and handed to a connection.
    pub frames_tx: AtomicU64,
    /// Wire frames decoded off connections.
    pub frames_rx: AtomicU64,
    /// Bytes written (headers + payloads).
    pub bytes_tx: AtomicU64,
    /// Bytes read.
    pub bytes_rx: AtomicU64,
    /// Outbound connections successfully established.
    pub conns_opened: AtomicU64,
    /// Failed outbound dial attempts.
    pub conn_retries: AtomicU64,
    /// Frames rejected by the decoder.
    pub decode_errors: AtomicU64,
}

// ---------------------------------------------------------------------
// Wall delay queue (model delay × time_scale before an item fires).
// ---------------------------------------------------------------------

struct DqEntry<T> {
    due: Instant,
    seq: u64,
    item: T,
}

impl<T> PartialEq for DqEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl<T> Eq for DqEntry<T> {}
impl<T> Ord for DqEntry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.due.cmp(&self.due).then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<T> PartialOrd for DqEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct DqState<T> {
    heap: BinaryHeap<DqEntry<T>>,
    seq: u64,
    shutdown: bool,
}

struct DqInner<T> {
    state: Mutex<DqState<T>>,
    cond: Condvar,
}

/// A wall-time delay queue with a dedicated pump thread. The handler may
/// re-queue an item (fault-injected extra delay) by returning
/// `Some((item, extra))`.
struct DelayQueue<T> {
    inner: Arc<DqInner<T>>,
}

impl<T> Clone for DelayQueue<T> {
    fn clone(&self) -> Self {
        DelayQueue { inner: self.inner.clone() }
    }
}

impl<T: Send + 'static> DelayQueue<T> {
    fn start<F>(mut handle: F) -> DelayQueue<T>
    where
        F: FnMut(T) -> Option<(T, Duration)> + Send + 'static,
    {
        let inner = Arc::new(DqInner {
            state: Mutex::new(DqState { heap: BinaryHeap::new(), seq: 0, shutdown: false }),
            cond: Condvar::new(),
        });
        let pump = inner.clone();
        std::thread::spawn(move || loop {
            let mut q = pump.state.lock().unwrap();
            if q.shutdown {
                return;
            }
            let now = Instant::now();
            let wait = match q.heap.peek() {
                Some(e) if e.due <= now => {
                    let e = q.heap.pop().expect("peeked");
                    drop(q);
                    if let Some((item, extra)) = handle(e.item) {
                        let mut q = pump.state.lock().unwrap();
                        let seq = q.seq;
                        q.seq += 1;
                        q.heap.push(DqEntry { due: Instant::now() + extra, seq, item });
                        pump.cond.notify_one();
                    }
                    continue;
                }
                Some(e) => e.due - now,
                None => Duration::from_millis(50),
            };
            let _ = pump.cond.wait_timeout(q, wait).unwrap();
        });
        DelayQueue { inner }
    }

    fn push(&self, item: T, wall: Duration) {
        let mut q = self.inner.state.lock().unwrap();
        let seq = q.seq;
        q.seq += 1;
        q.heap.push(DqEntry { due: Instant::now() + wall, seq, item });
        self.inner.cond.notify_one();
    }
}

// ---------------------------------------------------------------------
// Outbound connections: dial-on-demand, per-peer writer threads.
// ---------------------------------------------------------------------

/// How long a peer stays blacklisted after its dial budget is exhausted.
/// Traffic queued toward it during the blackout is dropped — the socket
/// equivalent of the in-process network's dead-peer rule.
const PEER_DOWN_COOLDOWN: Duration = Duration::from_millis(500);

struct Writers {
    me: PeerId,
    ports: Arc<Vec<u16>>,
    stats: Arc<NetStats>,
    world: Arc<World>,
    senders: Mutex<HashMap<PeerId, Sender<Vec<u8>>>>,
}

impl Writers {
    fn send(self: &Arc<Self>, to: PeerId, frame: Vec<u8>) {
        let mut senders = self.senders.lock().unwrap();
        let tx = senders.entry(to).or_insert_with(|| {
            let (tx, rx) = channel::<Vec<u8>>();
            let w = self.clone();
            std::thread::spawn(move || w.writer_loop(to, rx));
            tx
        });
        let _ = tx.send(frame);
    }

    /// Dials `to` with capped exponential backoff and performs the
    /// client-side handshake. `None` after the attempt budget — the peer
    /// is presumed dead for now.
    fn dial(&self, to: PeerId) -> Option<TcpStream> {
        let addr = SocketAddr::from(([127, 0, 0, 1], self.ports[to.index()]));
        let mut backoff = Duration::from_millis(20);
        for attempt in 0u32..5 {
            if attempt > 0 {
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(Duration::from_millis(200));
            }
            let Ok(mut stream) = TcpStream::connect_timeout(&addr, Duration::from_millis(250))
            else {
                self.stats.conn_retries.fetch_add(1, Ordering::Relaxed);
                self.world.record(TraceEvent::ConnRetry { peer: to.raw(), attempt });
                continue;
            };
            let _ = stream.set_nodelay(true);
            let hello = encode_to_vec(&WireMsg::Hello {
                peer: self.me.raw(),
                node_id: 0,
                proto_min: PROTO_VERSION,
                proto_max: PROTO_VERSION,
                listen_port: self.ports[self.me.index()],
            });
            if stream.write_all(&hello).is_err() {
                self.stats.conn_retries.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            self.stats.bytes_tx.fetch_add(hello.len() as u64, Ordering::Relaxed);
            self.stats.frames_tx.fetch_add(1, Ordering::Relaxed);
            // Wait for the HelloAck so a half-open acceptor can't swallow
            // protocol frames.
            let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
            let mut dec = FrameDecoder::new();
            let mut buf = [0u8; 256];
            let ack = loop {
                match dec.next_frame() {
                    Ok(Some(frame)) => break Some(frame),
                    Ok(None) => match stream.read(&mut buf) {
                        Ok(0) | Err(_) => break None,
                        Ok(n) => {
                            self.stats.bytes_rx.fetch_add(n as u64, Ordering::Relaxed);
                            dec.extend(&buf[..n]);
                        }
                    },
                    Err(_) => {
                        self.stats.decode_errors.fetch_add(1, Ordering::Relaxed);
                        break None;
                    }
                }
            };
            match ack {
                Some(WireMsg::HelloAck { proto, .. }) if proto == PROTO_VERSION => {
                    let _ = stream.set_read_timeout(None);
                    self.stats.conns_opened.fetch_add(1, Ordering::Relaxed);
                    self.world.record(TraceEvent::ConnOpened { peer: to.raw() });
                    return Some(stream);
                }
                _ => {
                    self.stats.conn_retries.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        None
    }

    fn writer_loop(&self, to: PeerId, rx: Receiver<Vec<u8>>) {
        let mut conn: Option<TcpStream> = None;
        let mut down_until: Option<Instant> = None;
        for frame in rx {
            if let Some(t) = down_until {
                if Instant::now() < t {
                    continue; // peer presumed dead: drop its traffic
                }
                down_until = None;
            }
            if conn.is_none() {
                conn = self.dial(to);
                if conn.is_none() {
                    self.world.record(TraceEvent::ConnClosed { peer: to.raw() });
                    down_until = Some(Instant::now() + PEER_DOWN_COOLDOWN);
                    continue;
                }
            }
            let stream = conn.as_mut().expect("just dialed");
            if stream.write_all(&frame).is_err() {
                // One reconnect attempt for the frame in hand, then give up
                // on it (the protocol tolerates wire loss).
                conn = self.dial(to);
                let rewritten = match conn.as_mut() {
                    Some(stream) => stream.write_all(&frame).is_ok(),
                    None => false,
                };
                if !rewritten {
                    conn = None;
                    self.world.record(TraceEvent::ConnClosed { peer: to.raw() });
                    down_until = Some(Instant::now() + PEER_DOWN_COOLDOWN);
                    continue;
                }
            }
            self.stats.bytes_tx.fetch_add(frame.len() as u64, Ordering::Relaxed);
            self.stats.frames_tx.fetch_add(1, Ordering::Relaxed);
        }
    }
}

// ---------------------------------------------------------------------
// The daemon: engine thread + listener + delay queues.
// ---------------------------------------------------------------------

/// Everything a `spidernet-node` process needs to join a deployment.
pub struct NodeConfig {
    /// This peer's index (also its position in `ports`).
    pub index: usize,
    /// The shared deployment config; every node of a deployment must be
    /// started with identical values.
    pub cluster: ClusterConfig,
    /// Loopback listen port of every peer, by index.
    pub ports: Vec<u16>,
}

enum EngineInput {
    /// A protocol message, from the wire or a local timer.
    Deliver(Msg),
    /// A control frame plus the reply sink of its connection.
    Ctrl(WireMsg, Sender<WireMsg>),
    /// Periodic soft-state refresh: re-advertise this node's component.
    Announce,
}

struct SocketOutbox {
    epoch: Instant,
    scale: f64,
    outbound: DelayQueue<OutFrame>,
    timers: DelayQueue<Msg>,
    pending_setups: HashMap<u64, Sender<WireMsg>>,
    pending_reports: HashMap<u64, Sender<WireMsg>>,
}

struct OutFrame {
    to: PeerId,
    msg: Msg,
    /// Already fault-injected (re-queued with extra jitter); never rolled
    /// twice.
    delayed: bool,
}

impl Outbox for SocketOutbox {
    fn wire(&mut self, to: PeerId, msg: Msg, delay_ms: f64) {
        let wall = Duration::from_secs_f64((delay_ms * self.scale / 1_000.0).max(0.0));
        self.outbound.push(OutFrame { to, msg, delayed: false }, wall);
    }

    fn timer(&mut self, msg: Msg, delay_ms: f64) {
        let wall = Duration::from_secs_f64((delay_ms * self.scale / 1_000.0).max(0.0));
        self.timers.push(msg, wall);
    }

    fn now_ms(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64() * 1_000.0 / self.scale
    }

    fn setup_result(&mut self, result: SetupResult) {
        if let Some(sink) = self.pending_setups.remove(&result.request) {
            let _ = sink.send(WireMsg::CtrlComposeResult(setup_to_wire(&result)));
        }
    }

    fn stream_report(&mut self, report: StreamReport) {
        if let Some(sink) = self.pending_reports.remove(&report.session) {
            let _ = sink.send(WireMsg::CtrlStreamReport(report_to_wire(&report)));
        }
    }
}

fn spawn_ctrl_writer(stream: TcpStream, stats: Arc<NetStats>) -> Sender<WireMsg> {
    let (tx, rx) = channel::<WireMsg>();
    std::thread::spawn(move || {
        let mut stream = stream;
        for msg in rx {
            let frame = encode_to_vec(&msg);
            if stream.write_all(&frame).is_err() {
                return;
            }
            stats.bytes_tx.fetch_add(frame.len() as u64, Ordering::Relaxed);
            stats.frames_tx.fetch_add(1, Ordering::Relaxed);
        }
    });
    tx
}

/// Pumps decoded frames off `stream` into `on_frame` until EOF, error, or
/// `on_frame` returns `false`.
fn read_frames(
    stream: &mut TcpStream,
    stats: &NetStats,
    mut on_frame: impl FnMut(WireMsg) -> bool,
) {
    let mut dec = FrameDecoder::new();
    let mut buf = [0u8; 64 * 1024];
    loop {
        match dec.next_frame() {
            Ok(Some(frame)) => {
                stats.frames_rx.fetch_add(1, Ordering::Relaxed);
                if !on_frame(frame) {
                    return;
                }
            }
            Ok(None) => match stream.read(&mut buf) {
                Ok(0) | Err(_) => return,
                Ok(n) => {
                    stats.bytes_rx.fetch_add(n as u64, Ordering::Relaxed);
                    dec.extend(&buf[..n]);
                }
            },
            Err(_) => {
                stats.decode_errors.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
    }
}

fn serve_connection(mut stream: TcpStream, engine: Sender<EngineInput>, stats: Arc<NetStats>) {
    let _ = stream.set_nodelay(true);
    // First frame must be a Hello; negotiate and ack.
    let mut hello: Option<(u64, u16)> = None;
    {
        let mut dec = FrameDecoder::new();
        let mut buf = [0u8; 4096];
        let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
        loop {
            match dec.next_frame() {
                Ok(Some(WireMsg::Hello { peer, proto_min, proto_max, .. })) => {
                    if let Some(v) =
                        negotiate((PROTO_VERSION, PROTO_VERSION), (proto_min, proto_max))
                    {
                        hello = Some((peer, v));
                    }
                    // Hand leftover bytes after the Hello back? The frame
                    // decoder is drained below on a fresh one; peers never
                    // pipeline frames before the ack, so nothing is lost.
                    break;
                }
                Ok(Some(_)) | Err(_) => {
                    stats.decode_errors.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                Ok(None) => match stream.read(&mut buf) {
                    Ok(0) | Err(_) => return,
                    Ok(n) => {
                        stats.bytes_rx.fetch_add(n as u64, Ordering::Relaxed);
                        dec.extend(&buf[..n]);
                    }
                },
            }
        }
        let _ = stream.set_read_timeout(None);
    }
    let Some((peer, proto)) = hello else { return };

    if peer == CONTROL_PEER {
        // Control client: replies multiplex over a writer thread whose
        // sender doubles as the engine's reply sink.
        let Ok(write_half) = stream.try_clone() else { return };
        let sink = spawn_ctrl_writer(write_half, stats.clone());
        let _ = sink.send(WireMsg::HelloAck { peer: u64::MAX, proto });
        read_frames(&mut stream, &stats, |frame| {
            engine.send(EngineInput::Ctrl(frame, sink.clone())).is_ok()
        });
    } else {
        // Peer connection: ack directly (the connection is read-only
        // afterwards), then pump protocol frames into the engine.
        let ack = encode_to_vec(&WireMsg::HelloAck { peer: u64::MAX, proto });
        if stream.write_all(&ack).is_err() {
            return;
        }
        stats.bytes_tx.fetch_add(ack.len() as u64, Ordering::Relaxed);
        stats.frames_tx.fetch_add(1, Ordering::Relaxed);
        read_frames(&mut stream, &stats, |frame| match Msg::from_wire(&frame) {
            Some(msg) => engine.send(EngineInput::Deliver(msg)).is_ok(),
            None => true, // not peer traffic; ignore
        });
    }
}

/// Runs one peer daemon until a `CtrlShutdown` arrives. Blocks the
/// calling thread (the engine loop runs here).
pub fn run_node(cfg: NodeConfig) -> std::io::Result<()> {
    let me = PeerId::from(cfg.index);
    let world = Arc::new(World::build(cfg.cluster.clone()));
    let scale = world.cfg.time_scale;
    let stats = Arc::new(NetStats::default());
    let ports = Arc::new(cfg.ports.clone());
    let epoch = Instant::now();

    let listener = TcpListener::bind(("127.0.0.1", cfg.ports[cfg.index]))?;

    let (engine_tx, engine_rx) = channel::<EngineInput>();

    // Timers: local bookkeeping, no faults, straight into the engine.
    let timers = {
        let engine = engine_tx.clone();
        DelayQueue::start(move |msg: Msg| {
            let _ = engine.send(EngineInput::Deliver(msg));
            None
        })
    };

    // Outbound: WAN delay already waited out by the queue; apply
    // sender-side fault injection, then hand survivors to the per-peer
    // writer (or straight to our own inbox for self-sends).
    let writers = Arc::new(Writers {
        me,
        ports,
        stats: stats.clone(),
        world: world.clone(),
        senders: Mutex::new(HashMap::new()),
    });
    let outbound = {
        let engine = engine_tx.clone();
        let writers = writers.clone();
        let world_for_faults = world.clone();
        let faults = world.cfg.faults;
        let mut rng: Rng = rng_for_indexed(world.cfg.seed, "net-faults", cfg.index as u64);
        DelayQueue::start(move |f: OutFrame| {
            if faults.is_active() && !f.delayed && f.msg.droppable() {
                if faults.drop_prob > 0.0 && rng.gen::<f64>() < faults.drop_prob {
                    world_for_faults.msgs_dropped.fetch_add(1, Ordering::Relaxed);
                    return None;
                }
                if faults.extra_delay_ms > 0.0 {
                    let extra = rng.gen::<f64>() * faults.extra_delay_ms;
                    let wall = Duration::from_secs_f64(extra * scale / 1_000.0);
                    return Some((OutFrame { delayed: true, ..f }, wall));
                }
            }
            if f.to == me {
                let _ = engine.send(EngineInput::Deliver(f.msg));
            } else if let Some(wire) = f.msg.to_wire() {
                writers.send(f.to, encode_to_vec(&wire));
            }
            None
        })
    };

    // Acceptor.
    {
        let engine = engine_tx.clone();
        let stats = stats.clone();
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { continue };
                let engine = engine.clone();
                let stats = stats.clone();
                std::thread::spawn(move || serve_connection(stream, engine, stats));
            }
        });
    }

    // Soft-state refresh: registrations are droppable wire traffic, so
    // re-announce periodically (the shard dedups) until shutdown.
    {
        let engine = engine_tx.clone();
        std::thread::spawn(move || loop {
            if engine.send(EngineInput::Announce).is_err() {
                return;
            }
            std::thread::sleep(Duration::from_millis(250));
        });
    }

    // The engine loop: sole owner of the protocol state.
    let mut node = PeerNode::new(me, world.clone(), HashMap::new());
    let mut out = SocketOutbox {
        epoch,
        scale,
        outbound,
        timers,
        pending_setups: HashMap::new(),
        pending_reports: HashMap::new(),
    };
    node.announce(&mut out);
    for input in engine_rx {
        match input {
            EngineInput::Deliver(msg) => node.handle(msg, &mut out),
            EngineInput::Announce => node.announce(&mut out),
            EngineInput::Ctrl(frame, sink) => match frame {
                WireMsg::CtrlCompose { request, dest, chain, budget } => {
                    let Some(chain) = chain
                        .iter()
                        .map(|&c| MediaFunction::from_code(c))
                        .collect::<Option<Vec<_>>>()
                    else {
                        continue;
                    };
                    out.pending_setups.insert(request, sink);
                    node.compose(request, PeerId::new(dest), chain, budget, &mut out);
                }
                WireMsg::CtrlStream {
                    session,
                    path,
                    functions,
                    backups,
                    dest,
                    frames,
                    interval_ms,
                    width,
                    height,
                } => {
                    let Some(functions) = functions
                        .iter()
                        .map(|&c| MediaFunction::from_code(c))
                        .collect::<Option<Vec<_>>>()
                    else {
                        continue;
                    };
                    out.pending_reports.insert(session, sink);
                    node.start_stream(
                        session,
                        path.iter().map(|&p| PeerId::new(p)).collect(),
                        functions,
                        backups
                            .iter()
                            .map(|b| b.iter().map(|&p| PeerId::new(p)).collect())
                            .collect(),
                        PeerId::new(dest),
                        frames,
                        interval_ms,
                        (width as usize, height as usize),
                        &mut out,
                    );
                }
                WireMsg::CtrlStatsRequest => {
                    let _ = sink.send(WireMsg::CtrlStatsReply(WireStats {
                        peer: me.raw(),
                        probes_sent: world.probes_sent.load(Ordering::Relaxed),
                        dht_hops: world.dht_hops.load(Ordering::Relaxed),
                        msgs_dropped: world.msgs_dropped.load(Ordering::Relaxed),
                        store_entries: node.store_entries(),
                        frames_tx: stats.frames_tx.load(Ordering::Relaxed),
                        frames_rx: stats.frames_rx.load(Ordering::Relaxed),
                        bytes_tx: stats.bytes_tx.load(Ordering::Relaxed),
                        bytes_rx: stats.bytes_rx.load(Ordering::Relaxed),
                        conns_opened: stats.conns_opened.load(Ordering::Relaxed),
                        conn_retries: stats.conn_retries.load(Ordering::Relaxed),
                        decode_errors: stats.decode_errors.load(Ordering::Relaxed),
                    }));
                }
                WireMsg::CtrlShutdown => return Ok(()),
                _ => {}
            },
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Control client (used by the deploy orchestrator and tests).
// ---------------------------------------------------------------------

/// A control connection to one daemon.
pub struct CtrlClient {
    stream: TcpStream,
    dec: FrameDecoder,
}

impl CtrlClient {
    /// Dials a daemon's control port, retrying while the process boots.
    pub fn connect(port: u16, timeout: Duration) -> std::io::Result<CtrlClient> {
        let addr = SocketAddr::from(([127, 0, 0, 1], port));
        let deadline = Instant::now() + timeout;
        let stream = loop {
            match TcpStream::connect_timeout(&addr, Duration::from_millis(250)) {
                Ok(s) => break s,
                Err(e) if Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(50)),
            }
        };
        let _ = stream.set_nodelay(true);
        let mut client = CtrlClient { stream, dec: FrameDecoder::new() };
        client.send(&WireMsg::Hello {
            peer: CONTROL_PEER,
            node_id: 0,
            proto_min: PROTO_VERSION,
            proto_max: PROTO_VERSION,
            listen_port: 0,
        })?;
        match client.recv(Duration::from_secs(5))? {
            WireMsg::HelloAck { proto, .. } if proto == PROTO_VERSION => Ok(client),
            other => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("handshake failed: {other:?}"),
            )),
        }
    }

    /// Sends one control frame.
    pub fn send(&mut self, msg: &WireMsg) -> std::io::Result<()> {
        self.stream.write_all(&encode_to_vec(msg))
    }

    /// Receives the next frame, waiting up to `timeout`.
    pub fn recv(&mut self, timeout: Duration) -> std::io::Result<WireMsg> {
        let deadline = Instant::now() + timeout;
        let mut buf = [0u8; 64 * 1024];
        loop {
            match self.dec.next_frame() {
                Ok(Some(frame)) => return Ok(frame),
                Ok(None) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(std::io::ErrorKind::TimedOut.into());
                    }
                    self.stream.set_read_timeout(Some(deadline - now))?;
                    match self.stream.read(&mut buf) {
                        Ok(0) => return Err(std::io::ErrorKind::UnexpectedEof.into()),
                        Ok(n) => self.dec.extend(&buf[..n]),
                        Err(e)
                            if e.kind() == std::io::ErrorKind::WouldBlock
                                || e.kind() == std::io::ErrorKind::TimedOut =>
                        {
                            return Err(std::io::ErrorKind::TimedOut.into())
                        }
                        Err(e) => return Err(e),
                    }
                }
                Err(e) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        e.to_string(),
                    ))
                }
            }
        }
    }

    /// Receives frames until one matches `want` (skipping others, e.g. a
    /// stats reply racing a stream report).
    pub fn recv_matching(
        &mut self,
        timeout: Duration,
        mut want: impl FnMut(&WireMsg) -> bool,
    ) -> std::io::Result<WireMsg> {
        let deadline = Instant::now() + timeout;
        loop {
            let now = Instant::now();
            if now >= deadline {
                return Err(std::io::ErrorKind::TimedOut.into());
            }
            let frame = self.recv(deadline - now)?;
            if want(&frame) {
                return Ok(frame);
            }
        }
    }
}

// ---------------------------------------------------------------------
// The deploy orchestrator.
// ---------------------------------------------------------------------

/// Parameters of one multi-process loopback deployment.
pub struct DeployConfig {
    /// The shared cluster config every daemon is started with.
    pub cluster: ClusterConfig,
    /// Path to the `spidernet-node` executable.
    pub node_exe: std::path::PathBuf,
    /// Function chain to compose (codes must be valid for the registry).
    pub chain: Vec<MediaFunction>,
    /// Composing peer.
    pub source: PeerId,
    /// Receiving peer.
    pub dest: PeerId,
    /// Probing budget β.
    pub budget: u32,
    /// Frames to stream.
    pub frames: u64,
    /// Model ms between frames.
    pub interval_ms: f64,
    /// Frame dimensions.
    pub dims: (u32, u32),
    /// Kill the primary path's first component mid-stream and require a
    /// backup switchover.
    pub kill_primary: bool,
    /// Overall wall-clock budget.
    pub timeout: Duration,
}

impl DeployConfig {
    /// The standard loopback scenario: chain of the first two registry
    /// functions, source/dest on peers hosting other functions — valid
    /// for any `peers >= 8` (every function keeps ≥1 replica and the
    /// two-function chain keeps ≥2, so kill-primary has a backup).
    pub fn standard(peers: usize, seed: u64, node_exe: std::path::PathBuf) -> DeployConfig {
        DeployConfig {
            cluster: ClusterConfig {
                peers,
                seed,
                time_scale: 0.05,
                collect_window_ms: 250.0,
                failover_timeout_ms: 400.0,
                ..ClusterConfig::default()
            },
            node_exe,
            chain: vec![MediaFunction::ALL[0], MediaFunction::ALL[1]],
            source: PeerId::new(2),
            dest: PeerId::new(3),
            budget: 8,
            frames: 200,
            interval_ms: 25.0,
            dims: (8, 8),
            kill_primary: false,
            timeout: Duration::from_secs(45),
        }
    }
}

/// What a deployment produced.
pub struct DeployOutcome {
    /// The composition result.
    pub setup: WireSetup,
    /// The streaming report.
    pub report: WireStreamReport,
    /// Per-node counter snapshots (killed nodes report zeros).
    pub stats: Vec<WireStats>,
    /// Order-independent digest of the deterministic outcome (selected
    /// path, backups, model-time metrics, delivered pixels) — equal
    /// across runs with the same seed when no faults/kills perturb
    /// wall-clock behaviour.
    pub fingerprint: u64,
}

impl DeployOutcome {
    /// A small hand-rolled JSON rendering (the repo has no serde).
    pub fn to_json(&self) -> String {
        let path: Vec<String> = self.setup.path.iter().map(|p| p.to_string()).collect();
        let final_path: Vec<String> = self.report.final_path.iter().map(|p| p.to_string()).collect();
        let dropped: u64 = self.stats.iter().map(|s| s.msgs_dropped).sum();
        format!(
            concat!(
                "{{\"ok\":{},\"path\":[{}],\"backups\":{},",
                "\"discovery_ms\":{:.3},\"probing_ms\":{:.3},\"init_ms\":{:.3},\"total_ms\":{:.3},",
                "\"sent\":{},\"delivered\":{},\"all_valid\":{},\"switches\":{},",
                "\"maintenance_probes\":{},\"final_path\":[{}],\"delivery_digest\":{},",
                "\"msgs_dropped\":{},\"recompositions\":0,\"fingerprint\":{}}}"
            ),
            self.setup.ok,
            path.join(","),
            self.setup.backups.len(),
            self.setup.discovery_ms,
            self.setup.probing_ms,
            self.setup.init_ms,
            self.setup.total_ms,
            self.report.sent,
            self.report.delivered,
            self.report.all_valid,
            self.report.switches,
            self.report.maintenance_probes,
            final_path.join(","),
            self.report.delivery_digest,
            dropped,
            self.fingerprint,
        )
    }
}

fn err(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::other(msg.into())
}

/// Grabs `n` currently-free loopback ports by binding ephemeral
/// listeners. There is a small close-to-rebind window; daemons that lose
/// the race fail to bind and the deploy errors out rather than hanging.
fn free_ports(n: usize) -> std::io::Result<Vec<u16>> {
    let mut holders = Vec::with_capacity(n);
    let mut ports = Vec::with_capacity(n);
    for _ in 0..n {
        let l = TcpListener::bind(("127.0.0.1", 0))?;
        ports.push(l.local_addr()?.port());
        holders.push(l);
    }
    drop(holders);
    Ok(ports)
}

fn fold(h: u64, v: u64) -> u64 {
    splitmix64(h ^ v)
}

fn fingerprint(setup: &WireSetup, report: &WireStreamReport) -> u64 {
    let mut h = fold(0x5350494445524e45, setup.ok as u64); // "SPIDERNE"
    for &p in &setup.path {
        h = fold(h, p);
    }
    for b in &setup.backups {
        h = fold(h, b.len() as u64);
        for &p in b {
            h = fold(h, p);
        }
    }
    for bits in [
        setup.discovery_ms.to_bits(),
        setup.probing_ms.to_bits(),
        setup.init_ms.to_bits(),
        setup.total_ms.to_bits(),
    ] {
        h = fold(h, bits);
    }
    h = fold(h, report.sent);
    h = fold(h, report.delivered);
    h = fold(h, report.all_valid as u64);
    fold(h, report.delivery_digest)
}

/// Spawns an N-process loopback deployment, drives one composition and
/// one streaming session end-to-end (optionally killing the primary
/// path's head mid-stream), gathers stats, and tears everything down.
pub fn deploy(cfg: DeployConfig) -> std::io::Result<DeployOutcome> {
    assert!(cfg.cluster.peers >= 8, "a deployment needs a handful of peers");
    let peers = cfg.cluster.peers;
    let ports = free_ports(peers)?;
    let ports_arg =
        ports.iter().map(|p| p.to_string()).collect::<Vec<_>>().join(",");

    let mut children: Vec<Child> = Vec::with_capacity(peers);
    let spawn_result: std::io::Result<()> = (|| {
        for i in 0..peers {
            let c = &cfg.cluster;
            children.push(
                Command::new(&cfg.node_exe)
                    .arg("serve")
                    .args(["--index", &i.to_string()])
                    .args(["--peers", &peers.to_string()])
                    .args(["--seed", &c.seed.to_string()])
                    .args(["--ports", &ports_arg])
                    .args(["--jitter", &c.jitter.to_string()])
                    .args(["--time-scale", &c.time_scale.to_string()])
                    .args(["--collect-window-ms", &c.collect_window_ms.to_string()])
                    .args(["--quota", &c.quota.to_string()])
                    .args(["--failover-timeout-ms", &c.failover_timeout_ms.to_string()])
                    .args(["--maintenance-period-ms", &c.maintenance_period_ms.to_string()])
                    .args(["--drop-prob", &c.faults.drop_prob.to_string()])
                    .args(["--extra-delay-ms", &c.faults.extra_delay_ms.to_string()])
                    .stdin(Stdio::null())
                    .stdout(Stdio::null())
                    .stderr(Stdio::inherit())
                    .spawn()?,
            );
        }
        Ok(())
    })();

    // Everything from here on must kill the children on the way out.
    let result = spawn_result.and_then(|()| drive_deployment(&cfg, &ports, &mut children));
    for child in &mut children {
        let _ = child.kill();
        let _ = child.wait();
    }
    result
}

fn drive_deployment(
    cfg: &DeployConfig,
    ports: &[u16],
    children: &mut [Child],
) -> std::io::Result<DeployOutcome> {
    let peers = cfg.cluster.peers;
    let deadline = Instant::now() + cfg.timeout;
    let mut clients: Vec<CtrlClient> = Vec::with_capacity(peers);
    for &port in ports {
        clients.push(CtrlClient::connect(port, Duration::from_secs(10))?);
    }

    // Readiness: every component registered into the DHT (the sum of all
    // shard entries reaches the peer count).
    loop {
        let mut total = 0u64;
        for client in clients.iter_mut() {
            client.send(&WireMsg::CtrlStatsRequest)?;
            match client.recv_matching(Duration::from_secs(5), |f| {
                matches!(f, WireMsg::CtrlStatsReply(_))
            })? {
                WireMsg::CtrlStatsReply(s) => total += s.store_entries,
                _ => unreachable!("matched above"),
            }
        }
        if total >= peers as u64 {
            break;
        }
        if Instant::now() >= deadline {
            return Err(err(format!(
                "bootstrap registration incomplete: {total}/{peers} entries"
            )));
        }
        std::thread::sleep(Duration::from_millis(100));
    }

    // Compose from the source node.
    let source_client = cfg.source.index();
    clients[source_client].send(&WireMsg::CtrlCompose {
        request: 1,
        dest: cfg.dest.raw(),
        chain: cfg.chain.iter().map(|f| f.code()).collect(),
        budget: cfg.budget,
    })?;
    let setup = match clients[source_client].recv_matching(cfg.timeout, |f| {
        matches!(f, WireMsg::CtrlComposeResult(_))
    })? {
        WireMsg::CtrlComposeResult(s) => s,
        _ => unreachable!("matched above"),
    };
    if !setup.ok {
        return Err(err("composition failed"));
    }
    if cfg.kill_primary && setup.backups.is_empty() {
        return Err(err("kill-primary requested but probing found no backup path"));
    }

    // Stream; optionally kill the primary head partway through.
    clients[source_client].send(&WireMsg::CtrlStream {
        session: setup.request,
        path: setup.path.clone(),
        functions: setup.functions.clone(),
        backups: setup.backups.clone(),
        dest: setup.dest,
        frames: cfg.frames,
        interval_ms: cfg.interval_ms,
        width: cfg.dims.0,
        height: cfg.dims.1,
    })?;
    if cfg.kill_primary {
        // Let roughly a quarter of the stream flow, then fail the head.
        let quarter =
            cfg.frames as f64 * cfg.interval_ms * cfg.cluster.time_scale / 1_000.0 * 0.25;
        std::thread::sleep(Duration::from_secs_f64(quarter.max(0.05)));
        let head = setup.path[0] as usize;
        children[head].kill()?;
        children[head].wait()?;
    }
    let report = match clients[source_client]
        .recv_matching(cfg.timeout, |f| matches!(f, WireMsg::CtrlStreamReport(_)))?
    {
        WireMsg::CtrlStreamReport(r) => r,
        _ => unreachable!("matched above"),
    };

    // Final stats sweep (killed nodes report zeros).
    let killed: Option<usize> = cfg.kill_primary.then(|| setup.path[0] as usize);
    let mut stats = Vec::with_capacity(peers);
    for (i, client) in clients.iter_mut().enumerate() {
        if Some(i) == killed {
            stats.push(WireStats { peer: i as u64, ..WireStats::default() });
            continue;
        }
        let snap = client.send(&WireMsg::CtrlStatsRequest).and_then(|()| {
            client.recv_matching(Duration::from_secs(5), |f| {
                matches!(f, WireMsg::CtrlStatsReply(_))
            })
        });
        match snap {
            Ok(WireMsg::CtrlStatsReply(s)) => stats.push(s),
            _ => stats.push(WireStats { peer: i as u64, ..WireStats::default() }),
        }
    }

    // Graceful shutdown for whoever is still alive (the caller reaps).
    for (i, client) in clients.iter_mut().enumerate() {
        if Some(i) != killed {
            let _ = client.send(&WireMsg::CtrlShutdown);
        }
    }

    let fingerprint = fingerprint(&setup, &report);
    Ok(DeployOutcome { setup, report, stats, fingerprint })
}
