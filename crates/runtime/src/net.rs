//! The socket transport: TCP connection management, the `spidernet-node`
//! daemon runtime, and the loopback `deploy` orchestrator.
//!
//! One OS process per peer. Each daemon rebuilds the shared [`World`]
//! deterministically from `(config, seed)`, runs the same
//! [`PeerNode`] engine as the in-process cluster, and exchanges
//! [`spidernet_wire`] frames over per-pair TCP connections
//! (thread-per-connection, `std::net` — no async runtime, so
//! deterministic tests never depend on an executor's scheduling).
//!
//! ## Connection lifecycle
//!
//! Connections are directional: a peer dials on demand when it first
//! sends to a neighbor (outbound connections are write-only after the
//! handshake) and accepts inbound connections for receiving. Every
//! connection opens with a `Hello` carrying the speaker's identity and
//! supported protocol range; the acceptor answers `HelloAck` with the
//! negotiated version ([`spidernet_wire::negotiate`]). Dial failures
//! retry with capped exponential backoff; a peer that stays unreachable
//! is treated as dead — its traffic is dropped, exactly like the
//! in-process network's dead-peer rule.
//!
//! ## Fault injection
//!
//! [`NetFaultConfig`] is honored at the *sender's* network layer, before
//! bytes reach a socket: droppable frames ([`Msg::droppable`]) roll the
//! drop probability once and survivors may be re-queued with extra
//! delay — the same two-step rule as the in-process delay queue, so a
//! fault config means the same thing in both deployments.
//!
//! ## Model time
//!
//! The content-keyed WAN delay of every message is served by a wall
//! delay queue before transmission (model ms × `time_scale`), and the
//! accumulated `at_ms` timestamps make all reported setup metrics pure
//! functions of message content — a socket deployment reports the same
//! numbers as the in-process cluster for the same seed.

use crate::media::MediaFunction;
use crate::msg::Msg;
use crate::node::{ClusterConfig, Outbox, PeerNode, SetupResult, StreamReport, World};
use spidernet_sim::trace::TraceEvent;
use spidernet_util::id::PeerId;
use spidernet_util::rng::{rng_for_indexed, splitmix64, Rng};
use spidernet_wire::{
    encode_to_vec, negotiate, FrameDecoder, WireMsg, WireSetup, WireStats, WireStreamReport,
    CONTROL_PEER, PROTO_VERSION,
};
use std::collections::{BinaryHeap, HashMap};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// Conversions between engine results and their control-frame forms.
// ---------------------------------------------------------------------

/// The control-frame form of a setup result.
pub fn setup_to_wire(s: &SetupResult) -> WireSetup {
    WireSetup {
        request: s.request,
        ok: s.ok,
        dest: s.dest.raw(),
        path: s.path.iter().map(|p| p.raw()).collect(),
        functions: s.functions.iter().map(|f| f.code()).collect(),
        backups: s.backups.iter().map(|b| b.iter().map(|p| p.raw()).collect()).collect(),
        discovery_ms: s.discovery_ms,
        probing_ms: s.probing_ms,
        init_ms: s.init_ms,
        total_ms: s.total_ms,
    }
}

/// Reconstructs a setup result from its control frame (`None` on unknown
/// function codes).
pub fn setup_from_wire(w: &WireSetup) -> Option<SetupResult> {
    Some(SetupResult {
        request: w.request,
        ok: w.ok,
        dest: PeerId::new(w.dest),
        path: w.path.iter().map(|&p| PeerId::new(p)).collect(),
        functions: w.functions.iter().map(|&c| MediaFunction::from_code(c)).collect::<Option<_>>()?,
        backups: w
            .backups
            .iter()
            .map(|b| b.iter().map(|&p| PeerId::new(p)).collect())
            .collect(),
        discovery_ms: w.discovery_ms,
        probing_ms: w.probing_ms,
        init_ms: w.init_ms,
        total_ms: w.total_ms,
    })
}

/// The control-frame form of a stream report.
pub fn report_to_wire(r: &StreamReport) -> WireStreamReport {
    WireStreamReport {
        session: r.session,
        sent: r.sent,
        delivered: r.delivered,
        all_valid: r.all_valid,
        switches: r.switches,
        maintenance_probes: r.maintenance_probes,
        final_path: r.final_path.iter().map(|p| p.raw()).collect(),
        delivery_digest: r.delivery_digest,
    }
}

/// Reconstructs a stream report from its control frame.
pub fn report_from_wire(w: &WireStreamReport) -> StreamReport {
    StreamReport {
        session: w.session,
        sent: w.sent,
        delivered: w.delivered,
        all_valid: w.all_valid,
        switches: w.switches,
        maintenance_probes: w.maintenance_probes,
        final_path: w.final_path.iter().map(|&p| PeerId::new(p)).collect(),
        delivery_digest: w.delivery_digest,
    }
}

// ---------------------------------------------------------------------
// Per-daemon transport counters.
// ---------------------------------------------------------------------

/// Socket-layer counters, reported via `CtrlStatsReply`.
#[derive(Default)]
pub struct NetStats {
    /// Wire frames encoded and handed to a connection.
    pub frames_tx: AtomicU64,
    /// Wire frames decoded off connections.
    pub frames_rx: AtomicU64,
    /// Bytes written (headers + payloads).
    pub bytes_tx: AtomicU64,
    /// Bytes read.
    pub bytes_rx: AtomicU64,
    /// Outbound connections successfully established.
    pub conns_opened: AtomicU64,
    /// Failed outbound dial attempts.
    pub conn_retries: AtomicU64,
    /// Frames rejected by the decoder.
    pub decode_errors: AtomicU64,
}

// ---------------------------------------------------------------------
// Wall delay queue (model delay × time_scale before an item fires).
// ---------------------------------------------------------------------

struct DqEntry<T> {
    due: Instant,
    seq: u64,
    item: T,
}

impl<T> PartialEq for DqEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl<T> Eq for DqEntry<T> {}
impl<T> Ord for DqEntry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.due.cmp(&self.due).then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<T> PartialOrd for DqEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct DqState<T> {
    heap: BinaryHeap<DqEntry<T>>,
    seq: u64,
    shutdown: bool,
}

struct DqInner<T> {
    state: Mutex<DqState<T>>,
    cond: Condvar,
}

/// A wall-time delay queue with a dedicated pump thread. The handler may
/// re-queue an item (fault-injected extra delay) by returning
/// `Some((item, extra))`.
struct DelayQueue<T> {
    inner: Arc<DqInner<T>>,
}

impl<T> Clone for DelayQueue<T> {
    fn clone(&self) -> Self {
        DelayQueue { inner: self.inner.clone() }
    }
}

impl<T: Send + 'static> DelayQueue<T> {
    fn start<F>(mut handle: F) -> DelayQueue<T>
    where
        F: FnMut(T) -> Option<(T, Duration)> + Send + 'static,
    {
        let inner = Arc::new(DqInner {
            state: Mutex::new(DqState { heap: BinaryHeap::new(), seq: 0, shutdown: false }),
            cond: Condvar::new(),
        });
        let pump = inner.clone();
        std::thread::spawn(move || loop {
            let mut q = pump.state.lock().unwrap();
            if q.shutdown {
                return;
            }
            let now = Instant::now();
            let wait = match q.heap.peek() {
                Some(e) if e.due <= now => {
                    let e = q.heap.pop().expect("peeked");
                    drop(q);
                    if let Some((item, extra)) = handle(e.item) {
                        let mut q = pump.state.lock().unwrap();
                        let seq = q.seq;
                        q.seq += 1;
                        q.heap.push(DqEntry { due: Instant::now() + extra, seq, item });
                        pump.cond.notify_one();
                    }
                    continue;
                }
                Some(e) => e.due - now,
                None => Duration::from_millis(50),
            };
            let _ = pump.cond.wait_timeout(q, wait).unwrap();
        });
        DelayQueue { inner }
    }

    fn push(&self, item: T, wall: Duration) {
        let mut q = self.inner.state.lock().unwrap();
        let seq = q.seq;
        q.seq += 1;
        q.heap.push(DqEntry { due: Instant::now() + wall, seq, item });
        self.inner.cond.notify_one();
    }
}

// ---------------------------------------------------------------------
// Outbound connections: dial-on-demand, per-peer writer threads.
// ---------------------------------------------------------------------

/// How long a peer stays blacklisted after its dial budget is exhausted.
/// Traffic queued toward it during the blackout is dropped — the socket
/// equivalent of the in-process network's dead-peer rule.
pub(crate) const PEER_DOWN_COOLDOWN: Duration = Duration::from_millis(500);

/// Dials `to` with capped exponential backoff and performs the
/// client-side handshake (`Hello` out, `HelloAck` back). `None` after the
/// attempt budget — the peer is presumed dead for now. Shared by the
/// blocking writer threads and the event transport's dial helpers; the
/// connection returned is in blocking mode.
pub(crate) fn dial_peer(
    me: PeerId,
    ports: &[u16],
    to: PeerId,
    stats: &NetStats,
    world: &World,
) -> Option<TcpStream> {
    let addr = SocketAddr::from(([127, 0, 0, 1], ports[to.index()]));
    let mut backoff = Duration::from_millis(20);
    for attempt in 0u32..5 {
        if attempt > 0 {
            std::thread::sleep(backoff);
            backoff = (backoff * 2).min(Duration::from_millis(200));
        }
        let Ok(mut stream) = TcpStream::connect_timeout(&addr, Duration::from_millis(250)) else {
            stats.conn_retries.fetch_add(1, Ordering::Relaxed);
            world.record(TraceEvent::ConnRetry { peer: to.raw(), attempt });
            continue;
        };
        let _ = stream.set_nodelay(true);
        let hello = encode_to_vec(&WireMsg::Hello {
            peer: me.raw(),
            node_id: 0,
            proto_min: PROTO_VERSION,
            proto_max: PROTO_VERSION,
            listen_port: ports[me.index()],
        });
        if stream.write_all(&hello).is_err() {
            stats.conn_retries.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        stats.bytes_tx.fetch_add(hello.len() as u64, Ordering::Relaxed);
        stats.frames_tx.fetch_add(1, Ordering::Relaxed);
        // Wait for the HelloAck so a half-open acceptor can't swallow
        // protocol frames.
        let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
        let mut dec = FrameDecoder::new();
        let mut buf = [0u8; 256];
        let ack = loop {
            match dec.next_frame() {
                Ok(Some(frame)) => break Some(frame),
                Ok(None) => match stream.read(&mut buf) {
                    Ok(0) | Err(_) => break None,
                    Ok(n) => {
                        stats.bytes_rx.fetch_add(n as u64, Ordering::Relaxed);
                        dec.extend(&buf[..n]);
                    }
                },
                Err(_) => {
                    stats.decode_errors.fetch_add(1, Ordering::Relaxed);
                    break None;
                }
            }
        };
        match ack {
            Some(WireMsg::HelloAck { proto, .. }) if proto == PROTO_VERSION => {
                let _ = stream.set_read_timeout(None);
                stats.conns_opened.fetch_add(1, Ordering::Relaxed);
                world.record(TraceEvent::ConnOpened { peer: to.raw() });
                return Some(stream);
            }
            _ => {
                stats.conn_retries.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    None
}

struct Writers {
    me: PeerId,
    ports: Arc<Vec<u16>>,
    stats: Arc<NetStats>,
    world: Arc<World>,
    senders: Mutex<HashMap<PeerId, Sender<Vec<u8>>>>,
}

impl Writers {
    fn send(self: &Arc<Self>, to: PeerId, frame: Vec<u8>) {
        let mut senders = self.senders.lock().unwrap();
        let tx = senders.entry(to).or_insert_with(|| {
            let (tx, rx) = channel::<Vec<u8>>();
            let w = self.clone();
            std::thread::spawn(move || w.writer_loop(to, rx));
            tx
        });
        let _ = tx.send(frame);
    }

    /// Dials `to` with capped exponential backoff and performs the
    /// client-side handshake. `None` after the attempt budget — the peer
    /// is presumed dead for now.
    fn dial(&self, to: PeerId) -> Option<TcpStream> {
        dial_peer(self.me, &self.ports, to, &self.stats, &self.world)
    }

    fn writer_loop(&self, to: PeerId, rx: Receiver<Vec<u8>>) {
        let mut conn: Option<TcpStream> = None;
        let mut down_until: Option<Instant> = None;
        for frame in rx {
            if let Some(t) = down_until {
                if Instant::now() < t {
                    continue; // peer presumed dead: drop its traffic
                }
                down_until = None;
            }
            if conn.is_none() {
                conn = self.dial(to);
                if conn.is_none() {
                    self.world.record(TraceEvent::ConnClosed { peer: to.raw() });
                    down_until = Some(Instant::now() + PEER_DOWN_COOLDOWN);
                    continue;
                }
            }
            let stream = conn.as_mut().expect("just dialed");
            if stream.write_all(&frame).is_err() {
                // One reconnect attempt for the frame in hand, then give up
                // on it (the protocol tolerates wire loss).
                conn = self.dial(to);
                let rewritten = match conn.as_mut() {
                    Some(stream) => stream.write_all(&frame).is_ok(),
                    None => false,
                };
                if !rewritten {
                    conn = None;
                    self.world.record(TraceEvent::ConnClosed { peer: to.raw() });
                    down_until = Some(Instant::now() + PEER_DOWN_COOLDOWN);
                    continue;
                }
            }
            self.stats.bytes_tx.fetch_add(frame.len() as u64, Ordering::Relaxed);
            self.stats.frames_tx.fetch_add(1, Ordering::Relaxed);
        }
    }
}

// ---------------------------------------------------------------------
// The daemon: engine thread + listener + delay queues.
// ---------------------------------------------------------------------

/// Which connection machinery a daemon runs under its engine.
///
/// Both transports speak the identical wire protocol, honor the same
/// fault-injection rules at the same layer, and produce bit-identical
/// deployment fingerprints — the choice only affects threads vs
/// readiness polling.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TransportKind {
    /// Single-poller event loop (`epoll`): multiplexed connections,
    /// bounded per-peer outbound queues with media-frame shedding,
    /// batched vectored writes, pooled frame buffers. The default; on
    /// non-Linux hosts it silently falls back to [`Self::Blocking`].
    #[default]
    Event,
    /// The original thread-per-connection blocking transport. Kept for
    /// one release as an escape hatch (`--transport blocking`).
    Blocking,
}

impl std::str::FromStr for TransportKind {
    type Err = String;

    fn from_str(s: &str) -> Result<TransportKind, String> {
        match s {
            "event" => Ok(TransportKind::Event),
            "blocking" => Ok(TransportKind::Blocking),
            other => Err(format!("unknown transport {other:?} (want event|blocking)")),
        }
    }
}

impl std::fmt::Display for TransportKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TransportKind::Event => "event",
            TransportKind::Blocking => "blocking",
        })
    }
}

/// Everything a `spidernet-node` process needs to join a deployment.
pub struct NodeConfig {
    /// This peer's index (also its position in `ports`).
    pub index: usize,
    /// The shared deployment config; every node of a deployment must be
    /// started with identical values.
    pub cluster: ClusterConfig,
    /// Loopback listen port of every peer, by index.
    pub ports: Vec<u16>,
    /// Connection machinery (event-driven by default).
    pub transport: TransportKind,
}

/// Where a control connection's replies go. The blocking transport wraps
/// a writer thread's channel; the event transport wraps a command back
/// into its poller loop. Either way the engine neither knows nor cares.
pub(crate) type ReplySink = Arc<dyn Fn(WireMsg) + Send + Sync>;

pub(crate) enum EngineInput {
    /// A protocol message, from the wire or a local timer.
    Deliver(Msg),
    /// A control frame plus the reply sink of its connection.
    Ctrl(WireMsg, ReplySink),
    /// Periodic soft-state refresh: re-advertise this node's component.
    Announce,
}

struct SocketOutbox {
    epoch: Instant,
    scale: f64,
    outbound: DelayQueue<OutFrame>,
    timers: DelayQueue<Msg>,
    pending_setups: HashMap<u64, ReplySink>,
    pending_reports: HashMap<u64, ReplySink>,
}

struct OutFrame {
    to: PeerId,
    msg: Msg,
    /// Already fault-injected (re-queued with extra jitter); never rolled
    /// twice.
    delayed: bool,
}

impl Outbox for SocketOutbox {
    fn wire(&mut self, to: PeerId, msg: Msg, delay_ms: f64) {
        let wall = Duration::from_secs_f64((delay_ms * self.scale / 1_000.0).max(0.0));
        self.outbound.push(OutFrame { to, msg, delayed: false }, wall);
    }

    fn timer(&mut self, msg: Msg, delay_ms: f64) {
        let wall = Duration::from_secs_f64((delay_ms * self.scale / 1_000.0).max(0.0));
        self.timers.push(msg, wall);
    }

    fn now_ms(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64() * 1_000.0 / self.scale
    }

    fn setup_result(&mut self, result: SetupResult) {
        if let Some(sink) = self.pending_setups.remove(&result.request) {
            sink(WireMsg::CtrlComposeResult(setup_to_wire(&result)));
        }
    }

    fn stream_report(&mut self, report: StreamReport) {
        if let Some(sink) = self.pending_reports.remove(&report.session) {
            sink(WireMsg::CtrlStreamReport(report_to_wire(&report)));
        }
    }
}

fn spawn_ctrl_writer(stream: TcpStream, stats: Arc<NetStats>) -> Sender<WireMsg> {
    let (tx, rx) = channel::<WireMsg>();
    std::thread::spawn(move || {
        let mut stream = stream;
        for msg in rx {
            let frame = encode_to_vec(&msg);
            if stream.write_all(&frame).is_err() {
                return;
            }
            stats.bytes_tx.fetch_add(frame.len() as u64, Ordering::Relaxed);
            stats.frames_tx.fetch_add(1, Ordering::Relaxed);
        }
    });
    tx
}

/// Pumps decoded frames off `stream` into `on_frame` until EOF, error, or
/// `on_frame` returns `false`.
fn read_frames(
    stream: &mut TcpStream,
    stats: &NetStats,
    mut on_frame: impl FnMut(WireMsg) -> bool,
) {
    let mut dec = FrameDecoder::new();
    let mut buf = [0u8; 64 * 1024];
    loop {
        match dec.next_frame() {
            Ok(Some(frame)) => {
                stats.frames_rx.fetch_add(1, Ordering::Relaxed);
                if !on_frame(frame) {
                    return;
                }
            }
            Ok(None) => match stream.read(&mut buf) {
                Ok(0) | Err(_) => return,
                Ok(n) => {
                    stats.bytes_rx.fetch_add(n as u64, Ordering::Relaxed);
                    dec.extend(&buf[..n]);
                }
            },
            Err(_) => {
                stats.decode_errors.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
    }
}

fn serve_connection(mut stream: TcpStream, engine: Sender<EngineInput>, stats: Arc<NetStats>) {
    let _ = stream.set_nodelay(true);
    // First frame must be a Hello; negotiate and ack.
    let mut hello: Option<(u64, u16)> = None;
    {
        let mut dec = FrameDecoder::new();
        let mut buf = [0u8; 4096];
        let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
        loop {
            match dec.next_frame() {
                Ok(Some(WireMsg::Hello { peer, proto_min, proto_max, .. })) => {
                    if let Some(v) =
                        negotiate((PROTO_VERSION, PROTO_VERSION), (proto_min, proto_max))
                    {
                        hello = Some((peer, v));
                    }
                    // Hand leftover bytes after the Hello back? The frame
                    // decoder is drained below on a fresh one; peers never
                    // pipeline frames before the ack, so nothing is lost.
                    break;
                }
                Ok(Some(_)) | Err(_) => {
                    stats.decode_errors.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                Ok(None) => match stream.read(&mut buf) {
                    Ok(0) | Err(_) => return,
                    Ok(n) => {
                        stats.bytes_rx.fetch_add(n as u64, Ordering::Relaxed);
                        dec.extend(&buf[..n]);
                    }
                },
            }
        }
        let _ = stream.set_read_timeout(None);
    }
    let Some((peer, proto)) = hello else { return };

    if peer == CONTROL_PEER {
        // Control client: replies multiplex over a writer thread whose
        // sender doubles as the engine's reply sink.
        let Ok(write_half) = stream.try_clone() else { return };
        let tx = spawn_ctrl_writer(write_half, stats.clone());
        let _ = tx.send(WireMsg::HelloAck { peer: u64::MAX, proto });
        let sink: ReplySink = Arc::new(move |msg| {
            let _ = tx.send(msg);
        });
        read_frames(&mut stream, &stats, |frame| {
            engine.send(EngineInput::Ctrl(frame, sink.clone())).is_ok()
        });
    } else {
        // Peer connection: ack directly (the connection is read-only
        // afterwards), then pump protocol frames into the engine.
        let ack = encode_to_vec(&WireMsg::HelloAck { peer: u64::MAX, proto });
        if stream.write_all(&ack).is_err() {
            return;
        }
        stats.bytes_tx.fetch_add(ack.len() as u64, Ordering::Relaxed);
        stats.frames_tx.fetch_add(1, Ordering::Relaxed);
        read_frames(&mut stream, &stats, |frame| match Msg::from_wire(&frame) {
            Some(msg) => engine.send(EngineInput::Deliver(msg)).is_ok(),
            None => true, // not peer traffic; ignore
        });
    }
}

/// The outbound half of whichever transport a daemon runs: encode-and-send
/// one wire message toward a peer.
enum FrameSender {
    Writers(Arc<Writers>),
    #[cfg(target_os = "linux")]
    Event(crate::evnet::EventNet),
}

impl FrameSender {
    fn send(&self, to: PeerId, wire: WireMsg) {
        match self {
            FrameSender::Writers(w) => w.send(to, encode_to_vec(&wire)),
            #[cfg(target_os = "linux")]
            FrameSender::Event(net) => net.send(to, wire),
        }
    }
}

#[cfg(target_os = "linux")]
fn start_event_transport(
    listener: TcpListener,
    me: PeerId,
    ports: Arc<Vec<u16>>,
    stats: Arc<NetStats>,
    world: Arc<World>,
    engine: Sender<EngineInput>,
) -> std::io::Result<FrameSender> {
    Ok(FrameSender::Event(crate::evnet::EventNet::start(
        listener, me, ports, stats, world, engine,
    )?))
}

#[cfg(not(target_os = "linux"))]
fn start_event_transport(
    _listener: TcpListener,
    _me: PeerId,
    _ports: Arc<Vec<u16>>,
    _stats: Arc<NetStats>,
    _world: Arc<World>,
    _engine: Sender<EngineInput>,
) -> std::io::Result<FrameSender> {
    unreachable!("the event transport is Linux-only; run_node falls back to Blocking")
}

/// Runs one peer daemon until a `CtrlShutdown` arrives. Blocks the
/// calling thread (the engine loop runs here).
pub fn run_node(cfg: NodeConfig) -> std::io::Result<()> {
    let me = PeerId::from(cfg.index);
    let world = Arc::new(World::build(cfg.cluster.clone()));
    let scale = world.cfg.time_scale;
    let stats = Arc::new(NetStats::default());
    let ports = Arc::new(cfg.ports.clone());
    let epoch = Instant::now();

    let listener = TcpListener::bind(("127.0.0.1", cfg.ports[cfg.index]))?;

    let (engine_tx, engine_rx) = channel::<EngineInput>();

    // Timers: local bookkeeping, no faults, straight into the engine.
    let timers = {
        let engine = engine_tx.clone();
        DelayQueue::start(move |msg: Msg| {
            let _ = engine.send(EngineInput::Deliver(msg));
            None
        })
    };

    // The connection machinery behind the fault-injection layer: either
    // the event poller (owns the listener and every socket) or the
    // blocking per-peer writer threads plus a thread-per-connection
    // acceptor. Both expose "hand me a wire message for a peer".
    let use_event = cfg.transport == TransportKind::Event && cfg!(target_os = "linux");
    let sender = if use_event {
        start_event_transport(
            listener,
            me,
            ports,
            stats.clone(),
            world.clone(),
            engine_tx.clone(),
        )?
    } else {
        let writers = Arc::new(Writers {
            me,
            ports,
            stats: stats.clone(),
            world: world.clone(),
            senders: Mutex::new(HashMap::new()),
        });
        let engine = engine_tx.clone();
        let stats = stats.clone();
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { continue };
                let engine = engine.clone();
                let stats = stats.clone();
                std::thread::spawn(move || serve_connection(stream, engine, stats));
            }
        });
        FrameSender::Writers(writers)
    };

    // Outbound: WAN delay already waited out by the queue; apply
    // sender-side fault injection, then hand survivors to the transport
    // (or straight to our own inbox for self-sends).
    let outbound = {
        let engine = engine_tx.clone();
        let world_for_faults = world.clone();
        let faults = world.cfg.faults;
        let mut rng: Rng = rng_for_indexed(world.cfg.seed, "net-faults", cfg.index as u64);
        DelayQueue::start(move |f: OutFrame| {
            if faults.is_active() && !f.delayed && f.msg.droppable() {
                if faults.drop_prob > 0.0 && rng.gen::<f64>() < faults.drop_prob {
                    world_for_faults.msgs_dropped.fetch_add(1, Ordering::Relaxed);
                    return None;
                }
                if faults.extra_delay_ms > 0.0 {
                    let extra = rng.gen::<f64>() * faults.extra_delay_ms;
                    let wall = Duration::from_secs_f64(extra * scale / 1_000.0);
                    return Some((OutFrame { delayed: true, ..f }, wall));
                }
            }
            if f.to == me {
                let _ = engine.send(EngineInput::Deliver(f.msg));
            } else if let Some(wire) = f.msg.to_wire() {
                sender.send(f.to, wire);
            }
            None
        })
    };

    // Soft-state refresh: registrations are droppable wire traffic, so
    // re-announce periodically (the shard dedups) until shutdown.
    {
        let engine = engine_tx.clone();
        std::thread::spawn(move || loop {
            if engine.send(EngineInput::Announce).is_err() {
                return;
            }
            std::thread::sleep(Duration::from_millis(250));
        });
    }

    // The engine loop: sole owner of the protocol state.
    let mut node = PeerNode::new(me, world.clone(), HashMap::new());
    let mut out = SocketOutbox {
        epoch,
        scale,
        outbound,
        timers,
        pending_setups: HashMap::new(),
        pending_reports: HashMap::new(),
    };
    node.announce(&mut out);
    for input in engine_rx {
        match input {
            EngineInput::Deliver(msg) => node.handle(msg, &mut out),
            EngineInput::Announce => node.announce(&mut out),
            EngineInput::Ctrl(frame, sink) => match frame {
                WireMsg::CtrlCompose { request, dest, chain, budget } => {
                    let Some(chain) = chain
                        .iter()
                        .map(|&c| MediaFunction::from_code(c))
                        .collect::<Option<Vec<_>>>()
                    else {
                        continue;
                    };
                    out.pending_setups.insert(request, sink);
                    node.compose(request, PeerId::new(dest), chain, budget, &mut out);
                }
                WireMsg::CtrlStream {
                    session,
                    path,
                    functions,
                    backups,
                    dest,
                    frames,
                    interval_ms,
                    width,
                    height,
                } => {
                    let Some(functions) = functions
                        .iter()
                        .map(|&c| MediaFunction::from_code(c))
                        .collect::<Option<Vec<_>>>()
                    else {
                        continue;
                    };
                    out.pending_reports.insert(session, sink);
                    node.start_stream(
                        session,
                        path.iter().map(|&p| PeerId::new(p)).collect(),
                        functions,
                        backups
                            .iter()
                            .map(|b| b.iter().map(|&p| PeerId::new(p)).collect())
                            .collect(),
                        PeerId::new(dest),
                        frames,
                        interval_ms,
                        (width as usize, height as usize),
                        &mut out,
                    );
                }
                WireMsg::CtrlStatsRequest => {
                    sink(WireMsg::CtrlStatsReply(WireStats {
                        peer: me.raw(),
                        probes_sent: world.probes_sent.load(Ordering::Relaxed),
                        dht_hops: world.dht_hops.load(Ordering::Relaxed),
                        msgs_dropped: world.msgs_dropped.load(Ordering::Relaxed),
                        store_entries: node.store_entries(),
                        frames_tx: stats.frames_tx.load(Ordering::Relaxed),
                        frames_rx: stats.frames_rx.load(Ordering::Relaxed),
                        bytes_tx: stats.bytes_tx.load(Ordering::Relaxed),
                        bytes_rx: stats.bytes_rx.load(Ordering::Relaxed),
                        conns_opened: stats.conns_opened.load(Ordering::Relaxed),
                        conn_retries: stats.conn_retries.load(Ordering::Relaxed),
                        decode_errors: stats.decode_errors.load(Ordering::Relaxed),
                    }));
                }
                WireMsg::CtrlShutdown => return Ok(()),
                _ => {}
            },
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Control client (used by the deploy orchestrator and tests).
// ---------------------------------------------------------------------

/// A control connection to one daemon.
pub struct CtrlClient {
    stream: TcpStream,
    dec: FrameDecoder,
}

impl CtrlClient {
    /// Dials a daemon's control port, retrying while the process boots.
    pub fn connect(port: u16, timeout: Duration) -> std::io::Result<CtrlClient> {
        let addr = SocketAddr::from(([127, 0, 0, 1], port));
        let deadline = Instant::now() + timeout;
        let stream = loop {
            match TcpStream::connect_timeout(&addr, Duration::from_millis(250)) {
                Ok(s) => break s,
                Err(e) if Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(50)),
            }
        };
        let _ = stream.set_nodelay(true);
        let mut client = CtrlClient { stream, dec: FrameDecoder::new() };
        client.send(&WireMsg::Hello {
            peer: CONTROL_PEER,
            node_id: 0,
            proto_min: PROTO_VERSION,
            proto_max: PROTO_VERSION,
            listen_port: 0,
        })?;
        match client.recv(Duration::from_secs(5))? {
            WireMsg::HelloAck { proto, .. } if proto == PROTO_VERSION => Ok(client),
            other => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("handshake failed: {other:?}"),
            )),
        }
    }

    /// Sends one control frame.
    pub fn send(&mut self, msg: &WireMsg) -> std::io::Result<()> {
        self.stream.write_all(&encode_to_vec(msg))
    }

    /// Receives the next frame, waiting up to `timeout`.
    pub fn recv(&mut self, timeout: Duration) -> std::io::Result<WireMsg> {
        let deadline = Instant::now() + timeout;
        let mut buf = [0u8; 64 * 1024];
        loop {
            match self.dec.next_frame() {
                Ok(Some(frame)) => return Ok(frame),
                Ok(None) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(std::io::ErrorKind::TimedOut.into());
                    }
                    self.stream.set_read_timeout(Some(deadline - now))?;
                    match self.stream.read(&mut buf) {
                        Ok(0) => return Err(std::io::ErrorKind::UnexpectedEof.into()),
                        Ok(n) => self.dec.extend(&buf[..n]),
                        Err(e)
                            if e.kind() == std::io::ErrorKind::WouldBlock
                                || e.kind() == std::io::ErrorKind::TimedOut =>
                        {
                            return Err(std::io::ErrorKind::TimedOut.into())
                        }
                        Err(e) => return Err(e),
                    }
                }
                Err(e) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        e.to_string(),
                    ))
                }
            }
        }
    }

    /// Receives frames until one matches `want` (skipping others, e.g. a
    /// stats reply racing a stream report).
    pub fn recv_matching(
        &mut self,
        timeout: Duration,
        mut want: impl FnMut(&WireMsg) -> bool,
    ) -> std::io::Result<WireMsg> {
        let deadline = Instant::now() + timeout;
        loop {
            let now = Instant::now();
            if now >= deadline {
                return Err(std::io::ErrorKind::TimedOut.into());
            }
            let frame = self.recv(deadline - now)?;
            if want(&frame) {
                return Ok(frame);
            }
        }
    }
}

// ---------------------------------------------------------------------
// The deploy orchestrator.
// ---------------------------------------------------------------------

/// Parameters of one multi-process loopback deployment.
pub struct DeployConfig {
    /// The shared cluster config every daemon is started with.
    pub cluster: ClusterConfig,
    /// Path to the `spidernet-node` executable.
    pub node_exe: std::path::PathBuf,
    /// Function chain to compose (codes must be valid for the registry).
    pub chain: Vec<MediaFunction>,
    /// Composing peer.
    pub source: PeerId,
    /// Receiving peer.
    pub dest: PeerId,
    /// Probing budget β.
    pub budget: u32,
    /// Frames to stream.
    pub frames: u64,
    /// Model ms between frames.
    pub interval_ms: f64,
    /// Frame dimensions.
    pub dims: (u32, u32),
    /// Kill the primary path's first component mid-stream and require a
    /// backup switchover.
    pub kill_primary: bool,
    /// Overall wall-clock budget.
    pub timeout: Duration,
    /// Connection machinery every daemon runs (forwarded as
    /// `--transport`).
    pub transport: TransportKind,
}

impl DeployConfig {
    /// The standard loopback scenario: chain of the first two registry
    /// functions, source/dest on peers hosting other functions — valid
    /// for any `peers >= 8` (every function keeps ≥1 replica and the
    /// two-function chain keeps ≥2, so kill-primary has a backup).
    pub fn standard(peers: usize, seed: u64, node_exe: std::path::PathBuf) -> DeployConfig {
        DeployConfig {
            cluster: ClusterConfig {
                peers,
                seed,
                time_scale: 0.05,
                collect_window_ms: 250.0,
                failover_timeout_ms: 400.0,
                ..ClusterConfig::default()
            },
            node_exe,
            chain: vec![MediaFunction::ALL[0], MediaFunction::ALL[1]],
            source: PeerId::new(2),
            dest: PeerId::new(3),
            budget: 8,
            frames: 200,
            interval_ms: 25.0,
            dims: (8, 8),
            kill_primary: false,
            timeout: Duration::from_secs(45),
            transport: TransportKind::default(),
        }
    }
}

/// What a deployment produced.
pub struct DeployOutcome {
    /// The composition result.
    pub setup: WireSetup,
    /// The streaming report.
    pub report: WireStreamReport,
    /// Per-node counter snapshots (killed nodes report zeros).
    pub stats: Vec<WireStats>,
    /// Order-independent digest of the deterministic outcome (selected
    /// path, backups, model-time metrics, delivered pixels) — equal
    /// across runs with the same seed when no faults/kills perturb
    /// wall-clock behaviour.
    pub fingerprint: u64,
}

impl DeployOutcome {
    /// A small hand-rolled JSON rendering (the repo has no serde).
    pub fn to_json(&self) -> String {
        let path: Vec<String> = self.setup.path.iter().map(|p| p.to_string()).collect();
        let final_path: Vec<String> = self.report.final_path.iter().map(|p| p.to_string()).collect();
        let dropped: u64 = self.stats.iter().map(|s| s.msgs_dropped).sum();
        format!(
            concat!(
                "{{\"ok\":{},\"path\":[{}],\"backups\":{},",
                "\"discovery_ms\":{:.3},\"probing_ms\":{:.3},\"init_ms\":{:.3},\"total_ms\":{:.3},",
                "\"sent\":{},\"delivered\":{},\"all_valid\":{},\"switches\":{},",
                "\"maintenance_probes\":{},\"final_path\":[{}],\"delivery_digest\":{},",
                "\"msgs_dropped\":{},\"recompositions\":0,\"fingerprint\":{}}}"
            ),
            self.setup.ok,
            path.join(","),
            self.setup.backups.len(),
            self.setup.discovery_ms,
            self.setup.probing_ms,
            self.setup.init_ms,
            self.setup.total_ms,
            self.report.sent,
            self.report.delivered,
            self.report.all_valid,
            self.report.switches,
            self.report.maintenance_probes,
            final_path.join(","),
            self.report.delivery_digest,
            dropped,
            self.fingerprint,
        )
    }
}

fn err(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::other(msg.into())
}

/// Grabs `n` currently-free loopback ports by binding ephemeral
/// listeners. There is a small close-to-rebind window; daemons that lose
/// the race fail to bind and the deploy errors out rather than hanging.
fn free_ports(n: usize) -> std::io::Result<Vec<u16>> {
    let mut holders = Vec::with_capacity(n);
    let mut ports = Vec::with_capacity(n);
    for _ in 0..n {
        let l = TcpListener::bind(("127.0.0.1", 0))?;
        ports.push(l.local_addr()?.port());
        holders.push(l);
    }
    drop(holders);
    Ok(ports)
}

fn fold(h: u64, v: u64) -> u64 {
    splitmix64(h ^ v)
}

fn fold_setup(mut h: u64, setup: &WireSetup) -> u64 {
    h = fold(h, setup.ok as u64);
    for &p in &setup.path {
        h = fold(h, p);
    }
    for b in &setup.backups {
        h = fold(h, b.len() as u64);
        for &p in b {
            h = fold(h, p);
        }
    }
    for bits in [
        setup.discovery_ms.to_bits(),
        setup.probing_ms.to_bits(),
        setup.init_ms.to_bits(),
        setup.total_ms.to_bits(),
    ] {
        h = fold(h, bits);
    }
    h
}

fn fingerprint(setup: &WireSetup, report: &WireStreamReport) -> u64 {
    let mut h = fold_setup(0x5350494445524e45, setup); // "SPIDERNE"
    h = fold(h, report.sent);
    h = fold(h, report.delivered);
    h = fold(h, report.all_valid as u64);
    fold(h, report.delivery_digest)
}

/// Order-independent digest of a batch of composition outcomes (sorted by
/// request id, then paths, backups, and f64 metric bits folded in). Pure
/// model-time content — the same value regardless of transport, wall
/// clock, or session concurrency, which is what lets `deploy --sessions N
/// --verify-inprocess` compare a concurrent socket deployment against N
/// sequential in-process compositions.
pub fn setup_fingerprint(setups: &[WireSetup]) -> u64 {
    let mut ordered: Vec<&WireSetup> = setups.iter().collect();
    ordered.sort_by_key(|s| s.request);
    let mut h = fold(0x5350494445524e45, setups.len() as u64);
    for s in ordered {
        h = fold(h, s.request);
        h = fold_setup(h, s);
    }
    h
}

/// Spawns one `serve` child per peer with the deployment's shared
/// config. The caller owns teardown.
fn spawn_children(cfg: &DeployConfig, ports: &[u16]) -> std::io::Result<Vec<Child>> {
    let peers = cfg.cluster.peers;
    let ports_arg = ports.iter().map(|p| p.to_string()).collect::<Vec<_>>().join(",");
    let mut children: Vec<Child> = Vec::with_capacity(peers);
    for i in 0..peers {
        let c = &cfg.cluster;
        let child = Command::new(&cfg.node_exe)
            .arg("serve")
            .args(["--index", &i.to_string()])
            .args(["--peers", &peers.to_string()])
            .args(["--seed", &c.seed.to_string()])
            .args(["--ports", &ports_arg])
            .args(["--jitter", &c.jitter.to_string()])
            .args(["--time-scale", &c.time_scale.to_string()])
            .args(["--collect-window-ms", &c.collect_window_ms.to_string()])
            .args(["--quota", &c.quota.to_string()])
            .args(["--failover-timeout-ms", &c.failover_timeout_ms.to_string()])
            .args(["--maintenance-period-ms", &c.maintenance_period_ms.to_string()])
            .args(["--collect-deadline-slack", &c.collect_deadline_slack.to_string()])
            .args(["--drop-prob", &c.faults.drop_prob.to_string()])
            .args(["--extra-delay-ms", &c.faults.extra_delay_ms.to_string()])
            .args(["--transport", &cfg.transport.to_string()])
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::inherit())
            .spawn();
        match child {
            Ok(child) => children.push(child),
            Err(e) => {
                for mut c in children {
                    let _ = c.kill();
                    let _ = c.wait();
                }
                return Err(e);
            }
        }
    }
    Ok(children)
}

/// Connects a control client to every daemon and waits until every
/// component registered into the DHT (the sum of all shard entries
/// reaches the peer count).
fn connect_and_bootstrap(
    cfg: &DeployConfig,
    ports: &[u16],
    deadline: Instant,
) -> std::io::Result<Vec<CtrlClient>> {
    let peers = cfg.cluster.peers;
    let mut clients: Vec<CtrlClient> = Vec::with_capacity(peers);
    for &port in ports {
        clients.push(CtrlClient::connect(port, Duration::from_secs(10))?);
    }
    loop {
        let mut total = 0u64;
        for client in clients.iter_mut() {
            client.send(&WireMsg::CtrlStatsRequest)?;
            match client.recv_matching(Duration::from_secs(5), |f| {
                matches!(f, WireMsg::CtrlStatsReply(_))
            })? {
                WireMsg::CtrlStatsReply(s) => total += s.store_entries,
                _ => unreachable!("matched above"),
            }
        }
        if total >= peers as u64 {
            return Ok(clients);
        }
        if Instant::now() >= deadline {
            return Err(err(format!(
                "bootstrap registration incomplete: {total}/{peers} entries"
            )));
        }
        std::thread::sleep(Duration::from_millis(100));
    }
}

/// Spawns an N-process loopback deployment, drives one composition and
/// one streaming session end-to-end (optionally killing the primary
/// path's head mid-stream), gathers stats, and tears everything down.
pub fn deploy(cfg: DeployConfig) -> std::io::Result<DeployOutcome> {
    assert!(cfg.cluster.peers >= 8, "a deployment needs a handful of peers");
    let ports = free_ports(cfg.cluster.peers)?;
    let mut children = spawn_children(&cfg, &ports)?;

    // Everything from here on must kill the children on the way out.
    let result = drive_deployment(&cfg, &ports, &mut children);
    for child in &mut children {
        let _ = child.kill();
        let _ = child.wait();
    }
    result
}

fn drive_deployment(
    cfg: &DeployConfig,
    ports: &[u16],
    children: &mut [Child],
) -> std::io::Result<DeployOutcome> {
    let deadline = Instant::now() + cfg.timeout;
    let mut clients = connect_and_bootstrap(cfg, ports, deadline)?;

    // Compose from the source node.
    let source_client = cfg.source.index();
    clients[source_client].send(&WireMsg::CtrlCompose {
        request: 1,
        dest: cfg.dest.raw(),
        chain: cfg.chain.iter().map(|f| f.code()).collect(),
        budget: cfg.budget,
    })?;
    let setup = match clients[source_client].recv_matching(cfg.timeout, |f| {
        matches!(f, WireMsg::CtrlComposeResult(_))
    })? {
        WireMsg::CtrlComposeResult(s) => s,
        _ => unreachable!("matched above"),
    };
    if !setup.ok {
        return Err(err("composition failed"));
    }
    if cfg.kill_primary && setup.backups.is_empty() {
        return Err(err("kill-primary requested but probing found no backup path"));
    }

    // Stream; optionally kill the primary head partway through.
    clients[source_client].send(&WireMsg::CtrlStream {
        session: setup.request,
        path: setup.path.clone(),
        functions: setup.functions.clone(),
        backups: setup.backups.clone(),
        dest: setup.dest,
        frames: cfg.frames,
        interval_ms: cfg.interval_ms,
        width: cfg.dims.0,
        height: cfg.dims.1,
    })?;
    if cfg.kill_primary {
        // Let roughly a quarter of the stream flow, then fail the head.
        let quarter =
            cfg.frames as f64 * cfg.interval_ms * cfg.cluster.time_scale / 1_000.0 * 0.25;
        std::thread::sleep(Duration::from_secs_f64(quarter.max(0.05)));
        let head = setup.path[0] as usize;
        children[head].kill()?;
        children[head].wait()?;
    }
    let report = match clients[source_client]
        .recv_matching(cfg.timeout, |f| matches!(f, WireMsg::CtrlStreamReport(_)))?
    {
        WireMsg::CtrlStreamReport(r) => r,
        _ => unreachable!("matched above"),
    };

    // Final stats sweep (killed nodes report zeros).
    let killed: Option<usize> = cfg.kill_primary.then(|| setup.path[0] as usize);
    let mut stats = Vec::with_capacity(clients.len());
    for (i, client) in clients.iter_mut().enumerate() {
        if Some(i) == killed {
            stats.push(WireStats { peer: i as u64, ..WireStats::default() });
            continue;
        }
        let snap = client.send(&WireMsg::CtrlStatsRequest).and_then(|()| {
            client.recv_matching(Duration::from_secs(5), |f| {
                matches!(f, WireMsg::CtrlStatsReply(_))
            })
        });
        match snap {
            Ok(WireMsg::CtrlStatsReply(s)) => stats.push(s),
            _ => stats.push(WireStats { peer: i as u64, ..WireStats::default() }),
        }
    }

    // Graceful shutdown for whoever is still alive (the caller reaps).
    for (i, client) in clients.iter_mut().enumerate() {
        if Some(i) != killed {
            let _ = client.send(&WireMsg::CtrlShutdown);
        }
    }

    let fingerprint = fingerprint(&setup, &report);
    Ok(DeployOutcome { setup, report, stats, fingerprint })
}

// ---------------------------------------------------------------------
// The many-session deployment benchmark (`deploy --sessions N`).
// ---------------------------------------------------------------------

/// What a many-session deployment produced (`deploy --sessions N`): the
/// raw material for BENCH_daemon.json.
pub struct MultiDeployOutcome {
    /// Sessions requested (= composed; request ids `1..=N`).
    pub sessions: u64,
    /// Sessions whose composition succeeded (and then streamed).
    pub setups_ok: u64,
    /// Per-session compose wall latency in ms, indexed by `request - 1`
    /// (send of `CtrlCompose` → arrival of its result, sessions running
    /// concurrently).
    pub setup_wall_ms: Vec<f64>,
    /// Wall seconds for the whole concurrent compose phase.
    pub compose_secs: f64,
    /// Wall seconds for the whole concurrent stream phase.
    pub stream_secs: f64,
    /// Media frames sent across all sessions.
    pub frames_sent: u64,
    /// Media frames delivered and validated across all sessions.
    pub frames_delivered: u64,
    /// Every delivered frame matched its transform chain.
    pub all_valid: bool,
    /// Per-node counter snapshots after the stream phase.
    pub stats: Vec<WireStats>,
    /// Largest peak RSS (`VmHWM`) among the daemon processes, bytes.
    pub peak_child_rss_bytes: u64,
    /// [`setup_fingerprint`] over all N compositions — compare against
    /// the in-process cluster run with the same seed.
    pub setup_fingerprint: u64,
    /// The N compositions themselves, indexed by `request - 1` — for
    /// per-session inspection (e.g. diffing against an in-process run
    /// when the aggregate fingerprints disagree).
    pub setups: Vec<WireSetup>,
}

impl MultiDeployOutcome {
    /// The q-th percentile (0..=1) of the per-session setup latencies.
    pub fn setup_percentile_ms(&self, q: f64) -> f64 {
        let mut sorted = self.setup_wall_ms.clone();
        sorted.sort_by(f64::total_cmp);
        if sorted.is_empty() {
            return 0.0;
        }
        let idx = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        sorted[idx]
    }
}

/// Spawns a loopback deployment and drives `sessions` concurrent
/// composition + streaming sessions through it (request ids `1..=N`, all
/// from `cfg.source` to `cfg.dest`), measuring per-session setup latency
/// and aggregate streaming throughput. `cfg.kill_primary` is not
/// supported here — fault runs belong to [`deploy`].
pub fn deploy_many(cfg: DeployConfig, sessions: u64) -> std::io::Result<MultiDeployOutcome> {
    assert!(cfg.cluster.peers >= 8, "a deployment needs a handful of peers");
    assert!(!cfg.kill_primary, "kill-primary applies to single-session deploys");
    assert!(sessions >= 1, "at least one session");
    let ports = free_ports(cfg.cluster.peers)?;
    let mut children = spawn_children(&cfg, &ports)?;
    let result = drive_many(&cfg, sessions, &ports, &children);
    for child in &mut children {
        let _ = child.kill();
        let _ = child.wait();
    }
    result
}

fn drive_many(
    cfg: &DeployConfig,
    sessions: u64,
    ports: &[u16],
    children: &[Child],
) -> std::io::Result<MultiDeployOutcome> {
    let deadline = Instant::now() + cfg.timeout;
    let remaining = |deadline: Instant| {
        deadline.checked_duration_since(Instant::now()).ok_or_else(|| {
            std::io::Error::from(std::io::ErrorKind::TimedOut)
        })
    };
    let mut clients = connect_and_bootstrap(cfg, ports, deadline)?;
    let src = cfg.source.index();
    let n = sessions as usize;

    // Compose phase: fire all N requests, then collect all N results
    // (they multiplex over the source daemon's control connection in
    // completion order).
    let chain: Vec<u8> = cfg.chain.iter().map(|f| f.code()).collect();
    let compose_start = Instant::now();
    let mut sent_at: Vec<Instant> = Vec::with_capacity(n);
    for request in 1..=sessions {
        sent_at.push(Instant::now());
        clients[src].send(&WireMsg::CtrlCompose {
            request,
            dest: cfg.dest.raw(),
            chain: chain.clone(),
            budget: cfg.budget,
        })?;
    }
    let mut setups: Vec<Option<WireSetup>> = (0..n).map(|_| None).collect();
    let mut setup_wall_ms = vec![0.0f64; n];
    for _ in 0..n {
        let frame = clients[src].recv_matching(remaining(deadline)?, |f| {
            matches!(f, WireMsg::CtrlComposeResult(_))
        })?;
        let WireMsg::CtrlComposeResult(s) = frame else { unreachable!("matched above") };
        let arrived = Instant::now();
        let idx = (s.request as usize)
            .checked_sub(1)
            .filter(|&i| i < n)
            .ok_or_else(|| err(format!("result for unknown request {}", s.request)))?;
        setup_wall_ms[idx] = (arrived - sent_at[idx]).as_secs_f64() * 1_000.0;
        setups[idx] = Some(s);
    }
    let compose_secs = compose_start.elapsed().as_secs_f64();
    let setups: Vec<WireSetup> = setups
        .into_iter()
        .enumerate()
        .map(|(i, s)| s.ok_or_else(|| err(format!("request {} never resolved", i + 1))))
        .collect::<std::io::Result<_>>()?;
    let setups_ok = setups.iter().filter(|s| s.ok).count() as u64;

    // Stream phase: every successful session streams concurrently.
    let stream_start = Instant::now();
    let mut streaming = 0usize;
    for s in setups.iter().filter(|s| s.ok) {
        clients[src].send(&WireMsg::CtrlStream {
            session: s.request,
            path: s.path.clone(),
            functions: s.functions.clone(),
            backups: s.backups.clone(),
            dest: s.dest,
            frames: cfg.frames,
            interval_ms: cfg.interval_ms,
            width: cfg.dims.0,
            height: cfg.dims.1,
        })?;
        streaming += 1;
    }
    let (mut frames_sent, mut frames_delivered, mut all_valid) = (0u64, 0u64, true);
    for _ in 0..streaming {
        let frame = clients[src].recv_matching(remaining(deadline)?, |f| {
            matches!(f, WireMsg::CtrlStreamReport(_))
        })?;
        let WireMsg::CtrlStreamReport(r) = frame else { unreachable!("matched above") };
        frames_sent += r.sent;
        frames_delivered += r.delivered;
        all_valid &= r.all_valid;
    }
    let stream_secs = stream_start.elapsed().as_secs_f64();

    // Peak RSS while the children are still alive (VmHWM survives until
    // process exit, not after).
    let peak_child_rss_bytes = children
        .iter()
        .filter_map(|c| spidernet_util::bench::peak_rss_bytes_for(c.id()))
        .max()
        .unwrap_or(0);

    // Stats sweep, then graceful shutdown.
    let mut stats = Vec::with_capacity(clients.len());
    for (i, client) in clients.iter_mut().enumerate() {
        let snap = client.send(&WireMsg::CtrlStatsRequest).and_then(|()| {
            client.recv_matching(Duration::from_secs(5), |f| {
                matches!(f, WireMsg::CtrlStatsReply(_))
            })
        });
        match snap {
            Ok(WireMsg::CtrlStatsReply(s)) => stats.push(s),
            _ => stats.push(WireStats { peer: i as u64, ..WireStats::default() }),
        }
    }
    for client in clients.iter_mut() {
        let _ = client.send(&WireMsg::CtrlShutdown);
    }

    Ok(MultiDeployOutcome {
        sessions,
        setups_ok,
        setup_wall_ms,
        compose_secs,
        stream_secs,
        frames_sent,
        frames_delivered,
        all_valid,
        stats,
        peak_child_rss_bytes,
        setup_fingerprint: setup_fingerprint(&setups),
        setups,
    })
}
