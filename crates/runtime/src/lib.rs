//! Threaded wide-area deployment of SpiderNet — the PlanetLab stand-in.
//!
//! The paper's prototype is multi-threaded node software deployed on 102
//! PlanetLab hosts across the US and Europe, populated with six multimedia
//! service components and driven by a customizable video-streaming
//! application (§6.2). This crate reproduces that system twice over one
//! shared protocol engine — in-process (threads + channels) and as real
//! networked OS processes (TCP + the `spidernet-wire` codec):
//!
//! * [`wan`] — a measured-RTT-scale wide-area delay model (regions, jitter);
//! * [`media`] — the six multimedia components as real byte transforms over
//!   synthetic video frames;
//! * [`msg`] — the runtime message set, with conversions to/from the
//!   `spidernet-wire` frame forms;
//! * [`node`] — the transport-agnostic protocol engine ([`node::PeerNode`]
//!   behind the [`node::Outbox`] trait) and the shared deterministic
//!   environment ([`node::World`]);
//! * [`cluster`] — the in-process (channel) transport: one actor thread per
//!   peer plus a delay-queue network thread; DHT lookups, BCP probes,
//!   session setup acks, heartbeats, and media frames all travel hop by hop
//!   through real channels with injected WAN latencies;
//! * [`mc`] — the model-checker adapter: `PeerNode`s behind a virtual
//!   [`mc::ModelOutbox`], exposing every delivery interleaving (plus
//!   drop/duplicate/crash faults) to the `spidernet-sim` explorer;
//! * [`net`] — the socket transport: TCP connection management for the
//!   `spidernet-node` daemon (one OS process per peer) and the loopback
//!   `deploy` orchestrator;
//! * [`experiments`] — the Fig. 10 driver (session setup time vs function
//!   number, decomposed into discovery / probing / session-init phases).

#![warn(missing_docs)]

pub mod cluster;
#[cfg(target_os = "linux")]
pub(crate) mod evnet;
pub mod experiments;
pub mod mc;
pub mod media;
pub mod msg;
pub mod net;
pub mod node;
#[cfg(target_os = "linux")]
pub(crate) mod poll;
pub mod wan;

pub use cluster::Cluster;
pub use mc::{CheckedWorld, McAction, McScenario, ModelOutbox, NetModel};
pub use media::{Frame, MediaFunction};
pub use node::{
    ClusterConfig, NetFaultConfig, NetFaultConfigBuilder, Outbox, PeerNode, SetupResult,
    StreamReport, World,
};
pub use wan::{Region, WanModel};
