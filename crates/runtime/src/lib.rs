//! Threaded wide-area deployment of SpiderNet — the PlanetLab stand-in.
//!
//! The paper's prototype is multi-threaded node software deployed on 102
//! PlanetLab hosts across the US and Europe, populated with six multimedia
//! service components and driven by a customizable video-streaming
//! application (§6.2). This crate reproduces that system in-process:
//!
//! * [`wan`] — a measured-RTT-scale wide-area delay model (regions, jitter);
//! * [`media`] — the six multimedia components as real byte transforms over
//!   synthetic video frames;
//! * [`msg`] — the wire protocol between peers;
//! * [`cluster`] — one actor thread per peer plus a delay-queue network
//!   thread; DHT lookups, BCP probes, session setup acks, heartbeats, and
//!   media frames all travel hop by hop through real channels with injected
//!   WAN latencies;
//! * [`experiments`] — the Fig. 10 driver (session setup time vs function
//!   number, decomposed into discovery / probing / session-init phases).

#![warn(missing_docs)]

pub mod cluster;
pub mod experiments;
pub mod media;
pub mod msg;
pub mod wan;

pub use cluster::{Cluster, ClusterConfig, NetFaultConfig, SetupResult, StreamReport};
pub use media::{Frame, MediaFunction};
pub use wan::{Region, WanModel};
