//! The SpiderNet node daemon and loopback deploy orchestrator.
//!
//! ```text
//! spidernet-node serve  --index 0 --peers 8 --seed 0 --ports 7000,7001,...
//! spidernet-node deploy --peers 8 --kill-primary
//! ```
//!
//! `serve` runs one peer as an OS process: it joins the overlay, registers
//! its service component in the DHT, and speaks the `spidernet-wire`
//! protocol over TCP until a `CtrlShutdown` control frame arrives.
//!
//! `deploy` spawns an N-process loopback cluster of `serve` daemons,
//! drives one composition and one streaming session end-to-end
//! (optionally killing the primary path's first component mid-stream to
//! exercise proactive backup switchover), prints a JSON summary, and
//! tears the cluster down.

use spidernet_runtime::net::{deploy, run_node, DeployConfig, NodeConfig};
use spidernet_runtime::{ClusterConfig, NetFaultConfig};
use std::collections::HashMap;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage:\n  \
         spidernet-node serve --index I --peers N --ports P0,P1,... [--seed S] \
         [--jitter J] [--time-scale T] [--collect-window-ms W] [--quota Q] \
         [--failover-timeout-ms F] [--maintenance-period-ms M] \
         [--drop-prob D] [--extra-delay-ms E]\n  \
         spidernet-node deploy [--peers N] [--seed S] [--frames F] \
         [--interval-ms I] [--budget B] [--time-scale T] [--timeout-secs T] \
         [--drop-prob D] [--extra-delay-ms E] [--kill-primary]"
    );
    std::process::exit(2)
}

/// Splits `args` into valued flags (`--key value`) and bare switches.
fn parse_flags(args: &[String]) -> (HashMap<String, String>, Vec<String>) {
    let mut values = HashMap::new();
    let mut switches = Vec::new();
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        let Some(key) = arg.strip_prefix("--") else {
            eprintln!("unexpected argument: {arg}");
            usage()
        };
        match it.peek() {
            Some(next) if !next.starts_with("--") => {
                values.insert(key.to_string(), it.next().expect("peeked").clone());
            }
            _ => switches.push(key.to_string()),
        }
    }
    (values, switches)
}

fn get<T: std::str::FromStr>(values: &HashMap<String, String>, key: &str, default: T) -> T {
    match values.get(key) {
        Some(raw) => raw.parse().unwrap_or_else(|_| {
            eprintln!("invalid value for --{key}: {raw}");
            usage()
        }),
        None => default,
    }
}

fn require<T: std::str::FromStr>(values: &HashMap<String, String>, key: &str) -> T {
    match values.get(key) {
        Some(raw) => raw.parse().unwrap_or_else(|_| {
            eprintln!("invalid value for --{key}: {raw}");
            usage()
        }),
        None => {
            eprintln!("missing required flag --{key}");
            usage()
        }
    }
}

fn cluster_config(values: &HashMap<String, String>, peers: usize) -> ClusterConfig {
    let defaults = ClusterConfig::default();
    ClusterConfig {
        peers,
        jitter: get(values, "jitter", defaults.jitter),
        seed: get(values, "seed", 0),
        time_scale: get(values, "time-scale", 0.05),
        collect_window_ms: get(values, "collect-window-ms", defaults.collect_window_ms),
        quota: get(values, "quota", defaults.quota),
        failover_timeout_ms: get(values, "failover-timeout-ms", defaults.failover_timeout_ms),
        maintenance_period_ms: get(
            values,
            "maintenance-period-ms",
            defaults.maintenance_period_ms,
        ),
        faults: NetFaultConfig {
            drop_prob: get(values, "drop-prob", 0.0),
            extra_delay_ms: get(values, "extra-delay-ms", 0.0),
        },
    }
}

fn serve(args: &[String]) {
    let (values, _switches) = parse_flags(args);
    let index: usize = require(&values, "index");
    let peers: usize = require(&values, "peers");
    let ports_raw: String = require(&values, "ports");
    let ports: Vec<u16> = ports_raw
        .split(',')
        .map(|p| {
            p.trim().parse().unwrap_or_else(|_| {
                eprintln!("invalid port in --ports: {p}");
                usage()
            })
        })
        .collect();
    if ports.len() != peers || index >= peers {
        eprintln!("--ports must list one port per peer and --index must be in range");
        usage()
    }
    let cfg = NodeConfig { index, cluster: cluster_config(&values, peers), ports };
    if let Err(e) = run_node(cfg) {
        eprintln!("spidernet-node[{index}]: {e}");
        std::process::exit(1);
    }
}

fn run_deploy(args: &[String]) {
    let (values, switches) = parse_flags(args);
    let peers: usize = get(&values, "peers", 8);
    let seed: u64 = get(&values, "seed", 0);
    let node_exe = std::env::current_exe().expect("own executable path");
    let mut cfg = DeployConfig::standard(peers, seed, node_exe);
    cfg.cluster.time_scale = get(&values, "time-scale", cfg.cluster.time_scale);
    cfg.cluster.faults = NetFaultConfig {
        drop_prob: get(&values, "drop-prob", 0.0),
        extra_delay_ms: get(&values, "extra-delay-ms", 0.0),
    };
    cfg.frames = get(&values, "frames", cfg.frames);
    cfg.interval_ms = get(&values, "interval-ms", cfg.interval_ms);
    cfg.budget = get(&values, "budget", cfg.budget);
    cfg.timeout = Duration::from_secs(get(&values, "timeout-secs", 45));
    cfg.kill_primary = switches.iter().any(|s| s == "kill-primary");
    let kill = cfg.kill_primary;

    match deploy(cfg) {
        Ok(outcome) => {
            println!("{}", outcome.to_json());
            if kill && outcome.report.switches == 0 {
                eprintln!("deploy: primary killed but no backup switch happened");
                std::process::exit(1);
            }
            if outcome.report.delivered == 0 || !outcome.report.all_valid {
                eprintln!("deploy: stream did not deliver valid frames");
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("deploy failed: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => serve(&args[1..]),
        Some("deploy") => run_deploy(&args[1..]),
        _ => usage(),
    }
}
