//! The SpiderNet node daemon and loopback deploy orchestrator.
//!
//! ```text
//! spidernet-node serve  --index 0 --peers 8 --seed 0 --ports 7000,7001,...
//! spidernet-node deploy --peers 8 --kill-primary
//! ```
//!
//! `serve` runs one peer as an OS process: it joins the overlay, registers
//! its service component in the DHT, and speaks the `spidernet-wire`
//! protocol over TCP until a `CtrlShutdown` control frame arrives.
//!
//! `deploy` spawns an N-process loopback cluster of `serve` daemons,
//! drives one composition and one streaming session end-to-end
//! (optionally killing the primary path's first component mid-stream to
//! exercise proactive backup switchover), prints a JSON summary, and
//! tears the cluster down.

use spidernet_runtime::net::{
    deploy, deploy_many, run_node, setup_fingerprint, setup_to_wire, DeployConfig, NodeConfig,
    TransportKind,
};
use spidernet_runtime::{Cluster, ClusterConfig, NetFaultConfig};
use spidernet_util::{BenchBlock, BenchReport};
use std::collections::HashMap;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage:\n  \
         spidernet-node serve --index I --peers N --ports P0,P1,... [--seed S] \
         [--jitter J] [--time-scale T] [--collect-window-ms W] [--quota Q] \
         [--failover-timeout-ms F] [--maintenance-period-ms M] \
         [--drop-prob D] [--extra-delay-ms E] [--transport event|blocking]\n  \
         spidernet-node deploy [--peers N] [--seed S] [--frames F] \
         [--interval-ms I] [--budget B] [--time-scale T] [--timeout-secs T] \
         [--drop-prob D] [--extra-delay-ms E] [--transport event|blocking] \
         [--kill-primary]\n  \
         spidernet-node deploy --sessions N [--verify-inprocess] \
         [--json [path]] [...same flags as deploy]"
    );
    std::process::exit(2)
}

/// Splits `args` into valued flags (`--key value`) and bare switches.
fn parse_flags(args: &[String]) -> (HashMap<String, String>, Vec<String>) {
    let mut values = HashMap::new();
    let mut switches = Vec::new();
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        let Some(key) = arg.strip_prefix("--") else {
            eprintln!("unexpected argument: {arg}");
            usage()
        };
        match it.peek() {
            Some(next) if !next.starts_with("--") => {
                values.insert(key.to_string(), it.next().expect("peeked").clone());
            }
            _ => switches.push(key.to_string()),
        }
    }
    (values, switches)
}

fn get<T: std::str::FromStr>(values: &HashMap<String, String>, key: &str, default: T) -> T {
    match values.get(key) {
        Some(raw) => raw.parse().unwrap_or_else(|_| {
            eprintln!("invalid value for --{key}: {raw}");
            usage()
        }),
        None => default,
    }
}

fn require<T: std::str::FromStr>(values: &HashMap<String, String>, key: &str) -> T {
    match values.get(key) {
        Some(raw) => raw.parse().unwrap_or_else(|_| {
            eprintln!("invalid value for --{key}: {raw}");
            usage()
        }),
        None => {
            eprintln!("missing required flag --{key}");
            usage()
        }
    }
}

fn cluster_config(values: &HashMap<String, String>, peers: usize) -> ClusterConfig {
    let defaults = ClusterConfig::default();
    ClusterConfig {
        peers,
        jitter: get(values, "jitter", defaults.jitter),
        seed: get(values, "seed", 0),
        time_scale: get(values, "time-scale", 0.05),
        collect_window_ms: get(values, "collect-window-ms", defaults.collect_window_ms),
        quota: get(values, "quota", defaults.quota),
        failover_timeout_ms: get(values, "failover-timeout-ms", defaults.failover_timeout_ms),
        maintenance_period_ms: get(
            values,
            "maintenance-period-ms",
            defaults.maintenance_period_ms,
        ),
        collect_deadline_slack: get(
            values,
            "collect-deadline-slack",
            defaults.collect_deadline_slack,
        ),
        faults: NetFaultConfig::builder()
            .drop_prob(get(values, "drop-prob", 0.0))
            .extra_delay_ms(get(values, "extra-delay-ms", 0.0))
            .build(),
    }
}

fn serve(args: &[String]) {
    let (values, _switches) = parse_flags(args);
    let index: usize = require(&values, "index");
    let peers: usize = require(&values, "peers");
    let ports_raw: String = require(&values, "ports");
    let ports: Vec<u16> = ports_raw
        .split(',')
        .map(|p| {
            p.trim().parse().unwrap_or_else(|_| {
                eprintln!("invalid port in --ports: {p}");
                usage()
            })
        })
        .collect();
    if ports.len() != peers || index >= peers {
        eprintln!("--ports must list one port per peer and --index must be in range");
        usage()
    }
    let cfg = NodeConfig {
        index,
        cluster: cluster_config(&values, peers),
        ports,
        transport: get(&values, "transport", TransportKind::default()),
    };
    if let Err(e) = run_node(cfg) {
        eprintln!("spidernet-node[{index}]: {e}");
        std::process::exit(1);
    }
}

fn run_deploy(args: &[String]) {
    let (values, switches) = parse_flags(args);
    let peers: usize = get(&values, "peers", 8);
    let seed: u64 = get(&values, "seed", 0);
    let node_exe = std::env::current_exe().expect("own executable path");
    let mut cfg = DeployConfig::standard(peers, seed, node_exe);
    cfg.cluster.time_scale = get(&values, "time-scale", cfg.cluster.time_scale);
    cfg.cluster.faults = NetFaultConfig::builder()
        .drop_prob(get(&values, "drop-prob", 0.0))
        .extra_delay_ms(get(&values, "extra-delay-ms", 0.0))
        .build();
    cfg.interval_ms = get(&values, "interval-ms", cfg.interval_ms);
    cfg.budget = get(&values, "budget", cfg.budget);
    cfg.transport = get(&values, "transport", TransportKind::default());

    if values.contains_key("sessions") {
        let sessions: u64 = require(&values, "sessions");
        // Many short sessions: a lighter per-session stream at a pace
        // whose aggregate demand the loopback path can actually carry
        // (1k sessions at the single-session 25 ms cadence just measures
        // the shed policy), and a wider wall budget.
        cfg.frames = get(&values, "frames", 20);
        cfg.interval_ms = get(&values, "interval-ms", 200.0);
        cfg.timeout = Duration::from_secs(get(&values, "timeout-secs", 180));
        run_deploy_many(cfg, sessions, &values, &switches);
        return;
    }

    cfg.frames = get(&values, "frames", cfg.frames);
    cfg.timeout = Duration::from_secs(get(&values, "timeout-secs", 45));
    cfg.kill_primary = switches.iter().any(|s| s == "kill-primary");
    let kill = cfg.kill_primary;

    match deploy(cfg) {
        Ok(outcome) => {
            println!("{}", outcome.to_json());
            if kill && outcome.report.switches == 0 {
                eprintln!("deploy: primary killed but no backup switch happened");
                std::process::exit(1);
            }
            if outcome.report.delivered == 0 || !outcome.report.all_valid {
                eprintln!("deploy: stream did not deliver valid frames");
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("deploy failed: {e}");
            std::process::exit(1);
        }
    }
}

/// `deploy --sessions N`: N concurrent composition + streaming sessions
/// through one loopback deployment, reporting per-session setup-latency
/// percentiles, aggregate frames/sec, connection counts, and peak child
/// RSS — as text and (with `--json [path]`) as BENCH_daemon.json.
fn run_deploy_many(
    cfg: DeployConfig,
    sessions: u64,
    values: &HashMap<String, String>,
    switches: &[String],
) {
    // `--json` bare writes the default BENCH_daemon.json; with a value it
    // writes there (mirroring the bench binaries' `--json [path]`).
    let json_spec: Option<Option<String>> = match values.get("json") {
        Some(path) => Some(Some(path.clone())),
        None => switches.iter().any(|s| s == "json").then_some(None),
    };
    let verify = switches.iter().any(|s| s == "verify-inprocess");
    if switches.iter().any(|s| s == "kill-primary") {
        eprintln!("--kill-primary applies to single-session deploys");
        usage()
    }
    let peers = cfg.cluster.peers;
    let transport = cfg.transport;
    let faults_active = cfg.cluster.faults.is_active();
    let cluster_cfg = cfg.cluster.clone();
    let (source, dest) = (cfg.source, cfg.dest);
    let (chain, budget) = (cfg.chain.clone(), cfg.budget);
    let per_compose_timeout = cfg.timeout;

    let outcome = match deploy_many(cfg, sessions) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("deploy --sessions {sessions} failed: {e}");
            std::process::exit(1);
        }
    };

    // The same N compositions, sequentially, in-process: request ids and
    // message content match, so the setup fingerprints must be bit-equal.
    let fingerprint_match = verify.then(|| {
        let cluster = Cluster::start(cluster_cfg);
        let mut wires = Vec::with_capacity(sessions as usize);
        for request in 1..=sessions {
            match cluster.compose(source, dest, chain.clone(), budget, per_compose_timeout) {
                Some(setup) => wires.push(setup_to_wire(&setup)),
                None => {
                    eprintln!("verify: in-process composition {request} timed out");
                    std::process::exit(1);
                }
            }
        }
        let matched = setup_fingerprint(&wires) == outcome.setup_fingerprint;
        if !matched {
            // Aggregate fingerprints disagree: name the diverging
            // sessions so the report is actionable.
            for (inproc, socket) in wires.iter().zip(outcome.setups.iter()) {
                let metrics = |s: &spidernet_wire::WireSetup| {
                    [s.discovery_ms, s.probing_ms, s.init_ms, s.total_ms].map(f64::to_bits)
                };
                if inproc.path != socket.path
                    || inproc.backups != socket.backups
                    || metrics(inproc) != metrics(socket)
                    || inproc.ok != socket.ok
                {
                    eprintln!(
                        "verify: request {} diverges:\n  in-process ok={} path={:?} backups={:?} \
                         disc/probe/init/total = {}/{}/{}/{}\n  socket     ok={} path={:?} \
                         backups={:?} disc/probe/init/total = {}/{}/{}/{}",
                        socket.request,
                        inproc.ok,
                        inproc.path,
                        inproc.backups,
                        inproc.discovery_ms,
                        inproc.probing_ms,
                        inproc.init_ms,
                        inproc.total_ms,
                        socket.ok,
                        socket.path,
                        socket.backups,
                        socket.discovery_ms,
                        socket.probing_ms,
                        socket.init_ms,
                        socket.total_ms,
                    );
                }
            }
        }
        matched
    });

    let (p50, p90, p99) = (
        outcome.setup_percentile_ms(0.50),
        outcome.setup_percentile_ms(0.90),
        outcome.setup_percentile_ms(0.99),
    );
    let mean = outcome.setup_wall_ms.iter().sum::<f64>() / outcome.setup_wall_ms.len() as f64;
    let max = outcome.setup_wall_ms.iter().cloned().fold(0.0, f64::max);
    let frames_per_sec = outcome.frames_delivered as f64 / outcome.stream_secs.max(1e-9);
    let conns_opened: u64 = outcome.stats.iter().map(|s| s.conns_opened).sum();
    let conn_retries: u64 = outcome.stats.iter().map(|s| s.conn_retries).sum();
    let decode_errors: u64 = outcome.stats.iter().map(|s| s.decode_errors).sum();
    let wire_frames_tx: u64 = outcome.stats.iter().map(|s| s.frames_tx).sum();
    let wire_bytes_tx: u64 = outcome.stats.iter().map(|s| s.bytes_tx).sum();

    println!(
        "deploy: {}/{} sessions composed over {peers} peers ({transport}), \
         setup p50/p90/p99 = {p50:.1}/{p90:.1}/{p99:.1} ms, \
         {}/{} frames delivered ({frames_per_sec:.0} frames/s), \
         {conns_opened} conns, peak child RSS {:.1} MB",
        outcome.setups_ok,
        outcome.sessions,
        outcome.frames_delivered,
        outcome.frames_sent,
        outcome.peak_child_rss_bytes as f64 / 1e6,
    );
    if let Some(ok) = fingerprint_match {
        println!(
            "verify: concurrent socket setups {} the in-process cluster (fingerprint {:#018x})",
            if ok { "match" } else { "DIVERGE from" },
            outcome.setup_fingerprint,
        );
    }

    if let Some(json_path) = &json_spec {
        let mut rep = BenchReport::new("daemon");
        rep.int("sessions", outcome.sessions)
            .int("setups_ok", outcome.setups_ok)
            .int("peers", peers as u64)
            .str("transport", &transport.to_string())
            .num("compose_secs", outcome.compose_secs)
            .num("stream_secs", outcome.stream_secs)
            .int("frames_sent", outcome.frames_sent)
            .int("frames_delivered", outcome.frames_delivered)
            .bool("all_valid", outcome.all_valid)
            .num("frames_per_sec", frames_per_sec)
            .int("conns_opened", conns_opened)
            .int("conn_retries", conn_retries)
            .int("decode_errors", decode_errors)
            .int("wire_frames_tx", wire_frames_tx)
            .int("wire_bytes_tx", wire_bytes_tx)
            .int("peak_child_rss_bytes", outcome.peak_child_rss_bytes)
            .int("setup_fingerprint", outcome.setup_fingerprint);
        let mut lat = BenchBlock::new();
        lat.num("p50_ms", p50)
            .num("p90_ms", p90)
            .num("p99_ms", p99)
            .num("mean_ms", mean)
            .num("max_ms", max);
        rep.nested("setup_latency", &lat);
        if let Some(ok) = fingerprint_match {
            rep.bool("fingerprint_match", ok);
        }
        match rep.write_spec(json_path) {
            Ok(p) => eprintln!("deploy: wrote {}", p.display()),
            Err(e) => {
                eprintln!("deploy: could not write report: {e}");
                std::process::exit(1);
            }
        }
    }

    if !faults_active && outcome.setups_ok != outcome.sessions {
        eprintln!("deploy: {} sessions failed to compose without faults", outcome.sessions - outcome.setups_ok);
        std::process::exit(1);
    }
    if outcome.frames_delivered == 0 || !outcome.all_valid {
        eprintln!("deploy: streams did not deliver valid frames");
        std::process::exit(1);
    }
    if fingerprint_match == Some(false) {
        eprintln!("deploy: socket and in-process setup fingerprints diverge");
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => serve(&args[1..]),
        Some("deploy") => run_deploy(&args[1..]),
        _ => usage(),
    }
}
