//! P2P service overlay construction.
//!
//! The paper describes the overlay as a directed graph `G = (V, E)` of N
//! peers over M application-level links, "either maintained as a
//! topologically-aware overlay mesh or dynamically constructed", and states
//! that the composition system is orthogonal to the overlay topology. We
//! therefore support three styles — a latency-aware mesh, a power-law
//! overlay, and a random regular overlay — all built over the same IP
//! substrate: each overlay link's delay is the IP shortest-path delay
//! between the two peers' hosts and its capacity is the bottleneck capacity
//! of that IP path.

use crate::graph::{EdgeAttrs, Graph, NodeIndex};
use crate::routing::{dijkstra, PathResult, RoutingOracle};
use spidernet_util::rng::SliceRandom;
use spidernet_util::id::PeerId;
use spidernet_util::rng::rng_for;

/// Attributes of one overlay link: same shape as an IP link.
pub type OverlayLink = EdgeAttrs;

/// The overlay wiring style.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OverlayStyle {
    /// Topologically-aware mesh: each peer links to its `k` nearest peers
    /// by IP latency (Ratnasamy et al.'s binning idea reduced to kNN).
    Mesh {
        /// Nearest peers each node links to.
        neighbors: usize,
    },
    /// Power-law overlay: preferential attachment among peers with `m`
    /// links per joining peer.
    PowerLaw {
        /// Links added per joining peer.
        edges_per_node: usize,
    },
    /// Random (approximately) regular overlay with the given degree.
    RandomRegular {
        /// Minimum degree of every peer.
        degree: usize,
    },
}

/// Overlay construction parameters.
#[derive(Clone, Debug)]
pub struct OverlayConfig {
    /// Number of peers promoted from the IP graph (the paper uses 1,000
    /// peers out of 10,000 IP nodes).
    pub peers: usize,
    /// Wiring style.
    pub style: OverlayStyle,
}

impl Default for OverlayConfig {
    fn default() -> Self {
        OverlayConfig { peers: 1_000, style: OverlayStyle::Mesh { neighbors: 6 } }
    }
}

/// Parameters for the coordinate-space overlay used at 10^5–10^6 peers.
///
/// At that scale the IP substrate + per-peer Dijkstra construction is the
/// bottleneck (O(peers · ip_nodes · log ip_nodes) time, O(peers ·
/// ip_nodes) memory for the SSSP trees). The geometric model instead
/// embeds every peer at a deterministic point in the unit square and
/// derives pairwise delay from Euclidean distance (the Vivaldi/GNP
/// observation that internet latency is well approximated by a low-
/// dimensional embedding), making every delay query O(1) with O(peers)
/// memory and no pairwise state at all.
#[derive(Clone, Debug)]
pub struct GeoConfig {
    /// Number of peers.
    pub peers: usize,
    /// Fixed per-path overhead, ms (last-mile + processing).
    pub base_ms: f64,
    /// Delay per unit of coordinate distance, ms (the unit square's
    /// diagonal maps to `base + stretch·√2`).
    pub stretch_ms: f64,
    /// Per-peer access-link capacity range, Mbit/s (uniform).
    pub access_mbps: (f64, f64),
}

impl Default for GeoConfig {
    fn default() -> Self {
        GeoConfig {
            peers: 100_000,
            base_ms: 5.0,
            stretch_ms: 100.0,
            access_mbps: (20.0, 110.0),
        }
    }
}

/// Coordinate-space peer embedding backing a geometric overlay.
#[derive(Clone, Debug)]
pub struct GeoModel {
    coords: Vec<(f64, f64)>,
    base_ms: f64,
    stretch_ms: f64,
    access_mbps: Vec<f64>,
}

/// A constructed P2P service overlay.
///
/// Two internal models share this interface: the graph model (peers
/// placed on an IP substrate, overlay links with routed delays) and the
/// geometric model ([`Overlay::build_geo`]) where delay is a pure
/// function of peer coordinates and no link state exists. Graph-only
/// accessors ([`Overlay::neighbors`], [`Overlay::link`]) return empty
/// results on a geometric overlay; scale-aware callers check
/// [`Overlay::direct_delay`] first.
#[derive(Clone, Debug)]
pub struct Overlay {
    graph: Graph,
    ip_hosts: Vec<NodeIndex>,
    geo: Option<GeoModel>,
}

impl Overlay {
    /// Builds an overlay over `ip` per `cfg`, seeded by `(seed, "overlay")`.
    ///
    /// Runs one IP-layer Dijkstra per peer to derive overlay link delays and
    /// bottleneck capacities.
    pub fn build(ip: &Graph, cfg: &OverlayConfig, seed: u64) -> Overlay {
        assert!(cfg.peers >= 2, "an overlay needs at least two peers");
        assert!(cfg.peers <= ip.node_count(), "more peers than IP nodes");
        let mut rng = rng_for(seed, "overlay");

        // Random peer placement.
        let mut all: Vec<NodeIndex> = (0..ip.node_count()).collect();
        all.shuffle(&mut rng);
        let ip_hosts: Vec<NodeIndex> = all.into_iter().take(cfg.peers).collect();

        // One SSSP per peer host.
        let sssp: Vec<PathResult> = ip_hosts.iter().map(|&h| dijkstra(ip, h)).collect();

        let mut graph = Graph::with_nodes(cfg.peers);
        let connect = |graph: &mut Graph, a: usize, b: usize| {
            if a == b || graph.has_edge(a, b) {
                return;
            }
            let delay = sssp[a].delay_to(ip_hosts[b]);
            let cap = sssp[a].bottleneck_capacity_to(ip, ip_hosts[b]).unwrap_or(0.0);
            graph.add_edge(a, b, EdgeAttrs::new(delay, cap));
        };

        match cfg.style {
            OverlayStyle::Mesh { neighbors } => {
                assert!(neighbors >= 1, "mesh needs at least one neighbor");
                #[allow(clippy::needless_range_loop)] // `a` indexes both sssp and graph
                for a in 0..cfg.peers {
                    let mut others: Vec<usize> = (0..cfg.peers).filter(|&b| b != a).collect();
                    others.sort_by(|&x, &y| {
                        sssp[a]
                            .delay_to(ip_hosts[x])
                            .partial_cmp(&sssp[a].delay_to(ip_hosts[y]))
                            .expect("finite delays")
                    });
                    for &b in others.iter().take(neighbors) {
                        connect(&mut graph, a, b);
                    }
                }
            }
            OverlayStyle::PowerLaw { edges_per_node } => {
                assert!(edges_per_node >= 1);
                let seedn = (edges_per_node + 1).min(cfg.peers);
                let mut pool: Vec<usize> = Vec::new();
                for a in 0..seedn {
                    for b in (a + 1)..seedn {
                        connect(&mut graph, a, b);
                        pool.push(a);
                        pool.push(b);
                    }
                }
                for new in seedn..cfg.peers {
                    let mut chosen = Vec::with_capacity(edges_per_node);
                    let mut guard = 0;
                    while chosen.len() < edges_per_node && guard < 10_000 {
                        guard += 1;
                        let c = *pool.choose(&mut rng).expect("non-empty pool");
                        if c != new && !chosen.contains(&c) {
                            chosen.push(c);
                        }
                    }
                    for &b in &chosen {
                        connect(&mut graph, new, b);
                        pool.push(new);
                        pool.push(b);
                    }
                }
            }
            OverlayStyle::RandomRegular { degree } => {
                assert!(degree >= 2, "random overlay needs degree ≥ 2 to stay connected");
                // Ring for connectivity, then random chords up to the degree.
                for a in 0..cfg.peers {
                    connect(&mut graph, a, (a + 1) % cfg.peers);
                }
                for a in 0..cfg.peers {
                    let mut guard = 0;
                    while graph.degree(a) < degree && guard < 1_000 {
                        guard += 1;
                        let b = rng.gen_range(0..cfg.peers);
                        connect(&mut graph, a, b);
                    }
                }
            }
        }

        Overlay { graph, ip_hosts, geo: None }
    }

    /// Builds a geometric (coordinate-space) overlay: every peer gets a
    /// deterministic position in the unit square seeded by
    /// `(seed, "geo-overlay")`, and delay between any two peers is
    /// `base_ms + stretch_ms · euclidean_distance` — O(1) per query, no
    /// link or SSSP state. Node index `i` is peer `i` (the identity host
    /// mapping), so path keys double as peer indices downstream.
    pub fn build_geo(cfg: &GeoConfig, seed: u64) -> Overlay {
        assert!(cfg.peers >= 2, "an overlay needs at least two peers");
        let mut rng = rng_for(seed, "geo-overlay");
        let mut coords = Vec::with_capacity(cfg.peers);
        let mut access_mbps = Vec::with_capacity(cfg.peers);
        let (lo, hi) = cfg.access_mbps;
        for _ in 0..cfg.peers {
            let x: f64 = rng.gen_range(0.0..1.0);
            let y: f64 = rng.gen_range(0.0..1.0);
            coords.push((x, y));
            access_mbps.push(lo + (hi - lo) * rng.gen_range(0.0..1.0));
        }
        Overlay {
            graph: Graph::with_nodes(cfg.peers),
            ip_hosts: (0..cfg.peers).collect(),
            geo: Some(GeoModel {
                coords,
                base_ms: cfg.base_ms,
                stretch_ms: cfg.stretch_ms,
                access_mbps,
            }),
        }
    }

    /// True if this overlay uses the geometric model.
    pub fn is_geo(&self) -> bool {
        self.geo.is_some()
    }

    /// O(1) coordinate-space delay between two peers — `Some` only on a
    /// geometric overlay. The scale fast path: `PathTable` checks this
    /// before falling back to SSSP trees.
    #[inline]
    pub fn direct_delay(&self, a: PeerId, b: PeerId) -> Option<f64> {
        let geo = self.geo.as_ref()?;
        if a == b {
            return Some(0.0);
        }
        let (ax, ay) = geo.coords[a.index()];
        let (bx, by) = geo.coords[b.index()];
        let dist = ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt();
        Some(geo.base_ms + geo.stretch_ms * dist)
    }

    /// A peer's access-link capacity, Mbit/s — `Some` only on a
    /// geometric overlay, where bandwidth is constrained at the two
    /// endpoints' access links instead of per overlay link.
    #[inline]
    pub fn access_capacity(&self, p: PeerId) -> Option<f64> {
        self.geo.as_ref().map(|g| g.access_mbps[p.index()])
    }

    /// Number of peers.
    pub fn peer_count(&self) -> usize {
        self.graph.node_count()
    }

    /// All peer ids.
    pub fn peers(&self) -> impl Iterator<Item = PeerId> {
        (0..self.peer_count() as u64).map(PeerId::new)
    }

    /// The IP node hosting a peer.
    pub fn ip_host(&self, p: PeerId) -> NodeIndex {
        self.ip_hosts[p.index()]
    }

    /// The overlay graph (peers as node indices).
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Overlay neighbors of `p` with link attributes.
    pub fn neighbors(&self, p: PeerId) -> impl Iterator<Item = (PeerId, OverlayLink)> + '_ {
        self.graph.neighbors(p.index()).map(|(n, e)| (PeerId::from(n), e))
    }

    /// Attributes of the direct overlay link between two peers, if any.
    pub fn link(&self, a: PeerId, b: PeerId) -> Option<OverlayLink> {
        self.graph.edge(a.index(), b.index())
    }

    /// A routing oracle over the overlay graph (application-level routing:
    /// messages travel along overlay links, shortest-delay paths).
    pub fn routing(&self) -> RoutingOracle<'_> {
        RoutingOracle::new(&self.graph)
    }

    /// Overlay-routed delay between two peers (shortest overlay path; on
    /// a geometric overlay, the O(1) coordinate delay).
    /// Convenience wrapper; for bulk queries use [`Overlay::routing`].
    pub fn route_delay(&self, a: PeerId, b: PeerId) -> f64 {
        if let Some(d) = self.direct_delay(a, b) {
            return d;
        }
        dijkstra(&self.graph, a.index()).delay_to(b.index())
    }

    /// Bottleneck capacity of the overlay path `a → b`: the paper's
    /// `ba_{℘_j}` term, the bandwidth available on the underlying overlay
    /// network path. `None` if no overlay path exists. On a geometric
    /// overlay the bottleneck is the tighter of the two access links.
    pub fn route_bottleneck(&self, a: PeerId, b: PeerId) -> Option<f64> {
        if self.is_geo() {
            let ca = self.access_capacity(a)?;
            let cb = self.access_capacity(b)?;
            return Some(ca.min(cb));
        }
        dijkstra(&self.graph, a.index()).bottleneck_capacity_to(&self.graph, b.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inet::{generate_power_law, InetConfig};

    fn ip_graph() -> Graph {
        generate_power_law(&InetConfig { nodes: 300, ..InetConfig::default() }, 5)
    }

    fn build(style: OverlayStyle) -> Overlay {
        Overlay::build(&ip_graph(), &OverlayConfig { peers: 60, style }, 9)
    }

    #[test]
    fn mesh_overlay_is_connected_with_expected_degree() {
        let o = build(OverlayStyle::Mesh { neighbors: 4 });
        assert_eq!(o.peer_count(), 60);
        assert!(o.graph().is_connected());
        // kNN guarantees each peer at least k links (mutual selections can
        // add more).
        for p in o.peers() {
            assert!(o.graph().degree(p.index()) >= 4);
        }
    }

    #[test]
    fn power_law_overlay_is_connected() {
        let o = build(OverlayStyle::PowerLaw { edges_per_node: 2 });
        assert!(o.graph().is_connected());
    }

    #[test]
    fn random_regular_overlay_meets_degree_floor() {
        let o = build(OverlayStyle::RandomRegular { degree: 4 });
        assert!(o.graph().is_connected());
        for p in o.peers() {
            assert!(o.graph().degree(p.index()) >= 4, "peer {p}");
        }
    }

    #[test]
    fn overlay_link_delay_matches_ip_shortest_path() {
        let ip = ip_graph();
        let o = Overlay::build(&ip, &OverlayConfig { peers: 40, style: OverlayStyle::Mesh { neighbors: 3 } }, 2);
        let mut oracle = RoutingOracle::new(&ip);
        for (a, b, e) in o.graph().edges() {
            let ha = o.ip_host(PeerId::from(a));
            let hb = o.ip_host(PeerId::from(b));
            let expect = oracle.delay(ha, hb);
            assert!((e.delay_ms - expect).abs() < 1e-9, "link {a}-{b}");
        }
    }

    #[test]
    fn peer_hosts_are_distinct() {
        let o = build(OverlayStyle::Mesh { neighbors: 3 });
        let mut hosts: Vec<_> = o.peers().map(|p| o.ip_host(p)).collect();
        hosts.sort_unstable();
        hosts.dedup();
        assert_eq!(hosts.len(), o.peer_count());
    }

    #[test]
    fn route_delay_uses_overlay_paths() {
        let o = build(OverlayStyle::Mesh { neighbors: 4 });
        let a = PeerId::new(0);
        let b = PeerId::new(30);
        let d = o.route_delay(a, b);
        assert!(d.is_finite() && d > 0.0);
        // Triangle inequality against any direct link.
        if let Some(l) = o.link(a, b) {
            assert!(d <= l.delay_ms + 1e-9);
        }
        assert!(o.route_bottleneck(a, b).unwrap() > 0.0);
    }

    #[test]
    fn deterministic_in_seed() {
        let ip = ip_graph();
        let cfg = OverlayConfig { peers: 50, style: OverlayStyle::PowerLaw { edges_per_node: 2 } };
        let a = Overlay::build(&ip, &cfg, 3);
        let b = Overlay::build(&ip, &cfg, 3);
        assert_eq!(
            a.graph().edges().map(|(x, y, _)| (x, y)).collect::<Vec<_>>(),
            b.graph().edges().map(|(x, y, _)| (x, y)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn geo_overlay_delay_is_symmetric_and_bounded() {
        let cfg = GeoConfig { peers: 500, ..GeoConfig::default() };
        let o = Overlay::build_geo(&cfg, 42);
        assert!(o.is_geo());
        assert_eq!(o.peer_count(), 500);
        for (a, b) in [(0u64, 1), (7, 450), (123, 123)] {
            let (pa, pb) = (PeerId::new(a), PeerId::new(b));
            let d = o.direct_delay(pa, pb).unwrap();
            assert_eq!(o.direct_delay(pb, pa).unwrap().to_bits(), d.to_bits());
            if a == b {
                assert_eq!(d, 0.0);
            } else {
                assert!(d >= cfg.base_ms && d <= cfg.base_ms + cfg.stretch_ms * 1.5);
            }
            assert_eq!(o.route_delay(pa, pb).to_bits(), d.to_bits());
        }
        let cap = o.route_bottleneck(PeerId::new(0), PeerId::new(1)).unwrap();
        let (lo, hi) = cfg.access_mbps;
        assert!(cap >= lo && cap <= hi);
        assert_eq!(
            cap,
            o.access_capacity(PeerId::new(0))
                .unwrap()
                .min(o.access_capacity(PeerId::new(1)).unwrap())
        );
    }

    #[test]
    fn geo_overlay_is_deterministic_in_seed() {
        let cfg = GeoConfig { peers: 100, ..GeoConfig::default() };
        let a = Overlay::build_geo(&cfg, 5);
        let b = Overlay::build_geo(&cfg, 5);
        for p in 0..100u64 {
            let (x, y) = (PeerId::new(p), PeerId::new((p + 37) % 100));
            assert_eq!(
                a.direct_delay(x, y).unwrap().to_bits(),
                b.direct_delay(x, y).unwrap().to_bits()
            );
        }
    }

    #[test]
    fn graph_overlay_has_no_direct_delay() {
        let o = build(OverlayStyle::Mesh { neighbors: 3 });
        assert!(!o.is_geo());
        assert!(o.direct_delay(PeerId::new(0), PeerId::new(1)).is_none());
        assert!(o.access_capacity(PeerId::new(0)).is_none());
    }

    #[test]
    #[should_panic(expected = "more peers than IP nodes")]
    fn too_many_peers_rejected() {
        let ip = generate_power_law(&InetConfig { nodes: 10, ..InetConfig::default() }, 1);
        Overlay::build(&ip, &OverlayConfig { peers: 11, style: OverlayStyle::Mesh { neighbors: 2 } }, 0);
    }
}
