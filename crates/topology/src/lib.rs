//! Network topology substrate for SpiderNet.
//!
//! The paper's simulator generates a 10,000-node power-law IP network with
//! Inet-3.0, randomly promotes 1,000 nodes to SpiderNet peers, connects them
//! into an overlay (mesh or power-law), and routes both IP-layer and
//! overlay-layer traffic over shortest paths. This crate reproduces that
//! pipeline:
//!
//! * [`graph`] — the weighted undirected graph both layers share;
//! * [`inet`] — a degree-based power-law Internet generator standing in for
//!   Inet-3.0 (see DESIGN.md §2 for the substitution argument);
//! * [`routing`] — Dijkstra single-source shortest paths and a cached
//!   multi-source oracle;
//! * [`overlay`] — peer selection and overlay construction, with per-link
//!   latency/capacity derived from the underlying IP paths;
//! * [`flow`] — the shared-bandwidth contention model: active streams as
//!   flows over their route's links, with order-independent max-min
//!   fair-share rates recomputed on flow add/remove.

#![warn(missing_docs)]

pub mod flow;
pub mod graph;
pub mod inet;
pub mod overlay;
pub mod routing;

pub use flow::{FlowKey, FlowNet, LinkId};
pub use graph::{EdgeAttrs, Graph, NodeIndex};
pub use inet::{generate_power_law, InetConfig};
pub use overlay::{Overlay, OverlayConfig, OverlayLink, OverlayStyle};
pub use routing::{dijkstra, PathResult, RoutingOracle};
