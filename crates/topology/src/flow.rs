//! Shared-bandwidth flow model: max-min fair-share rates over links.
//!
//! Each active stream is a *flow* crossing a set of links; every link has
//! a fixed capacity shared fairly among the flows crossing it. Rates are
//! the classic max-min ("water-filling") allocation, recomputed lazily
//! whenever the flow set changes (dslab-network style: recalc on flow
//! add/remove, not per-packet).
//!
//! # Determinism and order-independence
//!
//! The recompute uses *uniform progressive filling*: each round raises
//! every unfixed flow's rate by the same increment
//!
//! ```text
//! delta = min( min over links l with n_l > 0 of residual_l / n_l,
//!              min over unfixed flows f of demand_f − rate_f )
//! ```
//!
//! then freezes flows that hit their demand or sit on a saturated link.
//! Every operation is a min/compare or a uniform add over the same
//! values regardless of which slot a flow occupies, so the final rates
//! are **bitwise identical no matter the order flows were inserted** at
//! the same model time — the property the congestion experiments pin.

/// Handle to a link registered in a [`FlowNet`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(u32);

impl LinkId {
    /// The dense index of this link.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Generational handle to a flow registered in a [`FlowNet`].
///
/// Slots are recycled; the generation makes stale keys inert rather
/// than aliasing a later flow.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowKey {
    slot: u32,
    generation: u32,
}

#[derive(Clone, Debug)]
struct FlowSlot {
    generation: u32,
    live: bool,
    demand: f64,
    /// Sorted, deduplicated link indices this flow crosses.
    links: Vec<u32>,
}

/// The shared-bandwidth network: links with capacities plus the set of
/// active flows, with lazily recomputed max-min fair-share rates.
#[derive(Clone, Debug, Default)]
pub struct FlowNet {
    capacity: Vec<f64>,
    slots: Vec<FlowSlot>,
    free: Vec<u32>,
    live: usize,
    /// Per-slot allocated rate (valid when `!dirty`).
    rates: Vec<f64>,
    /// Per-link total allocated bandwidth (valid when `!dirty`).
    usage: Vec<f64>,
    dirty: bool,
    epoch: u64,
    recalcs: u64,
}

/// A flow freezes as demand-met when `demand − rate` drops below this.
const EPS_DEMAND: f64 = 1e-12;
/// A link counts as saturated when its residual drops below this.
const EPS_LINK: f64 = 1e-9;

impl FlowNet {
    /// An empty network.
    pub fn new() -> FlowNet {
        FlowNet::default()
    }

    /// Registers a link with the given capacity (≥ 0, in the same unit
    /// as flow demands — Mbps throughout this codebase).
    pub fn add_link(&mut self, capacity_mbps: f64) -> LinkId {
        assert!(
            capacity_mbps.is_finite() && capacity_mbps >= 0.0,
            "link capacity must be finite and non-negative"
        );
        let id = LinkId(self.capacity.len() as u32);
        self.capacity.push(capacity_mbps);
        self.usage.push(0.0);
        id
    }

    /// Number of registered links.
    pub fn link_count(&self) -> usize {
        self.capacity.len()
    }

    /// A link's fixed capacity.
    pub fn link_capacity(&self, link: LinkId) -> f64 {
        self.capacity[link.index()]
    }

    /// Adds a flow with the given demand over `links` (duplicates are
    /// collapsed — a flow crosses each link at most once). A flow with
    /// no links runs at its full demand.
    pub fn add_flow(&mut self, links: &[LinkId], demand: f64) -> FlowKey {
        assert!(demand.is_finite() && demand >= 0.0, "flow demand must be finite and non-negative");
        let mut ls: Vec<u32> = links.iter().map(|l| l.0).collect();
        ls.sort_unstable();
        ls.dedup();
        if let Some(&max) = ls.last() {
            assert!((max as usize) < self.capacity.len(), "flow references unknown link");
        }
        let slot = match self.free.pop() {
            Some(s) => {
                let f = &mut self.slots[s as usize];
                f.live = true;
                f.demand = demand;
                f.links = ls;
                s
            }
            None => {
                self.slots.push(FlowSlot { generation: 0, live: true, demand, links: ls });
                self.rates.push(0.0);
                (self.slots.len() - 1) as u32
            }
        };
        self.live += 1;
        self.dirty = true;
        self.epoch += 1;
        FlowKey { slot, generation: self.slots[slot as usize].generation }
    }

    /// Removes a flow. Returns false (and changes nothing) for a stale
    /// or unknown key.
    pub fn remove_flow(&mut self, key: FlowKey) -> bool {
        let Some(f) = self.slots.get_mut(key.slot as usize) else { return false };
        if !f.live || f.generation != key.generation {
            return false;
        }
        f.live = false;
        f.generation = f.generation.wrapping_add(1);
        f.links = Vec::new();
        self.free.push(key.slot);
        self.live -= 1;
        self.dirty = true;
        self.epoch += 1;
        true
    }

    /// Whether `key` refers to a live flow.
    pub fn contains(&self, key: FlowKey) -> bool {
        self.slots
            .get(key.slot as usize)
            .is_some_and(|f| f.live && f.generation == key.generation)
    }

    /// Number of live flows.
    pub fn flow_count(&self) -> usize {
        self.live
    }

    /// A flow's demand (None for stale keys).
    pub fn demand(&self, key: FlowKey) -> Option<f64> {
        let f = self.slots.get(key.slot as usize)?;
        (f.live && f.generation == key.generation).then_some(f.demand)
    }

    /// A flow's current max-min fair-share rate (None for stale keys).
    /// Recomputes if the flow set changed since the last query.
    pub fn rate(&mut self, key: FlowKey) -> Option<f64> {
        if !self.contains(key) {
            return None;
        }
        self.recompute_if_dirty();
        Some(self.rates[key.slot as usize])
    }

    /// Total bandwidth currently allocated over a link.
    pub fn link_usage(&mut self, link: LinkId) -> f64 {
        self.recompute_if_dirty();
        self.usage[link.index()]
    }

    /// `1 − usage/capacity` for a link, clamped to `[0, 1]`; a
    /// zero-capacity link has no headroom.
    pub fn link_headroom(&mut self, link: LinkId) -> f64 {
        self.recompute_if_dirty();
        let cap = self.capacity[link.index()];
        if cap <= 0.0 {
            return 0.0;
        }
        ((cap - self.usage[link.index()]) / cap).clamp(0.0, 1.0)
    }

    /// Bumped on every flow add/remove (cache invalidation hook).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// How many full rate recomputes have run (lazy: bounded by the
    /// number of queries, not by the number of mutations).
    pub fn recalcs(&self) -> u64 {
        self.recalcs
    }

    /// Forces rates current (useful before bulk `rate` reads from
    /// shared-reference contexts is not possible — rates need `&mut`).
    pub fn refresh(&mut self) {
        self.recompute_if_dirty();
    }

    fn recompute_if_dirty(&mut self) {
        if !self.dirty {
            return;
        }
        self.dirty = false;
        self.recalcs += 1;
        let nlinks = self.capacity.len();
        let mut residual = self.capacity.clone();
        let mut crossing = vec![0u32; nlinks];
        // `unfixed[s]`: slot still accumulating rate.
        let mut unfixed: Vec<bool> = Vec::with_capacity(self.slots.len());
        for (s, f) in self.slots.iter().enumerate() {
            self.rates[s] = 0.0;
            let active = f.live && f.demand > EPS_DEMAND;
            unfixed.push(active);
            if active {
                for &l in &f.links {
                    crossing[l as usize] += 1;
                }
            }
        }
        let mut remaining = unfixed.iter().filter(|&&a| a).count();
        // Each round fixes ≥ 1 flow (demand met or link saturated), so
        // this bound is generous; it guards against float pathologies.
        let mut rounds = self.slots.len() + nlinks + 2;
        while remaining > 0 && rounds > 0 {
            rounds -= 1;
            // The uniform increment: limited by the tightest per-flow
            // fair share on any loaded link and by the closest demand.
            let mut delta = f64::INFINITY;
            for l in 0..nlinks {
                if crossing[l] > 0 {
                    let share = residual[l].max(0.0) / f64::from(crossing[l]);
                    if share < delta {
                        delta = share;
                    }
                }
            }
            for (s, f) in self.slots.iter().enumerate() {
                if unfixed[s] {
                    let gap = f.demand - self.rates[s];
                    if gap < delta {
                        delta = gap;
                    }
                }
            }
            if !delta.is_finite() {
                break;
            }
            let delta = delta.max(0.0);
            if delta > 0.0 {
                for (s, f) in self.slots.iter().enumerate() {
                    if unfixed[s] {
                        self.rates[s] += delta;
                        let _ = f;
                    }
                }
                for l in 0..nlinks {
                    if crossing[l] > 0 {
                        residual[l] -= delta * f64::from(crossing[l]);
                    }
                }
            }
            // Freeze flows that met demand or sit on a saturated link.
            for (s, f) in self.slots.iter().enumerate() {
                if !unfixed[s] {
                    continue;
                }
                let done = f.demand - self.rates[s] <= EPS_DEMAND
                    || f.links.iter().any(|&l| residual[l as usize] <= EPS_LINK);
                if done {
                    unfixed[s] = false;
                    remaining -= 1;
                    for &l in &f.links {
                        crossing[l as usize] -= 1;
                    }
                }
            }
        }
        debug_assert_eq!(remaining, 0, "progressive filling failed to converge");
        for (l, r) in residual.iter().enumerate() {
            self.usage[l] = self.capacity[l] - r;
        }
    }

    /// Checks the fair-share safety invariants, returning a description
    /// of the first violation: every flow rate is within `[0, demand]`
    /// and every link's allocated total stays within capacity (to float
    /// slack).
    pub fn verify_invariants(&mut self) -> Result<(), String> {
        self.recompute_if_dirty();
        let mut per_link = vec![0.0f64; self.capacity.len()];
        for (s, f) in self.slots.iter().enumerate() {
            if !f.live {
                continue;
            }
            let r = self.rates[s];
            if !(0.0..=f.demand + 1e-9).contains(&r) {
                return Err(format!("flow slot {s}: rate {r} outside [0, {}]", f.demand));
            }
            for &l in &f.links {
                per_link[l as usize] += r;
            }
        }
        for (l, &total) in per_link.iter().enumerate() {
            let cap = self.capacity[l];
            if total > cap + 1e-6 {
                return Err(format!("link {l}: allocated {total} exceeds capacity {cap}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_flow_gets_full_demand() {
        let mut net = FlowNet::new();
        let l = net.add_link(100.0);
        let f = net.add_flow(&[l], 10.0);
        assert_eq!(net.rate(f), Some(10.0));
        assert!((net.link_usage(l) - 10.0).abs() < 1e-12);
        assert!(net.verify_invariants().is_ok());
    }

    #[test]
    fn equal_flows_split_a_bottleneck_evenly() {
        let mut net = FlowNet::new();
        let l = net.add_link(90.0);
        let a = net.add_flow(&[l], 100.0);
        let b = net.add_flow(&[l], 100.0);
        let c = net.add_flow(&[l], 100.0);
        for f in [a, b, c] {
            assert!((net.rate(f).unwrap() - 30.0).abs() < 1e-9);
        }
        assert!(net.verify_invariants().is_ok());
    }

    #[test]
    fn small_demand_frees_share_for_the_rest() {
        // Classic max-min: demands 5, 100, 100 on a 90-capacity link →
        // 5, 42.5, 42.5.
        let mut net = FlowNet::new();
        let l = net.add_link(90.0);
        let small = net.add_flow(&[l], 5.0);
        let big1 = net.add_flow(&[l], 100.0);
        let big2 = net.add_flow(&[l], 100.0);
        assert!((net.rate(small).unwrap() - 5.0).abs() < 1e-9);
        assert!((net.rate(big1).unwrap() - 42.5).abs() < 1e-9);
        assert!((net.rate(big2).unwrap() - 42.5).abs() < 1e-9);
    }

    #[test]
    fn multi_link_flow_is_limited_by_its_tightest_link() {
        let mut net = FlowNet::new();
        let wide = net.add_link(100.0);
        let narrow = net.add_link(10.0);
        let through = net.add_flow(&[wide, narrow], 50.0);
        let local = net.add_flow(&[wide], 50.0);
        assert!((net.rate(through).unwrap() - 10.0).abs() < 1e-9);
        // The local flow picks up what the through flow cannot use.
        assert!((net.rate(local).unwrap() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn removal_returns_bandwidth() {
        let mut net = FlowNet::new();
        let l = net.add_link(60.0);
        let a = net.add_flow(&[l], 60.0);
        let b = net.add_flow(&[l], 60.0);
        assert!((net.rate(a).unwrap() - 30.0).abs() < 1e-9);
        assert!(net.remove_flow(b));
        assert!((net.rate(a).unwrap() - 60.0).abs() < 1e-9);
        // Stale key is inert.
        assert!(!net.remove_flow(b));
        assert_eq!(net.rate(b), None);
    }

    #[test]
    fn slot_reuse_does_not_alias_old_keys() {
        let mut net = FlowNet::new();
        let l = net.add_link(10.0);
        let a = net.add_flow(&[l], 1.0);
        assert!(net.remove_flow(a));
        let b = net.add_flow(&[l], 2.0);
        assert!(!net.contains(a));
        assert_eq!(net.demand(a), None);
        assert_eq!(net.demand(b), Some(2.0));
    }

    #[test]
    fn zero_capacity_link_pins_flows_to_zero() {
        let mut net = FlowNet::new();
        let dead = net.add_link(0.0);
        let f = net.add_flow(&[dead], 5.0);
        assert_eq!(net.rate(f), Some(0.0));
        assert!(net.verify_invariants().is_ok());
    }

    #[test]
    fn linkless_flow_runs_at_demand() {
        let mut net = FlowNet::new();
        let f = net.add_flow(&[], 7.5);
        assert_eq!(net.rate(f), Some(7.5));
    }

    #[test]
    fn insertion_order_is_bitwise_irrelevant() {
        // Three links, five flows with awkward demands; insert in two
        // different orders and compare every rate bit-for-bit.
        let caps = [37.0, 11.0, 91.0];
        let specs: [(&[usize], f64); 5] = [
            (&[0, 1], 13.3),
            (&[1], 7.7),
            (&[0, 2], 55.5),
            (&[2], 100.0),
            (&[0, 1, 2], 3.1),
        ];
        let build = |order: &[usize]| {
            let mut net = FlowNet::new();
            let links: Vec<LinkId> = caps.iter().map(|&c| net.add_link(c)).collect();
            let mut keys = vec![None; specs.len()];
            for &i in order {
                let (ls, d) = specs[i];
                let ls: Vec<LinkId> = ls.iter().map(|&j| links[j]).collect();
                keys[i] = Some(net.add_flow(&ls, d));
            }
            let rates: Vec<u64> =
                keys.iter().map(|k| net.rate(k.unwrap()).unwrap().to_bits()).collect();
            rates
        };
        let fwd = build(&[0, 1, 2, 3, 4]);
        let rev = build(&[4, 3, 2, 1, 0]);
        let shuffled = build(&[2, 0, 4, 1, 3]);
        assert_eq!(fwd, rev);
        assert_eq!(fwd, shuffled);
    }

    #[test]
    fn epoch_and_recalcs_track_mutations_lazily() {
        let mut net = FlowNet::new();
        let l = net.add_link(10.0);
        assert_eq!(net.epoch(), 0);
        let a = net.add_flow(&[l], 1.0);
        let b = net.add_flow(&[l], 1.0);
        assert_eq!(net.epoch(), 2);
        assert_eq!(net.recalcs(), 0, "no query yet, no recompute");
        let _ = net.rate(a);
        let _ = net.rate(b);
        assert_eq!(net.recalcs(), 1, "one recompute serves both queries");
        net.remove_flow(a);
        assert_eq!(net.epoch(), 3);
        let _ = net.rate(b);
        assert_eq!(net.recalcs(), 2);
    }
}
