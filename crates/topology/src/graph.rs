//! Weighted undirected graph shared by the IP layer and the overlay layer.


/// Dense node index into a [`Graph`].
pub type NodeIndex = usize;

/// Attributes of one (undirected) link.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EdgeAttrs {
    /// Propagation delay in milliseconds.
    pub delay_ms: f64,
    /// Capacity in Mbit/s.
    pub capacity_mbps: f64,
}

impl EdgeAttrs {
    /// A link with the given delay and capacity.
    pub fn new(delay_ms: f64, capacity_mbps: f64) -> Self {
        EdgeAttrs { delay_ms, capacity_mbps }
    }
}

/// An undirected graph stored as per-node adjacency lists.
///
/// Both endpoints hold a copy of the edge attributes, so neighbor iteration
/// never chases a separate edge table — the access pattern Dijkstra and the
/// probe simulator hammer.
#[derive(Clone, Debug, Default)]
pub struct Graph {
    adj: Vec<Vec<(NodeIndex, EdgeAttrs)>>,
    edge_count: usize,
}

impl Graph {
    /// An empty graph with `n` isolated nodes.
    pub fn with_nodes(n: usize) -> Self {
        Graph { adj: vec![Vec::new(); n], edge_count: 0 }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Adds a node, returning its index.
    pub fn add_node(&mut self) -> NodeIndex {
        self.adj.push(Vec::new());
        self.adj.len() - 1
    }

    /// Adds an undirected edge. Panics on out-of-range endpoints or
    /// self-loops; silently ignores an exact duplicate edge.
    pub fn add_edge(&mut self, a: NodeIndex, b: NodeIndex, attrs: EdgeAttrs) {
        assert!(a < self.adj.len() && b < self.adj.len(), "edge endpoint out of range");
        assert_ne!(a, b, "self-loops are not allowed");
        if self.has_edge(a, b) {
            return;
        }
        self.adj[a].push((b, attrs));
        self.adj[b].push((a, attrs));
        self.edge_count += 1;
    }

    /// Returns true if an edge `{a, b}` exists.
    pub fn has_edge(&self, a: NodeIndex, b: NodeIndex) -> bool {
        // Scan the smaller adjacency list.
        let (probe, target) = if self.adj[a].len() <= self.adj[b].len() { (a, b) } else { (b, a) };
        self.adj[probe].iter().any(|(n, _)| *n == target)
    }

    /// Attributes of the edge `{a, b}`, if present.
    pub fn edge(&self, a: NodeIndex, b: NodeIndex) -> Option<EdgeAttrs> {
        self.adj[a].iter().find(|(n, _)| *n == b).map(|(_, e)| *e)
    }

    /// Degree of node `v`.
    pub fn degree(&self, v: NodeIndex) -> usize {
        self.adj[v].len()
    }

    /// Iterates over the neighbors of `v` with edge attributes.
    pub fn neighbors(&self, v: NodeIndex) -> impl Iterator<Item = (NodeIndex, EdgeAttrs)> + '_ {
        self.adj[v].iter().copied()
    }

    /// Iterates over every undirected edge once, as `(a, b, attrs)` with
    /// `a < b`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeIndex, NodeIndex, EdgeAttrs)> + '_ {
        self.adj.iter().enumerate().flat_map(|(a, nbrs)| {
            nbrs.iter().filter(move |(b, _)| a < *b).map(move |(b, e)| (a, *b, *e))
        })
    }

    /// Returns true if the graph is connected (or empty).
    pub fn is_connected(&self) -> bool {
        if self.adj.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.adj.len()];
        let mut stack = vec![0];
        seen[0] = true;
        let mut visited = 1;
        while let Some(v) = stack.pop() {
            for (n, _) in &self.adj[v] {
                if !seen[*n] {
                    seen[*n] = true;
                    visited += 1;
                    stack.push(*n);
                }
            }
        }
        visited == self.adj.len()
    }

    /// Degree histogram: `hist[d]` = number of nodes of degree `d`.
    pub fn degree_histogram(&self) -> Vec<usize> {
        let max_deg = self.adj.iter().map(Vec::len).max().unwrap_or(0);
        let mut hist = vec![0usize; max_deg + 1];
        for nbrs in &self.adj {
            hist[nbrs.len()] += 1;
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        let mut g = Graph::with_nodes(3);
        g.add_edge(0, 1, EdgeAttrs::new(1.0, 100.0));
        g.add_edge(1, 2, EdgeAttrs::new(2.0, 100.0));
        g.add_edge(0, 2, EdgeAttrs::new(5.0, 10.0));
        g
    }

    #[test]
    fn counts_and_degrees() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.degree(0), 2);
    }

    #[test]
    fn edges_are_undirected() {
        let g = triangle();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert_eq!(g.edge(2, 0).unwrap().delay_ms, 5.0);
        assert_eq!(g.edge(0, 2).unwrap().delay_ms, 5.0);
    }

    #[test]
    fn duplicate_edges_ignored() {
        let mut g = triangle();
        g.add_edge(0, 1, EdgeAttrs::new(9.0, 9.0));
        assert_eq!(g.edge_count(), 3);
        // Original attributes kept.
        assert_eq!(g.edge(0, 1).unwrap().delay_ms, 1.0);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loops_panic() {
        let mut g = Graph::with_nodes(1);
        g.add_edge(0, 0, EdgeAttrs::new(1.0, 1.0));
    }

    #[test]
    fn edge_iteration_visits_each_once() {
        let g = triangle();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 3);
        for (a, b, _) in edges {
            assert!(a < b);
        }
    }

    #[test]
    fn connectivity() {
        assert!(triangle().is_connected());
        let mut g = Graph::with_nodes(4);
        g.add_edge(0, 1, EdgeAttrs::new(1.0, 1.0));
        g.add_edge(2, 3, EdgeAttrs::new(1.0, 1.0));
        assert!(!g.is_connected());
        assert!(Graph::with_nodes(0).is_connected());
        assert!(Graph::with_nodes(1).is_connected());
    }

    #[test]
    fn degree_histogram_sums_to_node_count() {
        let g = triangle();
        let hist = g.degree_histogram();
        assert_eq!(hist.iter().sum::<usize>(), 3);
        assert_eq!(hist[2], 3);
    }

    #[test]
    fn add_node_extends_graph() {
        let mut g = triangle();
        let v = g.add_node();
        assert_eq!(v, 3);
        assert_eq!(g.degree(v), 0);
        g.add_edge(v, 0, EdgeAttrs::new(1.0, 1.0));
        assert!(g.has_edge(3, 0));
    }
}
