//! Degree-based power-law Internet topology generation.
//!
//! Stand-in for the Inet-3.0 generator the paper uses. Inet-3.0 synthesizes
//! AS-level graphs whose degree distribution follows the power laws observed
//! by Faloutsos et al.; its essential outputs for SpiderNet are (a) a
//! power-law degree distribution with a small, highly connected core and a
//! large low-degree fringe, and (b) heterogeneous link delays. We reproduce
//! both with a generalized linear preference (GLP-style) preferential
//! attachment process over nodes placed on a 2-D plane, deriving propagation
//! delays from Euclidean distance and assigning capacities by a simple
//! core/edge tiering, mirroring how transit links are faster than stub
//! links.

use crate::graph::{EdgeAttrs, Graph};
use spidernet_util::rng::SliceRandom;
use spidernet_util::rng::rng_for;

/// Parameters of the power-law generator.
#[derive(Clone, Debug)]
pub struct InetConfig {
    /// Total number of nodes (the paper uses 10,000).
    pub nodes: usize,
    /// Edges added per new node (m in BA terms; Inet graphs average degree
    /// ≈ 2·m). 2 reproduces Inet's sparse AS graphs.
    pub edges_per_node: usize,
    /// Preference shift of the GLP process. 0.0 gives pure BA (exponent 3);
    /// negative values flatten the exponent toward the ~2.2 observed on the
    /// Internet.
    pub preference_shift: f64,
    /// Side of the square on which nodes are scattered, in "ms of
    /// propagation" — the maximum single-hop delay contribution.
    pub plane_side_ms: f64,
    /// Minimum per-link delay (serialization/processing floor), ms.
    pub min_link_delay_ms: f64,
    /// Capacity of core links (between high-degree nodes), Mbit/s.
    pub core_capacity_mbps: f64,
    /// Capacity of edge links, Mbit/s.
    pub edge_capacity_mbps: f64,
    /// Degree above which a node counts as core for capacity tiering.
    pub core_degree_threshold: usize,
}

impl Default for InetConfig {
    fn default() -> Self {
        InetConfig {
            nodes: 10_000,
            edges_per_node: 2,
            preference_shift: -0.5,
            plane_side_ms: 30.0,
            min_link_delay_ms: 0.5,
            core_capacity_mbps: 1_000.0,
            edge_capacity_mbps: 100.0,
            core_degree_threshold: 10,
        }
    }
}

/// Generates a connected power-law graph per `cfg`, seeded by
/// `(seed, "inet")`.
///
/// The process: start from a small clique, then attach each new node to
/// `edges_per_node` distinct existing nodes chosen with probability
/// proportional to `degree - preference_shift` (GLP). Finally annotate every
/// link with a distance-derived delay and a tiered capacity.
pub fn generate_power_law(cfg: &InetConfig, seed: u64) -> Graph {
    assert!(cfg.nodes >= 3, "need at least 3 nodes");
    assert!(cfg.edges_per_node >= 1, "need at least one edge per node");
    assert!(
        cfg.preference_shift < 1.0,
        "preference shift must be < 1 so attachment weights stay positive"
    );
    let mut rng = rng_for(seed, "inet");

    // Node coordinates drive link delays.
    let coords: Vec<(f64, f64)> = (0..cfg.nodes)
        .map(|_| (rng.gen::<f64>() * cfg.plane_side_ms, rng.gen::<f64>() * cfg.plane_side_ms))
        .collect();

    let mut g = Graph::with_nodes(cfg.nodes);
    let seed_nodes = (cfg.edges_per_node + 1).min(cfg.nodes);

    // `targets` holds one entry per unit of attachment weight: `degree`
    // copies of each node plus a correction pool for the preference shift.
    // We implement the shifted preference by mixing degree-proportional
    // choice with uniform choice: P(v) ∝ deg(v) - c equals a
    // (1-c·n/Σdeg)-weighted degree draw plus uniform correction; for
    // simplicity and robustness we use the standard repeated-nodes trick
    // for the degree part and flip a biased coin for the uniform part.
    let mut degree_pool: Vec<usize> = Vec::with_capacity(cfg.nodes * cfg.edges_per_node * 2);

    // Seed clique.
    for a in 0..seed_nodes {
        for b in (a + 1)..seed_nodes {
            g.add_edge(a, b, edge_attrs(&coords, a, b, cfg, &g));
            degree_pool.push(a);
            degree_pool.push(b);
        }
    }

    // Probability of taking the uniform branch instead of the
    // degree-proportional branch. A negative shift boosts low-degree nodes.
    let uniform_prob = if cfg.preference_shift < 0.0 {
        (-cfg.preference_shift) / (1.0 - cfg.preference_shift)
    } else {
        0.0
    };

    for new in seed_nodes..cfg.nodes {
        let mut chosen: Vec<usize> = Vec::with_capacity(cfg.edges_per_node);
        let mut guard = 0;
        while chosen.len() < cfg.edges_per_node && guard < 10_000 {
            guard += 1;
            let candidate = if rng.gen::<f64>() < uniform_prob {
                rng.gen_range(0..new)
            } else {
                *degree_pool.choose(&mut rng).expect("pool non-empty after seeding")
            };
            if candidate != new && !chosen.contains(&candidate) {
                chosen.push(candidate);
            }
        }
        for &t in &chosen {
            g.add_edge(new, t, edge_attrs(&coords, new, t, cfg, &g));
            degree_pool.push(new);
            degree_pool.push(t);
        }
    }

    debug_assert!(g.is_connected(), "preferential attachment keeps the graph connected");
    retier_capacities(&mut g, cfg);
    g
}

fn edge_attrs(coords: &[(f64, f64)], a: usize, b: usize, cfg: &InetConfig, _g: &Graph) -> EdgeAttrs {
    let (ax, ay) = coords[a];
    let (bx, by) = coords[b];
    let dist = ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt();
    // Capacity assigned later by retier_capacities once degrees are final.
    EdgeAttrs::new(cfg.min_link_delay_ms + dist, cfg.edge_capacity_mbps)
}

/// Re-assigns link capacities once the final degrees are known: a link
/// between two core-degree nodes is a core (transit) link.
fn retier_capacities(g: &mut Graph, cfg: &InetConfig) {
    let core: Vec<bool> = (0..g.node_count()).map(|v| g.degree(v) >= cfg.core_degree_threshold).collect();
    let edges: Vec<(usize, usize, EdgeAttrs)> = g.edges().collect();
    let mut rebuilt = Graph::with_nodes(g.node_count());
    for (a, b, mut e) in edges {
        e.capacity_mbps =
            if core[a] && core[b] { cfg.core_capacity_mbps } else { cfg.edge_capacity_mbps };
        rebuilt.add_edge(a, b, e);
    }
    *g = rebuilt;
}

/// Fits the slope of `log(count of degree ≥ d)` against `log d` — the CCDF
/// power-law exponent. Healthy Internet-like graphs give a clearly negative
/// slope (≈ −1.1 … −2.5 depending on the generator parameters).
pub fn ccdf_slope(g: &Graph) -> f64 {
    let hist = g.degree_histogram();
    // Build CCDF over degrees ≥ 1.
    let mut points: Vec<(f64, f64)> = Vec::new();
    let total: usize = hist.iter().skip(1).sum();
    let mut at_least = total;
    for (d, &cnt) in hist.iter().enumerate().skip(1) {
        if at_least == 0 {
            break;
        }
        points.push(((d as f64).ln(), (at_least as f64).ln()));
        at_least -= cnt;
    }
    linear_slope(&points)
}

fn linear_slope(points: &[(f64, f64)]) -> f64 {
    let n = points.len() as f64;
    if points.len() < 2 {
        return 0.0;
    }
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(nodes: usize) -> InetConfig {
        InetConfig { nodes, ..InetConfig::default() }
    }

    #[test]
    fn generated_graph_is_connected() {
        let g = generate_power_law(&small_cfg(500), 1);
        assert!(g.is_connected());
        assert_eq!(g.node_count(), 500);
    }

    #[test]
    fn average_degree_near_two_m() {
        let cfg = small_cfg(2000);
        let g = generate_power_law(&cfg, 2);
        let avg = 2.0 * g.edge_count() as f64 / g.node_count() as f64;
        let target = 2.0 * cfg.edges_per_node as f64;
        assert!((avg - target).abs() < 0.5, "avg degree {avg}, expected ≈{target}");
    }

    #[test]
    fn degree_distribution_is_heavy_tailed() {
        let g = generate_power_law(&small_cfg(3000), 3);
        let hist = g.degree_histogram();
        let max_deg = hist.len() - 1;
        // A power-law graph of 3000 nodes must contain hubs far above the
        // mean degree (~4) — an Erdős–Rényi graph of the same density
        // essentially never produces degree > 20.
        assert!(max_deg > 25, "max degree {max_deg} too small for a power law");
        let slope = ccdf_slope(&g);
        assert!(slope < -0.8, "CCDF slope {slope} not heavy-tailed");
    }

    #[test]
    fn generation_is_deterministic_in_seed() {
        let a = generate_power_law(&small_cfg(300), 7);
        let b = generate_power_law(&small_cfg(300), 7);
        let ea: Vec<_> = a.edges().collect();
        let eb: Vec<_> = b.edges().collect();
        assert_eq!(ea.len(), eb.len());
        for (x, y) in ea.iter().zip(&eb) {
            assert_eq!((x.0, x.1), (y.0, y.1));
            assert_eq!(x.2.delay_ms, y.2.delay_ms);
        }
        let c = generate_power_law(&small_cfg(300), 8);
        assert_ne!(
            a.edges().map(|(x, y, _)| (x, y)).collect::<Vec<_>>(),
            c.edges().map(|(x, y, _)| (x, y)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn link_delays_respect_floor_and_plane() {
        let cfg = small_cfg(400);
        let g = generate_power_law(&cfg, 3);
        let diag = cfg.plane_side_ms * 2f64.sqrt();
        for (_, _, e) in g.edges() {
            assert!(e.delay_ms >= cfg.min_link_delay_ms);
            assert!(e.delay_ms <= cfg.min_link_delay_ms + diag + 1e-9);
        }
    }

    #[test]
    fn core_links_get_core_capacity() {
        let cfg = small_cfg(2000);
        let g = generate_power_law(&cfg, 5);
        let mut saw_core = false;
        for (a, b, e) in g.edges() {
            let both_core = g.degree(a) >= cfg.core_degree_threshold
                && g.degree(b) >= cfg.core_degree_threshold;
            if both_core {
                saw_core = true;
                assert_eq!(e.capacity_mbps, cfg.core_capacity_mbps);
            } else {
                assert_eq!(e.capacity_mbps, cfg.edge_capacity_mbps);
            }
        }
        assert!(saw_core, "power-law graph should contain core-core links");
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_configs_rejected() {
        generate_power_law(&small_cfg(2), 1);
    }
}
