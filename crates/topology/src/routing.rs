//! Shortest-path routing.
//!
//! The paper's simulator "performs IP-layer and overlay-layer data routing
//! using shortest path routing". This module provides a binary-heap Dijkstra
//! over link delay, path extraction with bottleneck-capacity tracking, and a
//! cached per-source oracle so the overlay builder can run one SSSP per peer
//! instead of an all-pairs pass over the 10,000-node IP graph.

use crate::graph::{Graph, NodeIndex};
use std::cmp::Ordering;
use spidernet_util::hash::FxHashMap;
use std::collections::hash_map::Entry;
use std::collections::BinaryHeap;

/// Result of a single-source Dijkstra run.
#[derive(Clone, Debug)]
pub struct PathResult {
    source: NodeIndex,
    dist: Vec<f64>,
    prev: Vec<Option<NodeIndex>>,
}

impl PathResult {
    /// The source node of the run.
    pub fn source(&self) -> NodeIndex {
        self.source
    }

    /// Shortest-path delay (ms) from the source to `v`; infinite if
    /// unreachable.
    pub fn delay_to(&self, v: NodeIndex) -> f64 {
        self.dist[v]
    }

    /// Returns the node sequence of the shortest path `source → v`, or
    /// `None` if `v` is unreachable.
    pub fn path_to(&self, v: NodeIndex) -> Option<Vec<NodeIndex>> {
        if self.dist[v].is_infinite() {
            return None;
        }
        let mut path = vec![v];
        let mut cur = v;
        while let Some(p) = self.prev[cur] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        debug_assert_eq!(path[0], self.source);
        Some(path)
    }

    /// Predecessor of `v` on its shortest path from the source, or `None`
    /// for the source itself (and for unreachable nodes). Lets callers
    /// walk a path into a reused buffer instead of allocating via
    /// [`PathResult::path_to`].
    pub fn prev_of(&self, v: NodeIndex) -> Option<NodeIndex> {
        self.prev[v]
    }

    /// True if `v` participates in this SSSP tree as a routing waypoint:
    /// it is the source itself or the parent of at least one node, i.e.
    /// some cached shortest path routes through it. Lets caches invalidate
    /// only the results a departed node can actually affect.
    pub fn routes_via(&self, v: NodeIndex) -> bool {
        self.source == v || self.prev.contains(&Some(v))
    }

    /// Bottleneck capacity (min link capacity) along the shortest path to
    /// `v`. `None` if unreachable; the trivial path to the source itself has
    /// infinite bottleneck.
    pub fn bottleneck_capacity_to(&self, g: &Graph, v: NodeIndex) -> Option<f64> {
        let path = self.path_to(v)?;
        let mut cap = f64::INFINITY;
        for w in path.windows(2) {
            let e = g.edge(w[0], w[1]).expect("path edges exist");
            cap = cap.min(e.capacity_mbps);
        }
        Some(cap)
    }
}

/// Memoized point-to-point delays, shared across per-source SSSP trees.
///
/// Per-source caches ([`RoutingOracle`], the core crate's `PathTable`)
/// answer a pair query by walking to the full tree rooted at the query's
/// source. Composition enumerators ask for the *same handful of pairs*
/// across thousands of candidate graphs, so this cache stores every
/// answered pair under one symmetric `(lo, hi)` key; repeated leg lookups
/// become a single hash probe with no tree in sight.
///
/// The two directions are kept in separate slots: an undirected graph has
/// `d(a,b) == d(b,a)` mathematically, but the two trees can disagree in
/// the last ulp (different addition order along tied paths), and callers
/// that pin bit-exact outputs must get back exactly the value the
/// producing tree computed. Each slot is implicitly owned by its
/// direction's source node, which is how invalidation finds it when that
/// source's tree is shed.
#[derive(Clone, Debug, Default)]
pub struct PairDelayCache {
    map: FxHashMap<(NodeIndex, NodeIndex), PairSlots>,
    /// Inserts refused because the cache was at [`MAX_CACHED_PAIRS`].
    /// At 10^5-peer scale the pair space dwarfs the bound, and silent
    /// saturation turns every post-cap leg lookup back into a tree walk —
    /// the counter makes that perf cliff observable.
    rejected: u64,
    /// Lookups answered from a memoized slot.
    hits: u64,
    /// Lookups that fell through to the producing SSSP tree.
    misses: u64,
    /// Lookups that deliberately skipped the memo because the caller
    /// needed a contention-adjusted delay: the memo stores *uncongested*
    /// shortest-path delays, so serving it while flows load the route
    /// would hand back stale QoS. Counted so the bypass cost is visible
    /// next to hits/misses.
    bypasses: u64,
}

#[derive(Clone, Copy, Debug, Default)]
struct PairSlots {
    /// Delay `lo → hi`, produced by `lo`'s SSSP tree.
    fwd: Option<f64>,
    /// Delay `hi → lo`, produced by `hi`'s SSSP tree.
    rev: Option<f64>,
}

/// Entry-count bound: beyond this the cache stops inserting (lookups keep
/// working). Values are immutable once present, so the bound can never
/// change what a query returns — only whether it is O(1).
pub const MAX_CACHED_PAIRS: usize = 1 << 20;

impl PairDelayCache {
    /// An empty cache.
    pub fn new() -> Self {
        PairDelayCache::default()
    }

    /// The memoized delay `from → to`, if this exact direction was
    /// inserted before. Counts the probe as a hit or miss.
    pub fn get(&mut self, from: NodeIndex, to: NodeIndex) -> Option<f64> {
        let found = self.map.get(&Self::key(from, to)).and_then(|slots| {
            if from <= to {
                slots.fwd
            } else {
                slots.rev
            }
        });
        if found.is_some() {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        found
    }

    /// Memoizes the delay `from → to` as computed by `from`'s SSSP tree.
    /// No-op once [`MAX_CACHED_PAIRS`] entries exist.
    pub fn insert(&mut self, from: NodeIndex, to: NodeIndex, delay: f64) {
        if self.map.len() >= MAX_CACHED_PAIRS && !self.map.contains_key(&Self::key(from, to)) {
            self.rejected += 1;
            return;
        }
        let slots = self.map.entry(Self::key(from, to)).or_default();
        if from <= to {
            slots.fwd = Some(delay);
        } else {
            slots.rev = Some(delay);
        }
    }

    /// Drops every slot whose producing source is in `sources` (the trees
    /// a churn event invalidated). Slots fed by surviving trees stay.
    pub fn invalidate_sources(&mut self, sources: &[NodeIndex]) {
        if sources.is_empty() {
            return;
        }
        self.map.retain(|&(lo, hi), slots| {
            if sources.contains(&lo) {
                slots.fwd = None;
            }
            if sources.contains(&hi) {
                slots.rev = None;
            }
            slots.fwd.is_some() || slots.rev.is_some()
        });
    }

    /// Number of symmetric pair entries held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Inserts refused because the cache was full — the
    /// `topology.pair_cache_evictions` counter's source of truth.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Lookups answered from a memoized slot (feeds the
    /// `topology.pair_cache_hits` counter).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that missed and fell through to a tree walk (feeds the
    /// `topology.pair_cache_misses` counter).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Records a lookup that skipped the memo because a contention-aware
    /// delay was required (static cached values would be stale).
    pub fn note_bypass(&mut self) {
        self.bypasses += 1;
    }

    /// Lookups that bypassed the memo for contention-aware delays (feeds
    /// the `topology.pair_cache_bypasses` counter).
    pub fn bypasses(&self) -> u64 {
        self.bypasses
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Drops everything.
    pub fn clear(&mut self) {
        self.map.clear();
    }

    fn key(a: NodeIndex, b: NodeIndex) -> (NodeIndex, NodeIndex) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }
}

#[derive(PartialEq)]
struct HeapItem {
    dist: f64,
    node: NodeIndex,
}

impl Eq for HeapItem {}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on distance; BinaryHeap is a max-heap, so reverse.
        other.dist.partial_cmp(&self.dist).unwrap_or(Ordering::Equal)
    }
}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Dijkstra over link delay from `source`.
pub fn dijkstra(g: &Graph, source: NodeIndex) -> PathResult {
    let n = g.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev = vec![None; n];
    let mut heap = BinaryHeap::with_capacity(n);
    dist[source] = 0.0;
    heap.push(HeapItem { dist: 0.0, node: source });

    while let Some(HeapItem { dist: d, node: v }) = heap.pop() {
        if d > dist[v] {
            continue; // stale entry
        }
        for (u, e) in g.neighbors(v) {
            let nd = d + e.delay_ms;
            if nd < dist[u] {
                dist[u] = nd;
                prev[u] = Some(v);
                heap.push(HeapItem { dist: nd, node: u });
            }
        }
    }
    PathResult { source, dist, prev }
}

/// Caches one [`PathResult`] per queried source.
///
/// The overlay builder queries delays from each of the 1,000 peers; caching
/// turns that into exactly one Dijkstra per peer regardless of how many
/// destination lookups follow.
pub struct RoutingOracle<'g> {
    graph: &'g Graph,
    cache: FxHashMap<NodeIndex, PathResult>,
}

impl<'g> RoutingOracle<'g> {
    /// Creates an oracle over `graph`.
    pub fn new(graph: &'g Graph) -> Self {
        RoutingOracle { graph, cache: FxHashMap::default() }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// The SSSP result from `source`, computing it on first use.
    pub fn from(&mut self, source: NodeIndex) -> &PathResult {
        match self.cache.entry(source) {
            Entry::Occupied(o) => o.into_mut(),
            Entry::Vacant(v) => v.insert(dijkstra(self.graph, source)),
        }
    }

    /// Shortest-path delay between two nodes.
    pub fn delay(&mut self, a: NodeIndex, b: NodeIndex) -> f64 {
        self.from(a).delay_to(b)
    }

    /// Number of cached sources (for tests/diagnostics).
    pub fn cached_sources(&self) -> usize {
        self.cache.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::EdgeAttrs;
    use spidernet_util::rng::rng_for;

    /// 0 -1ms- 1 -1ms- 2, plus a 10ms shortcut 0-2 and a spur 2 -3ms- 3.
    fn diamond() -> Graph {
        let mut g = Graph::with_nodes(4);
        g.add_edge(0, 1, EdgeAttrs::new(1.0, 100.0));
        g.add_edge(1, 2, EdgeAttrs::new(1.0, 50.0));
        g.add_edge(0, 2, EdgeAttrs::new(10.0, 1000.0));
        g.add_edge(2, 3, EdgeAttrs::new(3.0, 10.0));
        g
    }

    #[test]
    fn shortest_delays() {
        let g = diamond();
        let r = dijkstra(&g, 0);
        assert_eq!(r.delay_to(0), 0.0);
        assert_eq!(r.delay_to(1), 1.0);
        assert_eq!(r.delay_to(2), 2.0); // via node 1, not the 10ms shortcut
        assert_eq!(r.delay_to(3), 5.0);
    }

    #[test]
    fn path_extraction() {
        let g = diamond();
        let r = dijkstra(&g, 0);
        assert_eq!(r.path_to(3).unwrap(), vec![0, 1, 2, 3]);
        assert_eq!(r.path_to(0).unwrap(), vec![0]);
    }

    #[test]
    fn bottleneck_capacity() {
        let g = diamond();
        let r = dijkstra(&g, 0);
        // 0→1 (100) →2 (50) →3 (10): bottleneck 10.
        assert_eq!(r.bottleneck_capacity_to(&g, 3).unwrap(), 10.0);
        assert_eq!(r.bottleneck_capacity_to(&g, 1).unwrap(), 100.0);
        assert!(r.bottleneck_capacity_to(&g, 0).unwrap().is_infinite());
    }

    #[test]
    fn routes_via_identifies_tree_waypoints() {
        let g = diamond();
        let r = dijkstra(&g, 0);
        // Tree from 0: 0→1→2→3 (the 10ms shortcut is unused), so 0, 1 and
        // 2 are waypoints while 3 is a leaf.
        assert!(r.routes_via(0), "the source anchors its own tree");
        assert!(r.routes_via(1));
        assert!(r.routes_via(2));
        assert!(!r.routes_via(3), "a leaf routes nothing");
    }

    #[test]
    fn unreachable_nodes() {
        let mut g = diamond();
        let iso = g.add_node();
        let r = dijkstra(&g, 0);
        assert!(r.delay_to(iso).is_infinite());
        assert!(r.path_to(iso).is_none());
        assert!(r.bottleneck_capacity_to(&g, iso).is_none());
    }

    #[test]
    fn routes_via_edge_cases() {
        let mut g = diamond();
        let iso = g.add_node();
        let r = dijkstra(&g, 0);
        // An unreachable node is never a waypoint of the tree.
        assert!(!r.routes_via(iso));
        // A tree rooted at an isolated node still anchors itself even
        // though it reaches nothing.
        let ri = dijkstra(&g, iso);
        assert!(ri.routes_via(iso), "a source routes via itself");
        assert!(!ri.routes_via(0));
        assert_eq!(ri.source(), iso);
    }

    #[test]
    fn bottleneck_edge_cases_from_isolated_source() {
        let mut g = diamond();
        let iso = g.add_node();
        let r = dijkstra(&g, iso);
        // Source → source is trivially unconstrained even when isolated.
        assert!(r.bottleneck_capacity_to(&g, iso).unwrap().is_infinite());
        // Everything else is unreachable from the isolated source.
        assert!(r.bottleneck_capacity_to(&g, 0).is_none());
        assert!(r.delay_to(0).is_infinite());
    }

    #[test]
    fn pair_cache_is_direction_preserving() {
        let mut pc = PairDelayCache::new();
        assert!(pc.is_empty());
        pc.insert(0, 3, 5.0);
        assert_eq!(pc.get(0, 3), Some(5.0));
        // The reverse direction was never produced; it must not be served.
        assert_eq!(pc.get(3, 0), None);
        pc.insert(3, 0, 5.0 + 1e-13); // the reverse tree's ulp-sibling
        assert_eq!(pc.get(3, 0), Some(5.0 + 1e-13));
        assert_eq!(pc.get(0, 3), Some(5.0));
        assert_eq!(pc.len(), 1, "both directions share one symmetric entry");
    }

    #[test]
    fn pair_cache_invalidation_by_producing_source() {
        let mut pc = PairDelayCache::new();
        pc.insert(0, 3, 5.0); // produced by source 0
        pc.insert(3, 0, 5.0); // produced by source 3
        pc.insert(1, 2, 1.0); // produced by source 1
        // Shedding source 0's tree drops only the slot it produced.
        pc.invalidate_sources(&[0]);
        assert_eq!(pc.get(0, 3), None);
        assert_eq!(pc.get(3, 0), Some(5.0));
        assert_eq!(pc.get(1, 2), Some(1.0));
        // Dropping the surviving producer removes the entry entirely.
        pc.invalidate_sources(&[3]);
        assert_eq!(pc.get(3, 0), None);
        assert_eq!(pc.len(), 1);
        pc.clear();
        assert!(pc.is_empty());
    }

    #[test]
    fn pair_cache_counts_bypasses_separately_from_lookups() {
        let mut pc = PairDelayCache::new();
        pc.insert(0, 1, 2.0);
        assert_eq!(pc.get(0, 1), Some(2.0));
        pc.note_bypass();
        pc.note_bypass();
        assert_eq!(pc.bypasses(), 2);
        // Bypasses are not hits or misses: the memo was never consulted.
        assert_eq!(pc.hits(), 1);
        assert_eq!(pc.misses(), 0);
    }

    #[test]
    fn pair_cache_counts_rejected_inserts_at_cap() {
        let mut pc = PairDelayCache::new();
        assert_eq!(pc.rejected(), 0);
        // Fill to the cap (symmetric keys: (0, 1..=MAX)).
        for i in 0..MAX_CACHED_PAIRS {
            pc.insert(0, i + 1, i as f64);
        }
        assert_eq!(pc.len(), MAX_CACHED_PAIRS);
        assert_eq!(pc.rejected(), 0);
        // New pairs are refused and counted; existing pairs still update.
        pc.insert(1, 2, 9.0);
        pc.insert(2, 3, 9.0);
        assert_eq!(pc.rejected(), 2);
        assert_eq!(pc.get(1, 2), None);
        pc.insert(MAX_CACHED_PAIRS, 0, 7.0); // reverse slot of an existing pair
        assert_eq!(pc.rejected(), 2, "existing symmetric entry must still accept");
        assert_eq!(pc.get(MAX_CACHED_PAIRS, 0), Some(7.0));
    }

    #[test]
    fn dijkstra_matches_bellman_ford_on_random_graphs() {
        let mut rng = rng_for(11, "routing-test");
        for trial in 0..5 {
            let n = 40;
            let mut g = Graph::with_nodes(n);
            // Random connected-ish graph: a ring plus random chords.
            for i in 0..n {
                g.add_edge(i, (i + 1) % n, EdgeAttrs::new(rng.gen_range(1.0..10.0), 100.0));
            }
            for _ in 0..60 {
                let a = rng.gen_range(0..n);
                let b = rng.gen_range(0..n);
                if a != b {
                    g.add_edge(a, b, EdgeAttrs::new(rng.gen_range(1.0..10.0), 100.0));
                }
            }
            // Bellman–Ford reference.
            let src = trial % n;
            let mut ref_dist = vec![f64::INFINITY; n];
            ref_dist[src] = 0.0;
            for _ in 0..n {
                for (a, b, e) in g.edges().collect::<Vec<_>>() {
                    if ref_dist[a] + e.delay_ms < ref_dist[b] {
                        ref_dist[b] = ref_dist[a] + e.delay_ms;
                    }
                    if ref_dist[b] + e.delay_ms < ref_dist[a] {
                        ref_dist[a] = ref_dist[b] + e.delay_ms;
                    }
                }
            }
            let r = dijkstra(&g, src);
            for (v, &expect) in ref_dist.iter().enumerate() {
                assert!((r.delay_to(v) - expect).abs() < 1e-9, "node {v}");
            }
        }
    }

    #[test]
    fn oracle_caches_per_source() {
        let g = diamond();
        let mut oracle = RoutingOracle::new(&g);
        assert_eq!(oracle.delay(0, 3), 5.0);
        assert_eq!(oracle.delay(0, 2), 2.0);
        assert_eq!(oracle.cached_sources(), 1);
        assert_eq!(oracle.delay(3, 0), 5.0); // symmetric in an undirected graph
        assert_eq!(oracle.cached_sources(), 2);
    }
}
