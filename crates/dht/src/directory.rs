//! Keyword-based service discovery on top of the DHT (paper §3).
//!
//! *Registration*: a peer sharing a service component hashes the component's
//! function name into a key and stores the component's static metadata at
//! the key's replica root. *Discovery*: any peer hashes the same name,
//! routes a query to the root, and receives the metadata list of all
//! functionally duplicated components.

use crate::network::{PastryNetwork, RouteOutcome};
use crate::nodeid::NodeId;
use spidernet_sim::trace::TraceBuffer;
use spidernet_util::hash::function_key;
use spidernet_util::id::{ComponentId, FunctionId, PeerId};

/// Static metadata registered for one service component.
///
/// The paper stores "location, input QoS, output QoS" — location is the
/// hosting peer; the QoS/resource profile is resolved from the component
/// registry in `spidernet-core` via `component`, keeping the wire record
/// small.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServiceMeta {
    /// The registered component.
    pub component: ComponentId,
    /// The peer hosting it.
    pub peer: PeerId,
    /// The abstract function it provides.
    pub function: FunctionId,
}

/// The DHT-backed service directory.
///
/// Storage is held per responsible peer, exactly as a deployment would
/// shard it; every operation routes through the Pastry network and reports
/// the hops/latency it cost, which the Fig. 10 experiment accounts as
/// "service discovery time".
///
/// Layout is dense: the outer table is a `Vec` indexed by the responsible
/// peer's dense id (an empty row means "holds nothing", replacing the old
/// map's absent key), and each row is a key-sorted `Vec`. Ascending-index
/// iteration over the outer `Vec` is ascending-`PeerId` iteration, and the
/// sorted rows iterate in ascending key order — the exact orders the old
/// `BTreeMap`-of-`BTreeMap` walked during churn-time re-homing, so
/// replica-list order is unchanged and identical across processes.
#[derive(Clone, Debug, Default)]
pub struct ServiceDirectory {
    /// `store[peer.index()]` = key-sorted replica metadata lists.
    store: Vec<Vec<(u128, Vec<ServiceMeta>)>>,
}

/// The replica list for `key` in one peer's row, inserting an empty list
/// at the sorted position if the key is new.
fn list_mut(row: &mut Vec<(u128, Vec<ServiceMeta>)>, key: u128) -> &mut Vec<ServiceMeta> {
    match row.binary_search_by_key(&key, |&(k, _)| k) {
        Ok(pos) => &mut row[pos].1,
        Err(pos) => {
            row.insert(pos, (key, Vec::new()));
            &mut row[pos].1
        }
    }
}

impl ServiceDirectory {
    /// An empty directory.
    pub fn new() -> Self {
        ServiceDirectory { store: Vec::new() }
    }

    fn row_mut(&mut self, peer: PeerId) -> &mut Vec<(u128, Vec<ServiceMeta>)> {
        let i = peer.index();
        if i >= self.store.len() {
            self.store.resize_with(i + 1, Vec::new);
        }
        &mut self.store[i]
    }

    /// Registers a component under `function_name`, routing from the
    /// hosting peer to the key's replica root. Returns the route taken;
    /// the routing cost is recorded into `trace`.
    pub fn register(
        &mut self,
        net: &PastryNetwork,
        function_name: &str,
        meta: ServiceMeta,
        latency: &mut dyn FnMut(PeerId, PeerId) -> f64,
        trace: &mut TraceBuffer,
    ) -> Option<RouteOutcome> {
        let key = function_key(function_name);
        let out = net.route_traced(meta.peer, NodeId::new(key), latency, trace)?;
        let root = out.destination();
        let list = list_mut(self.row_mut(root), key);
        if !list.iter().any(|m| m.component == meta.component) {
            list.push(meta);
        }
        Some(out)
    }

    /// Looks up the replica list for `function_name` from `from`. Returns
    /// the metadata list (empty if nothing registered) and the query route;
    /// the routing cost is recorded into `trace`.
    pub fn lookup(
        &self,
        net: &PastryNetwork,
        from: PeerId,
        function_name: &str,
        latency: &mut dyn FnMut(PeerId, PeerId) -> f64,
        trace: &mut TraceBuffer,
    ) -> Option<(Vec<ServiceMeta>, RouteOutcome)> {
        let key = function_key(function_name);
        let out = net.route_traced(from, NodeId::new(key), latency, trace)?;
        let list = self
            .store
            .get(out.destination().index())
            .and_then(|row| {
                row.binary_search_by_key(&key, |&(k, _)| k).ok().map(|pos| row[pos].1.clone())
            })
            .unwrap_or_default();
        Some((list, out))
    }

    /// Handles a peer departure:
    /// 1. metadata *hosted by* the departed peer migrates to each key's new
    ///    replica root (Pastry re-replication);
    /// 2. registrations *referring to components on* the departed peer are
    ///    dropped everywhere (their services are gone).
    ///
    /// Call after [`PastryNetwork::remove_node`].
    pub fn handle_departure(&mut self, net: &PastryNetwork, departed: PeerId) {
        let di = departed.index();
        let hosted = if di < self.store.len() {
            std::mem::take(&mut self.store[di])
        } else {
            Vec::new()
        };
        for (key, list) in hosted {
            if let Some(new_root) = net.responsible(NodeId::new(key)) {
                let dst = list_mut(self.row_mut(new_root), key);
                for m in list {
                    if m.peer != departed && !dst.iter().any(|e| e.component == m.component) {
                        dst.push(m);
                    }
                }
            }
        }
        for row in &mut self.store {
            for (_, list) in row.iter_mut() {
                list.retain(|m| m.peer != departed);
            }
        }
    }

    /// After a peer arrival, keys whose replica root changed must migrate
    /// to the new node. Call after [`PastryNetwork::add_node`].
    pub fn handle_arrival(&mut self, net: &PastryNetwork) {
        let mut moves: Vec<(PeerId, u128, Vec<ServiceMeta>)> = Vec::new();
        for (hi, row) in self.store.iter().enumerate() {
            let holder = PeerId::from(hi);
            for &(key, ref list) in row {
                let root = net.responsible(NodeId::new(key)).expect("non-empty network");
                if root != holder {
                    moves.push((holder, key, list.clone()));
                }
            }
        }
        for (holder, key, list) in moves {
            if let Some(row) = self.store.get_mut(holder.index()) {
                if let Ok(pos) = row.binary_search_by_key(&key, |&(k, _)| k) {
                    row.remove(pos);
                }
            }
            let root = net.responsible(NodeId::new(key)).expect("non-empty network");
            let dst = list_mut(self.row_mut(root), key);
            for m in list {
                if !dst.iter().any(|e| e.component == m.component) {
                    dst.push(m);
                }
            }
        }
    }

    /// Total registrations held (diagnostics).
    pub fn total_entries(&self) -> usize {
        self.store.iter().flat_map(|row| row.iter()).map(|(_, l)| l.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat(_: PeerId, _: PeerId) -> f64 {
        1.0
    }

    fn setup(n: u64) -> (PastryNetwork, ServiceDirectory) {
        let peers: Vec<PeerId> = (0..n).map(PeerId::new).collect();
        (PastryNetwork::build(&peers, &mut flat), ServiceDirectory::new())
    }

    fn meta(c: u64, p: u64, f: u64) -> ServiceMeta {
        ServiceMeta {
            component: ComponentId::new(c),
            peer: PeerId::new(p),
            function: FunctionId::new(f),
        }
    }

    #[test]
    fn register_then_lookup_returns_all_replicas() {
        let (net, mut dir) = setup(32);
        dir.register(&net, "transcode", meta(1, 3, 0), &mut flat, &mut TraceBuffer::new()).unwrap();
        dir.register(&net, "transcode", meta(2, 9, 0), &mut flat, &mut TraceBuffer::new()).unwrap();
        dir.register(&net, "filter", meta(3, 9, 1), &mut flat, &mut TraceBuffer::new()).unwrap();

        let (list, _) = dir.lookup(&net, PeerId::new(20), "transcode", &mut flat, &mut TraceBuffer::new()).unwrap();
        let mut comps: Vec<u64> = list.iter().map(|m| m.component.raw()).collect();
        comps.sort_unstable();
        assert_eq!(comps, vec![1, 2]);

        let (list, _) = dir.lookup(&net, PeerId::new(20), "filter", &mut flat, &mut TraceBuffer::new()).unwrap();
        assert_eq!(list.len(), 1);
    }

    #[test]
    fn replicas_of_one_function_share_one_root() {
        let (net, mut dir) = setup(32);
        let o1 = dir.register(&net, "scale", meta(1, 0, 0), &mut flat, &mut TraceBuffer::new()).unwrap();
        let o2 = dir.register(&net, "scale", meta(2, 17, 0), &mut flat, &mut TraceBuffer::new()).unwrap();
        assert_eq!(o1.destination(), o2.destination());
    }

    #[test]
    fn duplicate_registration_is_idempotent() {
        let (net, mut dir) = setup(16);
        dir.register(&net, "f", meta(1, 2, 0), &mut flat, &mut TraceBuffer::new()).unwrap();
        dir.register(&net, "f", meta(1, 2, 0), &mut flat, &mut TraceBuffer::new()).unwrap();
        assert_eq!(dir.total_entries(), 1);
    }

    #[test]
    fn unknown_function_yields_empty_list() {
        let (net, dir) = setup(16);
        let (list, _) = dir.lookup(&net, PeerId::new(0), "nothing", &mut flat, &mut TraceBuffer::new()).unwrap();
        assert!(list.is_empty());
    }

    #[test]
    fn lookup_cost_is_logarithmic_hops() {
        let (net, mut dir) = setup(128);
        dir.register(&net, "f", meta(1, 0, 0), &mut flat, &mut TraceBuffer::new()).unwrap();
        let (_, out) = dir.lookup(&net, PeerId::new(64), "f", &mut flat, &mut TraceBuffer::new()).unwrap();
        assert!(out.hops() <= 5, "hops {}", out.hops());
    }

    #[test]
    fn departure_migrates_hosted_keys() {
        let (mut net, mut dir) = setup(48);
        dir.register(&net, "g", meta(1, 5, 0), &mut flat, &mut TraceBuffer::new()).unwrap();
        let root = net
            .route(PeerId::new(5), NodeId::new(function_key("g")), &mut flat)
            .unwrap()
            .destination();
        net.remove_node(root);
        dir.handle_departure(&net, root);
        let (list, out) = dir.lookup(&net, PeerId::new(1), "g", &mut flat, &mut TraceBuffer::new()).unwrap();
        assert_eq!(list.len(), 1, "metadata lost after root departure");
        assert_ne!(out.destination(), root);
    }

    #[test]
    fn departure_drops_registrations_of_dead_components() {
        let (mut net, mut dir) = setup(48);
        dir.register(&net, "g", meta(1, 5, 0), &mut flat, &mut TraceBuffer::new()).unwrap();
        dir.register(&net, "g", meta(2, 6, 0), &mut flat, &mut TraceBuffer::new()).unwrap();
        net.remove_node(PeerId::new(5));
        dir.handle_departure(&net, PeerId::new(5));
        let (list, _) = dir.lookup(&net, PeerId::new(1), "g", &mut flat, &mut TraceBuffer::new()).unwrap();
        assert_eq!(list.len(), 1);
        assert_eq!(list[0].peer, PeerId::new(6));
    }

    #[test]
    fn arrival_migrates_keys_to_new_root() {
        let (mut net, mut dir) = setup(8);
        dir.register(&net, "h", meta(1, 2, 0), &mut flat, &mut TraceBuffer::new()).unwrap();
        // Add nodes until the root for "h" changes.
        let key = NodeId::new(function_key("h"));
        let old_root = net.responsible(key).unwrap();
        let mut p = 1000u64;
        while net.responsible(key).unwrap() == old_root && p < 1200 {
            net.add_node(PeerId::new(p), &mut flat);
            p += 1;
        }
        assert_ne!(net.responsible(key).unwrap(), old_root, "root never moved");
        dir.handle_arrival(&net);
        let (list, _) = dir.lookup(&net, PeerId::new(0), "h", &mut flat, &mut TraceBuffer::new()).unwrap();
        assert_eq!(list.len(), 1, "metadata lost after arrival migration");
    }
}
