//! Pastry-style distributed hash table with a service-discovery layer.
//!
//! SpiderNet's decentralized service discovery (paper §3) stores each
//! service component's static metadata under `key = hash(function_name)` in
//! a Pastry DHT; all functionally duplicated components share the key, so
//! the responsible peer accumulates the full replica list. This crate
//! implements:
//!
//! * [`nodeid`] — 128-bit ring identifiers with digit (4-bit) prefix
//!   arithmetic and wrapping ring distance;
//! * [`leafset`] — the numerically-nearest leaf set;
//! * [`routing_table`] — the digit-indexed prefix routing table;
//! * [`network`] — a whole-network view that builds per-node state, routes
//!   messages hop-by-hop (with hop and latency accounting), and supports
//!   node arrival/departure;
//! * [`directory`] — the keyword → replica-list metadata layer used by
//!   service registration and discovery.

#![warn(missing_docs)]

pub mod directory;
pub mod leafset;
pub mod network;
pub mod nodeid;
pub mod routing_table;

pub use directory::{ServiceDirectory, ServiceMeta};
pub use network::{PastryNetwork, RouteOutcome};
pub use nodeid::NodeId;
