//! The Pastry leaf set: the L/2 numerically closest live nodes on each side
//! of a node's identifier, used for the final hop(s) of routing and for the
//! replica-root decision.

use crate::nodeid::NodeId;
use spidernet_util::id::PeerId;

/// A leaf-set member: ring id plus its hosting peer.
type Member = (NodeId, PeerId);
/// Directional distance function over the ring.
type DistFn = fn(&NodeId, &NodeId) -> u128;

/// Default leaf-set capacity per side (Pastry uses L = 16, i.e. 8 per side).
pub const DEFAULT_SIDE: usize = 8;

/// A node's leaf set.
#[derive(Clone, Debug)]
pub struct LeafSet {
    owner: NodeId,
    side: usize,
    /// Clockwise successors, nearest first: ids with the smallest positive
    /// clockwise distance from the owner.
    cw: Vec<(NodeId, PeerId)>,
    /// Counter-clockwise predecessors, nearest first.
    ccw: Vec<(NodeId, PeerId)>,
}

impl LeafSet {
    /// An empty leaf set for `owner` holding up to `side` nodes per side.
    pub fn new(owner: NodeId, side: usize) -> Self {
        assert!(side >= 1);
        LeafSet { owner, side, cw: Vec::new(), ccw: Vec::new() }
    }

    /// The id this leaf set belongs to.
    pub fn owner(&self) -> NodeId {
        self.owner
    }

    /// Offers a node for membership; keeps the closest `side` per side.
    pub fn insert(&mut self, id: NodeId, peer: PeerId) {
        if id == self.owner {
            return;
        }
        let cw_dist = self.owner.clockwise_distance(&id);
        // A node belongs to the clockwise side if going clockwise reaches it
        // sooner than going counter-clockwise.
        let (list, dist_of): (&mut Vec<Member>, DistFn) =
            if cw_dist <= u128::MAX / 2 {
                (&mut self.cw, |o, i| o.clockwise_distance(i))
            } else {
                (&mut self.ccw, |o, i| i.clockwise_distance(o))
            };
        if list.iter().any(|(e, _)| *e == id) {
            return;
        }
        list.push((id, peer));
        let owner = self.owner;
        list.sort_by_key(|(e, _)| dist_of(&owner, e));
        list.truncate(self.side);
    }

    /// Removes a departed node.
    pub fn remove(&mut self, id: NodeId) {
        self.cw.retain(|(e, _)| *e != id);
        self.ccw.retain(|(e, _)| *e != id);
    }

    /// All members, both sides.
    pub fn members(&self) -> impl Iterator<Item = (NodeId, PeerId)> + '_ {
        self.cw.iter().chain(self.ccw.iter()).copied()
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.cw.len() + self.ccw.len()
    }

    /// True if no members.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns true if `key` lies within the span covered by the leaf set
    /// (between the farthest ccw member and the farthest cw member) — the
    /// condition under which Pastry routes directly to the numerically
    /// closest leaf.
    pub fn covers(&self, key: NodeId) -> bool {
        if self.cw.is_empty() || self.ccw.is_empty() {
            // A sparsely-filled leaf set (tiny network) covers everything.
            return true;
        }
        let cw_edge = self.owner.clockwise_distance(&self.cw.last().expect("non-empty").0);
        let ccw_edge = self.ccw.last().expect("non-empty").0.clockwise_distance(&self.owner);
        let key_cw = self.owner.clockwise_distance(&key);
        let key_ccw = key.clockwise_distance(&self.owner);
        key_cw <= cw_edge || key_ccw <= ccw_edge
    }

    /// The member (or the owner) numerically closest to `key` by ring
    /// distance. Returns `None` for the owner itself (i.e. the owner is the
    /// closest), `Some(peer)` otherwise.
    pub fn closest_to(&self, key: NodeId) -> Option<(NodeId, PeerId)> {
        let mut best: Option<(NodeId, PeerId)> = None;
        let mut best_dist = self.owner.ring_distance(&key);
        for (id, peer) in self.members() {
            let d = id.ring_distance(&key);
            // Tie-break toward the smaller id for determinism.
            if d < best_dist || (d == best_dist && best.is_some_and(|(b, _)| id < b)) {
                best_dist = d;
                best = Some((id, peer));
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(x: u128) -> NodeId {
        NodeId::new(x)
    }

    fn ls(owner: u128, side: usize, members: &[u128]) -> LeafSet {
        let mut l = LeafSet::new(id(owner), side);
        for (i, &m) in members.iter().enumerate() {
            l.insert(id(m), PeerId::new(i as u64));
        }
        l
    }

    #[test]
    fn keeps_closest_per_side() {
        let l = ls(100, 2, &[101, 102, 103, 99, 98, 97]);
        let cw: Vec<u128> = l.cw.iter().map(|(e, _)| e.0).collect();
        let ccw: Vec<u128> = l.ccw.iter().map(|(e, _)| e.0).collect();
        assert_eq!(cw, vec![101, 102]);
        assert_eq!(ccw, vec![99, 98]);
    }

    #[test]
    fn owner_and_duplicates_ignored() {
        let mut l = ls(100, 4, &[101]);
        l.insert(id(100), PeerId::new(9));
        l.insert(id(101), PeerId::new(9));
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn remove_departed() {
        let mut l = ls(100, 4, &[101, 99]);
        l.remove(id(101));
        assert_eq!(l.len(), 1);
        assert_eq!(l.members().next().unwrap().0 .0, 99);
    }

    #[test]
    fn covers_span_between_edges() {
        let l = ls(100, 2, &[110, 120, 90, 80]);
        assert!(l.covers(id(105)));
        assert!(l.covers(id(120)));
        assert!(l.covers(id(85)));
        assert!(!l.covers(id(121)));
        assert!(!l.covers(id(79)));
        assert!(!l.covers(id(u128::MAX / 2)));
    }

    #[test]
    fn sparse_leafset_covers_everything() {
        let l = ls(100, 2, &[110]); // only cw side populated
        assert!(l.covers(id(u128::MAX)));
    }

    #[test]
    fn closest_to_prefers_owner_when_nearest() {
        let l = ls(100, 2, &[110, 90]);
        assert!(l.closest_to(id(101)).is_none()); // owner at distance 1 wins
        let (nid, _) = l.closest_to(id(107)).unwrap();
        assert_eq!(nid.0, 110);
        let (nid, _) = l.closest_to(id(93)).unwrap();
        assert_eq!(nid.0, 90);
    }

    #[test]
    fn wraparound_membership() {
        // Owner near the top of the ring: successors wrap through zero.
        let top = u128::MAX - 5;
        let l = ls(top, 2, &[u128::MAX - 1, 3, top - 10]);
        let cw: Vec<u128> = l.cw.iter().map(|(e, _)| e.0).collect();
        assert_eq!(cw, vec![u128::MAX - 1, 3]);
        let ccw: Vec<u128> = l.ccw.iter().map(|(e, _)| e.0).collect();
        assert_eq!(ccw, vec![top - 10]);
        assert!(l.covers(id(0)));
    }
}
