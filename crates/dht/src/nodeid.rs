//! 128-bit Pastry ring identifiers.
//!
//! Pastry interprets node and key identifiers as sequences of base-2^b
//! digits; we fix b = 4 (hexadecimal digits), giving 32 digits per 128-bit
//! identifier — the configuration used by the original Pastry paper for
//! its analysis.

use std::fmt;

/// Bits per routing digit (Pastry's `b`).
pub const DIGIT_BITS: u32 = 4;
/// Number of distinct digit values (2^b).
pub const DIGIT_BASE: usize = 1 << DIGIT_BITS;
/// Digits per identifier (128 / b).
pub const NUM_DIGITS: usize = (128 / DIGIT_BITS) as usize;

/// A position on the 128-bit Pastry ring.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u128);

impl NodeId {
    /// Wraps a raw 128-bit value.
    pub const fn new(raw: u128) -> Self {
        NodeId(raw)
    }

    /// Derives a ring id from a peer's stable name (its overlay peer id),
    /// by hashing — peers are uniformly spread over the ring.
    pub fn from_peer_index(index: u64) -> Self {
        let digest = spidernet_util::hash::sha1(&index.to_be_bytes());
        NodeId(digest.to_u128())
    }

    /// The `i`-th base-16 digit, counting from the most significant
    /// (digit 0) to the least significant (digit 31).
    #[inline]
    pub fn digit(&self, i: usize) -> usize {
        debug_assert!(i < NUM_DIGITS);
        let shift = 128 - DIGIT_BITS as usize * (i + 1);
        ((self.0 >> shift) as usize) & (DIGIT_BASE - 1)
    }

    /// Length of the longest common digit prefix with `other`
    /// (0 ..= NUM_DIGITS).
    pub fn shared_prefix_len(&self, other: &NodeId) -> usize {
        let x = self.0 ^ other.0;
        if x == 0 {
            return NUM_DIGITS;
        }
        (x.leading_zeros() / DIGIT_BITS) as usize
    }

    /// Absolute numeric distance to `key` *with ring wraparound* — the
    /// metric Pastry minimizes when picking the replica root.
    pub fn ring_distance(&self, other: &NodeId) -> u128 {
        let d = self.0.wrapping_sub(other.0);
        let e = other.0.wrapping_sub(self.0);
        d.min(e)
    }

    /// Clockwise (increasing-id, wrapping) distance from `self` to `other`.
    pub fn clockwise_distance(&self, other: &NodeId) -> u128 {
        other.0.wrapping_sub(self.0)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NodeId({:032x})", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digits_extract_msb_first() {
        let id = NodeId::new(0xABCD_0000_0000_0000_0000_0000_0000_0001);
        assert_eq!(id.digit(0), 0xA);
        assert_eq!(id.digit(1), 0xB);
        assert_eq!(id.digit(2), 0xC);
        assert_eq!(id.digit(3), 0xD);
        assert_eq!(id.digit(NUM_DIGITS - 1), 0x1);
    }

    #[test]
    fn shared_prefix_len_counts_digits() {
        let a = NodeId::new(0xABCD_0000_0000_0000_0000_0000_0000_0000);
        let b = NodeId::new(0xABCE_0000_0000_0000_0000_0000_0000_0000);
        assert_eq!(a.shared_prefix_len(&b), 3);
        assert_eq!(a.shared_prefix_len(&a), NUM_DIGITS);
        let c = NodeId::new(0x1BCD_0000_0000_0000_0000_0000_0000_0000);
        assert_eq!(a.shared_prefix_len(&c), 0);
    }

    #[test]
    fn prefix_len_is_floor_of_matching_bits() {
        // 7 matching bits = 1 full digit.
        let a = NodeId::new(0b1010_1010 << 120);
        let b = NodeId::new(0b1010_1011 << 120);
        assert_eq!(a.shared_prefix_len(&b), 1);
    }

    #[test]
    fn ring_distance_wraps() {
        let lo = NodeId::new(1);
        let hi = NodeId::new(u128::MAX);
        assert_eq!(lo.ring_distance(&hi), 2);
        assert_eq!(hi.ring_distance(&lo), 2);
        assert_eq!(lo.ring_distance(&lo), 0);
    }

    #[test]
    fn clockwise_distance_is_directional() {
        let a = NodeId::new(10);
        let b = NodeId::new(4);
        assert_eq!(b.clockwise_distance(&a), 6);
        assert_eq!(a.clockwise_distance(&b), u128::MAX - 5);
    }

    #[test]
    fn peer_ids_spread_over_ring() {
        // The top digit of hashed peer ids should hit many of the 16 values.
        let mut seen = std::collections::HashSet::new();
        for i in 0..64 {
            seen.insert(NodeId::from_peer_index(i).digit(0));
        }
        assert!(seen.len() >= 12, "only {} distinct top digits", seen.len());
    }

    #[test]
    fn from_peer_index_is_stable() {
        assert_eq!(NodeId::from_peer_index(5), NodeId::from_peer_index(5));
        assert_ne!(NodeId::from_peer_index(5), NodeId::from_peer_index(6));
    }
}
