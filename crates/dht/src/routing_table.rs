//! The Pastry routing table: `NUM_DIGITS` rows × `DIGIT_BASE` columns.
//!
//! Row `r` holds nodes sharing exactly `r` leading digits with the owner;
//! column `c` within the row holds a node whose digit `r` is `c`. When
//! several candidates fit a cell, Pastry keeps the one closest by the
//! network proximity metric — here, overlay latency supplied by the
//! network builder.

use crate::nodeid::{NodeId, DIGIT_BASE, NUM_DIGITS};
use spidernet_util::id::PeerId;

/// One routing-table cell: a known node plus its proximity to the owner.
#[derive(Clone, Copy, Debug)]
pub struct Cell {
    /// Ring id of the referenced node.
    pub id: NodeId,
    /// Overlay peer hosting it.
    pub peer: PeerId,
    /// Proximity metric (overlay latency, ms) from the table's owner.
    pub proximity: f64,
}

/// A node's routing table.
///
/// Rows are allocated lazily: with random ids only the top
/// `~log₁₆(nodes) + O(1)` rows ever hold an entry, and an eagerly
/// allocated `NUM_DIGITS × DIGIT_BASE` grid costs ~20 KB per node —
/// gigabytes at 10^5–10^6 peers. A row beyond `rows.len()` is
/// indistinguishable from an allocated all-`None` row.
#[derive(Clone, Debug)]
pub struct RoutingTable {
    owner: NodeId,
    rows: Vec<[Option<Cell>; DIGIT_BASE]>,
}

impl RoutingTable {
    /// An empty table for `owner`.
    pub fn new(owner: NodeId) -> Self {
        RoutingTable { owner, rows: Vec::new() }
    }

    /// The table owner's id.
    pub fn owner(&self) -> NodeId {
        self.owner
    }

    /// Offers a node for the table. It lands in row
    /// `shared_prefix_len(owner, id)`, column `id.digit(row)`; an occupied
    /// cell is replaced only by a closer (lower-proximity) candidate.
    pub fn insert(&mut self, id: NodeId, peer: PeerId, proximity: f64) {
        if id == self.owner {
            return;
        }
        let row = self.owner.shared_prefix_len(&id);
        debug_assert!(row < NUM_DIGITS);
        let col = id.digit(row);
        debug_assert_ne!(col, self.owner.digit(row), "cell digit equals owner digit");
        if row >= self.rows.len() {
            self.rows.resize(row + 1, [None; DIGIT_BASE]);
        }
        let cell = &mut self.rows[row][col];
        match cell {
            Some(existing) if existing.proximity <= proximity && existing.id != id => {}
            _ => *cell = Some(Cell { id, peer, proximity }),
        }
    }

    /// Removes a departed node wherever it appears.
    pub fn remove(&mut self, id: NodeId) {
        for row in &mut self.rows {
            for cell in row.iter_mut() {
                if cell.is_some_and(|c| c.id == id) {
                    *cell = None;
                }
            }
        }
    }

    /// The cell for routing `key`: row = shared prefix length with the
    /// owner, column = the key's next digit. `None` if the cell is empty
    /// (or the key equals the owner's id region, where the leaf set takes
    /// over).
    pub fn lookup(&self, key: NodeId) -> Option<Cell> {
        let row = self.owner.shared_prefix_len(&key);
        if row >= self.rows.len() {
            return None;
        }
        self.rows[row][key.digit(row)]
    }

    /// All populated cells (for the "rare case" fallback scan and for
    /// state-transfer during joins).
    pub fn cells(&self) -> impl Iterator<Item = Cell> + '_ {
        self.rows.iter().flat_map(|r| r.iter().flatten().copied())
    }

    /// Number of populated cells.
    pub fn len(&self) -> usize {
        self.rows.iter().map(|r| r.iter().flatten().count()).sum()
    }

    /// True if no cells are populated.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nid(top_digits: &[usize]) -> NodeId {
        let mut v: u128 = 0;
        for (i, &d) in top_digits.iter().enumerate() {
            v |= (d as u128) << (124 - 4 * i);
        }
        NodeId::new(v)
    }

    #[test]
    fn insert_places_by_prefix_and_digit() {
        let owner = nid(&[0xA, 0xB]);
        let mut rt = RoutingTable::new(owner);
        let other = nid(&[0xA, 0xC]); // shares 1 digit, next digit C
        rt.insert(other, PeerId::new(1), 5.0);
        let got = rt.lookup(nid(&[0xA, 0xC, 0x3])).unwrap();
        assert_eq!(got.id, other);
        assert_eq!(rt.len(), 1);
    }

    #[test]
    fn closer_candidate_replaces() {
        let owner = nid(&[0xA]);
        let mut rt = RoutingTable::new(owner);
        let c1 = nid(&[0xB, 0x1]);
        let c2 = nid(&[0xB, 0x2]);
        rt.insert(c1, PeerId::new(1), 10.0);
        rt.insert(c2, PeerId::new(2), 3.0); // same cell (row 0, col B), closer
        let got = rt.lookup(nid(&[0xB])).unwrap();
        assert_eq!(got.id, c2);
        assert_eq!(rt.len(), 1);
        // A farther candidate does not displace it.
        rt.insert(c1, PeerId::new(1), 10.0);
        assert_eq!(rt.lookup(nid(&[0xB])).unwrap().id, c2);
    }

    #[test]
    fn owner_never_inserted() {
        let owner = nid(&[0xA]);
        let mut rt = RoutingTable::new(owner);
        rt.insert(owner, PeerId::new(0), 0.0);
        assert!(rt.is_empty());
    }

    #[test]
    fn remove_clears_cells() {
        let owner = nid(&[0xA]);
        let mut rt = RoutingTable::new(owner);
        let c = nid(&[0xB]);
        rt.insert(c, PeerId::new(1), 1.0);
        rt.remove(c);
        assert!(rt.is_empty());
        assert!(rt.lookup(nid(&[0xB])).is_none());
    }

    #[test]
    fn lookup_uses_deeper_rows_for_longer_prefixes() {
        let owner = nid(&[0xA, 0xB, 0xC]);
        let mut rt = RoutingTable::new(owner);
        let shallow = nid(&[0x1]);
        let deep = nid(&[0xA, 0xB, 0xD]);
        rt.insert(shallow, PeerId::new(1), 1.0);
        rt.insert(deep, PeerId::new(2), 1.0);
        assert_eq!(rt.lookup(nid(&[0x1, 0xF])).unwrap().id, shallow);
        assert_eq!(rt.lookup(nid(&[0xA, 0xB, 0xD, 0x9])).unwrap().id, deep);
    }

    #[test]
    fn rows_allocate_lazily() {
        let owner = nid(&[0xA, 0xB, 0xC]);
        let mut rt = RoutingTable::new(owner);
        assert_eq!(rt.rows.len(), 0, "fresh table holds no rows");
        rt.insert(nid(&[0xA, 0xB, 0xD]), PeerId::new(1), 1.0); // row 2
        assert_eq!(rt.rows.len(), 3, "rows grow only to the deepest insert");
        // Lookups beyond the allocated depth behave like empty rows.
        assert!(rt.lookup(nid(&[0xA, 0xB, 0xC, 0x5])).is_none());
        assert_eq!(rt.lookup(nid(&[0xA, 0xB, 0xD])).unwrap().peer, PeerId::new(1));
    }

    #[test]
    fn cells_iterates_all() {
        let owner = nid(&[0xA]);
        let mut rt = RoutingTable::new(owner);
        rt.insert(nid(&[0xB]), PeerId::new(1), 1.0);
        rt.insert(nid(&[0xC]), PeerId::new(2), 1.0);
        rt.insert(nid(&[0xA, 0x1]), PeerId::new(3), 1.0);
        assert_eq!(rt.cells().count(), 3);
    }
}
