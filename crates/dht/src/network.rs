//! Whole-network Pastry view: per-node routing state, hop-by-hop routing
//! with hop/latency accounting, and membership churn.
//!
//! The simulator builds each node's routing table and leaf set from global
//! knowledge (the standard omniscient construction used in DHT simulation —
//! equivalent to the state a completed Pastry join protocol converges to),
//! then *routes* strictly hop-by-hop through per-node state, so hop counts
//! and per-hop latencies faithfully reflect a decentralized deployment.

use crate::leafset::{LeafSet, DEFAULT_SIDE};
use crate::nodeid::{NodeId, DIGIT_BASE, NUM_DIGITS};
use crate::routing_table::RoutingTable;
use spidernet_sim::trace::{TraceBuffer, TraceEvent};
use spidernet_util::id::PeerId;
use spidernet_util::par::par_map_with;
use std::collections::{BTreeMap, HashMap};

/// Per-node Pastry state.
#[derive(Clone, Debug)]
pub struct PastryNode {
    id: NodeId,
    peer: PeerId,
    table: RoutingTable,
    leaves: LeafSet,
}

impl PastryNode {
    /// This node's ring id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Number of populated routing-table cells (diagnostics).
    pub fn table_size(&self) -> usize {
        self.table.len()
    }
}

/// The result of routing one message.
#[derive(Clone, Debug)]
pub struct RouteOutcome {
    /// Peers visited, starting with the source and ending with the node
    /// that accepted delivery (the replica root for the key).
    pub path: Vec<PeerId>,
    /// Total overlay latency accumulated along the path, ms.
    pub latency_ms: f64,
}

impl RouteOutcome {
    /// Overlay hops taken (path length minus one).
    pub fn hops(&self) -> usize {
        self.path.len().saturating_sub(1)
    }

    /// The delivering node.
    pub fn destination(&self) -> PeerId {
        *self.path.last().expect("path includes at least the source")
    }
}

/// A complete Pastry network over a set of overlay peers.
#[derive(Clone, Debug)]
pub struct PastryNetwork {
    nodes: HashMap<PeerId, PastryNode>,
    ring: BTreeMap<NodeId, PeerId>,
    leaf_side: usize,
}

impl PastryNetwork {
    /// Builds the network for `peers`. `proximity(a, b)` supplies the
    /// overlay latency between two peers, used both to pick
    /// routing-table entries (Pastry's locality heuristic) and to account
    /// per-hop latency during routing.
    pub fn build(peers: &[PeerId], proximity: &mut dyn FnMut(PeerId, PeerId) -> f64) -> Self {
        let mut net =
            PastryNetwork { nodes: HashMap::new(), ring: BTreeMap::new(), leaf_side: DEFAULT_SIDE };
        for &p in peers {
            let id = NodeId::from_peer_index(p.raw());
            net.ring.insert(id, p);
        }
        let membership: Vec<(NodeId, PeerId)> = net.ring.iter().map(|(k, v)| (*k, *v)).collect();
        if membership.len() <= INCREMENTAL_BUILD_THRESHOLD {
            for &(id, peer) in &membership {
                let mut table = RoutingTable::new(id);
                let mut leaves = LeafSet::new(id, net.leaf_side);
                for &(oid, opeer) in &membership {
                    if oid == id {
                        continue;
                    }
                    table.insert(oid, opeer, proximity(peer, opeer));
                    leaves.insert(oid, opeer);
                }
                net.nodes.insert(peer, PastryNode { id, peer, table, leaves });
            }
        } else {
            for i in 0..membership.len() {
                let node = build_node_incremental(&membership, i, net.leaf_side, &mut |a, b| {
                    proximity(a, b)
                });
                net.nodes.insert(node.peer, node);
            }
        }
        net
    }

    /// [`PastryNetwork::build`] with per-node construction sharded across
    /// `threads` workers. Requires a shareable proximity function (pure,
    /// e.g. a coordinate-space delay); every node's state is a pure
    /// function of the sorted membership, so the result is identical for
    /// any thread count. Always uses the incremental O(n·log n)
    /// construction, whatever the network size.
    pub fn build_parallel(
        peers: &[PeerId],
        proximity: &(dyn Fn(PeerId, PeerId) -> f64 + Sync),
        threads: usize,
    ) -> Self {
        let mut net =
            PastryNetwork { nodes: HashMap::new(), ring: BTreeMap::new(), leaf_side: DEFAULT_SIDE };
        for &p in peers {
            let id = NodeId::from_peer_index(p.raw());
            net.ring.insert(id, p);
        }
        let membership: Vec<(NodeId, PeerId)> = net.ring.iter().map(|(k, v)| (*k, *v)).collect();
        let leaf_side = net.leaf_side;
        let membership_ref = &membership;
        let built = par_map_with(threads, (0..membership.len()).collect(), |_, i| {
            build_node_incremental(membership_ref, i, leaf_side, &mut |a, b| proximity(a, b))
        });
        for node in built {
            net.nodes.insert(node.peer, node);
        }
        net
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// True if `peer` is a live member.
    pub fn contains(&self, peer: PeerId) -> bool {
        self.nodes.contains_key(&peer)
    }

    /// The ring id of a live peer.
    pub fn node_id(&self, peer: PeerId) -> Option<NodeId> {
        self.nodes.get(&peer).map(|n| n.id)
    }

    /// Per-node state (diagnostics/tests).
    pub fn node(&self, peer: PeerId) -> Option<&PastryNode> {
        self.nodes.get(&peer)
    }

    /// The globally correct replica root for `key`: the live node with the
    /// numerically closest id. Used as the ground truth in tests and by the
    /// directory's churn repair.
    pub fn responsible(&self, key: NodeId) -> Option<PeerId> {
        let mut best: Option<(u128, NodeId, PeerId)> = None;
        // Check the nearest ring neighbors on both sides of the key.
        let succ = self.ring.range(key..).next().or_else(|| self.ring.iter().next());
        let pred = self.ring.range(..=key).next_back().or_else(|| self.ring.iter().next_back());
        for cand in [succ, pred].into_iter().flatten() {
            let (id, peer) = (*cand.0, *cand.1);
            let d = id.ring_distance(&key);
            match best {
                Some((bd, bid, _)) if bd < d || (bd == d && bid < id) => {}
                _ => best = Some((d, id, peer)),
            }
        }
        best.map(|(_, _, p)| p)
    }

    /// Routes a message from `start` toward `key`, hop by hop through
    /// per-node state. `latency(a, b)` supplies per-hop latency.
    ///
    /// Returns the visited path; delivery happens at the node that finds
    /// itself numerically closest among its leaf set (Pastry's termination
    /// rule).
    pub fn route(
        &self,
        start: PeerId,
        key: NodeId,
        latency: &mut dyn FnMut(PeerId, PeerId) -> f64,
    ) -> Option<RouteOutcome> {
        let mut cur = self.nodes.get(&start)?;
        let mut path = vec![start];
        let mut total = 0.0;
        // log_16(2^128) = 32 rows; 4x slack covers fallback detours.
        for _ in 0..128 {
            let next_peer = self.next_hop(cur, key);
            match next_peer {
                None => return Some(RouteOutcome { path, latency_ms: total }),
                Some(np) => {
                    total += latency(cur.peer, np);
                    path.push(np);
                    cur = self.nodes.get(&np).expect("next hop is a live node");
                }
            }
        }
        // Routing loop — should be unreachable with consistent state.
        None
    }

    /// [`PastryNetwork::route`] plus observability: records a
    /// [`TraceEvent::DhtLookup`] with the hop count into `trace` (a no-op
    /// when the `trace` feature is off).
    pub fn route_traced(
        &self,
        start: PeerId,
        key: NodeId,
        latency: &mut dyn FnMut(PeerId, PeerId) -> f64,
        trace: &mut TraceBuffer,
    ) -> Option<RouteOutcome> {
        let out = self.route(start, key, latency)?;
        trace.record(TraceEvent::DhtLookup { hops: out.hops() as u32 });
        Some(out)
    }

    /// Pastry's per-hop decision from the live node `peer` toward `key`:
    /// `None` means `peer` is the delivery point. This is the primitive a
    /// message-passing deployment calls at every forwarding step.
    pub fn next_hop_from(&self, peer: PeerId, key: NodeId) -> Option<Option<PeerId>> {
        self.nodes.get(&peer).map(|n| self.next_hop(n, key))
    }

    /// Pastry's per-hop decision at `node` for `key`.
    fn next_hop(&self, node: &PastryNode, key: NodeId) -> Option<PeerId> {
        if node.id == key {
            return None;
        }
        // 1. Leaf-set range: jump to the numerically closest leaf (or stop
        //    if the owner is closest).
        if node.leaves.covers(key) {
            return node.leaves.closest_to(key).map(|(_, p)| p);
        }
        // 2. Prefix routing: use the table cell for the key's next digit.
        let here_prefix = node.id.shared_prefix_len(&key);
        if let Some(cell) = node.table.lookup(key) {
            debug_assert!(cell.id.shared_prefix_len(&key) > here_prefix);
            return Some(cell.peer);
        }
        // 3. Rare case: any known node with no shorter prefix that is
        //    numerically closer to the key.
        let mut best: Option<(u128, PeerId)> = None;
        let here_dist = node.id.ring_distance(&key);
        for (cid, cpeer) in node
            .table
            .cells()
            .map(|c| (c.id, c.peer))
            .chain(node.leaves.members())
        {
            if cid.shared_prefix_len(&key) >= here_prefix {
                let d = cid.ring_distance(&key);
                if d < here_dist && best.is_none_or(|(bd, _)| d < bd) {
                    best = Some((d, cpeer));
                }
            }
        }
        best.map(|(_, p)| p)
    }

    /// Adds a node to the network, building its state and announcing it to
    /// every other node (the end state of a Pastry join).
    pub fn add_node(&mut self, peer: PeerId, proximity: &mut dyn FnMut(PeerId, PeerId) -> f64) {
        let id = NodeId::from_peer_index(peer.raw());
        let mut table = RoutingTable::new(id);
        let mut leaves = LeafSet::new(id, self.leaf_side);
        for (&oid, &opeer) in &self.ring {
            table.insert(oid, opeer, proximity(peer, opeer));
            leaves.insert(oid, opeer);
        }
        for node in self.nodes.values_mut() {
            node.table.insert(id, peer, proximity(node.peer, peer));
            node.leaves.insert(id, peer);
        }
        self.ring.insert(id, peer);
        self.nodes.insert(peer, PastryNode { id, peer, table, leaves });
    }

    /// Removes a departed node and repairs every survivor's leaf set from
    /// ring membership (the converged end state of Pastry's failure
    /// recovery). Routing-table holes are left to the fallback path, as in
    /// real Pastry before lazy repair fills them.
    pub fn remove_node(&mut self, peer: PeerId) {
        let Some(node) = self.nodes.remove(&peer) else { return };
        self.ring.remove(&node.id);
        let membership: Vec<(NodeId, PeerId)> = self.ring.iter().map(|(k, v)| (*k, *v)).collect();
        for survivor in self.nodes.values_mut() {
            survivor.table.remove(node.id);
            survivor.leaves.remove(node.id);
            // Refill the leaf set: O(N) scan, run rarely (churn events only).
            for &(oid, opeer) in &membership {
                if oid != survivor.id {
                    survivor.leaves.insert(oid, opeer);
                }
            }
        }
    }

    /// Live peers (arbitrary order).
    pub fn peers(&self) -> impl Iterator<Item = PeerId> + '_ {
        self.nodes.keys().copied()
    }
}

/// Above this membership size, [`PastryNetwork::build`] switches from the
/// omniscient O(n²) construction to the incremental O(n·log n) one. Below
/// it the two differ only in cost, but the omniscient path is kept so that
/// paper-scale worlds reproduce the seed state cell-for-cell (the golden
/// trace tests pin its hop counts).
pub const INCREMENTAL_BUILD_THRESHOLD: usize = 4096;

/// Candidates sampled per routing-table cell by the incremental build.
/// The full candidate set for a cell is a contiguous range of the sorted
/// ring (every id with the cell's prefix); sampling a bounded, evenly
/// spaced subset keeps construction O(n·log n) while still letting the
/// proximity heuristic pick a close entry. Routing correctness never
/// depends on the choice — delivery terminates through the leaf set.
const CELL_CANDIDATE_SAMPLES: usize = 6;

/// Builds one node's routing state from the sorted ring membership:
/// leaf sets from the `leaf_side` ring-window neighbors on each side
/// (identical to the omniscient construction, which also keeps exactly
/// the nearest `side` per direction), and routing-table cells from
/// binary-searched prefix ranges with bounded candidate sampling.
fn build_node_incremental(
    membership: &[(NodeId, PeerId)],
    i: usize,
    leaf_side: usize,
    proximity: &mut dyn FnMut(PeerId, PeerId) -> f64,
) -> PastryNode {
    let n = membership.len();
    let (id, peer) = membership[i];
    let mut leaves = LeafSet::new(id, leaf_side);
    // Ring-window neighbors: sorted order == clockwise order, so the
    // `leaf_side` successors/predecessors are exactly the converged set.
    for step in 1..=leaf_side.min(n.saturating_sub(1)) {
        let (sid, speer) = membership[(i + step) % n];
        if sid != id {
            leaves.insert(sid, speer);
        }
        let (pid, ppeer) = membership[(i + n - step) % n];
        if pid != id {
            leaves.insert(pid, ppeer);
        }
    }

    let mut table = RoutingTable::new(id);
    for row in 0..NUM_DIGITS {
        // Row `row` candidates share digits [0, row) with the owner. Once
        // that prefix range holds nobody but the owner, every deeper row
        // is empty — stop. With random ids this bounds the loop at
        // ~log₁₆(n) + O(1) rows.
        if row > 0 {
            let (lo, hi) = prefix_range(id, row - 1, id.digit(row - 1));
            let start = membership.partition_point(|&(m, _)| m.0 < lo);
            let end = membership.partition_point(|&(m, _)| m.0 <= hi);
            if end - start <= 1 {
                break;
            }
        }
        let own_digit = id.digit(row);
        for digit in 0..DIGIT_BASE {
            if digit == own_digit {
                continue;
            }
            let (lo, hi) = prefix_range(id, row, digit);
            // Sorted-ring slice of ids in [lo, hi].
            let start = membership.partition_point(|&(m, _)| m.0 < lo);
            let end = membership.partition_point(|&(m, _)| m.0 <= hi);
            if start == end {
                continue;
            }
            // Evenly spaced deterministic sample; closest by proximity
            // wins, first-seen on ties (matching RoutingTable::insert).
            let len = end - start;
            let samples = CELL_CANDIDATE_SAMPLES.min(len);
            let mut best: Option<(f64, NodeId, PeerId)> = None;
            for s in 0..samples {
                let idx = start + s * len / samples;
                let (cid, cpeer) = membership[idx];
                let d = proximity(peer, cpeer);
                if best.is_none_or(|(bd, _, _)| d < bd) {
                    best = Some((d, cid, cpeer));
                }
            }
            if let Some((d, cid, cpeer)) = best {
                table.insert(cid, cpeer, d);
            }
        }
    }
    PastryNode { id, peer, table, leaves }
}

/// Inclusive `u128` value range of ids whose digits match `id` on
/// `[0, row)` and have `digit` at position `row`.
fn prefix_range(id: NodeId, row: usize, digit: usize) -> (u128, u128) {
    let shift = 128 - 4 * (row + 1);
    let keep_mask: u128 = if row == 0 { 0 } else { u128::MAX << (128 - 4 * row) };
    let lo = (id.0 & keep_mask) | ((digit as u128) << shift);
    let span: u128 = if shift == 0 { 0 } else { (1u128 << shift) - 1 };
    (lo, lo | span)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat_latency(_: PeerId, _: PeerId) -> f64 {
        1.0
    }

    fn build(n: u64) -> PastryNetwork {
        let peers: Vec<PeerId> = (0..n).map(PeerId::new).collect();
        PastryNetwork::build(&peers, &mut flat_latency)
    }

    #[test]
    fn routing_reaches_the_responsible_node() {
        let net = build(64);
        for probe in 0..200u64 {
            let key = NodeId::from_peer_index(10_000 + probe);
            let start = PeerId::new(probe % 64);
            let out = net.route(start, key, &mut flat_latency).expect("no loop");
            assert_eq!(
                out.destination(),
                net.responsible(key).unwrap(),
                "probe {probe} from {start}"
            );
        }
    }

    #[test]
    fn hop_counts_are_logarithmic() {
        let net = build(256);
        let mut worst = 0;
        for probe in 0..100u64 {
            let key = NodeId::from_peer_index(55_000 + probe);
            let out = net.route(PeerId::new(probe % 256), key, &mut flat_latency).unwrap();
            worst = worst.max(out.hops());
        }
        // ceil(log_16 256) = 2; leaf-set hops can add a couple more.
        assert!(worst <= 5, "worst-case hops {worst}");
    }

    #[test]
    fn routing_to_own_key_is_zero_hops() {
        let net = build(32);
        let p = PeerId::new(7);
        let key = net.node_id(p).unwrap();
        let out = net.route(p, key, &mut flat_latency).unwrap();
        assert_eq!(out.hops(), 0);
        assert_eq!(out.destination(), p);
        assert_eq!(out.latency_ms, 0.0);
    }

    #[test]
    fn latency_accumulates_per_hop() {
        let net = build(64);
        let key = NodeId::from_peer_index(99_999);
        let out = net.route(PeerId::new(0), key, &mut |_, _| 7.5).unwrap();
        assert!((out.latency_ms - 7.5 * out.hops() as f64).abs() < 1e-9);
    }

    #[test]
    fn departure_reroutes_to_new_responsible() {
        let mut net = build(48);
        let key = NodeId::from_peer_index(123_456);
        let old_root = net.responsible(key).unwrap();
        net.remove_node(old_root);
        let new_root = net.responsible(key).unwrap();
        assert_ne!(old_root, new_root);
        for start in (0..48).map(PeerId::new) {
            if !net.contains(start) {
                continue;
            }
            let out = net.route(start, key, &mut flat_latency).unwrap();
            assert_eq!(out.destination(), new_root, "from {start}");
        }
    }

    #[test]
    fn arrival_takes_over_keys_it_is_closest_to() {
        let mut net = build(16);
        // Add many nodes; every key must afterwards route to the global
        // closest node.
        for p in 100..140u64 {
            net.add_node(PeerId::new(p), &mut flat_latency);
        }
        assert_eq!(net.len(), 56);
        for probe in 0..50u64 {
            let key = NodeId::from_peer_index(7_000 + probe);
            let out = net.route(PeerId::new(3), key, &mut flat_latency).unwrap();
            assert_eq!(out.destination(), net.responsible(key).unwrap());
        }
    }

    #[test]
    fn two_node_network_routes() {
        let net = build(2);
        let key = NodeId::from_peer_index(42);
        let out = net.route(PeerId::new(0), key, &mut flat_latency).unwrap();
        assert_eq!(out.destination(), net.responsible(key).unwrap());
        assert!(out.hops() <= 1);
    }

    #[test]
    fn route_from_unknown_peer_is_none() {
        let net = build(4);
        assert!(net.route(PeerId::new(99), NodeId::new(1), &mut flat_latency).is_none());
    }

    #[test]
    fn next_hop_from_walks_to_delivery() {
        // Manually following next_hop_from must terminate at the
        // responsible node — the primitive the threaded runtime uses.
        let net = build(48);
        for probe in 0..30u64 {
            let key = NodeId::from_peer_index(90_000 + probe);
            let mut cur = PeerId::new(probe % 48);
            let mut hops = 0;
            loop {
                match net.next_hop_from(cur, key) {
                    Some(Some(next)) => {
                        cur = next;
                        hops += 1;
                        assert!(hops < 64, "routing loop");
                    }
                    Some(None) => break,
                    None => panic!("walked onto a dead peer"),
                }
            }
            assert_eq!(cur, net.responsible(key).unwrap(), "probe {probe}");
        }
        assert!(net.next_hop_from(PeerId::new(999), NodeId::new(1)).is_none());
    }

    #[test]
    fn incremental_build_routes_to_responsible() {
        let peers: Vec<PeerId> = (0..500).map(PeerId::new).collect();
        let net = PastryNetwork::build_parallel(&peers, &|_, _| 1.0, 1);
        assert_eq!(net.len(), 500);
        for probe in 0..200u64 {
            let key = NodeId::from_peer_index(31_000 + probe);
            let start = PeerId::new(probe % 500);
            let out = net.route(start, key, &mut flat_latency).expect("no loop");
            assert_eq!(out.destination(), net.responsible(key).unwrap(), "probe {probe}");
        }
    }

    #[test]
    fn incremental_hop_counts_stay_logarithmic() {
        let peers: Vec<PeerId> = (0..2000).map(PeerId::new).collect();
        let net = PastryNetwork::build_parallel(&peers, &|_, _| 1.0, 1);
        let mut worst = 0;
        for probe in 0..100u64 {
            let key = NodeId::from_peer_index(77_000 + probe);
            let out = net.route(PeerId::new(probe % 2000), key, &mut flat_latency).unwrap();
            worst = worst.max(out.hops());
        }
        // ceil(log_16 2000) = 3; sampled tables may add leaf-set detours.
        assert!(worst <= 7, "worst-case hops {worst}");
    }

    #[test]
    fn parallel_build_is_thread_invariant() {
        let peers: Vec<PeerId> = (0..300).map(PeerId::new).collect();
        // A proximity with real structure, so cell choices matter.
        let prox = |a: PeerId, b: PeerId| ((a.raw() * 31 + b.raw() * 17) % 97) as f64;
        let reference = PastryNetwork::build_parallel(&peers, &prox, 1);
        for threads in [2usize, 8] {
            let net = PastryNetwork::build_parallel(&peers, &prox, threads);
            for &p in &peers {
                let a = reference.node(p).unwrap();
                let b = net.node(p).unwrap();
                let cells_a: Vec<(NodeId, PeerId)> = a.table.cells().map(|c| (c.id, c.peer)).collect();
                let cells_b: Vec<(NodeId, PeerId)> = b.table.cells().map(|c| (c.id, c.peer)).collect();
                assert_eq!(cells_a, cells_b, "tables diverged at {threads} threads for {p}");
                let leaves_a: Vec<(NodeId, PeerId)> = a.leaves.members().collect();
                let leaves_b: Vec<(NodeId, PeerId)> = b.leaves.members().collect();
                assert_eq!(leaves_a, leaves_b, "leaves diverged at {threads} threads for {p}");
            }
        }
    }

    #[test]
    fn incremental_leaf_sets_match_omniscient_construction() {
        let peers: Vec<PeerId> = (0..300).map(PeerId::new).collect();
        let omniscient = PastryNetwork::build(&peers, &mut flat_latency);
        let incremental = PastryNetwork::build_parallel(&peers, &|_, _| 1.0, 1);
        for &p in &peers {
            let a: Vec<(NodeId, PeerId)> =
                omniscient.node(p).unwrap().leaves.members().collect();
            let b: Vec<(NodeId, PeerId)> =
                incremental.node(p).unwrap().leaves.members().collect();
            assert_eq!(a, b, "leaf set diverged for {p}");
        }
    }

    #[test]
    fn proximity_prefers_close_table_entries() {
        // With a proximity metric that makes peer 1 very close to peer 0,
        // peer 0's table should prefer peer 1 over same-cell alternatives.
        let peers: Vec<PeerId> = (0..32).map(PeerId::new).collect();
        let mut prox = |a: PeerId, b: PeerId| {
            if (a.raw(), b.raw()) == (0, 1) || (a.raw(), b.raw()) == (1, 0) {
                0.1
            } else {
                50.0
            }
        };
        let net = PastryNetwork::build(&peers, &mut prox);
        let n0 = net.node(PeerId::new(0)).unwrap();
        let id1 = net.node_id(PeerId::new(1)).unwrap();
        // Find the cell where node 1 would live; it must contain node 1
        // (nothing can beat 0.1ms proximity).
        let row = n0.id().shared_prefix_len(&id1);
        let _ = row;
        assert!(
            n0.table.cells().any(|c| c.peer == PeerId::new(1)),
            "closest peer missing from routing table"
        );
    }
}
