//! Regenerates Fig. 8: composition success rate vs workload for optimal,
//! probing-0.2, probing-0.1, random, and static.
//!
//! `cargo run --release -p spidernet-bench --bin fig8 [--paper] [--csv] [--json] [--trace-json]`
//!
//! `--json` additionally times the harness sequentially and in parallel
//! (the outputs are bit-identical either way) and writes the wall-time /
//! throughput record to `BENCH_fig8.json`. `--trace-json` writes the
//! merged protocol counters and DAG-shape histograms to `TRACE_fig8.json`.

use spidernet_bench::{
    csv_requested, json_requested, paper_scale_requested, quick_requested, time_seq_par,
    trace_json_requested, BenchReport,
};
use spidernet_core::experiments::fig8::{optimal_phase_bench, run, Fig8Config};
use spidernet_core::workload::{PopulationConfig, RequestConfig};
use spidernet_sim::TraceReport;

/// CI smoke configuration: a miniature grid run *uncapped*
/// (`optimal_cap: None`), so the report's enumerator fields reflect the
/// paper-accurate exact-optimal semantics while finishing in seconds.
fn quick_scale() -> Fig8Config {
    Fig8Config {
        ip_nodes: 300,
        peers: 60,
        functions: 12,
        duration_units: 10,
        workloads: vec![3, 6],
        population: PopulationConfig { functions: 12, ..PopulationConfig::default() },
        request: RequestConfig { functions: (2, 3), ..RequestConfig::default() },
        optimal_cap: None,
        ..Fig8Config::default()
    }
}

fn main() {
    let base = if paper_scale_requested() {
        Fig8Config::paper_scale()
    } else if quick_requested() {
        quick_scale()
    } else {
        Fig8Config::default()
    };
    eprintln!(
        "fig8: {} peers, {} units, workloads {:?}{}",
        base.peers,
        base.duration_units,
        base.workloads,
        if paper_scale_requested() { " (paper scale)" } else { " (scaled down; pass --paper for full size)" }
    );
    let res = if json_requested() {
        let trials = (base.workloads.len() * base.algorithms.len()) as u64;
        let (seq, par, threads, out) =
            time_seq_par(|t| run(&Fig8Config { threads: Some(t), ..base.clone() }));
        let mut rep = BenchReport::new("fig8");
        rep.int("trials", trials)
            .int("threads", threads as u64)
            .num("sequential_secs", seq)
            .num("parallel_secs", par)
            .num("speedup", seq / par)
            .num("trials_per_sec", trials as f64 / par)
            .int("probes", out.total_probes)
            .num("probes_per_sec", out.total_probes as f64 / par)
            .num("optimal_phase_secs", out.optimal_phase_secs)
            .int("combos_examined", out.combos_examined)
            .int("combos_pruned", out.combos_pruned);
        // Head-to-head optimal-phase comparison: the naive reference
        // enumerator vs branch-and-bound over the same request stream and
        // cap (identical considered-combination semantics).
        let phase = optimal_phase_bench(&base, 32);
        rep.num("optimal_naive_secs", phase.naive_secs)
            .num("optimal_bb_secs", phase.bb_secs)
            .num("optimal_speedup", phase.speedup);
        match rep.write() {
            Ok(p) => eprintln!("fig8: wrote {}", p.display()),
            Err(e) => eprintln!("fig8: could not write report: {e}"),
        }
        out
    } else {
        run(&base)
    };
    if trace_json_requested() {
        let mut rep = TraceReport::new("fig8");
        rep.add_registry(&res.metrics);
        match rep.write() {
            Ok(p) => eprintln!("fig8: wrote {}", p.display()),
            Err(e) => eprintln!("fig8: could not write trace report: {e}"),
        }
    }
    if csv_requested() {
        print!("{}", res.to_csv());
    } else {
        println!("{res}");
    }
}
