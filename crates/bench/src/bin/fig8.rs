//! Regenerates Fig. 8: composition success rate vs workload for optimal,
//! probing-0.2, probing-0.1, random, and static.
//!
//! `cargo run --release -p spidernet-bench --bin fig8 [--paper] [--csv] [--json [path]] [--trace-json] [--peers N]`
//!
//! `--json [path]` additionally times the harness sequentially and in parallel
//! (the outputs are bit-identical either way) and writes the wall-time /
//! throughput record to `BENCH_fig8.json`. `--trace-json` writes the
//! merged protocol counters and DAG-shape histograms to `TRACE_fig8.json`.
//!
//! `--peers N` runs the geometric-overlay scale sweep at N peers
//! (10^5–10^6 territory). Alone it prints the sweep summary; combined
//! with `--json` it also runs the figure grid and the report gains a
//! `scale` block (peers, probes/sec, peak RSS).

use spidernet_bench::{
    arg_value, csv_requested, json_requested, json_spec, paper_scale_requested, peak_rss_bytes,
    quick_requested, time_seq_par, trace_json_requested, BenchBlock, BenchReport,
};
use spidernet_core::experiments::fig8::{
    optimal_phase_bench, run, run_scale, Fig8Config, ScaleConfig, ScaleResult,
};
use spidernet_core::workload::{PopulationConfig, RequestConfig};
use spidernet_sim::metrics::counter;
use spidernet_sim::TraceReport;

/// CI smoke configuration: a miniature grid run *uncapped*
/// (`optimal_cap: None`), so the report's enumerator fields reflect the
/// paper-accurate exact-optimal semantics while finishing in seconds.
fn quick_scale() -> Fig8Config {
    Fig8Config {
        ip_nodes: 300,
        peers: 60,
        functions: 12,
        duration_units: 10,
        workloads: vec![3, 6],
        population: PopulationConfig { functions: 12, ..PopulationConfig::default() },
        request: RequestConfig { functions: (2, 3), ..RequestConfig::default() },
        optimal_cap: None,
        ..Fig8Config::default()
    }
}

/// Runs the geometric-overlay scale sweep at `peers` peers and prints a
/// one-line summary. `--quick` shortens the request stream for CI.
fn scale_sweep(peers: usize) -> ScaleResult {
    let cfg = ScaleConfig {
        peers,
        requests: if quick_requested() { 100 } else { 400 },
        build_threads: spidernet_util::par::configured_threads(),
        ..ScaleConfig::default()
    };
    eprintln!("fig8 scale: {} peers, {} requests...", cfg.peers, cfg.requests);
    let res = run_scale(&cfg);
    eprintln!(
        "fig8 scale: build {:.1}s, {} probes in {:.2}s = {:.0} probes/sec, {}/{} committed",
        res.build_secs, res.probes, res.probe_secs, res.probes_per_sec, res.successes, res.requests
    );
    res
}

fn main() {
    let scale = arg_value("--peers")
        .map(|v| v.parse::<usize>().expect("--peers takes a peer count"))
        .map(scale_sweep);
    if let Some(scale) = &scale {
        if !json_requested() {
            // Scale-only invocation: the sweep summary is the output.
            println!(
                "peers {} probes_per_sec {:.0} peak_rss_bytes {}",
                scale.peers,
                scale.probes_per_sec,
                peak_rss_bytes().unwrap_or(0)
            );
            return;
        }
    }
    let base = if paper_scale_requested() {
        Fig8Config::paper_scale()
    } else if quick_requested() {
        quick_scale()
    } else {
        Fig8Config::default()
    };
    eprintln!(
        "fig8: {} peers, {} units, workloads {:?}{}",
        base.peers,
        base.duration_units,
        base.workloads,
        if paper_scale_requested() { " (paper scale)" } else { " (scaled down; pass --paper for full size)" }
    );
    let res = if let Some(json_path) = json_spec() {
        let trials = (base.workloads.len() * base.algorithms.len()) as u64;
        let (seq, par, threads, out) =
            time_seq_par(|t| run(&Fig8Config { threads: Some(t), ..base.clone() }));
        let mut rep = BenchReport::new("fig8");
        rep.int("trials", trials)
            .int("threads", threads as u64)
            .num("sequential_secs", seq)
            .num("parallel_secs", par)
            .num("speedup", seq / par)
            .num("trials_per_sec", trials as f64 / par)
            .int("probes", out.total_probes)
            // Probing throughput over the time the probing cells actually
            // ran — optimal/random/static cells transmit no probes, so
            // wall-clock-based rates mostly measure the optimal
            // enumerator. The wall-clock variant is kept alongside.
            .num("probes_per_sec", out.total_probes as f64 / out.probing_phase_secs.max(1e-9))
            .num("probes_per_sec_wall", out.total_probes as f64 / par)
            .num("build_secs", out.build_secs)
            .num("probing_phase_secs", out.probing_phase_secs)
            .num("optimal_phase_secs", out.optimal_phase_secs)
            .int("combos_examined", out.combos_examined)
            .int("combos_pruned", out.combos_pruned)
            // Pairwise-delay cache effectiveness: hits replay a memoized
            // SSSP distance, misses pay a fresh computation, evictions
            // count insert rejections once the memo saturates (queries
            // silently degrade to tree walks), bypasses are deliberate
            // contention-aware queries that skip the memo because it only
            // stores uncongested delays.
            .int("pair_cache_hits", out.metrics.value(counter::PAIR_CACHE_HITS))
            .int("pair_cache_misses", out.metrics.value(counter::PAIR_CACHE_MISSES))
            .int("pair_cache_evictions", out.metrics.value(counter::PAIR_CACHE_EVICTIONS))
            .int("pair_cache_bypasses", out.metrics.value(counter::PAIR_CACHE_BYPASSES));
        // Head-to-head optimal-phase comparison: the naive reference
        // enumerator vs branch-and-bound over the same request stream and
        // cap (identical considered-combination semantics).
        let phase = optimal_phase_bench(&base, 32);
        rep.num("optimal_naive_secs", phase.naive_secs)
            .num("optimal_bb_secs", phase.bb_secs)
            .num("optimal_speedup", phase.speedup);
        if let Some(scale) = &scale {
            let mut block = BenchBlock::new();
            block
                .int("peers", scale.peers as u64)
                .int("requests", scale.requests)
                .int("successes", scale.successes)
                .num("build_secs", scale.build_secs)
                .num("probe_secs", scale.probe_secs)
                .int("probes", scale.probes)
                .num("probes_per_sec", scale.probes_per_sec)
                .int("peak_rss_bytes", peak_rss_bytes().unwrap_or(0));
            rep.nested("scale", &block);
        }
        match rep.write_spec(&json_path) {
            Ok(p) => eprintln!("fig8: wrote {}", p.display()),
            Err(e) => eprintln!("fig8: could not write report: {e}"),
        }
        out
    } else {
        run(&base)
    };
    if trace_json_requested() {
        let mut rep = TraceReport::new("fig8");
        rep.add_registry(&res.metrics);
        match rep.write() {
            Ok(p) => eprintln!("fig8: wrote {}", p.display()),
            Err(e) => eprintln!("fig8: could not write trace report: {e}"),
        }
    }
    if csv_requested() {
        print!("{}", res.to_csv());
    } else {
        println!("{res}");
    }
}
