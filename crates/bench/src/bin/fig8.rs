//! Regenerates Fig. 8: composition success rate vs workload for optimal,
//! probing-0.2, probing-0.1, random, and static.
//!
//! `cargo run --release -p spidernet-bench --bin fig8 [--paper]`

use spidernet_bench::{csv_requested, paper_scale_requested};
use spidernet_core::experiments::fig8::{run, Fig8Config};

fn main() {
    let cfg = if paper_scale_requested() { Fig8Config::paper_scale() } else { Fig8Config::default() };
    eprintln!(
        "fig8: {} peers, {} units, workloads {:?}{}",
        cfg.peers,
        cfg.duration_units,
        cfg.workloads,
        if paper_scale_requested() { " (paper scale)" } else { " (scaled down; pass --paper for full size)" }
    );
    let res = run(&cfg);
    if csv_requested() {
        print!("{}", res.to_csv());
    } else {
        println!("{res}");
    }
}
