//! Congestion bench: QoS-violation rate and goodput vs offered load under
//! the shared-bandwidth flow model, four selection policies head-to-head.
//!
//! `cargo run --release -p spidernet-bench --bin congestion -- \
//!    [--peers N] [--seed S] [--loads n1,n2,...] [--quick] [--csv] \
//!    [--json [path]] [--results-json path]`
//!
//! Two outputs:
//!
//! * `BENCH_congestion.json` (`--json`) — the full grid: per
//!   (policy, load) cell the admitted/rejected split, QoS-violation rate,
//!   delivered goodput vs offered Mbps, mean delivered fraction, and the
//!   rate-recalc event count, plus the headline marketplace-vs-paper
//!   comparison at peak load.
//! * `--results-json <path>` — the same cells (every field is model-time
//!   deterministic), byte-identical across `SPIDERNET_THREADS` and across
//!   processes for a fixed seed; CI `cmp`s a 1-thread and a 4-thread run.
//!
//! `--csv` prints the deterministic per-cell rows to stdout.

use spidernet_bench::{csv_requested, json_spec, quick_requested, BenchBlock, BenchReport};
use spidernet_core::experiments::congestion::{
    policy_name, run, CongestionCell, CongestionConfig, CongestionResult, POLICIES,
};
use spidernet_util::cli::arg_value;
use spidernet_util::par::configured_threads;

struct Cli {
    peers: usize,
    seed: u64,
    loads: Vec<usize>,
    results_json: Option<String>,
}

fn cli() -> Cli {
    let quick = quick_requested();
    let peers = arg_value("--peers").and_then(|v| v.parse().ok()).unwrap_or(if quick {
        60
    } else {
        120
    });
    let seed = arg_value("--seed").and_then(|v| v.parse().ok()).unwrap_or(10);
    let loads = match arg_value("--loads") {
        Some(spec) => match spec.split(',').map(str::parse::<usize>).collect() {
            Ok(l) => l,
            Err(_) => {
                eprintln!("congestion: bad --loads list {spec:?}");
                std::process::exit(2);
            }
        },
        None if quick => vec![40, 160],
        None => vec![30, 60, 120, 240],
    };
    Cli { peers, seed, loads, results_json: arg_value("--results-json") }
}

fn config(cli: &Cli) -> CongestionConfig {
    let mut cfg = CongestionConfig {
        ip_nodes: cli.peers * 5,
        peers: cli.peers,
        seed: cli.seed,
        loads: cli.loads.clone(),
        ..CongestionConfig::default()
    };
    // Keep the driver's bandwidth shaping; only shrink the catalog for CI.
    if quick_requested() {
        cfg.population.functions = 8;
    }
    cfg
}

fn cell_block(c: &CongestionCell) -> BenchBlock {
    let mut b = BenchBlock::new();
    b.int("offered_sessions", c.offered_sessions as u64)
        .int("admitted", c.admitted)
        .int("rejected", c.rejected)
        .int("violations", c.violations)
        .num("violation_rate", c.violation_rate)
        .num("goodput_mbps", c.goodput_mbps)
        .num("offered_mbps", c.offered_mbps)
        .num("mean_delivered", c.mean_delivered)
        .int("recalc_events", c.recalc_events);
    b
}

fn report(name: &str, cli: &Cli, res: &CongestionResult, threads: Option<usize>) -> BenchReport {
    let mut rep = BenchReport::new(name);
    rep.int("peers", cli.peers as u64)
        .int("seed", cli.seed)
        .num("frac_floor", res.frac_floor)
        .str("policies", "paper,marketplace,random,greedy");
    if let Some(t) = threads {
        rep.int("threads", t as u64);
    }
    let last = res.loads.len() - 1;
    let paper = res.cell(0, last);
    let market = res.cell(1, last);
    rep.num("paper_peak_violation_rate", paper.violation_rate)
        .num("marketplace_peak_violation_rate", market.violation_rate)
        .int(
            "marketplace_no_worse_than_paper",
            (market.violation_rate <= paper.violation_rate + 1e-12) as u64,
        );
    for (i, &p) in POLICIES.iter().enumerate() {
        for (j, &l) in res.loads.iter().enumerate() {
            let key = format!("cell_{}_{}", policy_name(p), l);
            rep.nested(&key, &cell_block(res.cell(i, j)));
        }
    }
    rep
}

fn main() {
    let cli = cli();
    let threads = configured_threads();
    eprintln!(
        "congestion: {} peers, loads {:?}, seed {}, {} worker threads",
        cli.peers, cli.loads, cli.seed, threads
    );

    let res = run(&config(&cli));
    eprint!("{res}");

    let last = res.loads.len() - 1;
    let paper = res.cell(0, last);
    let market = res.cell(1, last);
    eprintln!(
        "congestion: peak load {}: marketplace violation rate {:.4} vs paper {:.4} ({})",
        res.loads[last],
        market.violation_rate,
        paper.violation_rate,
        if market.violation_rate <= paper.violation_rate + 1e-12 {
            "marketplace no worse"
        } else {
            "PAPER WINS — unexpected"
        }
    );

    if let Some(json_path) = json_spec() {
        let rep = report("congestion", &cli, &res, Some(threads));
        match rep.write_spec(&json_path) {
            Ok(p) => eprintln!("congestion: wrote {}", p.display()),
            Err(e) => eprintln!("congestion: could not write bench report: {e}"),
        }
    }

    if let Some(path) = &cli.results_json {
        // Every cell field is model-time deterministic; only the thread
        // count is excluded so 1-thread and 4-thread runs byte-match.
        let rep = report("congestion_results", &cli, &res, None);
        match rep.write_spec(&Some(path.clone())) {
            Ok(p) => eprintln!("congestion: wrote {}", p.display()),
            Err(e) => eprintln!("congestion: could not write results json: {e}"),
        }
    }

    if csv_requested() {
        print!("{}", res.to_csv());
    }
}
