//! Regenerates Fig. 11: average end-to-end delay vs probing budget for
//! random, SpiderNet, and optimal.
//!
//! `cargo run --release -p spidernet-bench --bin fig11 [--paper]`

use spidernet_bench::{csv_requested, paper_scale_requested};
use spidernet_core::experiments::fig11::{run, Fig11Config};

fn main() {
    let cfg = if paper_scale_requested() {
        Fig11Config { requests: 200, ..Fig11Config::default() }
    } else {
        Fig11Config::default()
    };
    eprintln!("fig11: {} peers, {} functions, budgets {:?}", cfg.peers, cfg.functions, cfg.budgets);
    let res = run(&cfg);
    if csv_requested() {
        print!("{}", res.to_csv());
    } else {
        println!("{res}");
    }
}
