//! Open-loop load benchmark: offered-load sweep plus a cached-vs-uncached
//! compose head-to-head on a standing world.
//!
//! `cargo run --release -p spidernet-bench --bin loadbench -- \
//!    [--arrivals poisson:rate=R] [--peers N] [--units U] [--seed S] \
//!    [--rates r1,r2,...] [--quick] [--csv] [--json [path]] \
//!    [--results-json path]`
//!
//! Two outputs:
//!
//! * `BENCH_load.json` (`--json`) — the full report: per-cell goodput,
//!   setup-latency p50/p95/p99, rejection rate, compose-cache hit rate vs
//!   offered load, and the head-to-head block with measured composes/sec
//!   for both modes (wall-clock fields included).
//! * `--results-json <path>` — the model-time subset only: byte-identical
//!   across `SPIDERNET_THREADS` and across processes for a fixed seed,
//!   used by CI to pin determinism (`cmp` of a 1-thread and a 4-thread
//!   run).
//!
//! `--csv` prints the same deterministic per-cell rows to stdout.

use spidernet_bench::{
    arg_value, csv_requested, json_spec, quick_requested, BenchBlock, BenchReport,
};
use spidernet_core::bcp::{BcpConfig, BcpStats};
use spidernet_core::loadgen::{
    run_cell, zipf_request, ArrivalProcess, LoadCellResult, LoadConfig, ZipfSampler,
};
use spidernet_core::system::{SpiderNet, SpiderNetConfig};
use spidernet_core::workload::{provisioned_functions, PopulationConfig, RequestConfig};
use spidernet_core::CompositionRequest;
use spidernet_util::id::PeerId;
use spidernet_util::par::{configured_threads, par_map_with};
use spidernet_util::res::ResourceVector;
use spidernet_util::rng::rng_for;

/// ψ threshold for the sweep cells: overload shows up as shedding plus
/// `AdmissionRejected`, not as unbounded queueing.
const SWEEP_PSI: f64 = 0.85;

struct Cli {
    arrivals: ArrivalProcess,
    peers: usize,
    units: u64,
    seed: u64,
    rates: Vec<f64>,
    results_json: Option<String>,
}

fn cli() -> Cli {
    let arrivals_spec =
        arg_value("--arrivals").unwrap_or_else(|| "poisson:rate=20".to_owned());
    let arrivals = match ArrivalProcess::parse(&arrivals_spec) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("loadbench: bad --arrivals spec: {e}");
            std::process::exit(2);
        }
    };
    let quick = quick_requested();
    let peers = arg_value("--peers").and_then(|v| v.parse().ok()).unwrap_or(60);
    let units = arg_value("--units")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 25 } else { 40 });
    let seed = arg_value("--seed").and_then(|v| v.parse().ok()).unwrap_or(8);
    let rates = match arg_value("--rates") {
        Some(spec) => match spec.split(',').map(str::parse::<f64>).collect() {
            Ok(r) => r,
            Err(_) => {
                eprintln!("loadbench: bad --rates list {spec:?}");
                std::process::exit(2);
            }
        },
        None if quick => vec![3.0, 12.0],
        None => vec![4.0, 8.0, 16.0, 32.0],
    };
    Cli { arrivals, peers, units, seed, rates, results_json: arg_value("--results-json") }
}

fn sweep_world(cli: &Cli) -> SpiderNet {
    let mut net = SpiderNet::build(
        &SpiderNetConfig::builder()
            .ip_nodes(cli.peers * 5)
            .peers(cli.peers)
            .seed(cli.seed)
            .build(),
    );
    net.populate(&PopulationConfig { functions: 12, ..PopulationConfig::default() });
    net
}

fn sweep_cell(cli: &Cli, arrivals: ArrivalProcess) -> LoadConfig {
    LoadConfig {
        arrivals,
        duration_units: cli.units,
        seed: cli.seed,
        bcp: BcpConfig::builder().shed_utilization(SWEEP_PSI).build(),
        compose_caching: true,
        ..LoadConfig::default()
    }
}

/// One head-to-head run: composes every request in order against `net`,
/// returning (wall seconds, admitted, aggregate stats, per-request setup
/// latency bit fingerprint). An untimed warmup pass precedes the timed
/// one so both modes measure the steady state of a standing world (path
/// caches and memos hot) rather than first-touch Dijkstra costs.
fn drive(net: &mut SpiderNet, reqs: &[CompositionRequest], cfg: &BcpConfig) -> HeadRun {
    for req in reqs {
        let _ = net.compose(req, cfg);
    }
    let mut agg = BcpStats::default();
    let mut admitted = 0u64;
    let mut fingerprint = 0u64;
    let t0 = std::time::Instant::now();
    for req in reqs {
        match net.compose(req, cfg) {
            Ok(out) => {
                admitted += 1;
                let s = &out.stats;
                agg.probes_sent += s.probes_sent;
                agg.dht_lookups += s.dht_lookups;
                agg.dht_messages += s.dht_messages;
                agg.complete_probes += s.complete_probes;
                agg.dropped_qos += s.dropped_qos;
                agg.dropped_admission += s.dropped_admission;
                agg.shed_candidates += s.shed_candidates;
                agg.candidates_examined += s.candidates_examined;
                agg.discovery_ms += s.discovery_ms;
                agg.probing_ms += s.probing_ms;
                let setup = s.discovery_ms + s.probing_ms;
                fingerprint =
                    fingerprint.rotate_left(7) ^ setup.to_bits().wrapping_mul(0x9E37_79B9_7F4A_7C15);
            }
            Err(_) => {
                fingerprint = fingerprint.rotate_left(7) ^ 0x5bd1_e995;
            }
        }
    }
    HeadRun { secs: t0.elapsed().as_secs_f64(), admitted, agg, fingerprint }
}

struct HeadRun {
    secs: f64,
    admitted: u64,
    agg: BcpStats,
    fingerprint: u64,
}

struct HeadToHead {
    requests: u64,
    admitted: u64,
    uncached_secs: f64,
    cached_secs: f64,
    cache_hits: u64,
    cache_misses: u64,
    cache_invalidations: u64,
    setup_metrics_match: bool,
    qualified_fraction: f64,
    shed_per_compose: f64,
}

/// The duplicate-function-pressure head-to-head: a frozen world whose
/// replica lists are long but — thanks to a background load pushing most
/// hosts over ψ — whose *qualified* pools are short. The uncached path
/// re-resolves and re-prefilters every replica list per request; the
/// cached path replays the memoized pool and recorded DHT cost, so only
/// the (identical) probing work remains. Request streams, pools, and all
/// per-request setup metrics are bit-identical between modes.
fn head_to_head(cli: &Cli) -> HeadToHead {
    let peers = cli.peers.max(if quick_requested() { 800 } else { 1_500 });
    let requests = if quick_requested() { 600 } else { 3_000 };
    let psi = 0.5;
    let mut base = SpiderNet::build(
        &SpiderNetConfig::builder()
            .ip_nodes(peers * 5)
            .peers(peers)
            .seed(cli.seed ^ 0x6c6f6164) // "load"
            .build(),
    );
    // Few functions + several components per peer = long replica lists
    // (the duplicate-function pressure); tiny per-session CPU so probe
    // soft-reservations never stack across ψ on the cold hosts (a ψ
    // crossing is a legitimate cache flush, and this experiment wants a
    // steady world).
    base.populate(&PopulationConfig {
        functions: 4,
        components_per_peer: (3, 5),
        cpu: (0.01, 0.03),
        ..PopulationConfig::default()
    });
    // Bimodal background: ~97% of hosts carry a committed load above ψ.
    base.state_mut().set_shed_watermark(psi);
    let mut loaded = 0usize;
    for p in 0..peers {
        if p % 40 < 39 {
            base.state_mut()
                .commit(&[(PeerId::from(p), ResourceVector::new(0.75, 1.0))], &[])
                .expect("background load fits fresh capacity");
            loaded += 1;
        }
    }

    let bcp = BcpConfig::builder().budget(2).shed_utilization(psi).build();
    let pool = provisioned_functions(base.registry());
    let zipf = ZipfSampler::new(pool.len(), 1.1).expect("non-empty catalog");
    let req_cfg = RequestConfig {
        functions: (3, 4),
        delay_bound_ms: (2_000.0, 2_001.0),
        loss_bound: (0.2, 0.21),
        ..RequestConfig::default()
    };
    let mut rng = rng_for(cli.seed, "loadbench-head-to-head");
    // Requests run between a small set of hot gateways so repeat
    // (source, function) lookups — the thing the memo keys on — dominate.
    let hot: Vec<PeerId> = (0..8).map(|i| PeerId::from(i * (peers / 8))).collect();
    let reqs: Vec<CompositionRequest> = (0..requests)
        .map(|i| {
            let mut req =
                zipf_request(base.overlay(), base.registry(), &pool, &zipf, &req_cfg, &mut rng);
            req.source = hot[i % hot.len()];
            req.dest = hot[(i + 1 + i / hot.len()) % hot.len()];
            if req.dest == req.source {
                req.dest = hot[(i + 1) % hot.len()];
            }
            req
        })
        .collect();

    let mut w_off = base.clone();
    w_off.set_compose_caching(false);
    let mut w_on = base.clone();
    w_on.set_compose_caching(true);

    let off = drive(&mut w_off, &reqs, &bcp);
    let on = drive(&mut w_on, &reqs, &bcp);
    let (hits, misses, invalidations) = w_on.compose_cache_stats();

    let matches = off.admitted == on.admitted
        && off.fingerprint == on.fingerprint
        && off.agg == on.agg;
    let composes = reqs.len() as f64;
    HeadToHead {
        requests: reqs.len() as u64,
        admitted: on.admitted,
        uncached_secs: off.secs,
        cached_secs: on.secs,
        cache_hits: hits,
        cache_misses: misses,
        cache_invalidations: invalidations,
        setup_metrics_match: matches,
        qualified_fraction: 1.0 - loaded as f64 / peers as f64,
        shed_per_compose: on.agg.shed_candidates as f64 / composes,
    }
}

fn cell_block(res: &LoadCellResult, deterministic_only: bool) -> BenchBlock {
    let mut b = BenchBlock::new();
    b.int("arrivals", res.arrivals)
        .int("admitted", res.admitted)
        .int("rejected_admission", res.rejected_admission)
        .int("rejected_qos", res.rejected_qos)
        .int("failed_other", res.failed_other)
        .int("expired", res.expired)
        .int("peak_in_flight", res.peak_in_flight)
        .int("shed_candidates", res.shed_candidates)
        .int("cache_hits", res.cache_hits)
        .int("cache_misses", res.cache_misses)
        .int("cache_invalidations", res.cache_invalidations)
        .num("setup_p50_ms", res.setup_p50_ms)
        .num("setup_p95_ms", res.setup_p95_ms)
        .num("setup_p99_ms", res.setup_p99_ms)
        .num("goodput_per_unit", res.goodput_per_unit)
        .num("rejection_rate", res.rejection_rate)
        .num("cache_hit_rate", cache_hit_rate(res));
    if !deterministic_only {
        b.num("wall_secs", res.wall_secs).num("composes_per_sec", res.composes_per_sec);
    }
    b
}

fn cache_hit_rate(res: &LoadCellResult) -> f64 {
    let total = res.cache_hits + res.cache_misses;
    if total == 0 {
        0.0
    } else {
        res.cache_hits as f64 / total as f64
    }
}

fn cell_key(label: &str) -> String {
    let mut key = String::from("cell_");
    key.extend(label.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }));
    key
}

fn csv(rows: &[(String, LoadCellResult)]) -> String {
    let mut out = String::from(
        "arrivals_spec,arrivals,admitted,rejected_admission,rejected_qos,failed_other,\
         expired,peak_in_flight,shed_candidates,cache_hits,cache_misses,cache_invalidations,\
         setup_p50_ms,setup_p95_ms,setup_p99_ms,goodput_per_unit,rejection_rate\n",
    );
    for (label, r) in rows {
        out.push_str(&format!(
            "{label},{},{},{},{},{},{},{},{},{},{},{},{:.4},{:.4},{:.4},{:.4},{:.4}\n",
            r.arrivals,
            r.admitted,
            r.rejected_admission,
            r.rejected_qos,
            r.failed_other,
            r.expired,
            r.peak_in_flight,
            r.shed_candidates,
            r.cache_hits,
            r.cache_misses,
            r.cache_invalidations,
            r.setup_p50_ms,
            r.setup_p95_ms,
            r.setup_p99_ms,
            r.goodput_per_unit,
            r.rejection_rate,
        ));
    }
    out
}

fn main() {
    let cli = cli();
    let threads = configured_threads();
    eprintln!(
        "loadbench: {} peers, {} units, headline {}, sweep rates {:?}, {} worker threads",
        cli.peers,
        cli.units,
        cli.arrivals.label(),
        cli.rates,
        threads
    );

    // --- offered-load sweep (headline arrivals first, then the rates) ---
    let base = sweep_world(&cli);
    let mut cells: Vec<ArrivalProcess> = vec![cli.arrivals.clone()];
    for &rate in &cli.rates {
        let p = ArrivalProcess::Poisson { rate };
        if p != cli.arrivals {
            cells.push(p);
        }
    }
    let configs: Vec<LoadConfig> = cells.iter().map(|a| sweep_cell(&cli, a.clone())).collect();
    let results = par_map_with(threads, configs, |_, cfg| {
        let label = cfg.arrivals.label();
        (label, run_cell(&base, &cfg))
    });
    for (label, r) in &results {
        eprintln!(
            "loadbench: {label}: {} arrivals, {} admitted (rej {:.3}), p95 setup {:.1} ms, \
             cache {}/{} hit/miss",
            r.arrivals,
            r.admitted,
            r.rejection_rate,
            r.setup_p95_ms,
            r.cache_hits,
            r.cache_misses
        );
    }

    // --- cached vs uncached head-to-head (sequential, for fair timing) --
    let h2h = head_to_head(&cli);
    let uncached_cps = h2h.requests as f64 / h2h.uncached_secs.max(1e-9);
    let cached_cps = h2h.requests as f64 / h2h.cached_secs.max(1e-9);
    let speedup = h2h.uncached_secs / h2h.cached_secs.max(1e-9);
    eprintln!(
        "loadbench: head-to-head: {} composes, uncached {:.0}/s, cached {:.0}/s \
         ({speedup:.1}x), hit rate {:.3}, setup metrics match: {}",
        h2h.requests,
        uncached_cps,
        cached_cps,
        h2h.cache_hits as f64 / (h2h.cache_hits + h2h.cache_misses).max(1) as f64,
        h2h.setup_metrics_match
    );

    if let Some(json_path) = json_spec() {
        let mut rep = BenchReport::new("load");
        rep.int("peers", cli.peers as u64)
            .int("units", cli.units)
            .int("seed", cli.seed)
            .int("threads", threads as u64)
            .str("headline_arrivals", &cells[0].label());
        for (label, r) in &results {
            rep.nested(&cell_key(label), &cell_block(r, false));
        }
        let mut h = BenchBlock::new();
        h.int("requests", h2h.requests)
            .int("admitted", h2h.admitted)
            .num("uncached_secs", h2h.uncached_secs)
            .num("cached_secs", h2h.cached_secs)
            .num("uncached_composes_per_sec", uncached_cps)
            .num("cached_composes_per_sec", cached_cps)
            .num("speedup", speedup)
            .int("cache_hits", h2h.cache_hits)
            .int("cache_misses", h2h.cache_misses)
            .int("cache_invalidations", h2h.cache_invalidations)
            .int("setup_metrics_match", h2h.setup_metrics_match as u64)
            .num("qualified_fraction", h2h.qualified_fraction)
            .num("shed_per_compose", h2h.shed_per_compose);
        rep.nested("head_to_head", &h);
        match rep.write_spec(&json_path) {
            Ok(p) => eprintln!("loadbench: wrote {}", p.display()),
            Err(e) => eprintln!("loadbench: could not write bench report: {e}"),
        }
    }

    if let Some(path) = &cli.results_json {
        // The deterministic subset: model-time fields only, byte-identical
        // across thread counts and processes for a fixed seed.
        let mut rep = BenchReport::new("load_results");
        rep.int("peers", cli.peers as u64).int("units", cli.units).int("seed", cli.seed);
        for (label, r) in &results {
            rep.nested(&cell_key(label), &cell_block(r, true));
        }
        let mut h = BenchBlock::new();
        h.int("requests", h2h.requests)
            .int("admitted", h2h.admitted)
            .int("cache_hits", h2h.cache_hits)
            .int("cache_misses", h2h.cache_misses)
            .int("setup_metrics_match", h2h.setup_metrics_match as u64);
        rep.nested("head_to_head", &h);
        match rep.write_spec(&Some(path.clone())) {
            Ok(p) => eprintln!("loadbench: wrote {}", p.display()),
            Err(e) => eprintln!("loadbench: could not write results json: {e}"),
        }
    }

    if csv_requested() {
        print!("{}", csv(&results));
    }
}
