//! E7 — recovery-latency distribution: proactive backup switching vs
//! reactive re-composition.
//!
//! `cargo run --release -p spidernet-bench --bin latency`

use spidernet_bench::csv_requested;
use spidernet_core::experiments::latency::{run, LatencyConfig};

fn main() {
    let cfg = LatencyConfig::default();
    eprintln!("latency: {} peers, {} sessions, {} units", cfg.peers, cfg.sessions, cfg.duration_units);
    let res = run(&cfg);
    if csv_requested() {
        print!("{}", res.to_csv());
    } else {
        println!("{res}");
    }
}
