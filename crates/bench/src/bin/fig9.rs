//! Regenerates Fig. 9: failure frequency over time with and without
//! proactive recovery under 1%-per-unit churn.
//!
//! `cargo run --release -p spidernet-bench --bin fig9 [--paper] [--csv] [--json [path]] [--trace-json]`
//!
//! `--json [path]` additionally times the harness sequentially and in parallel
//! (the outputs are bit-identical either way) and writes the wall-time /
//! throughput record to `BENCH_fig9.json`. `--trace-json` writes the
//! merged protocol counters (probes, maintenance, switch latencies) to
//! `TRACE_fig9.json`.

use spidernet_bench::{
    csv_requested, json_spec, paper_scale_requested, time_seq_par, trace_json_requested,
    BenchReport,
};
use spidernet_core::experiments::fig9::{run, Fig9Config};
use spidernet_core::workload::PopulationConfig;
use spidernet_sim::metrics::counter;
use spidernet_sim::TraceReport;

fn main() {
    let base = if paper_scale_requested() {
        Fig9Config {
            ip_nodes: 10_000,
            peers: 1_000,
            sessions: 300,
            population: PopulationConfig { functions: 200, ..PopulationConfig::default() },
            ..Fig9Config::default()
        }
    } else {
        Fig9Config::default()
    };
    eprintln!("fig9: {} peers, {} sessions, {} units", base.peers, base.sessions, base.duration_units);
    let res = if let Some(json_path) = json_spec() {
        let (seq, par, threads, out) =
            time_seq_par(|t| run(&Fig9Config { threads: Some(t), ..base.clone() }));
        let mut rep = BenchReport::new("fig9");
        rep.int("trials", 2) // the two recovery arms
            .int("threads", threads as u64)
            .num("sequential_secs", seq)
            .num("parallel_secs", par)
            .num("speedup", seq / par)
            .num("trials_per_sec", 2.0 / par)
            .int("probes", out.total_probes)
            .num("probes_per_sec", out.total_probes as f64 / par)
            // Schema parity with BENCH_fig8.json: fig9 never runs the
            // optimal enumerator, so the phase time is zero and the
            // counters report whatever the cells recorded (zero).
            .num("optimal_phase_secs", 0.0)
            .int("combos_examined", out.metrics.value(counter::COMBOS_EXAMINED))
            .int("combos_pruned", out.metrics.value(counter::COMBOS_PRUNED));
        match rep.write_spec(&json_path) {
            Ok(p) => eprintln!("fig9: wrote {}", p.display()),
            Err(e) => eprintln!("fig9: could not write report: {e}"),
        }
        out
    } else {
        run(&base)
    };
    if trace_json_requested() {
        let mut rep = TraceReport::new("fig9");
        rep.add_registry(&res.metrics);
        match rep.write() {
            Ok(p) => eprintln!("fig9: wrote {}", p.display()),
            Err(e) => eprintln!("fig9: could not write trace report: {e}"),
        }
    }
    if csv_requested() {
        print!("{}", res.to_csv());
    } else {
        println!("{res}");
    }
}
