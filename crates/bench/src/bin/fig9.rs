//! Regenerates Fig. 9: failure frequency over time with and without
//! proactive recovery under 1%-per-unit churn.
//!
//! `cargo run --release -p spidernet-bench --bin fig9 [--paper]`

use spidernet_bench::{csv_requested, paper_scale_requested};
use spidernet_core::experiments::fig9::{run, Fig9Config};
use spidernet_core::workload::PopulationConfig;

fn main() {
    let cfg = if paper_scale_requested() {
        Fig9Config {
            ip_nodes: 10_000,
            peers: 1_000,
            sessions: 300,
            population: PopulationConfig { functions: 200, ..PopulationConfig::default() },
            ..Fig9Config::default()
        }
    } else {
        Fig9Config::default()
    };
    eprintln!("fig9: {} peers, {} sessions, {} units", cfg.peers, cfg.sessions, cfg.duration_units);
    let res = run(&cfg);
    if csv_requested() {
        print!("{}", res.to_csv());
    } else {
        println!("{res}");
    }
}
