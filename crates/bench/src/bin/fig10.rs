//! Regenerates Fig. 10: wide-area session setup time vs function number on
//! the threaded PlanetLab stand-in (102 peers).
//!
//! `cargo run --release -p spidernet-bench --bin fig10 [--paper] [--csv] [--json [path]] [--trace-json]`
//!
//! `--trace-json` writes `TRACE_fig10.json`: probe transmissions per
//! composition session plus cluster trace-ring statistics.
//!
//! Two fault-injection modes replace the setup-time experiment with the
//! deterministic fault lab (same seed ⇒ byte-identical output at any
//! thread count):
//!
//! * `--faults <spec>` replays one fault plan against a standing-session
//!   population — `storm:rate=0.05,units=30,revive=5` or an atom list
//!   like `crash@3:7;revive@8:7;expire@4:16`;
//! * `--churn-sweep` replays one crash storm per churn rate
//!   (`--rates 0.01,0.05` overrides the default grid).
//!
//! Both honor `--csv` / `--json [path]` (`BENCH_fig10.json` gains
//! recovery fields: success rate, switch latency, reactive-BCP count).

use spidernet_bench::{
    arg_value, churn_sweep_requested, csv_requested, json_spec, paper_scale_requested,
    trace_json_requested, BenchReport,
};
use spidernet_core::experiments::faults::{self, ChurnSweepConfig, FaultLabConfig};
use spidernet_runtime::experiments::{run, Fig10Config};
use spidernet_sim::fault::FaultPlan;
use spidernet_sim::TraceReport;

fn fault_lab_config() -> FaultLabConfig {
    let mut cfg = FaultLabConfig::default();
    if paper_scale_requested() {
        cfg.ip_nodes = 1_000;
        cfg.peers = 200;
        cfg.sessions = 100;
    }
    cfg
}

fn run_fault_plan(spec: &str) {
    let cfg = fault_lab_config();
    let plan = match FaultPlan::parse(spec, cfg.seed, cfg.peers as u64) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("fig10: bad --faults spec: {e}");
            std::process::exit(2);
        }
    };
    eprintln!(
        "fig10: fault lab, {} peers, {} sessions, {} actions over {} units",
        cfg.peers,
        cfg.sessions,
        plan.len(),
        plan.horizon()
    );
    let rep = faults::run(&cfg, plan);
    if let Some(json_path) = json_spec() {
        let mut b = BenchReport::new("fig10");
        b.int("crashes", rep.crashes())
            .int("revives", rep.revives())
            .int("hits", rep.hits())
            .int("recovery_switches", rep.switches())
            .int("reactive_bcp", rep.reactive())
            .int("sessions_established", rep.established as u64)
            .int("sessions_surviving", rep.surviving as u64)
            .num("recovery_success_rate", rep.recovery_success_rate())
            .num("mean_switch_ms", rep.mean_switch_ms);
        match b.write_spec(&json_path) {
            Ok(p) => eprintln!("fig10: wrote {}", p.display()),
            Err(e) => eprintln!("fig10: could not write bench report: {e}"),
        }
    }
    if csv_requested() {
        print!("{}", rep.to_csv());
    } else {
        println!("{rep}");
    }
}

fn run_churn_sweep() {
    let mut cfg = ChurnSweepConfig { base: fault_lab_config(), ..ChurnSweepConfig::default() };
    if let Some(spec) = arg_value("--rates") {
        match spec.split(',').map(str::parse::<f64>).collect::<Result<Vec<_>, _>>() {
            Ok(rates) if !rates.is_empty() => cfg.rates = rates,
            _ => {
                eprintln!("fig10: bad --rates list {spec:?}");
                std::process::exit(2);
            }
        }
    }
    eprintln!(
        "fig10: churn sweep over {:?} ({} units per cell, {} peers)",
        cfg.rates, cfg.units, cfg.base.peers
    );
    let res = faults::churn_sweep(&cfg);
    if let Some(json_path) = json_spec() {
        let crashes: u64 = res.rows.iter().map(|r| r.crashes).sum();
        let hits: u64 = res.rows.iter().map(|r| r.hits).sum();
        let switches: u64 = res.rows.iter().map(|r| r.switches).sum();
        let reactive: u64 = res.rows.iter().map(|r| r.reactive).sum();
        let success = if hits == 0 { 1.0 } else { switches as f64 / hits as f64 };
        // Switch-count-weighted mean across cells (cells without switches
        // contribute nothing).
        let weighted: f64 = res.rows.iter().map(|r| r.mean_switch_ms * r.switches as f64).sum();
        let mean_switch_ms = if switches == 0 { 0.0 } else { weighted / switches as f64 };
        let mut b = BenchReport::new("fig10");
        b.int("sweep_cells", res.rows.len() as u64)
            .int("crashes", crashes)
            .int("hits", hits)
            .int("recovery_switches", switches)
            .int("reactive_bcp", reactive)
            .num("recovery_success_rate", success)
            .num("mean_switch_ms", mean_switch_ms);
        match b.write_spec(&json_path) {
            Ok(p) => eprintln!("fig10: wrote {}", p.display()),
            Err(e) => eprintln!("fig10: could not write bench report: {e}"),
        }
    }
    if csv_requested() {
        print!("{}", res.to_csv());
    } else {
        println!("{res}");
    }
}

fn main() {
    if let Some(spec) = arg_value("--faults") {
        run_fault_plan(&spec);
        return;
    }
    if churn_sweep_requested() {
        run_churn_sweep();
        return;
    }
    let mut cfg = Fig10Config::default();
    if paper_scale_requested() {
        cfg.requests_per_point = 100; // ≥500 requests total, as in the paper
    }
    eprintln!(
        "fig10: {} peers, {} requests per function count",
        cfg.cluster.peers, cfg.requests_per_point
    );
    let res = run(&cfg);
    if let Some(json_path) = json_spec() {
        let successes: u64 = res.rows.iter().map(|r| r.successes as u64).sum();
        let attempts: u64 = res.rows.iter().map(|r| r.attempts as u64).sum();
        let probes: u64 = res.session_probes.iter().map(|&(_, p)| p).sum();
        let mut b = BenchReport::new("fig10");
        b.int("points", res.rows.len() as u64)
            .int("attempts", attempts)
            .int("successes", successes)
            .int("probes", probes);
        if let Some(last) = res.rows.last() {
            b.num("max_chain_total_ms", last.total_ms);
        }
        match b.write_spec(&json_path) {
            Ok(p) => eprintln!("fig10: wrote {}", p.display()),
            Err(e) => eprintln!("fig10: could not write bench report: {e}"),
        }
    }
    if trace_json_requested() {
        let mut rep = TraceReport::new("fig10");
        let total: u64 = res.session_probes.iter().map(|&(_, p)| p).sum();
        rep.counter("bcp.probes", total).session_columns(&["bcp.probes"]);
        for &(session, probes) in &res.session_probes {
            rep.session(session, &[probes]);
        }
        let (recorded, buffered, overwritten) = res.trace_stats;
        rep.trace_stats(recorded, buffered, overwritten);
        match rep.write() {
            Ok(p) => eprintln!("fig10: wrote {}", p.display()),
            Err(e) => eprintln!("fig10: could not write trace report: {e}"),
        }
    }
    if csv_requested() {
        print!("{}", res.to_csv());
    } else {
        println!("{res}");
    }
}
