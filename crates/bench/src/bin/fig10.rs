//! Regenerates Fig. 10: wide-area session setup time vs function number on
//! the threaded PlanetLab stand-in (102 peers).
//!
//! `cargo run --release -p spidernet-bench --bin fig10 [--paper] [--csv] [--trace-json]`
//!
//! `--trace-json` writes `TRACE_fig10.json`: probe transmissions per
//! composition session plus cluster trace-ring statistics.

use spidernet_bench::{csv_requested, paper_scale_requested, trace_json_requested};
use spidernet_runtime::experiments::{run, Fig10Config};
use spidernet_sim::TraceReport;

fn main() {
    let mut cfg = Fig10Config::default();
    if paper_scale_requested() {
        cfg.requests_per_point = 100; // ≥500 requests total, as in the paper
    }
    eprintln!(
        "fig10: {} peers, {} requests per function count",
        cfg.cluster.peers, cfg.requests_per_point
    );
    let res = run(&cfg);
    if trace_json_requested() {
        let mut rep = TraceReport::new("fig10");
        let total: u64 = res.session_probes.iter().map(|&(_, p)| p).sum();
        rep.counter("bcp.probes", total).session_columns(&["bcp.probes"]);
        for &(session, probes) in &res.session_probes {
            rep.session(session, &[probes]);
        }
        let (recorded, buffered, overwritten) = res.trace_stats;
        rep.trace_stats(recorded, buffered, overwritten);
        match rep.write() {
            Ok(p) => eprintln!("fig10: wrote {}", p.display()),
            Err(e) => eprintln!("fig10: could not write trace report: {e}"),
        }
    }
    if csv_requested() {
        print!("{}", res.to_csv());
    } else {
        println!("{res}");
    }
}
