//! Regenerates Fig. 10: wide-area session setup time vs function number on
//! the threaded PlanetLab stand-in (102 peers).
//!
//! `cargo run --release -p spidernet-bench --bin fig10 [--paper]`

use spidernet_bench::{csv_requested, paper_scale_requested};
use spidernet_runtime::experiments::{run, Fig10Config};

fn main() {
    let mut cfg = Fig10Config::default();
    if paper_scale_requested() {
        cfg.requests_per_point = 100; // ≥500 requests total, as in the paper
    }
    eprintln!(
        "fig10: {} peers, {} requests per function count",
        cfg.cluster.peers, cfg.requests_per_point
    );
    let res = run(&cfg);
    if csv_requested() {
        print!("{}", res.to_csv());
    } else {
        println!("{res}");
    }
}
