//! Wire-codec throughput bench: encode/decode rates for the message
//! shapes that dominate a live deployment (BCP probes, media frames,
//! DHT replies), plus the streaming `FrameDecoder` fed in small chunks
//! the way a TCP read loop does.
//!
//! ```text
//! cargo run --release --bin wirebench [--csv] [--json [path]]
//! ```
//!
//! `--json [path]` additionally writes `BENCH_wire.json` (or the given
//! path) with per-shape encode/decode MB/s for regression tracking.
//! Each shape reports three encode rates: `encode` (one reused buffer —
//! codec ceiling), `encode_alloc` (fresh `Vec` per frame — what the
//! transports did before the pooled API), and `encode_pooled`
//! ([`BufPool`] get/encode_into/put — what they do now).

use spidernet_bench::{csv_requested, json_spec, BenchBlock, BenchReport};
use spidernet_util::qos::QosVector;
use spidernet_wire::{
    encode_to_vec, BufPool, FrameDecoder, WireMsg, WirePixels, WireProbe, WireReplica,
};
use std::time::Instant;

fn probe_msg() -> WireMsg {
    WireMsg::Probe(WireProbe {
        request: 42,
        source: 1,
        dest: 77,
        chain: vec![0, 1, 2, 3],
        replica_lists: (0..4)
            .map(|f| (0..6).map(|p| WireReplica { peer: p * 17, function: f }).collect())
            .collect(),
        pos: 2,
        path: vec![5, 9],
        budget: 8,
        acc_qos: QosVector::delay_loss(123.5, 0.01),
        at_ms: 456.789,
    })
}

fn frame_msg(side: u32) -> WireMsg {
    let n = (side * side) as usize;
    WireMsg::StreamFrame {
        session: 42,
        path: vec![3, 5, 9],
        functions: vec![0, 1, 2],
        idx: 1,
        dest: 77,
        source: 1,
        orig_w: side,
        orig_h: side,
        frame: WirePixels {
            width: side,
            height: side,
            seq: 7,
            pixels: (0..n).map(|i| (i * 31 % 251) as u8).collect(),
        },
        at_ms: 99.5,
    }
}

fn reply_msg() -> WireMsg {
    WireMsg::DhtReply {
        query: 9,
        metas: (0..8).map(|p| WireReplica { peer: p, function: (p % 6) as u8 }).collect(),
        at_ms: 12.25,
    }
}

struct Row {
    name: &'static str,
    bytes_per_msg: usize,
    encode_mps: f64,
    encode_alloc_mps: f64,
    encode_pooled_mps: f64,
    decode_mps: f64,
    encode_mbs: f64,
    decode_mbs: f64,
}

fn bench(name: &'static str, msg: WireMsg, iters: u32) -> Row {
    let frame = encode_to_vec(&msg);
    let bytes_per_msg = frame.len();

    let mut buf = Vec::with_capacity(bytes_per_msg);
    let t = Instant::now();
    for _ in 0..iters {
        buf.clear();
        spidernet_wire::encode(&msg, &mut buf);
        std::hint::black_box(&buf);
    }
    let enc = t.elapsed().as_secs_f64();

    // Fresh allocation per frame: what the transports did before the
    // pooled encode path.
    let t = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(encode_to_vec(&msg));
    }
    let enc_alloc = t.elapsed().as_secs_f64();

    // The pooled transport path: each frame borrows a recycled buffer
    // and hands it back after the (simulated) write.
    let pool = BufPool::default();
    let t = Instant::now();
    for _ in 0..iters {
        let b = pool.encode(&msg);
        std::hint::black_box(&b);
        pool.put(b);
    }
    let enc_pooled = t.elapsed().as_secs_f64();

    let t = Instant::now();
    for _ in 0..iters {
        let (decoded, used) = spidernet_wire::decode(&frame).expect("self-encoded frame");
        std::hint::black_box((&decoded, used));
    }
    let dec = t.elapsed().as_secs_f64();

    let mb = bytes_per_msg as f64 * iters as f64 / 1e6;
    Row {
        name,
        bytes_per_msg,
        encode_mps: iters as f64 / enc / 1e6,
        encode_alloc_mps: iters as f64 / enc_alloc / 1e6,
        encode_pooled_mps: iters as f64 / enc_pooled / 1e6,
        decode_mps: iters as f64 / dec / 1e6,
        encode_mbs: mb / enc,
        decode_mbs: mb / dec,
    }
}

/// Streams a batch of frames through [`FrameDecoder`] in TCP-sized
/// chunks, returning (frames/s, MB/s).
fn bench_stream_decoder(msg: &WireMsg, frames: u32, chunk: usize) -> (f64, f64) {
    let one = encode_to_vec(msg);
    let mut wire = Vec::with_capacity(one.len() * frames as usize);
    for _ in 0..frames {
        wire.extend_from_slice(&one);
    }
    let t = Instant::now();
    let mut dec = FrameDecoder::new();
    let mut got = 0u32;
    for piece in wire.chunks(chunk) {
        dec.extend(piece);
        while let Ok(Some(frame)) = dec.next_frame() {
            std::hint::black_box(&frame);
            got += 1;
        }
    }
    assert_eq!(got, frames, "stream decoder lost frames");
    let secs = t.elapsed().as_secs_f64();
    (frames as f64 / secs, wire.len() as f64 / 1e6 / secs)
}

fn main() {
    let csv = csv_requested();
    let rows = vec![
        bench("dht_reply", reply_msg(), 400_000),
        bench("bcp_probe", probe_msg(), 200_000),
        bench("frame_8x8", frame_msg(8), 200_000),
        bench("frame_64x64", frame_msg(64), 50_000),
        bench("frame_256x256", frame_msg(256), 5_000),
    ];
    if csv {
        println!("msg,bytes,encode_mmsgs_s,encode_alloc_mmsgs_s,encode_pooled_mmsgs_s,decode_mmsgs_s,encode_mb_s,decode_mb_s");
        for r in &rows {
            println!(
                "{},{},{:.3},{:.3},{:.3},{:.3},{:.1},{:.1}",
                r.name,
                r.bytes_per_msg,
                r.encode_mps,
                r.encode_alloc_mps,
                r.encode_pooled_mps,
                r.decode_mps,
                r.encode_mbs,
                r.decode_mbs
            );
        }
    } else {
        println!("wire codec throughput (single core)");
        println!(
            "{:<14} {:>7} {:>12} {:>12} {:>12} {:>12} {:>10} {:>10}",
            "message", "bytes", "enc Mmsg/s", "alloc Mmsg/s", "pool Mmsg/s", "dec Mmsg/s",
            "enc MB/s", "dec MB/s"
        );
        for r in &rows {
            println!(
                "{:<14} {:>7} {:>12.3} {:>12.3} {:>12.3} {:>12.3} {:>10.1} {:>10.1}",
                r.name,
                r.bytes_per_msg,
                r.encode_mps,
                r.encode_alloc_mps,
                r.encode_pooled_mps,
                r.decode_mps,
                r.encode_mbs,
                r.decode_mbs
            );
        }
    }
    let (fps, mbs) = bench_stream_decoder(&frame_msg(64), 100_000, 16 * 1024);
    if csv {
        println!("stream_decoder_64x64,,,,{mbs:.1},");
        let _ = fps;
    } else {
        println!("\nFrameDecoder over 16 KiB chunks (64x64 frames): {fps:.0} frames/s, {mbs:.1} MB/s");
    }

    if let Some(json_path) = json_spec() {
        let mut rep = BenchReport::new("wire");
        for r in &rows {
            let mut b = BenchBlock::new();
            b.int("bytes_per_msg", r.bytes_per_msg as u64)
                .num("encode_mmsgs_per_sec", r.encode_mps)
                .num("encode_alloc_mmsgs_per_sec", r.encode_alloc_mps)
                .num("encode_pooled_mmsgs_per_sec", r.encode_pooled_mps)
                .num("decode_mmsgs_per_sec", r.decode_mps)
                .num("encode_mb_per_sec", r.encode_mbs)
                .num("decode_mb_per_sec", r.decode_mbs);
            rep.nested(r.name, &b);
        }
        let mut stream = BenchBlock::new();
        stream.num("frames_per_sec", fps).num("decode_mb_per_sec", mbs);
        rep.nested("stream_decoder_64x64", &stream);
        let path = rep.write_spec(&json_path).expect("write BENCH_wire.json");
        println!("wirebench: wrote {}", path.display());
    }
}
