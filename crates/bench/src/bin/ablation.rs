//! Quality ablations: commutation links, probing-quota policy, and
//! trust-aware selection.
//!
//! `cargo run --release -p spidernet-bench --bin ablation`

use spidernet_core::experiments::ablation::{run, AblationConfig};

fn main() {
    let cfg = AblationConfig::default();
    eprintln!("ablation: {} peers, {} requests per arm", cfg.peers, cfg.requests);
    println!("{}", run(&cfg));
}
