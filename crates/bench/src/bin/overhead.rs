//! Regenerates the §6.1 overhead claim: SpiderNet's on-demand probing vs
//! the centralized scheme's periodic global-state maintenance.
//!
//! `cargo run --release -p spidernet-bench --bin overhead [--paper]`

use spidernet_bench::{csv_requested, paper_scale_requested};
use spidernet_core::experiments::overhead::{run, OverheadConfig};

fn main() {
    let cfg = if paper_scale_requested() {
        OverheadConfig { ip_nodes: 10_000, peers: 1_000, duration_units: 500, ..OverheadConfig::default() }
    } else {
        OverheadConfig::default()
    };
    eprintln!("overhead: {} peers, {} units", cfg.peers, cfg.duration_units);
    let res = run(&cfg);
    if csv_requested() {
        print!("{}", res.to_csv());
    } else {
        println!("{res}");
    }
}
