//! Regenerates the §6.1 overhead claim: SpiderNet's on-demand probing vs
//! the centralized scheme's periodic global-state maintenance.
//!
//! `cargo run --release -p spidernet-bench --bin overhead [--paper] [--csv] [--trace-json]`
//!
//! `--trace-json` writes `TRACE_overhead.json`: the per-protocol message
//! counters and the probes each composition session spent.

use spidernet_bench::{csv_requested, paper_scale_requested, trace_json_requested};
use spidernet_core::experiments::overhead::{run, OverheadConfig};
use spidernet_sim::TraceReport;

fn main() {
    let cfg = if paper_scale_requested() {
        OverheadConfig { ip_nodes: 10_000, peers: 1_000, duration_units: 500, ..OverheadConfig::default() }
    } else {
        OverheadConfig::default()
    };
    eprintln!("overhead: {} peers, {} units", cfg.peers, cfg.duration_units);
    let res = run(&cfg);
    if trace_json_requested() {
        let mut rep = TraceReport::new("overhead");
        rep.counter("bcp.probes", res.probe_messages)
            .counter("dht.messages", res.dht_messages)
            .counter("recovery.maintenance", res.maintenance_messages)
            .counter("session.control", res.control_messages)
            .counter("centralized.state_updates", res.centralized_total)
            .session_columns(&["bcp.probes"]);
        for &(session, probes) in &res.session_probes {
            rep.session(session, &[probes]);
        }
        match rep.write() {
            Ok(p) => eprintln!("overhead: wrote {}", p.display()),
            Err(e) => eprintln!("overhead: could not write trace report: {e}"),
        }
    }
    if csv_requested() {
        print!("{}", res.to_csv());
    } else {
        println!("{res}");
    }
}
