//! Protocol model checker: explores delivery interleavings of the real
//! `PeerNode` protocol engine under a fault adversary, plus a soft-state
//! ledger model and the version-negotiation lattice.
//!
//! `cargo run --release -p spidernet-bench --bin mcheck -- \
//!    [--peers N] [--depth D] [--walks W] [--seed S] [--json [path]] \
//!    [--timing]`
//!
//! Six phases, all deterministic for a fixed seed:
//!
//! 1. `setup_reorder` — bounded BFS over session composition with
//!    arbitrary message reordering (no loss). Every terminal state must
//!    have completed request 1, and all terminals must agree on one
//!    outcome digest.
//! 2. `setup_lossy` — the same composition under a drop + duplicate
//!    budget; completion is only required on lossless executions.
//! 3. `stream_walks` — seeded random walks over an established stream
//!    (maintenance probing + primary crash + timer races), exercising
//!    the failover state machine.
//! 4. `soft_ledger` — BFS over `OverlayState` soft reservations
//!    (allocate / release / expiry sweep / crash / revive) checking
//!    exact ledger-vs-reservation accounting after every step.
//! 5. `flow_order` — BFS over stream commit/release orderings in the
//!    shared-bandwidth flow model, re-checking the fair-share
//!    invariants and the soft ledger after every step; all terminals
//!    must agree on one bitwise fair-share outcome.
//! 6. `negotiate` — the exhaustive version-negotiation matrix
//!    (symmetry, highest-common pick, `None` iff disjoint).
//!
//! `BENCH_mc.json` (`--json`) carries per-phase counters and the
//! roll-up (states explored, dedup hit rate, violations). The file is
//! byte-identical across runs and across `SPIDERNET_THREADS` settings;
//! wall-clock throughput (`states_per_sec`) is only included with
//! `--timing`, which trades that reproducibility for the measurement.
//! Any violation also writes `MC_VIOLATIONS_<phase>.json` with
//! minimized replayable schedules.

use spidernet_bench::{arg_value, flag_present, json_spec, BenchBlock, BenchReport};
use spidernet_core::state::{OverlayState, SoftToken};
use spidernet_runtime::mc::{CheckedWorld, McScenario, NetModel};
use spidernet_sim::mc::{explore, random_walks, violations_to_json, ModelSystem};
use spidernet_sim::{McConfig, McReport, SimTime, TraceBuffer};
use spidernet_topology::overlay::{GeoConfig, Overlay};
use spidernet_util::id::PeerId;
use spidernet_util::res::ResourceVector;
use spidernet_wire::negotiate;

// ---------------------------------------------------------------------
// Soft-ledger model: OverlayState reservations under churn
// ---------------------------------------------------------------------

/// splitmix64-style combiner (same shape the runtime digests use).
fn mix(h: u64, v: u64) -> u64 {
    let mut x = h ^ v.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Ghost copy of one issued reservation: what the model believes the
/// arena holds, maintained action by action and reconciled against the
/// real [`OverlayState`] in `check`.
#[derive(Clone)]
struct GhostToken {
    token: SoftToken,
    peer: PeerId,
    expires: SimTime,
    live: bool,
}

/// Per-reservation resources (small enough that the budgeted allocs
/// always fit a live peer).
const LEDGER_RES: ResourceVector = ResourceVector::new(0.125, 8.0);
/// Reservation TTL, model ms.
const LEDGER_TTL_MS: f64 = 50.0;
/// Clock step per `Advance` action, model ms (two steps cross a TTL).
const LEDGER_STEP_MS: f64 = 30.0;

/// The soft-state ledger as a [`ModelSystem`]: every interleaving of
/// allocate / release / expiry-sweep / crash / revive over a small peer
/// set, with `verify_soft_accounting` (ledger == sum of live
/// reservations) checked after every action.
#[derive(Clone)]
struct SoftLedger {
    state: OverlayState,
    n_peers: u64,
    now: SimTime,
    tokens: Vec<GhostToken>,
    allocs_left: u32,
    crashes_left: u32,
    /// First model-vs-state divergence (a real bug if ever set).
    violation: Option<String>,
}

#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum LedgerAction {
    /// Soft-allocate on a peer.
    Alloc(u64),
    /// Explicitly release token #i.
    Release(usize),
    /// Advance the clock one step and run the expiry sweep.
    Advance,
    /// Fail a peer (books intentionally left alone).
    Crash(u64),
    /// Revive a peer (clean slate: its entries and ledger drop together).
    Revive(u64),
}

impl SoftLedger {
    fn new(peers: usize, seed: u64) -> SoftLedger {
        let ov = Overlay::build_geo(&GeoConfig { peers, ..GeoConfig::default() }, seed);
        SoftLedger {
            state: OverlayState::new(&ov, ResourceVector::new(1.0, 256.0)),
            n_peers: peers as u64,
            now: SimTime::ZERO,
            tokens: Vec::new(),
            allocs_left: 3,
            crashes_left: 1,
            violation: None,
        }
    }

    fn peers(&self) -> u64 {
        self.n_peers
    }

    fn dead_peers(&self) -> Vec<PeerId> {
        (0..self.n_peers).map(PeerId::new).filter(|&p| !self.state.is_alive(p)).collect()
    }
}

impl ModelSystem for SoftLedger {
    type Action = LedgerAction;

    fn enabled(&self) -> Vec<LedgerAction> {
        let mut acts = Vec::new();
        let n = self.peers();
        if self.allocs_left > 0 {
            for p in 0..n {
                let peer = PeerId::new(p);
                if self.state.is_alive(peer) && LEDGER_RES.fits_within(&self.state.available(peer))
                {
                    acts.push(LedgerAction::Alloc(p));
                }
            }
        }
        for (i, g) in self.tokens.iter().enumerate() {
            if g.live {
                acts.push(LedgerAction::Release(i));
            }
        }
        if self.tokens.iter().any(|g| g.live) {
            acts.push(LedgerAction::Advance);
        }
        if self.crashes_left > 0 {
            for p in 0..n {
                if self.state.is_alive(PeerId::new(p)) {
                    acts.push(LedgerAction::Crash(p));
                }
            }
        }
        for p in self.dead_peers() {
            acts.push(LedgerAction::Revive(p.raw()));
        }
        acts
    }

    fn apply(&mut self, action: &LedgerAction) -> bool {
        let mut trace = TraceBuffer::new();
        match *action {
            LedgerAction::Alloc(p) => {
                if self.allocs_left == 0 {
                    return false;
                }
                let expires = self.now + spidernet_sim::time::SimDuration::from_ms(LEDGER_TTL_MS);
                match self.state.soft_allocate(PeerId::new(p), LEDGER_RES, expires, &mut trace) {
                    Ok(token) => {
                        self.allocs_left -= 1;
                        self.tokens.push(GhostToken {
                            token,
                            peer: PeerId::new(p),
                            expires,
                            live: true,
                        });
                        true
                    }
                    Err(_) => false,
                }
            }
            LedgerAction::Release(i) => {
                let Some(g) = self.tokens.get(i).cloned() else { return false };
                if !g.live {
                    return false;
                }
                let credited = self.state.release_soft(g.token, &mut trace);
                if !credited {
                    self.violation = Some(format!(
                        "release of live token #{i} on {:?} credited nothing",
                        g.peer
                    ));
                }
                self.tokens[i].live = false;
                true
            }
            LedgerAction::Advance => {
                self.now += spidernet_sim::time::SimDuration::from_ms(LEDGER_STEP_MS);
                let swept = self.state.expire_soft(self.now, &mut trace);
                let mut expected = 0usize;
                for g in self.tokens.iter_mut() {
                    if g.live && g.expires <= self.now {
                        g.live = false;
                        expected += 1;
                    }
                }
                if swept != expected {
                    self.violation = Some(format!(
                        "expiry sweep at {:?} reclaimed {swept} reservations, model expected \
                         {expected}",
                        self.now
                    ));
                }
                true
            }
            LedgerAction::Crash(p) => {
                if self.crashes_left == 0 || !self.state.is_alive(PeerId::new(p)) {
                    return false;
                }
                self.crashes_left -= 1;
                // Books intentionally left alone: unexpired reservations
                // on a dead peer stay in the arena until swept/revived.
                self.state.fail_peer(PeerId::new(p));
                true
            }
            LedgerAction::Revive(p) => {
                if self.state.is_alive(PeerId::new(p)) {
                    return false;
                }
                self.state.revive_peer(PeerId::new(p));
                for g in self.tokens.iter_mut() {
                    if g.peer == PeerId::new(p) {
                        g.live = false; // clean slate dropped its entries
                    }
                }
                true
            }
        }
    }

    fn digest(&self) -> u64 {
        let mut h = mix(0x50F7, self.now.as_micros());
        for p in 0..self.peers() {
            let peer = PeerId::new(p);
            let load = self.state.soft_load(peer);
            h = mix(h, load.cpu().to_bits());
            h = mix(h, load.memory().to_bits());
            h = mix(h, u64::from(self.state.is_alive(peer)));
        }
        for g in &self.tokens {
            h = mix(h, mix(g.peer.raw(), mix(g.expires.as_micros(), u64::from(g.live))));
        }
        h = mix(h, u64::from(self.allocs_left));
        h = mix(h, u64::from(self.crashes_left));
        mix(h, u64::from(self.violation.is_some()))
    }

    fn check(&self) -> Result<(), String> {
        if let Some(v) = &self.violation {
            return Err(v.clone());
        }
        self.state.verify_soft_accounting()?;
        let ghost_live = self.tokens.iter().filter(|g| g.live).count();
        if ghost_live != self.state.soft_count() {
            return Err(format!(
                "arena holds {} reservations, model says {ghost_live} are live",
                self.state.soft_count()
            ));
        }
        Ok(())
    }

    fn check_terminal(&self) -> Result<(), String> {
        // Terminal means every token is dead: the ledger must be fully
        // credited back on every peer.
        for p in 0..self.peers() {
            let load = self.state.soft_load(PeerId::new(p));
            if load.cpu().abs() > 1e-9 || load.memory().abs() > 1e-9 {
                return Err(format!("terminal state leaks soft load {load:?} on peer {p}"));
            }
        }
        Ok(())
    }

    fn outcome(&self) -> u64 {
        mix(0xD00E, self.tokens.len() as u64)
    }

    fn encode(&self, action: &LedgerAction) -> String {
        match *action {
            LedgerAction::Alloc(p) => format!("alloc:p{p}"),
            LedgerAction::Release(i) => format!("release:#{i}"),
            LedgerAction::Advance => "advance".to_owned(),
            LedgerAction::Crash(p) => format!("crash:p{p}"),
            LedgerAction::Revive(p) => format!("revive:p{p}"),
        }
    }
}

// ---------------------------------------------------------------------
// Flow-order model: fair-share bookkeeping under commit/release orderings
// ---------------------------------------------------------------------

/// Per-stream CPU+memory demand (small enough that every commit fits).
const FLOW_RES: ResourceVector = ResourceVector::new(0.1, 4.0);
/// Per-stream bandwidth demand, Mbps — sized so two streams sharing an
/// access pipe (20–110 Mbps) usually contend.
const FLOW_BW: f64 = 30.0;

/// Stream menu: `(source, dest)` routes over the geo overlay. Streams 0
/// and 1 share peer 0's access pipe; stream 2 shares peer 1 with stream
/// 0's sink. Stream 0 is torn down again before a terminal state.
const FLOW_STREAMS: [(u64, u64); 3] = [(0, 1), (0, 2), (1, 3)];
/// Which streams the adversary must release again (by index).
const FLOW_RELEASES: [bool; 3] = [true, false, false];

/// The shared-bandwidth flow model as a [`ModelSystem`]: a small geo
/// overlay in flow mode, every interleaving of stream commits and
/// releases (plus soft-reservation noise), with the soft ledger and the
/// fair-share invariants (rates within demand, links within capacity)
/// re-checked after every action. Every terminal state holds the same
/// live stream set, so a single terminal outcome digest pins the
/// fair-share computation as add/remove-order independent.
#[derive(Clone)]
struct FlowOrder {
    state: OverlayState,
    now: SimTime,
    committed: Vec<Option<spidernet_core::state::SessionAllocation>>,
    released: Vec<bool>,
    /// Bitwise delivered fraction per live stream, refreshed after every
    /// action (digest/outcome are `&self`, the lazy rates need `&mut`).
    delivered: Vec<u64>,
    soft: Vec<(SoftToken, bool)>,
    soft_left: u32,
    violation: Option<String>,
}

#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum FlowAction {
    /// Commit stream #i (its flows join the fair-share computation).
    Commit(usize),
    /// Release committed stream #i (its flows leave).
    Release(usize),
    /// Soft-allocate probe state on peer 0.
    SoftAlloc,
    /// Release soft token #i.
    SoftFree(usize),
}

impl FlowOrder {
    fn new(seed: u64) -> FlowOrder {
        let ov = Overlay::build_geo(&GeoConfig { peers: 4, ..GeoConfig::default() }, seed);
        let mut state = OverlayState::new(&ov, ResourceVector::new(1.0, 256.0));
        state.enable_flow_model();
        FlowOrder {
            state,
            now: SimTime::ZERO,
            committed: vec![None; FLOW_STREAMS.len()],
            released: vec![false; FLOW_STREAMS.len()],
            delivered: vec![u64::MAX; FLOW_STREAMS.len()],
            soft: Vec::new(),
            soft_left: 2,
            violation: None,
        }
    }

    /// Refreshes cached delivered fractions and re-checks the fair-share
    /// invariants (called after every action while `&mut` is available).
    fn settle(&mut self) {
        if let Err(e) = self.state.verify_flow_invariants() {
            self.violation.get_or_insert(format!("flow invariants: {e}"));
        }
        for (i, alloc) in self.committed.iter().enumerate() {
            self.delivered[i] = match alloc {
                Some(a) if !self.released[i] => {
                    let f = self.state.delivered_fraction(a);
                    if !(0.0..=1.0).contains(&f) {
                        self.violation
                            .get_or_insert(format!("stream {i} delivered fraction {f} out of range"));
                    }
                    f.to_bits()
                }
                _ => u64::MAX,
            };
        }
        let live_flows: usize = self
            .committed
            .iter()
            .zip(&self.released)
            .filter_map(|(a, &r)| a.as_ref().filter(|_| !r))
            .map(|a| a.flows.len())
            .sum();
        if live_flows != self.state.flow_count() {
            self.violation.get_or_insert(format!(
                "flow book holds {} flows, model says {live_flows} are live",
                self.state.flow_count()
            ));
        }
    }
}

impl ModelSystem for FlowOrder {
    type Action = FlowAction;

    fn enabled(&self) -> Vec<FlowAction> {
        let mut acts = Vec::new();
        for (i, &must_release) in FLOW_RELEASES.iter().enumerate() {
            if self.committed[i].is_none() {
                acts.push(FlowAction::Commit(i));
            } else if must_release && !self.released[i] {
                acts.push(FlowAction::Release(i));
            }
        }
        if self.soft_left > 0 {
            acts.push(FlowAction::SoftAlloc);
        }
        for (i, &(_, live)) in self.soft.iter().enumerate() {
            if live {
                acts.push(FlowAction::SoftFree(i));
            }
        }
        acts
    }

    fn apply(&mut self, action: &FlowAction) -> bool {
        let mut trace = TraceBuffer::new();
        let ok = match *action {
            FlowAction::Commit(i) => {
                if self.committed[i].is_some() {
                    return false;
                }
                let (s, d) = FLOW_STREAMS[i];
                let route = vec![PeerId::new(s), PeerId::new(d)];
                match self
                    .state
                    .commit(&[(PeerId::new(d), FLOW_RES)], &[(route, FLOW_BW)])
                {
                    Ok(alloc) => {
                        self.committed[i] = Some(alloc);
                        true
                    }
                    Err(e) => {
                        // Flow mode never gates on bandwidth and the CPU
                        // budget always fits; a rejection is a model bug.
                        self.violation.get_or_insert(format!("commit of stream {i} failed: {e}"));
                        true
                    }
                }
            }
            FlowAction::Release(i) => {
                let Some(alloc) = self.committed[i].clone() else { return false };
                if self.released[i] || !FLOW_RELEASES[i] {
                    return false;
                }
                self.state.release(&alloc);
                self.released[i] = true;
                true
            }
            FlowAction::SoftAlloc => {
                if self.soft_left == 0 {
                    return false;
                }
                self.soft_left -= 1;
                let expires = self.now + spidernet_sim::time::SimDuration::from_ms(1_000.0);
                match self.state.soft_allocate(PeerId::new(0), LEDGER_RES, expires, &mut trace) {
                    Ok(t) => {
                        self.soft.push((t, true));
                        true
                    }
                    Err(_) => false,
                }
            }
            FlowAction::SoftFree(i) => {
                let Some(&(t, live)) = self.soft.get(i) else { return false };
                if !live {
                    return false;
                }
                if !self.state.release_soft(t, &mut trace) {
                    self.violation
                        .get_or_insert(format!("release of live soft token #{i} credited nothing"));
                }
                self.soft[i].1 = false;
                true
            }
        };
        if ok {
            self.settle();
        }
        ok
    }

    fn digest(&self) -> u64 {
        let mut h = mix(0xF10D, self.soft_left.into());
        for (i, alloc) in self.committed.iter().enumerate() {
            h = mix(h, u64::from(alloc.is_some()));
            h = mix(h, u64::from(self.released[i]));
            h = mix(h, self.delivered[i]);
        }
        for &(_, live) in &self.soft {
            h = mix(h, u64::from(live));
        }
        mix(h, u64::from(self.violation.is_some()))
    }

    fn check(&self) -> Result<(), String> {
        if let Some(v) = &self.violation {
            return Err(v.clone());
        }
        self.state.verify_soft_accounting()
    }

    fn check_terminal(&self) -> Result<(), String> {
        // Terminal: all streams committed, flagged releases done, soft
        // tokens drained. The flow book must hold exactly the survivors.
        let live: usize = FLOW_RELEASES.iter().filter(|&&r| !r).count();
        if self.state.flow_count() != live {
            return Err(format!(
                "terminal flow book holds {} flows, expected {live}",
                self.state.flow_count()
            ));
        }
        Ok(())
    }

    fn outcome(&self) -> u64 {
        // Digest the survivors' delivered fractions bit-for-bit: every
        // commit/release interleaving must land on this exact value.
        let mut h = 0xFA1E_u64;
        for (i, &bits) in self.delivered.iter().enumerate() {
            if self.committed[i].is_some() && !self.released[i] {
                h = mix(h, bits);
            }
        }
        h
    }

    fn encode(&self, action: &FlowAction) -> String {
        match *action {
            FlowAction::Commit(i) => format!("commit:s{i}"),
            FlowAction::Release(i) => format!("release:s{i}"),
            FlowAction::SoftAlloc => "soft-alloc".to_owned(),
            FlowAction::SoftFree(i) => format!("soft-free:#{i}"),
        }
    }
}

// ---------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------

struct Cli {
    peers: usize,
    depth: usize,
    walks: u64,
    seed: u64,
    timing: bool,
}

fn cli() -> Cli {
    let peers = arg_value("--peers").and_then(|v| v.parse().ok()).unwrap_or(4);
    if peers < 4 {
        eprintln!("mcheck: --peers must be >= 4 (source, dest, two hosts)");
        std::process::exit(2);
    }
    Cli {
        peers,
        depth: arg_value("--depth").and_then(|v| v.parse().ok()).unwrap_or(8),
        walks: arg_value("--walks").and_then(|v| v.parse().ok()).unwrap_or(6),
        seed: arg_value("--seed").and_then(|v| v.parse().ok()).unwrap_or(42),
        timing: flag_present("--timing"),
    }
}

/// Runs one phase, prints its counters, files violations, and folds the
/// report into the totals.
fn phase(
    name: &str,
    rep: McReport,
    report: &mut BenchReport,
    totals: &mut spidernet_sim::McStats,
    violations_total: &mut usize,
    outcome_sets: &mut Vec<(String, usize)>,
) {
    let s = &rep.stats;
    println!(
        "  {name}: {} states, {} transitions, {:.1}% dedup, {} terminal, {} outcome(s), {} \
         violation(s){}",
        s.states_explored,
        s.transitions,
        100.0 * s.dedup_hit_rate(),
        s.terminal_states,
        rep.terminal_outcomes.len(),
        rep.violations.len(),
        if s.truncated { " [truncated]" } else { "" },
    );
    let mut block = BenchBlock::new();
    block
        .int("states_explored", s.states_explored)
        .int("transitions", s.transitions)
        .int("dedup_hits", s.dedup_hits)
        .num("dedup_hit_rate", s.dedup_hit_rate())
        .int("terminal_states", s.terminal_states)
        .int("terminal_outcomes", rep.terminal_outcomes.len() as u64)
        .int("truncated", u64::from(s.truncated))
        .int("violations", rep.violations.len() as u64);
    report.nested(name, &block);
    totals.merge(s);
    *violations_total += rep.violations.len();
    outcome_sets.push((name.to_owned(), rep.terminal_outcomes.len()));
    if !rep.violations.is_empty() {
        let path = format!("MC_VIOLATIONS_{name}.json");
        let json = violations_to_json(name, &rep.violations);
        if std::fs::write(&path, &json).is_ok() {
            eprintln!("  {name}: wrote {} minimized schedule(s) to {path}", rep.violations.len());
        }
        for v in &rep.violations {
            eprintln!("    VIOLATION: {} (schedule: {:?})", v.error, v.schedule);
        }
    }
}

fn main() {
    let cli = cli();
    let t0 = std::time::Instant::now();
    println!(
        "mcheck: peers={} depth={} walks={} seed={}",
        cli.peers, cli.depth, cli.walks, cli.seed
    );

    let mut report = BenchReport::new("mc");
    report
        .int("peers", cli.peers as u64)
        .int("depth", cli.depth as u64)
        .int("walks", cli.walks)
        .int("seed", cli.seed);

    let mut totals = spidernet_sim::McStats::default();
    let mut violations = 0usize;
    let mut outcome_sets: Vec<(String, usize)> = Vec::new();

    // Phase 1: composition under pure reordering.
    let mut scen = McScenario::setup(NetModel::reorder_only());
    scen.peers = cli.peers;
    scen.seed = cli.seed;
    let cfg = McConfig { depth: cli.depth, seed: cli.seed, ..McConfig::default() };
    let root = CheckedWorld::new(scen);
    phase(
        "setup_reorder",
        explore(|| root.clone(), &cfg),
        &mut report,
        &mut totals,
        &mut violations,
        &mut outcome_sets,
    );

    // Phase 2: composition under drop + duplicate budgets.
    let mut scen = McScenario::setup(NetModel::lossy(1, 1));
    scen.peers = cli.peers;
    scen.seed = cli.seed;
    let root = CheckedWorld::new(scen);
    phase(
        "setup_lossy",
        explore(|| root.clone(), &cfg),
        &mut report,
        &mut totals,
        &mut violations,
        &mut outcome_sets,
    );

    // Phase 3: streaming failover under the full adversary, random walks.
    let walk_cfg = McConfig {
        walks: cli.walks,
        walk_steps: 2_000,
        seed: cli.seed,
        ..McConfig::default()
    };
    let root = CheckedWorld::new(McScenario::stream(NetModel::full(1, 1, 1)));
    phase(
        "stream_walks",
        random_walks(|| root.clone(), &walk_cfg),
        &mut report,
        &mut totals,
        &mut violations,
        &mut outcome_sets,
    );

    // Phase 4: the soft-state ledger under churn.
    let root = SoftLedger::new(cli.peers, cli.seed);
    phase(
        "soft_ledger",
        explore(|| root.clone(), &cfg),
        &mut report,
        &mut totals,
        &mut violations,
        &mut outcome_sets,
    );

    // Phase 5: commit/release orderings under the shared-bandwidth model.
    let root = FlowOrder::new(cli.seed);
    phase(
        "flow_order",
        explore(|| root.clone(), &cfg),
        &mut report,
        &mut totals,
        &mut violations,
        &mut outcome_sets,
    );

    // Phase 6: the negotiation lattice, exhaustively.
    let mut pairs = 0u64;
    let mut negotiate_bad = 0u64;
    for a_lo in 0..=4u16 {
        for a_hi in 0..=4u16 {
            for b_lo in 0..=4u16 {
                for b_hi in 0..=4u16 {
                    pairs += 1;
                    let got = negotiate((a_lo, a_hi), (b_lo, b_hi));
                    let want = (0..=4u16)
                        .rfind(|v| a_lo <= *v && *v <= a_hi && b_lo <= *v && *v <= b_hi);
                    if got != want || got != negotiate((b_lo, b_hi), (a_lo, a_hi)) {
                        negotiate_bad += 1;
                    }
                }
            }
        }
    }
    println!("  negotiate: {pairs} pairs, {negotiate_bad} mismatches");
    let mut block = BenchBlock::new();
    block.int("pairs", pairs).int("mismatches", negotiate_bad);
    report.nested("negotiate", &block);
    violations += negotiate_bad as usize;

    // Determinism pin: reordering alone must not change what the
    // application observes.
    let setup_outcomes = outcome_sets
        .iter()
        .find(|(n, _)| n == "setup_reorder")
        .map(|&(_, c)| c)
        .unwrap_or(0);
    if setup_outcomes > 1 {
        eprintln!("  WARNING: setup_reorder observed {setup_outcomes} distinct outcomes");
        violations += 1;
    }

    // Order-independence pin: every commit/release interleaving must
    // settle on bit-identical fair shares.
    let flow_outcomes = outcome_sets
        .iter()
        .find(|(n, _)| n == "flow_order")
        .map(|&(_, c)| c)
        .unwrap_or(0);
    if flow_outcomes > 1 {
        eprintln!("  WARNING: flow_order observed {flow_outcomes} distinct outcomes");
        violations += 1;
    }

    report
        .int("states_explored", totals.states_explored)
        .int("transitions", totals.transitions)
        .int("dedup_hits", totals.dedup_hits)
        .num("dedup_hit_rate", totals.dedup_hit_rate())
        .int("terminal_states", totals.terminal_states)
        .int("violations", violations as u64);
    if cli.timing {
        let wall = t0.elapsed().as_secs_f64();
        report.num("wall_s", wall).num("states_per_sec", totals.states_explored as f64 / wall);
    }
    println!(
        "mcheck: {} states total, {:.1}% dedup, {} violation(s)",
        totals.states_explored,
        100.0 * totals.dedup_hit_rate(),
        violations
    );
    if let Some(spec) = json_spec() {
        match report.write_spec(&spec) {
            Ok(p) => println!("mcheck: wrote {}", p.display()),
            Err(e) => eprintln!("mcheck: failed to write report: {e}"),
        }
    }
    if violations > 0 {
        std::process::exit(1);
    }
}
