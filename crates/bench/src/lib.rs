//! Shared scaffolding for the SpiderNet benchmark harness.
//!
//! The `fig8`/`fig9`/`fig10`/`fig11`/`overhead` binaries regenerate the
//! paper's figures (run with `--paper` for the full-size configuration);
//! the criterion benches in `benches/` time miniaturized versions of the
//! same drivers plus ablations of the design choices called out in
//! DESIGN.md.
//!
//! The report/CLI vocabulary ([`BenchReport`], [`BenchBlock`],
//! [`peak_rss_bytes`], [`arg_value`], [`json_spec`]) lives in
//! `spidernet-util` so non-bench binaries (`spidernet-node deploy`) can
//! emit `BENCH_<name>.json` through the same API; it is re-exported here
//! for existing call sites.

#![warn(missing_docs)]

use spidernet_core::bcp::BcpConfig;
use spidernet_core::system::{SpiderNet, SpiderNetConfig};
use spidernet_core::workload::{PopulationConfig, RequestConfig};

pub use spidernet_util::bench::{peak_rss_bytes, peak_rss_bytes_for, BenchBlock, BenchReport};
pub use spidernet_util::cli::{arg_value, arg_value_in, flag_present, json_spec, json_spec_in};

/// True if the CLI was invoked with `--paper` (full-scale experiment).
pub fn paper_scale_requested() -> bool {
    flag_present("--paper")
}

/// True if the CLI was invoked with `--csv` (machine-readable output).
pub fn csv_requested() -> bool {
    flag_present("--csv")
}

/// True if the CLI was invoked with `--quick` (CI smoke configuration:
/// a miniature grid that still exercises every field of the bench
/// report, finishing in seconds).
pub fn quick_requested() -> bool {
    flag_present("--quick")
}

/// True if the CLI was invoked with `--json` in any spelling, bare or
/// pathed. Prefer [`json_spec`] + `BenchReport::write_spec`, which also
/// honor an explicit output path; this remains for call sites that only
/// gate work on the flag's presence.
pub fn json_requested() -> bool {
    json_spec().is_some()
}

/// True if the CLI was invoked with `--trace-json` (write a
/// `TRACE_<fig>.json` observability report — merged protocol counters,
/// DAG-shape histograms, and per-session probe rows — alongside the
/// figure output).
pub fn trace_json_requested() -> bool {
    flag_present("--trace-json")
}

/// True if the CLI was invoked with `--churn-sweep` (fig10: sweep crash
/// rates through the deterministic fault lab instead of the threaded
/// setup-time experiment).
pub fn churn_sweep_requested() -> bool {
    flag_present("--churn-sweep")
}

/// Times one figure driver sequentially (1 worker thread) and again at the
/// environment's thread count; returns
/// `(sequential_secs, parallel_secs, threads, parallel_result)`.
///
/// The harness is deterministic by construction, so both runs produce the
/// same figure and only the parallel result is kept.
pub fn time_seq_par<T>(mut run_with_threads: impl FnMut(usize) -> T) -> (f64, f64, usize, T) {
    let threads = spidernet_util::par::configured_threads();
    let t0 = std::time::Instant::now();
    drop(run_with_threads(1));
    let sequential = t0.elapsed().as_secs_f64();
    let t1 = std::time::Instant::now();
    let out = run_with_threads(threads);
    let parallel = t1.elapsed().as_secs_f64();
    (sequential, parallel, threads, out)
}

/// A small, fast world shared by micro-benchmarks: 60 peers over a
/// 300-node IP network, 12 functions.
pub fn bench_world(seed: u64) -> SpiderNet {
    let mut net =
        SpiderNet::build(&SpiderNetConfig::builder().ip_nodes(300).peers(60).seed(seed).build());
    net.populate(&PopulationConfig { functions: 12, ..PopulationConfig::default() });
    net
}

/// A permissive request template for micro-benchmarks.
pub fn bench_request_config() -> RequestConfig {
    RequestConfig {
        functions: (3, 3),
        delay_bound_ms: (5_000.0, 5_001.0),
        loss_bound: (0.3, 0.31),
        ..RequestConfig::default()
    }
}

/// The default BCP config micro-benchmarks use.
pub fn bench_bcp() -> BcpConfig {
    BcpConfig::builder().budget(16).build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spidernet_core::workload::random_request;
    use spidernet_util::rng::rng_for;

    #[test]
    fn report_api_is_reexported_from_util() {
        // The canonical definitions moved to spidernet-util; this pins the
        // re-export so existing `spidernet_bench::BenchReport` call sites
        // keep compiling.
        let mut rep = BenchReport::new("reexport");
        rep.int("x", 1);
        assert!(rep.to_json().contains("\"figure\": \"reexport\""));
        assert!(peak_rss_bytes().is_some());
        let args = vec!["fig8".to_string(), "--seed=7".to_string()];
        assert_eq!(arg_value_in(&args, "--seed").as_deref(), Some("7"));
    }

    #[test]
    fn bench_world_composes() {
        let mut net = bench_world(1);
        let mut rng = rng_for(1, "bench-lib");
        let req = random_request(net.overlay(), net.registry(), &bench_request_config(), &mut rng);
        assert!(net.compose(&req, &bench_bcp()).is_ok());
    }
}
