//! Shared scaffolding for the SpiderNet benchmark harness.
//!
//! The `fig8`/`fig9`/`fig10`/`fig11`/`overhead` binaries regenerate the
//! paper's figures (run with `--paper` for the full-size configuration);
//! the criterion benches in `benches/` time miniaturized versions of the
//! same drivers plus ablations of the design choices called out in
//! DESIGN.md.

#![warn(missing_docs)]

use spidernet_core::bcp::BcpConfig;
use spidernet_core::system::{SpiderNet, SpiderNetConfig};
use spidernet_core::workload::{PopulationConfig, RequestConfig};

/// True if the CLI was invoked with `--paper` (full-scale experiment).
pub fn paper_scale_requested() -> bool {
    std::env::args().any(|a| a == "--paper")
}

/// True if the CLI was invoked with `--csv` (machine-readable output).
pub fn csv_requested() -> bool {
    std::env::args().any(|a| a == "--csv")
}

/// A small, fast world shared by micro-benchmarks: 60 peers over a
/// 300-node IP network, 12 functions.
pub fn bench_world(seed: u64) -> SpiderNet {
    let mut net = SpiderNet::build(&SpiderNetConfig {
        ip_nodes: 300,
        peers: 60,
        seed,
        ..SpiderNetConfig::default()
    });
    net.populate(&PopulationConfig { functions: 12, ..PopulationConfig::default() });
    net
}

/// A permissive request template for micro-benchmarks.
pub fn bench_request_config() -> RequestConfig {
    RequestConfig {
        functions: (3, 3),
        delay_bound_ms: (5_000.0, 5_001.0),
        loss_bound: (0.3, 0.31),
        ..RequestConfig::default()
    }
}

/// The default BCP config micro-benchmarks use.
pub fn bench_bcp() -> BcpConfig {
    BcpConfig { budget: 16, ..BcpConfig::default() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spidernet_core::workload::random_request;
    use spidernet_util::rng::rng_for;

    #[test]
    fn bench_world_composes() {
        let mut net = bench_world(1);
        let mut rng = rng_for(1, "bench-lib");
        let req = random_request(net.overlay(), net.registry(), &bench_request_config(), &mut rng);
        assert!(net.compose(&req, &bench_bcp()).is_ok());
    }
}
