//! Shared scaffolding for the SpiderNet benchmark harness.
//!
//! The `fig8`/`fig9`/`fig10`/`fig11`/`overhead` binaries regenerate the
//! paper's figures (run with `--paper` for the full-size configuration);
//! the criterion benches in `benches/` time miniaturized versions of the
//! same drivers plus ablations of the design choices called out in
//! DESIGN.md.

#![warn(missing_docs)]

use spidernet_core::bcp::BcpConfig;
use spidernet_core::system::{SpiderNet, SpiderNetConfig};
use spidernet_core::workload::{PopulationConfig, RequestConfig};

/// True if the CLI was invoked with `--paper` (full-scale experiment).
pub fn paper_scale_requested() -> bool {
    std::env::args().any(|a| a == "--paper")
}

/// True if the CLI was invoked with `--csv` (machine-readable output).
pub fn csv_requested() -> bool {
    std::env::args().any(|a| a == "--csv")
}

/// True if the CLI was invoked with `--quick` (CI smoke configuration:
/// a miniature grid that still exercises every field of the bench
/// report, finishing in seconds).
pub fn quick_requested() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// True if the CLI was invoked with `--json` (write a `BENCH_<fig>.json`
/// harness-performance report alongside the figure output).
pub fn json_requested() -> bool {
    std::env::args().any(|a| a == "--json")
}

/// True if the CLI was invoked with `--trace-json` (write a
/// `TRACE_<fig>.json` observability report — merged protocol counters,
/// DAG-shape histograms, and per-session probe rows — alongside the
/// figure output).
pub fn trace_json_requested() -> bool {
    std::env::args().any(|a| a == "--trace-json")
}

/// True if the CLI was invoked with `--churn-sweep` (fig10: sweep crash
/// rates through the deterministic fault lab instead of the threaded
/// setup-time experiment).
pub fn churn_sweep_requested() -> bool {
    std::env::args().any(|a| a == "--churn-sweep")
}

/// The value of `--<flag> <value>` or `--<flag>=<value>` on the CLI, if
/// present (e.g. `arg_value("--faults")`).
pub fn arg_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    arg_value_in(&args, flag)
}

/// [`arg_value`] over an explicit argument list (separated out for
/// testing). Matches only the exact flag or `flag=`; `--faultsX` does
/// not match `--faults`.
pub fn arg_value_in(args: &[String], flag: &str) -> Option<String> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == flag {
            return it.next().cloned();
        }
        if let Some(rest) = a.strip_prefix(flag) {
            if let Some(v) = rest.strip_prefix('=') {
                return Some(v.to_owned());
            }
        }
    }
    None
}

/// Times one figure driver sequentially (1 worker thread) and again at the
/// environment's thread count; returns
/// `(sequential_secs, parallel_secs, threads, parallel_result)`.
///
/// The harness is deterministic by construction, so both runs produce the
/// same figure and only the parallel result is kept.
pub fn time_seq_par<T>(mut run_with_threads: impl FnMut(usize) -> T) -> (f64, f64, usize, T) {
    let threads = spidernet_util::par::configured_threads();
    let t0 = std::time::Instant::now();
    drop(run_with_threads(1));
    let sequential = t0.elapsed().as_secs_f64();
    let t1 = std::time::Instant::now();
    let out = run_with_threads(threads);
    let parallel = t1.elapsed().as_secs_f64();
    (sequential, parallel, threads, out)
}

/// Peak resident set size of this process in bytes (Linux `VmHWM` from
/// `/proc/self/status`), or `None` where that interface is unavailable.
/// VmHWM is the high-water mark, so sampling once at the end of a run
/// captures the run's true memory footprint.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// An insertion-ordered JSON object nested one level inside a
/// [`BenchReport`] (e.g. the `scale` block in `BENCH_fig8.json`).
#[derive(Default)]
pub struct BenchBlock {
    fields: Vec<(String, String)>,
}

impl BenchBlock {
    /// An empty block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an integer field.
    pub fn int(&mut self, key: &str, v: u64) -> &mut Self {
        self.fields.push((key.to_owned(), v.to_string()));
        self
    }

    /// Adds a float field, rendered with four decimal places.
    pub fn num(&mut self, key: &str, v: f64) -> &mut Self {
        self.fields.push((key.to_owned(), format!("{v:.4}")));
        self
    }

    /// Renders the block as a JSON object whose closing brace sits at the
    /// parent report's two-space field indent.
    fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            s.push_str("    \"");
            s.push_str(k);
            s.push_str("\": ");
            s.push_str(v);
            s.push_str(if i + 1 == self.fields.len() { "\n" } else { ",\n" });
        }
        s.push_str("  }");
        s
    }
}

/// An insertion-ordered flat JSON report written as `BENCH_<fig>.json`.
pub struct BenchReport {
    name: String,
    fields: Vec<(String, String)>,
}

impl BenchReport {
    /// A report for figure `name` (e.g. `"fig8"`).
    pub fn new(name: &str) -> Self {
        let mut r = BenchReport { name: name.to_owned(), fields: Vec::new() };
        r.fields.push(("figure".into(), format!("\"{name}\"")));
        r
    }

    /// Adds an integer field.
    pub fn int(&mut self, key: &str, v: u64) -> &mut Self {
        self.fields.push((key.to_owned(), v.to_string()));
        self
    }

    /// Adds a float field, rendered with four decimal places.
    pub fn num(&mut self, key: &str, v: f64) -> &mut Self {
        self.fields.push((key.to_owned(), format!("{v:.4}")));
        self
    }

    /// Adds a nested object field (rendered inline at the key's
    /// insertion-order position).
    pub fn nested(&mut self, key: &str, block: &BenchBlock) -> &mut Self {
        self.fields.push((key.to_owned(), block.to_json()));
        self
    }

    /// Renders the report as a flat JSON object.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            s.push_str("  \"");
            s.push_str(k);
            s.push_str("\": ");
            s.push_str(v);
            s.push_str(if i + 1 == self.fields.len() { "\n" } else { ",\n" });
        }
        s.push_str("}\n");
        s
    }

    /// Writes `BENCH_<fig>.json` into the current directory and returns
    /// the path.
    pub fn write(&self) -> std::io::Result<std::path::PathBuf> {
        let path = std::path::PathBuf::from(format!("BENCH_{}.json", self.name));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

/// A small, fast world shared by micro-benchmarks: 60 peers over a
/// 300-node IP network, 12 functions.
pub fn bench_world(seed: u64) -> SpiderNet {
    let mut net =
        SpiderNet::build(&SpiderNetConfig::builder().ip_nodes(300).peers(60).seed(seed).build());
    net.populate(&PopulationConfig { functions: 12, ..PopulationConfig::default() });
    net
}

/// A permissive request template for micro-benchmarks.
pub fn bench_request_config() -> RequestConfig {
    RequestConfig {
        functions: (3, 3),
        delay_bound_ms: (5_000.0, 5_001.0),
        loss_bound: (0.3, 0.31),
        ..RequestConfig::default()
    }
}

/// The default BCP config micro-benchmarks use.
pub fn bench_bcp() -> BcpConfig {
    BcpConfig::builder().budget(16).build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spidernet_core::workload::random_request;
    use spidernet_util::rng::rng_for;

    #[test]
    fn bench_report_renders_valid_flat_json() {
        let mut rep = BenchReport::new("figX");
        rep.int("trials", 10).num("parallel_secs", 1.25);
        let json = rep.to_json();
        assert!(json.starts_with("{\n"));
        assert!(json.ends_with("}\n"));
        assert!(json.contains("\"figure\": \"figX\""));
        assert!(json.contains("\"trials\": 10,"));
        assert!(json.contains("\"parallel_secs\": 1.2500\n"));
    }

    #[test]
    fn nested_block_renders_inside_the_report() {
        let mut scale = BenchBlock::new();
        scale.int("peers", 100_000).num("probes_per_sec", 123.5);
        let mut rep = BenchReport::new("fig8");
        rep.int("trials", 2).nested("scale", &scale);
        let json = rep.to_json();
        assert!(json.contains("\"scale\": {\n"));
        assert!(json.contains("    \"peers\": 100000,\n"));
        assert!(json.contains("    \"probes_per_sec\": 123.5000\n  }"));
    }

    #[test]
    fn peak_rss_is_reported_on_linux() {
        let rss = peak_rss_bytes().expect("VmHWM available on Linux");
        assert!(rss > 1024 * 1024, "peak RSS implausibly small: {rss}");
    }

    #[test]
    fn arg_value_matches_both_spellings_and_nothing_else() {
        let args: Vec<String> = ["fig10", "--faults", "storm:rate=0.1", "--seed=7", "--faultsy=x"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(arg_value_in(&args, "--faults").as_deref(), Some("storm:rate=0.1"));
        assert_eq!(arg_value_in(&args, "--seed").as_deref(), Some("7"));
        assert_eq!(arg_value_in(&args, "--rates"), None);
        assert_eq!(arg_value_in(&args, "--faultsy").as_deref(), Some("x"));
        // A flag with no following value yields None, not a panic.
        let dangling: Vec<String> = vec!["fig10".into(), "--faults".into()];
        assert_eq!(arg_value_in(&dangling, "--faults"), None);
    }

    #[test]
    fn bench_world_composes() {
        let mut net = bench_world(1);
        let mut rng = rng_for(1, "bench-lib");
        let req = random_request(net.overlay(), net.registry(), &bench_request_config(), &mut rng);
        assert!(net.compose(&req, &bench_bcp()).is_ok());
    }
}
