//! Criterion bench for the Fig. 11 driver (delay vs probing budget).

use criterion::{criterion_group, criterion_main, Criterion};
use spidernet_core::experiments::fig11::{run, Fig11Config};

fn bench_fig11(c: &mut Criterion) {
    let cfg = Fig11Config {
        ip_nodes: 300,
        peers: 40,
        functions: 4,
        request_functions: 3,
        budgets: vec![8, 64],
        requests: 8,
        seed: 11,
    };
    let mut g = c.benchmark_group("fig11");
    g.sample_size(10);
    g.bench_function("budget-sweep", |b| b.iter(|| run(&cfg)));
    g.finish();
}

criterion_group!(benches, bench_fig11);
criterion_main!(benches);
