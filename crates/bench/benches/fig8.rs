//! Criterion bench for the Fig. 8 driver (success rate vs workload):
//! times one miniaturized workload cell per algorithm class.

use criterion::{criterion_group, criterion_main, Criterion};
use spidernet_core::experiments::fig8::{run, Algorithm, Fig8Config};
use spidernet_core::workload::{PopulationConfig, RequestConfig};

fn tiny(algorithms: Vec<Algorithm>) -> Fig8Config {
    Fig8Config {
        ip_nodes: 300,
        peers: 60,
        functions: 12,
        duration_units: 10,
        workloads: vec![5],
        population: PopulationConfig { functions: 12, ..PopulationConfig::default() },
        optimal_cap: Some(200),
        request: RequestConfig { functions: (2, 3), ..RequestConfig::default() },
        algorithms,
        ..Fig8Config::default()
    }
}

fn bench_fig8(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8");
    g.sample_size(10);
    g.bench_function("probing-0.2", |b| {
        let cfg = tiny(vec![Algorithm::Probing(0.2)]);
        b.iter(|| run(&cfg))
    });
    g.bench_function("optimal", |b| {
        let cfg = tiny(vec![Algorithm::Optimal]);
        b.iter(|| run(&cfg))
    });
    g.bench_function("random+static", |b| {
        let cfg = tiny(vec![Algorithm::Random, Algorithm::Static]);
        b.iter(|| run(&cfg))
    });
    g.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
