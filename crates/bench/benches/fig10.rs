//! Criterion bench for the Fig. 10 driver (wide-area session setup on the
//! threaded runtime). Time compression keeps wall time low while model
//! times stay WAN-scale.

use criterion::{criterion_group, criterion_main, Criterion};
use spidernet_runtime::cluster::ClusterConfig;
use spidernet_runtime::experiments::{run, Fig10Config};

fn bench_fig10(c: &mut Criterion) {
    let cfg = Fig10Config {
        cluster: ClusterConfig { peers: 24, time_scale: 0.002, ..ClusterConfig::default() },
        function_counts: vec![3],
        requests_per_point: 4,
        ..Fig10Config::default()
    };
    let mut g = c.benchmark_group("fig10");
    g.sample_size(10);
    g.bench_function("setup-3-functions-24-peers", |b| b.iter(|| run(&cfg)));
    g.finish();
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);
