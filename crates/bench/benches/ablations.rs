//! Ablation benches for the design choices DESIGN.md calls out:
//! probing-quota policy, commutation links on/off, DHT lookup mode, and
//! budget levels. Each measures one `compose` call on a fixed world; the
//! throughput differences quantify each mechanism's cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spidernet_bench::{bench_request_config, bench_world};
use spidernet_core::bcp::{BcpConfig, LookupMode, QuotaPolicy};
use spidernet_core::model::FunctionGraph;
use spidernet_core::workload::random_request;
use spidernet_util::id::FunctionId;
use spidernet_util::rng::rng_for;

fn bench_quota_policy(c: &mut Criterion) {
    let mut net = bench_world(1);
    let mut rng = rng_for(1, "ablation-quota");
    let req = random_request(net.overlay(), net.registry(), &bench_request_config(), &mut rng);
    let mut g = c.benchmark_group("ablation-quota");
    g.sample_size(20);
    for (label, quota) in [
        ("uniform-2", QuotaPolicy::Uniform(2)),
        ("uniform-8", QuotaPolicy::Uniform(8)),
        ("replica-fraction-0.5", QuotaPolicy::ReplicaFraction(0.5)),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &quota, |b, &quota| {
            let cfg = BcpConfig { budget: 32, quota, ..BcpConfig::default() };
            b.iter(|| net.compose(&req, &cfg))
        });
    }
    g.finish();
}

fn bench_lookup_mode(c: &mut Criterion) {
    let mut net = bench_world(2);
    let mut rng = rng_for(2, "ablation-lookup");
    let req = random_request(net.overlay(), net.registry(), &bench_request_config(), &mut rng);
    let mut g = c.benchmark_group("ablation-lookup");
    g.sample_size(20);
    for (label, lookup) in [("prefetch", LookupMode::Prefetch), ("per-hop", LookupMode::PerHop)] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &lookup, |b, &lookup| {
            let cfg = BcpConfig { lookup, ..BcpConfig::default() };
            b.iter(|| net.compose(&req, &cfg))
        });
    }
    g.finish();
}

fn bench_budget(c: &mut Criterion) {
    let mut net = bench_world(3);
    let mut rng = rng_for(3, "ablation-budget");
    let req = random_request(net.overlay(), net.registry(), &bench_request_config(), &mut rng);
    let mut g = c.benchmark_group("ablation-budget");
    g.sample_size(20);
    for budget in [4u32, 16, 64, 256] {
        g.bench_with_input(BenchmarkId::from_parameter(budget), &budget, |b, &budget| {
            let cfg = BcpConfig { budget, quota: QuotaPolicy::Uniform(8), ..BcpConfig::default() };
            b.iter(|| net.compose(&req, &cfg))
        });
    }
    g.finish();
}

fn bench_commutation(c: &mut Criterion) {
    let mut net = bench_world(4);
    let mut rng = rng_for(4, "ablation-commutation");
    let base = random_request(net.overlay(), net.registry(), &bench_request_config(), &mut rng);
    let funcs: Vec<FunctionId> = base.function_graph.functions().to_vec();
    let linear = FunctionGraph::linear_of(&funcs);
    let commuted = FunctionGraph::new(
        funcs.clone(),
        vec![(0, 1), (1, 2)],
        vec![(1, 2)],
    )
    .expect("valid chain with one commutation");

    let mut g = c.benchmark_group("ablation-commutation");
    g.sample_size(20);
    for (label, graph) in [("fixed-order", linear), ("commutable", commuted)] {
        let mut req = base.clone();
        req.function_graph = graph;
        g.bench_function(label, |b| {
            b.iter(|| net.compose(&req, &BcpConfig { budget: 32, ..BcpConfig::default() }))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_quota_policy, bench_lookup_mode, bench_budget, bench_commutation);
criterion_main!(benches);
