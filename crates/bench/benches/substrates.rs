//! Micro-benchmarks of the substrates the composition system stands on:
//! power-law topology generation, Dijkstra routing, Pastry routing, and
//! the discrete-event scheduler.

use criterion::{criterion_group, criterion_main, Criterion};
use spidernet_dht::{NodeId, PastryNetwork};
use spidernet_sim::Scheduler;
use spidernet_sim::time::SimTime;
use spidernet_topology::inet::{generate_power_law, InetConfig};
use spidernet_topology::routing::dijkstra;
use spidernet_util::id::PeerId;

fn bench_topology(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate-topology");
    g.sample_size(10);
    g.bench_function("inet-2000-nodes", |b| {
        let cfg = InetConfig { nodes: 2_000, ..InetConfig::default() };
        b.iter(|| generate_power_law(&cfg, 1))
    });
    let graph = generate_power_law(&InetConfig { nodes: 2_000, ..InetConfig::default() }, 1);
    g.bench_function("dijkstra-2000-nodes", |b| b.iter(|| dijkstra(&graph, 0)));
    g.finish();
}

fn bench_pastry(c: &mut Criterion) {
    let peers: Vec<PeerId> = (0..500).map(PeerId::new).collect();
    let net = PastryNetwork::build(&peers, &mut |_, _| 1.0);
    let mut g = c.benchmark_group("substrate-pastry");
    g.bench_function("route-500-nodes", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k += 1;
            net.route(PeerId::new(k % 500), NodeId::from_peer_index(100_000 + k), &mut |_, _| 1.0)
        })
    });
    g.finish();
}

fn bench_scheduler(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate-scheduler");
    g.bench_function("schedule-pop-10k", |b| {
        b.iter(|| {
            let mut s: Scheduler<u64> = Scheduler::new();
            for i in 0..10_000u64 {
                s.schedule_at(SimTime::from_micros((i * 7919) % 100_000), i);
            }
            let mut sum = 0u64;
            while let Some(e) = s.pop() {
                sum = sum.wrapping_add(e);
            }
            sum
        })
    });
    g.finish();
}

criterion_group!(benches, bench_topology, bench_pastry, bench_scheduler);
criterion_main!(benches);
