//! Criterion bench for the Fig. 9 driver (failure frequency under churn,
//! with vs without proactive recovery).

use criterion::{criterion_group, criterion_main, Criterion};
use spidernet_core::experiments::fig9::{run, Fig9Config};
use spidernet_core::workload::PopulationConfig;

fn bench_fig9(c: &mut Criterion) {
    let cfg = Fig9Config {
        ip_nodes: 300,
        peers: 80,
        sessions: 15,
        duration_units: 10,
        population: PopulationConfig { functions: 10, ..PopulationConfig::default() },
        ..Fig9Config::default()
    };
    let mut g = c.benchmark_group("fig9");
    g.sample_size(10);
    g.bench_function("churn-with-and-without-recovery", |b| b.iter(|| run(&cfg)));
    g.finish();
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
