//! Criterion bench for the §6.1 overhead comparison driver.

use criterion::{criterion_group, criterion_main, Criterion};
use spidernet_core::experiments::overhead::{run, OverheadConfig};

fn bench_overhead(c: &mut Criterion) {
    let cfg = OverheadConfig {
        ip_nodes: 400,
        peers: 100,
        functions: 20,
        duration_units: 20,
        requests_per_unit: 1,
        ..OverheadConfig::default()
    };
    let mut g = c.benchmark_group("overhead");
    g.sample_size(10);
    g.bench_function("spidernet-vs-centralized", |b| b.iter(|| run(&cfg)));
    g.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
