//! Service components and the component registry (paper §2.2, Fig. 3).
//!
//! A service component is a self-contained application unit hosted on one
//! peer. It consumes application data units, processes them, and emits
//! outputs; its contract is the tuple (provisioned function, input quality
//! Q_in, output quality Q_out, performance quality Q_p, resource
//! requirements R). Functionally duplicated components share a
//! [`FunctionId`] but may differ in every other attribute.

use spidernet_util::id::{ComponentId, FunctionId, PeerId};
use spidernet_util::qos::QosVector;
use spidernet_util::res::ResourceVector;
use std::collections::HashMap;

/// One service component instance.
#[derive(Clone, Debug, PartialEq)]
pub struct ServiceComponent {
    /// Unique component id.
    pub id: ComponentId,
    /// Hosting peer.
    pub peer: PeerId,
    /// The abstract function it provides.
    pub function: FunctionId,
    /// Performance quality Q_p: the component's additive contribution to
    /// each user-visible QoS dimension (e.g. processing delay in dim 0).
    pub perf_qos: QosVector,
    /// End-system resources R consumed per active session.
    pub resources: ResourceVector,
    /// Bandwidth demanded on the component's *outgoing* service link,
    /// Mbit/s (transformations can shrink or grow the stream).
    pub out_bandwidth_mbps: f64,
    /// Probability that this component fails during one time unit
    /// (dominated by its peer's failure behaviour).
    pub failure_prob: f64,
}

/// Bidirectional map between function names and [`FunctionId`]s.
///
/// Discovery keys are derived from names (hashing in `spidernet-dht`); the
/// rest of the system uses dense ids.
#[derive(Clone, Debug, Default)]
pub struct FunctionCatalog {
    names: Vec<String>,
    by_name: HashMap<String, FunctionId>,
}

impl FunctionCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        FunctionCatalog::default()
    }

    /// A catalog of `n` synthetic functions named `func-000`, `func-001`, …
    /// (the simulation study uses 200 pre-defined functions).
    pub fn synthetic(n: usize) -> Self {
        let mut c = FunctionCatalog::new();
        for i in 0..n {
            c.intern(&format!("func-{i:03}"));
        }
        c
    }

    /// Returns the id for `name`, creating it if new.
    pub fn intern(&mut self, name: &str) -> FunctionId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = FunctionId::from(self.names.len());
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// The id for `name`, if interned.
    pub fn lookup(&self, name: &str) -> Option<FunctionId> {
        self.by_name.get(name).copied()
    }

    /// The name of `id`.
    pub fn name(&self, id: FunctionId) -> &str {
        &self.names[id.index()]
    }

    /// Number of interned functions.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if no functions are interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// The component registry: dense storage plus by-function and by-peer
/// indices.
///
/// In a deployment each peer knows only its own components and discovers
/// others through the DHT; the registry is the simulator's ground-truth
/// table, and protocol code only reads it through discovery results or for
/// peer-local data.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    components: Vec<ServiceComponent>,
    // Dense indices keyed by FunctionId / PeerId raw value; rows append in
    // add() order, so slices read back exactly as the old hash-map variant
    // populated them.
    by_function: Vec<Vec<ComponentId>>,
    by_peer: Vec<Vec<ComponentId>>,
    catalog: FunctionCatalog,
}

impl Registry {
    /// An empty registry with the given catalog.
    pub fn new(catalog: FunctionCatalog) -> Self {
        Registry { catalog, ..Registry::default() }
    }

    /// The function catalog.
    pub fn catalog(&self) -> &FunctionCatalog {
        &self.catalog
    }

    /// Mutable access to the catalog (interning new functions).
    pub fn catalog_mut(&mut self) -> &mut FunctionCatalog {
        &mut self.catalog
    }

    /// Adds a component, assigning its id. All fields of `proto` except
    /// `id` are preserved.
    pub fn add(&mut self, mut proto: ServiceComponent) -> ComponentId {
        let id = ComponentId::from(self.components.len());
        proto.id = id;
        let fi = proto.function.index();
        if fi >= self.by_function.len() {
            self.by_function.resize_with(fi + 1, Vec::new);
        }
        self.by_function[fi].push(id);
        let pi = proto.peer.index();
        if pi >= self.by_peer.len() {
            self.by_peer.resize_with(pi + 1, Vec::new);
        }
        self.by_peer[pi].push(id);
        self.components.push(proto);
        id
    }

    /// The component with the given id. Panics on an unknown id (ids are
    /// only minted by [`Registry::add`]).
    pub fn get(&self, id: ComponentId) -> &ServiceComponent {
        &self.components[id.index()]
    }

    /// All functionally duplicated components providing `f` — the paper's
    /// Z_k replicas.
    pub fn replicas(&self, f: FunctionId) -> &[ComponentId] {
        self.by_function.get(f.index()).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Components hosted on `peer`.
    pub fn on_peer(&self, peer: PeerId) -> &[ComponentId] {
        self.by_peer.get(peer.index()).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Total number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// True if no components are registered.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Iterates all components.
    pub fn iter(&self) -> impl Iterator<Item = &ServiceComponent> {
        self.components.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn proto(peer: u64, function: u64) -> ServiceComponent {
        ServiceComponent {
            id: ComponentId::new(0),
            peer: PeerId::new(peer),
            function: FunctionId::new(function),
            perf_qos: QosVector::from_values(vec![10.0, 0.01]),
            resources: ResourceVector::new(0.1, 32.0),
            out_bandwidth_mbps: 1.0,
            failure_prob: 0.01,
        }
    }

    #[test]
    fn catalog_interns_and_looks_up() {
        let mut c = FunctionCatalog::new();
        let a = c.intern("scale");
        let b = c.intern("crop");
        assert_ne!(a, b);
        assert_eq!(c.intern("scale"), a);
        assert_eq!(c.lookup("crop"), Some(b));
        assert_eq!(c.lookup("nope"), None);
        assert_eq!(c.name(a), "scale");
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn synthetic_catalog_has_n_functions() {
        let c = FunctionCatalog::synthetic(200);
        assert_eq!(c.len(), 200);
        assert_eq!(c.lookup("func-000"), Some(FunctionId::new(0)));
        assert_eq!(c.lookup("func-199"), Some(FunctionId::new(199)));
    }

    #[test]
    fn registry_assigns_dense_ids() {
        let mut r = Registry::default();
        let a = r.add(proto(0, 0));
        let b = r.add(proto(1, 0));
        assert_eq!(a.raw(), 0);
        assert_eq!(b.raw(), 1);
        assert_eq!(r.get(a).peer, PeerId::new(0));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn replica_index_groups_by_function() {
        let mut r = Registry::default();
        let a = r.add(proto(0, 7));
        let _ = r.add(proto(1, 8));
        let c = r.add(proto(2, 7));
        assert_eq!(r.replicas(FunctionId::new(7)), &[a, c]);
        assert_eq!(r.replicas(FunctionId::new(9)), &[] as &[ComponentId]);
    }

    #[test]
    fn peer_index_groups_by_host() {
        let mut r = Registry::default();
        let a = r.add(proto(3, 0));
        let b = r.add(proto(3, 1));
        let _ = r.add(proto(4, 1));
        assert_eq!(r.on_peer(PeerId::new(3)), &[a, b]);
        assert!(r.on_peer(PeerId::new(9)).is_empty());
    }

    #[test]
    fn iter_walks_everything() {
        let mut r = Registry::default();
        r.add(proto(0, 0));
        r.add(proto(1, 1));
        assert_eq!(r.iter().count(), 2);
    }
}
