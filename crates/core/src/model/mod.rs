//! The SpiderNet service model (paper §2).

pub mod component;
pub mod function_graph;
pub mod request;
pub mod service_graph;

pub use component::{FunctionCatalog, Registry, ServiceComponent};
pub use function_graph::FunctionGraph;
pub use request::CompositionRequest;
pub use service_graph::{CostWeights, GraphEval, ServiceGraph};
